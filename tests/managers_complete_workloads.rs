//! Integration: every task manager runs every (scaled) paper workload to
//! completion, retires every task, and produces internally consistent
//! outcomes.

use nexus::cluster::LinkConfig;
use nexus::prelude::*;
use nexus::trace::generators::{distributed, MbGrouping};

fn scaled_suite() -> Vec<Trace> {
    vec![
        Benchmark::CRay.trace_scaled(1, 0.05),
        Benchmark::RotCc.trace_scaled(2, 0.02),
        Benchmark::SparseLu.trace_scaled(3, 0.01),
        Benchmark::Streamcluster.trace_scaled(4, 0.004),
        Benchmark::H264Dec(MbGrouping::G1x1).trace_scaled(5, 0.01),
        Benchmark::H264Dec(MbGrouping::G8x8).trace_scaled(5, 0.1),
        Benchmark::Gaussian { dim: 80 }.trace_scaled(6, 1.0),
    ]
}

fn check_outcome(trace: &Trace, out: &SimOutcome, workers: usize) {
    assert_eq!(
        out.tasks as usize,
        trace.task_count(),
        "{}: task count",
        out.manager
    );
    assert_eq!(out.total_work, trace.total_work());
    assert!(
        out.makespan >= trace.total_work() / (workers as u64 + 1),
        "{}: makespan below the physical lower bound",
        out.manager
    );
    assert!(
        out.speedup() <= workers as f64 + 1e-6,
        "{}: speedup {} exceeds the core count",
        out.manager,
        out.speedup()
    );
    assert!(out.speedup() > 0.0);
}

#[test]
fn ideal_manager_completes_every_workload() {
    for trace in scaled_suite() {
        for workers in [1usize, 7, 32] {
            let out = simulate(
                &trace,
                &mut IdealManager::new(),
                &HostConfig::with_workers(workers),
            );
            check_outcome(&trace, &out, workers);
        }
    }
}

#[test]
fn nexus_sharp_completes_every_workload_at_every_tg_count() {
    for trace in scaled_suite() {
        for tgs in [1usize, 2, 4, 6, 8] {
            let out = simulate(
                &trace,
                &mut NexusSharp::paper(tgs),
                &HostConfig::with_workers(16),
            );
            check_outcome(&trace, &out, 16);
        }
    }
}

#[test]
fn nexus_pp_completes_every_workload() {
    for trace in scaled_suite() {
        let out = simulate(&trace, &mut NexusPP::paper(), &HostConfig::with_workers(16));
        check_outcome(&trace, &out, 16);
    }
}

#[test]
fn nanos_completes_every_workload() {
    for trace in scaled_suite() {
        let mut mgr = NanosRuntime::for_benchmark(&trace.name, 16);
        let out = simulate(&trace, &mut mgr, &HostConfig::with_workers(16));
        check_outcome(&trace, &out, 16);
    }
}

#[test]
fn no_manager_beats_the_ideal_manager() {
    for trace in scaled_suite() {
        let cfg = HostConfig::with_workers(24);
        let ideal = simulate(&trace, &mut IdealManager::new(), &cfg);
        for out in [
            simulate(&trace, &mut NexusSharp::paper(6), &cfg),
            simulate(&trace, &mut NexusPP::paper(), &cfg),
            simulate(
                &trace,
                &mut NanosRuntime::for_benchmark(&trace.name, 24),
                &cfg,
            ),
        ] {
            // Greedy list scheduling is subject to Graham's anomalies: delaying
            // a ready notification can occasionally *improve* the packing, so
            // allow a small tolerance instead of strict dominance.
            assert!(
                out.makespan.as_us_f64() >= 0.97 * ideal.makespan.as_us_f64(),
                "{} on {}: {} beat the ideal {} by more than the anomaly tolerance",
                out.manager,
                trace.name,
                out.makespan,
                ideal.makespan
            );
        }
    }
}

#[test]
fn cluster_runs_are_deterministic_for_every_node_count() {
    // Same seed + trace + node count ⇒ bit-identical makespans and traffic,
    // run to run. The cluster driver is a discrete-event simulation with a
    // deterministic tie-break, so nothing may depend on hash-map iteration
    // order or wall-clock time.
    for &(nodes, remote) in &[(1usize, 0.0), (2, 0.2), (4, 0.5), (4, 1.0)] {
        let trace = distributed::sparselu(4, remote, 11, 0.002);
        let cfg = ClusterConfig::new(nodes, 8).with_link(LinkConfig::rdma());
        let a = simulate_cluster(&trace, &cfg, |_| NexusSharp::paper(6));
        let b = simulate_cluster(&trace, &cfg, |_| NexusSharp::paper(6));
        assert_eq!(
            a.makespan, b.makespan,
            "{nodes} nodes, coupling {remote}: makespan not reproducible"
        );
        assert_eq!(a.notifications, b.notifications);
        assert_eq!(a.link.messages, b.link.messages);
        assert_eq!(a.link.words, b.link.words);
        assert_eq!(a.node_tasks(), b.node_tasks());
        assert_eq!(a.master_barrier_time, b.master_barrier_time);
        // Regenerating the trace from the same seed is also bit-identical.
        let regen = distributed::sparselu(4, remote, 11, 0.002);
        assert_eq!(trace.ops, regen.ops);
    }
}

#[test]
fn speedup_is_monotone_in_core_count_for_hardware_managers() {
    // More cores never hurt in this model (no inter-core interference).
    let trace = Benchmark::SparseLu.trace_scaled(9, 0.005);
    for build in [
        |_n: usize| -> Box<dyn TaskManager> { Box::new(NexusSharp::paper(6)) },
        |_n: usize| -> Box<dyn TaskManager> { Box::new(NexusPP::paper()) },
    ] {
        let mut last = 0.0;
        for workers in [1usize, 2, 4, 8, 16, 32] {
            let mut mgr = build(workers);
            let out = simulate(&trace, mgr.as_mut(), &HostConfig::with_workers(workers));
            // Allow a small tolerance: greedy dispatch with barriers can show
            // minor scheduling anomalies when cores are added.
            assert!(
                out.speedup() >= last * 0.97,
                "speedup dropped from {last} to {} at {workers} cores for {}",
                out.speedup(),
                out.manager
            );
            last = out.speedup();
        }
    }
}
