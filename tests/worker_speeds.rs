//! Heterogeneous worker speeds in the *simulated* cluster: a node whose pool
//! mixes a 2x core with a standard core must beat a uniform pool of standard
//! cores on the same trace, and the speed-normalized most-loaded steal
//! policy must still drain a skewed workload.

use nexus::cluster::{ClusterConfig, ClusterDriver};
use nexus::host::IdealManager;
use nexus::sched::StealKind;
use nexus::sim::SimDuration;
use nexus::trace::generators::distributed;

fn us(n: u64) -> SimDuration {
    SimDuration::from_us(n)
}

#[test]
fn a_double_speed_core_shortens_the_makespan() {
    // Plenty of independent 50 us tasks per node: with one core at 2x the
    // pool's aggregate service rate is 1.5x, so the makespan must drop
    // measurably (not necessarily the full 1.5x — the tail task quantizes).
    let trace = distributed::imbalanced(2, 64, 1.0, us(50), 0.0, 7);
    let cfg = ClusterConfig::new(2, 2);
    let uniform = ClusterDriver::new(&cfg, |_| IdealManager::new()).run(&trace);
    let hetero = ClusterDriver::new(&cfg, |_| IdealManager::new())
        .with_worker_speeds(&[2.0, 1.0])
        .run(&trace);
    assert_eq!(uniform.tasks, hetero.tasks);
    let ratio = uniform.makespan.as_us_f64() / hetero.makespan.as_us_f64();
    assert!(
        ratio > 1.2,
        "a 2x core should shorten the makespan by ~1.5x, got {ratio:.3} \
         (uniform {}, hetero {})",
        uniform.makespan,
        hetero.makespan
    );
    // Same dataflow either way: the semantic fingerprint is unchanged.
    assert_eq!(uniform.master_last_writer, hetero.master_last_writer);
}

/// A manager whose descriptor pool keeps a backlog pending at the node — in
/// the simulated cluster only *pending* descriptors are steal-eligible, so an
/// unbounded manager never exposes anything to thieves.
fn tight_sharp() -> nexus::sharp::NexusSharp {
    let mut cfg = nexus::sharp::NexusSharpConfig::paper(6);
    cfg.task_pool_capacity = 16;
    nexus::sharp::NexusSharp::new(cfg)
}

#[test]
fn speed_normalized_stealing_still_drains_skewed_work() {
    let trace = distributed::imbalanced(4, 60, 6.0, us(50), 0.0, 5);
    let cfg = ClusterConfig::new(4, 2).with_stealing(StealKind::MostLoaded);
    let out = ClusterDriver::new(&cfg, |_| tight_sharp())
        .with_worker_speeds(&[2.0, 1.0])
        .run(&trace);
    assert_eq!(out.tasks, trace.task_count() as u64);
    assert!(
        out.steals > 0,
        "the skewed head node must shed work: got {} steals",
        out.steals
    );
    let frozen = ClusterDriver::new(&cfg.with_stealing(StealKind::Disabled), |_| tight_sharp())
        .with_worker_speeds(&[2.0, 1.0])
        .run(&trace);
    assert!(
        out.makespan < frozen.makespan,
        "stealing must beat no stealing on the same heterogeneous pools \
         ({} vs {})",
        out.makespan,
        frozen.makespan
    );
}
