//! Cross-generator properties: determinism, validity, scaling behaviour and
//! schedulability of every workload generator.

use nexus::taskgraph::refgraph::ParallelismProfile;
use nexus::trace::generators::MbGrouping;
use nexus::trace::{Benchmark, TraceStats};

fn all_benchmarks() -> Vec<Benchmark> {
    let mut v = Benchmark::table2_suite();
    v.push(Benchmark::Gaussian { dim: 120 });
    v
}

#[test]
fn every_generator_is_deterministic_for_a_seed() {
    for b in all_benchmarks() {
        let a = b.trace_scaled(99, 0.02);
        let c = b.trace_scaled(99, 0.02);
        assert_eq!(a.ops.len(), c.ops.len(), "{}", b.name());
        assert_eq!(a.total_work(), c.total_work(), "{}", b.name());
        // Task parameter lists must match exactly.
        for (x, y) in a.tasks().zip(c.tasks()) {
            assert_eq!(x, y, "{}", b.name());
        }
    }
}

#[test]
fn every_generator_produces_valid_traces_at_several_scales() {
    for b in all_benchmarks() {
        for scale in [0.01, 0.05, 0.2] {
            let t = b.trace_scaled(7, scale);
            t.validate().unwrap_or_else(|e| panic!("{} @ {scale}: {e}", b.name()));
            assert!(t.task_count() > 0, "{} @ {scale}", b.name());
            let s = TraceStats::of(&t);
            assert!(s.min_params >= 1, "{}", b.name());
            assert!(s.max_params <= 6, "{}: {}", b.name(), s.max_params);
        }
    }
}

#[test]
fn scaling_preserves_average_task_size() {
    for b in Benchmark::table2_suite() {
        let small = TraceStats::of(&b.trace_scaled(3, 0.05));
        let large = TraceStats::of(&b.trace_scaled(3, 0.3));
        let ratio = small.avg_task_us / large.avg_task_us;
        assert!(
            (0.7..1.4).contains(&ratio),
            "{}: scaling changed the task-size distribution ({} vs {})",
            b.name(),
            small.avg_task_us,
            large.avg_task_us
        );
    }
}

#[test]
fn workloads_have_the_parallelism_structure_the_paper_describes() {
    // c-ray: fully independent tasks => parallelism is close to the task count
    // (slightly below it because task durations vary, so the critical path is
    // the longest single task rather than the average one).
    let cray = Benchmark::CRay.trace_scaled(1, 0.05);
    let p = ParallelismProfile::of(&cray);
    assert!(p.average_parallelism() > 0.8 * cray.task_count() as f64);

    // rot-cc: pairs => parallelism about half the task count.
    let rotcc = Benchmark::RotCc.trace_scaled(1, 0.02);
    let p = ParallelismProfile::of(&rotcc);
    let pairs = rotcc.task_count() as f64 / 2.0;
    assert!(p.average_parallelism() < 0.75 * rotcc.task_count() as f64);
    assert!(p.average_parallelism() > 0.4 * pairs);

    // streamcluster: the heavy tail limits the ideal speedup to a few tens.
    let sc = Benchmark::Streamcluster.trace_scaled(1, 0.005);
    let p = ParallelismProfile::of(&sc);
    assert!(
        (15.0..70.0).contains(&p.average_parallelism()),
        "streamcluster parallelism {}",
        p.average_parallelism()
    );

    // h264dec 1x1: wavefront + entropy chain: parallelism well above 8 but far
    // below the task count.
    let h264 = Benchmark::H264Dec(MbGrouping::G1x1).trace_scaled(1, 0.1);
    let p = ParallelismProfile::of(&h264);
    assert!(p.average_parallelism() > 8.0);
    assert!(p.average_parallelism() < 0.2 * h264.task_count() as f64);

    // Gaussian elimination: wave i has n-i+1 tasks; average parallelism is
    // about a third of the matrix dimension.
    let g = Benchmark::Gaussian { dim: 120 }.trace_scaled(1, 1.0);
    let p = ParallelismProfile::of(&g);
    assert!((20.0..80.0).contains(&p.average_parallelism()), "{}", p.average_parallelism());
}

#[test]
fn h264_taskwait_on_count_scales_with_rows_and_frames() {
    let one_frame = Benchmark::H264Dec(MbGrouping::G1x1).trace_scaled(1, 0.1);
    let s = TraceStats::of(&one_frame);
    // Single frame => no reference frame => no taskwait-on.
    assert_eq!(s.taskwait_ons, 0);
    let two_frames = Benchmark::H264Dec(MbGrouping::G1x1).trace_scaled(1, 0.2);
    let s2 = TraceStats::of(&two_frames);
    assert_eq!(s2.taskwait_ons, 68);
}

#[test]
fn gaussian_dimension_scaling_is_quadratic_in_task_count() {
    let small = Benchmark::Gaussian { dim: 100 }.trace_scaled(1, 1.0);
    let large = Benchmark::Gaussian { dim: 200 }.trace_scaled(1, 1.0);
    let ratio = large.task_count() as f64 / small.task_count() as f64;
    assert!((3.5..4.5).contains(&ratio), "ratio {ratio}");
}
