//! Cross-generator properties: determinism, validity, scaling behaviour and
//! schedulability of every workload generator.

use nexus::taskgraph::refgraph::ParallelismProfile;
use nexus::taskgraph::ReferenceGraph;
use nexus::trace::generators::{micro, MbGrouping};
use nexus::trace::{Benchmark, Trace, TraceStats};
use std::collections::HashMap;

fn all_benchmarks() -> Vec<Benchmark> {
    let mut v = Benchmark::table2_suite();
    v.push(Benchmark::Gaussian { dim: 120 });
    v
}

/// Per-generator smoke check: the trace is non-empty and well-formed, and the
/// dependency graph it induces is acyclic with every edge pointing at a task
/// that exists in the trace (dependencies can only reference earlier
/// submissions, so checking "each dep precedes its dependent in program order"
/// establishes both acyclicity and in-bounds ids).
fn smoke(trace: &Trace) {
    assert!(trace.task_count() > 0, "{}: empty trace", trace.name);
    trace
        .validate()
        .unwrap_or_else(|e| panic!("{}: {e}", trace.name));

    let position: HashMap<_, _> = trace.tasks().enumerate().map(|(i, t)| (t.id, i)).collect();
    let mut graph = ReferenceGraph::new();
    for task in trace.tasks() {
        graph.insert(task);
    }
    for task in trace.tasks() {
        let deps = graph.direct_deps(task.id).unwrap_or(&[]);
        for dep in deps {
            let dep_pos = *position.get(dep).unwrap_or_else(|| {
                panic!(
                    "{}: task {} depends on {dep}, which is not in the trace",
                    trace.name, task.id
                )
            });
            assert!(
                dep_pos < position[&task.id],
                "{}: task {} depends on the later task {dep} (cycle)",
                trace.name,
                task.id
            );
        }
    }
}

#[test]
fn cray_generator_smoke() {
    smoke(&Benchmark::CRay.trace_scaled(11, 0.05));
}

#[test]
fn gaussian_generator_smoke() {
    smoke(&Benchmark::Gaussian { dim: 60 }.trace_scaled(11, 1.0));
}

#[test]
fn h264dec_generator_smoke() {
    for g in MbGrouping::all() {
        smoke(&Benchmark::H264Dec(g).trace_scaled(11, 0.05));
    }
}

#[test]
fn micro_generator_smoke() {
    use nexus::sim::SimDuration;
    smoke(&micro::five_independent_tasks());
    smoke(&micro::chain(40, SimDuration::from_us(5)));
    smoke(&micro::fork_join(24, SimDuration::from_us(5)));
    smoke(&micro::wavefront(8, 12, SimDuration::from_us(5)));
}

#[test]
fn rotcc_generator_smoke() {
    smoke(&Benchmark::RotCc.trace_scaled(11, 0.05));
}

#[test]
fn sparselu_generator_smoke() {
    smoke(&Benchmark::SparseLu.trace_scaled(11, 0.05));
}

#[test]
fn streamcluster_generator_smoke() {
    smoke(&Benchmark::Streamcluster.trace_scaled(11, 0.005));
}

#[test]
fn every_generator_is_deterministic_for_a_seed() {
    for b in all_benchmarks() {
        let a = b.trace_scaled(99, 0.02);
        let c = b.trace_scaled(99, 0.02);
        assert_eq!(a.ops.len(), c.ops.len(), "{}", b.name());
        assert_eq!(a.total_work(), c.total_work(), "{}", b.name());
        // Task parameter lists must match exactly.
        for (x, y) in a.tasks().zip(c.tasks()) {
            assert_eq!(x, y, "{}", b.name());
        }
    }
}

#[test]
fn every_generator_produces_valid_traces_at_several_scales() {
    for b in all_benchmarks() {
        for scale in [0.01, 0.05, 0.2] {
            let t = b.trace_scaled(7, scale);
            t.validate()
                .unwrap_or_else(|e| panic!("{} @ {scale}: {e}", b.name()));
            assert!(t.task_count() > 0, "{} @ {scale}", b.name());
            let s = TraceStats::of(&t);
            assert!(s.min_params >= 1, "{}", b.name());
            assert!(s.max_params <= 6, "{}: {}", b.name(), s.max_params);
        }
    }
}

#[test]
fn scaling_preserves_average_task_size() {
    for b in Benchmark::table2_suite() {
        let small = TraceStats::of(&b.trace_scaled(3, 0.05));
        let large = TraceStats::of(&b.trace_scaled(3, 0.3));
        let ratio = small.avg_task_us / large.avg_task_us;
        assert!(
            (0.7..1.4).contains(&ratio),
            "{}: scaling changed the task-size distribution ({} vs {})",
            b.name(),
            small.avg_task_us,
            large.avg_task_us
        );
    }
}

#[test]
fn workloads_have_the_parallelism_structure_the_paper_describes() {
    // c-ray: fully independent tasks => parallelism is close to the task count
    // (slightly below it because task durations vary, so the critical path is
    // the longest single task rather than the average one).
    let cray = Benchmark::CRay.trace_scaled(1, 0.05);
    let p = ParallelismProfile::of(&cray);
    assert!(p.average_parallelism() > 0.8 * cray.task_count() as f64);

    // rot-cc: pairs => parallelism about half the task count.
    let rotcc = Benchmark::RotCc.trace_scaled(1, 0.02);
    let p = ParallelismProfile::of(&rotcc);
    let pairs = rotcc.task_count() as f64 / 2.0;
    assert!(p.average_parallelism() < 0.75 * rotcc.task_count() as f64);
    assert!(p.average_parallelism() > 0.4 * pairs);

    // streamcluster: the heavy tail limits the ideal speedup to a few tens.
    let sc = Benchmark::Streamcluster.trace_scaled(1, 0.005);
    let p = ParallelismProfile::of(&sc);
    assert!(
        (15.0..70.0).contains(&p.average_parallelism()),
        "streamcluster parallelism {}",
        p.average_parallelism()
    );

    // h264dec 1x1: wavefront + entropy chain: parallelism well above 8 but far
    // below the task count.
    let h264 = Benchmark::H264Dec(MbGrouping::G1x1).trace_scaled(1, 0.1);
    let p = ParallelismProfile::of(&h264);
    assert!(p.average_parallelism() > 8.0);
    assert!(p.average_parallelism() < 0.2 * h264.task_count() as f64);

    // Gaussian elimination: wave i has n-i+1 tasks; average parallelism is
    // about a third of the matrix dimension.
    let g = Benchmark::Gaussian { dim: 120 }.trace_scaled(1, 1.0);
    let p = ParallelismProfile::of(&g);
    assert!(
        (20.0..80.0).contains(&p.average_parallelism()),
        "{}",
        p.average_parallelism()
    );
}

#[test]
fn h264_taskwait_on_count_scales_with_rows_and_frames() {
    let one_frame = Benchmark::H264Dec(MbGrouping::G1x1).trace_scaled(1, 0.1);
    let s = TraceStats::of(&one_frame);
    // Single frame => no reference frame => no taskwait-on.
    assert_eq!(s.taskwait_ons, 0);
    let two_frames = Benchmark::H264Dec(MbGrouping::G1x1).trace_scaled(1, 0.2);
    let s2 = TraceStats::of(&two_frames);
    assert_eq!(s2.taskwait_ons, 68);
}

#[test]
fn gaussian_dimension_scaling_is_quadratic_in_task_count() {
    let small = Benchmark::Gaussian { dim: 100 }.trace_scaled(1, 1.0);
    let large = Benchmark::Gaussian { dim: 200 }.trace_scaled(1, 1.0);
    let ratio = large.task_count() as f64 / small.task_count() as f64;
    assert!((3.5..4.5).contains(&ratio), "ratio {ratio}");
}
