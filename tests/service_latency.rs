//! Integration: the service mode (open-loop arrivals + bounded admission +
//! latency percentiles) — the acceptance criteria of the `nexus-flow`
//! subsystem.
//!
//! * Closed-loop streaming is a strict no-op: it reproduces the batch
//!   `simulate_cluster` makespan exactly on every trace/config sampled here.
//! * Admission is an invariant, not a hint: the observed queue depth never
//!   exceeds the bound, and no task is lost or duplicated under back-pressure.
//! * Under-driven services never back-pressure and keep p99 bounded;
//!   over-driven services must back-pressure (the source clock blocks, tasks
//!   are never dropped).
//! * A load ramp demonstrates the sustainable-throughput knee.
//! * The whole pipeline is deterministic: identical seeds give bit-identical
//!   percentiles across repeated runs and across both event engines.

use nexus::cluster::{simulate_streaming, StreamingSource};
use nexus::flow::knee_sweep;
use nexus::prelude::*;
use nexus::sim::EngineKind;
use nexus::trace::generators::distributed;

fn us(v: u64) -> SimDuration {
    SimDuration::from_us(v)
}

fn service(kind: ArrivalKind, gap: SimDuration, depth: usize) -> ServiceConfig {
    ServiceConfig::new(ArrivalConfig::new(kind, gap, 42))
        .with_admission(AdmissionConfig::new(depth))
}

#[test]
fn closed_loop_streaming_reproduces_batch_makespans_exactly() {
    let traces = [
        distributed::sparselu(4, 0.3, 42, 0.002),
        distributed::sparselu(2, 0.0, 7, 0.002),
        distributed::imbalanced(4, 80, 6.0, us(50), 0.0, 42),
    ];
    for trace in &traces {
        for (nodes, stealing) in [(1, StealKind::Disabled), (4, StealKind::MostLoaded)] {
            let cfg = ClusterConfig::new(nodes, 4).with_stealing(stealing);
            let batch = simulate_cluster(trace, &cfg, |_| NexusSharp::paper(6));
            let stream = simulate_streaming(trace, &StreamingSource::closed_loop(), &cfg, |_| {
                NexusSharp::paper(6)
            });
            assert_eq!(
                stream.cluster.makespan, batch.makespan,
                "{}/{nodes}n: closed-loop streaming must not perturb the makespan",
                trace.name
            );
            assert_eq!(
                stream.cluster.sim_events, batch.sim_events,
                "{}",
                trace.name
            );
            assert_eq!(stream.backpressure_events, 0, "{}", trace.name);
            assert_eq!(stream.latencies.len(), trace.task_count(), "{}", trace.name);
        }
    }
}

#[test]
fn admission_depth_is_a_hard_bound_and_no_task_is_lost_under_overdrive() {
    let trace = distributed::sparselu(4, 0.3, 42, 0.002);
    for depth in [1usize, 2, 4, 16] {
        // 1 ns gaps drive the source far past capacity at any depth.
        let svc = service(ArrivalKind::Poisson, SimDuration::from_ns(1), depth);
        let cfg = ClusterConfig::new(4, 4);
        let out = simulate_service(&trace, &svc, &cfg, |_| NexusSharp::paper(6));
        assert!(
            out.stream.max_admission_depth <= depth,
            "depth {depth}: observed {}",
            out.stream.max_admission_depth
        );
        assert!(
            out.backpressure_events() > 0,
            "depth {depth}: an over-driven source must back-pressure"
        );
        // Conservation: every submitted task retired exactly once.
        assert_eq!(out.histogram.count(), trace.task_count() as u64);
        assert_eq!(out.stream.cluster.tasks, trace.task_count() as u64);
        // Blocking shifted the source clock instead of dropping arrivals.
        assert!(out.stream.source_lag > SimDuration::ZERO, "depth {depth}");
    }
}

#[test]
fn underdriven_service_never_backpressures_and_keeps_p99_bounded() {
    let trace = distributed::sparselu(4, 0.3, 42, 0.002);
    let cfg = ClusterConfig::new(4, 8);
    // Estimate capacity from the closed-loop run, then offer an eighth of it.
    let closed = simulate_cluster(&trace, &cfg, |_| NexusSharp::paper(6));
    let capacity_gap = closed.makespan.as_ns() / trace.task_count() as u64;
    let gap = SimDuration::from_ns(capacity_gap * 8);
    let out = simulate_service(
        &trace,
        &service(ArrivalKind::Poisson, gap, AdmissionConfig::DEFAULT_DEPTH),
        &cfg,
        |_| NexusSharp::paper(6),
    );
    assert_eq!(out.backpressure_events(), 0);
    assert_eq!(out.stream.source_lag, SimDuration::ZERO);
    assert_eq!(out.histogram.count(), trace.task_count() as u64);
    // At 1/8th capacity, waiting is dependency-driven, not congestion-driven:
    // p99 stays within a small multiple of the closed-loop makespan fraction.
    assert!(
        out.p99() < closed.makespan,
        "p99 {} vs closed-loop makespan {}",
        out.p99(),
        closed.makespan
    );
    assert!(out.p50() <= out.p99() && out.p99() <= out.p999());
}

#[test]
fn knee_sweep_demonstrates_the_throughput_knee() {
    let trace = distributed::sparselu(4, 0.3, 42, 0.002);
    let cfg = ClusterConfig::new(4, 8);
    let closed = simulate_cluster(&trace, &cfg, |_| NexusSharp::paper(6));
    let base_gap = SimDuration::from_ns(closed.makespan.as_ns() / trace.task_count() as u64 * 8);
    let base = service(ArrivalKind::Poisson, base_gap, 8);
    let report = knee_sweep(
        &trace,
        &base,
        &cfg,
        &[0.5, 1.0, 2.0, 4.0, 16.0, 64.0],
        |_| NexusSharp::paper(6),
    );
    assert!(
        report.demonstrates_knee(),
        "the ramp must cross the knee: {:?}",
        report
            .points
            .iter()
            .map(|p| (p.load_factor, p.backpressure_events))
            .collect::<Vec<_>>()
    );
    let knee = report.knee().expect("at least one point must be sustained");
    // p99 above the knee is strictly worse than at the knee.
    let worst = report.points.last().unwrap();
    assert!(worst.p99 > knee.p99, "{} vs {}", worst.p99, knee.p99);
    // Offered and completed rates agree below the knee (nothing queues up
    // forever), diverge above it (the source is throttled).
    assert!(knee.completed_per_sec > 0.8 * knee.offered_per_sec);
}

#[test]
fn service_percentiles_are_bit_identical_across_engines_and_reruns() {
    let trace = distributed::sparselu(4, 0.4, 7, 0.002);
    for kind in [
        ArrivalKind::Poisson,
        ArrivalKind::Bursty,
        ArrivalKind::Diurnal,
    ] {
        let svc = service(kind, us(30), 4);
        let run = |engine: EngineKind| {
            let cfg = ClusterConfig::new(4, 4)
                .with_stealing(StealKind::MostLoaded)
                .with_engine(engine);
            simulate_service(&trace, &svc, &cfg, |_| NexusSharp::paper(6))
        };
        let heap = run(EngineKind::Heap);
        let heap2 = run(EngineKind::Heap);
        let calendar = run(EngineKind::Calendar);
        // Full-outcome equality (latency vectors, histogram, depth series).
        assert_eq!(
            format!("{heap:?}"),
            format!("{heap2:?}"),
            "{kind}: reruns diverged"
        );
        assert_eq!(
            format!("{heap:?}"),
            format!("{calendar:?}"),
            "{kind}: engines diverged"
        );
        assert_eq!(heap.p50(), calendar.p50(), "{kind}");
        assert_eq!(heap.p99(), calendar.p99(), "{kind}");
        assert_eq!(heap.p999(), calendar.p999(), "{kind}");
    }
}
