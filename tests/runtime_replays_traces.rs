//! Integration: the *real* threaded runtime (`nexus-runtime`) executes the
//! dependency structure of the paper's generated workloads correctly — every
//! task runs exactly once and never before any of its predecessors (as defined
//! by the reference dependency graph built from the trace).

use nexus::prelude::*;
use nexus::taskgraph::ReferenceGraph;
use nexus::trace::generators::MbGrouping;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Replays a trace's task graph on the real runtime. Task bodies record a
/// global completion sequence number; afterwards we assert that every task's
/// sequence number is greater than those of all of its direct dependencies.
fn replay_and_check(trace: &Trace, workers: usize) {
    // Build the oracle dependency lists.
    let mut oracle = ReferenceGraph::new();
    for task in trace.tasks() {
        oracle.insert(task);
    }

    let n = trace.task_count();
    let rt = Runtime::with_shards(workers, 6).unwrap();
    let finish_order: Arc<Vec<AtomicU64>> =
        Arc::new((0..n).map(|_| AtomicU64::new(u64::MAX)).collect());
    let counter = Arc::new(AtomicU64::new(0));
    let executed = Arc::new(AtomicUsize::new(0));

    for task in trace.tasks() {
        let idx = task.id.0 as usize;
        let finish_order = Arc::clone(&finish_order);
        let counter = Arc::clone(&counter);
        let executed = Arc::clone(&executed);
        let mut spec = TaskSpec::new(move || {
            let seq = counter.fetch_add(1, Ordering::SeqCst);
            finish_order[idx].store(seq, Ordering::SeqCst);
            executed.fetch_add(1, Ordering::SeqCst);
        });
        for p in &task.params {
            spec = match p.dir {
                nexus::trace::Direction::In => spec.input(p.addr),
                nexus::trace::Direction::Out => spec.output(p.addr),
                nexus::trace::Direction::InOut => spec.inout(p.addr),
            };
        }
        rt.submit(spec);
    }
    rt.taskwait();

    assert_eq!(
        executed.load(Ordering::SeqCst),
        n,
        "{}: not all tasks ran",
        trace.name
    );
    for task in trace.tasks() {
        let own = finish_order[task.id.0 as usize].load(Ordering::SeqCst);
        assert_ne!(own, u64::MAX, "{}: task {} never ran", trace.name, task.id);
        for dep in oracle.direct_deps(task.id).unwrap_or(&[]) {
            let dep_seq = finish_order[dep.0 as usize].load(Ordering::SeqCst);
            assert!(
                dep_seq < own,
                "{}: task {} (seq {}) finished before its dependency {} (seq {})",
                trace.name,
                task.id,
                own,
                dep,
                dep_seq
            );
        }
    }
}

#[test]
fn runtime_replays_the_wavefront_decoder() {
    let trace = Benchmark::H264Dec(MbGrouping::G4x4).trace_scaled(3, 0.05);
    replay_and_check(&trace, 8);
}

#[test]
fn runtime_replays_sparselu() {
    let trace = Benchmark::SparseLu.trace_scaled(5, 0.005);
    replay_and_check(&trace, 6);
}

#[test]
fn runtime_replays_gaussian_elimination_fan_out() {
    let trace = Benchmark::Gaussian { dim: 60 }.trace_scaled(7, 1.0);
    replay_and_check(&trace, 4);
}

#[test]
fn runtime_replays_streamcluster_groups() {
    let trace = Benchmark::Streamcluster.trace_scaled(9, 0.002);
    replay_and_check(&trace, 8);
}
