//! Integration: the acceptance criteria of the `nexus-topo` subsystem.
//!
//! * On rack-clustered traces at ≥ 4 nodes over a rack-tiered fabric, the
//!   topology-aware stack (`TopologyAware` placement + hierarchical stealing)
//!   must beat the flat stack (`XorHash` + flat `StealMostLoaded`) on
//!   makespan *and* cut inter-rack link words by ≥ 20%.
//! * A rack-tiered fabric must degrade the makespan versus `FullMesh` when
//!   every coupled edge crosses racks (the tiers actually bite).
//! * `FullMesh` routed through `nexus-topo` must reproduce the uniform
//!   interconnect bit-identically (the PR 2/3 behaviour).
//! * Every topology × placement × stealing combination must be bit-identical
//!   across reruns.

use nexus::cluster::{
    simulate_cluster, simulate_cluster_on, ClusterConfig, ClusterOutcome, LinkConfig, Topology,
};
use nexus::prelude::*;
use nexus::sched::{PolicyKind, StealKind};
use nexus::sharp::NexusSharpConfig;
use nexus::topo;
use nexus::trace::generators::distributed;

/// A Nexus# manager with a deliberately small task pool: overloaded nodes
/// back-pressure early, building the pending backlog that stealing feeds on.
fn tight_sharp() -> NexusSharp {
    let mut cfg = NexusSharpConfig::paper(6);
    cfg.task_pool_capacity = 16;
    NexusSharp::new(cfg)
}

fn us(v: u64) -> SimDuration {
    SimDuration::from_us(v)
}

#[test]
fn topology_aware_stack_beats_the_flat_stack_on_rack_clustered_traces() {
    // 2 racks x 2 nodes (the RackTiers default split for 4 nodes), rack heads
    // own 3x the chains, all coupling stays inside the racks. Affinity is
    // stripped: discovering the clustering is the placement policy's job.
    let trace = distributed::unhinted(&distributed::rack_clustered(
        2,
        2,
        6,
        10,
        3.0,
        0.6,
        0.0,
        us(30),
        11,
    ));
    let base =
        ClusterConfig::new(4, 2).with_link(LinkConfig::rdma().with_topology(Topology::RackTiers));
    let flat = base
        .with_placement(PolicyKind::XorHash)
        .with_stealing(StealKind::MostLoaded);
    let aware = base
        .with_placement(PolicyKind::TopologyAware)
        .with_stealing(StealKind::Hierarchical);
    let a = simulate_cluster(&trace, &flat, |_| tight_sharp());
    let b = simulate_cluster(&trace, &aware, |_| tight_sharp());
    assert_eq!(a.tasks, b.tasks);
    assert_eq!(a.topology, "racktiers-r2");
    assert!(
        b.makespan < a.makespan,
        "topology-aware stack must win the makespan: {} vs {}",
        b.makespan,
        a.makespan
    );
    let (aw, bw) = (
        a.link.tier_words("inter-rack"),
        b.link.tier_words("inter-rack"),
    );
    assert!(aw > 0, "the flat stack must actually cross racks");
    assert!(
        (bw as f64) <= 0.80 * aw as f64,
        "inter-rack words must drop by >= 20%: aware {bw} vs flat {aw}"
    );
}

#[test]
fn rack_tiers_degrade_the_makespan_when_the_traffic_fights_the_fabric() {
    // Every coupled edge crosses racks (cross_rack = 1): on a full mesh each
    // such edge pays one base link; on rack tiers it pays the shared 8x-slow
    // trunk. Same trace, same policies, only the wiring changes.
    let trace = distributed::rack_clustered(2, 2, 6, 10, 1.0, 1.0, 1.0, us(30), 13);
    let mesh_cfg = ClusterConfig::new(4, 4).with_link(LinkConfig::rdma());
    let rack_cfg =
        ClusterConfig::new(4, 4).with_link(LinkConfig::rdma().with_topology(Topology::RackTiers));
    let mesh = simulate_cluster(&trace, &mesh_cfg, |_| NexusSharp::paper(6));
    let rack = simulate_cluster(&trace, &rack_cfg, |_| NexusSharp::paper(6));
    assert_eq!(mesh.tasks, rack.tasks);
    assert!(
        rack.makespan > mesh.makespan,
        "the tiers must bite at 100% cross-rack traffic: {} vs {}",
        rack.makespan,
        mesh.makespan
    );
    // The degradation is attributable to the trunk tier.
    assert!(rack.link.tier_words("inter-rack") > 0);
    assert!(rack.link.wait_time >= mesh.link.wait_time);
}

#[test]
fn fullmesh_via_topo_reproduces_the_uniform_interconnect_bit_identically() {
    let trace = distributed::sparselu(4, 0.3, 42, 0.002);
    let cfg = ClusterConfig::new(4, 4); // default link: rdma over FullMesh
    let implicit = simulate_cluster(&trace, &cfg, |_| NexusSharp::paper(6));
    // The same run over an explicitly built uniform full-mesh fabric …
    let fabric = topo::full_mesh(4, cfg.link.latency, cfg.link.per_word);
    let explicit = simulate_cluster_on(&trace, &cfg, fabric, |_| NexusSharp::paper(6));
    // … and over a degenerate single-rack RackTiers fabric (racks of >= 4
    // nodes have no trunks, so every pair rides a direct base link).
    let single_rack = topo::rack_tiers(4, 4, cfg.link.latency, cfg.link.per_word);
    let degenerate = simulate_cluster_on(&trace, &cfg, single_rack, |_| NexusSharp::paper(6));

    for (label, other) in [("explicit mesh", &explicit), ("single rack", &degenerate)] {
        assert_eq!(implicit.makespan, other.makespan, "{label}");
        assert_eq!(implicit.notifications, other.notifications, "{label}");
        assert_eq!(implicit.link.words, other.link.words, "{label}");
        assert_eq!(implicit.node_tasks(), other.node_tasks(), "{label}");
    }
    assert_eq!(implicit.topology, "mesh");
    assert_eq!(degenerate.topology, "racktiers-r4");
    // Uniform fabrics report exactly one traffic tier carrying everything.
    assert_eq!(implicit.link.per_tier.len(), 1);
    assert_eq!(implicit.link.per_tier[0].words, implicit.link.words);
}

#[test]
fn every_topology_placement_stealing_combination_is_deterministic() {
    let trace = distributed::unhinted(&distributed::rack_clustered(
        2,
        2,
        2,
        3,
        2.0,
        0.5,
        0.3,
        us(20),
        5,
    ));
    for topology in Topology::ALL {
        let link = LinkConfig::rdma().with_topology(topology);
        for placement in PolicyKind::ALL {
            for stealing in StealKind::ALL {
                let cfg = ClusterConfig::new(4, 2)
                    .with_link(link)
                    .with_placement(placement)
                    .with_stealing(stealing);
                let tag = format!("{topology}/{placement}/{stealing}");
                let a = simulate_cluster(&trace, &cfg, |_| tight_sharp());
                let b = simulate_cluster(&trace, &cfg, |_| tight_sharp());
                assert_eq!(a.makespan, b.makespan, "{tag}: makespan");
                assert_eq!(a.steals, b.steals, "{tag}: steals");
                assert_eq!(a.link.words, b.link.words, "{tag}: words");
                assert_eq!(a.node_tasks(), b.node_tasks(), "{tag}: node tasks");
                let tiers = |o: &ClusterOutcome| {
                    o.link
                        .per_tier
                        .iter()
                        .map(|t| (t.name.clone(), t.words))
                        .collect::<Vec<_>>()
                };
                assert_eq!(tiers(&a), tiers(&b), "{tag}: tier words");
                assert_eq!(a.tasks, trace.task_count() as u64, "{tag}: completion");
            }
        }
    }
}

#[test]
fn tiered_fabrics_route_every_workload_to_completion() {
    // Smoke over the genuinely multi-hop fabrics at a non-power-of-two node
    // count: everything retires, per-tier words add up to the total.
    let trace = distributed::sparselu(6, 0.4, 17, 0.002);
    for topology in [Topology::RackTiers, Topology::Torus2D, Topology::Dragonfly] {
        let cfg = ClusterConfig::new(6, 2)
            .with_link(LinkConfig::rdma().with_topology(topology))
            .with_stealing(StealKind::Hierarchical);
        let out = simulate_cluster(&trace, &cfg, |_| tight_sharp());
        assert_eq!(out.tasks, trace.task_count() as u64, "{topology}");
        let tier_sum: u64 = out.link.per_tier.iter().map(|t| t.words).sum();
        assert_eq!(tier_sum, out.link.words, "{topology}: tier accounting");
        assert!(out.link.words > 0, "{topology}");
    }
}
