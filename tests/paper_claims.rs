//! Integration: the qualitative claims of the paper's evaluation hold in the
//! reproduction (orderings and crossovers, not absolute numbers — see
//! EXPERIMENTS.md for the full quantitative comparison).
//!
//! Wall-clock audit (debug build, 2026-07): the slowest test here is
//! `gaussian_elimination_improvement_shrinks_with_matrix_size` at ~2.8 s; every
//! other test finishes in under a second. Nothing approaches the ~30 s budget
//! that would warrant `#[ignore]`, so the whole suite runs in tier-1. If a
//! future test needs a full-size paper workload (e.g. `Gaussian { dim: 3000 }`
//! from Table III), mark it `#[ignore = "reproduces Table III at full size"]`
//! and keep a scaled-down variant in the default run.

use nexus::prelude::*;
use nexus::resources::DeviceCapacity;
use nexus::trace::generators::MbGrouping;

/// §VI / Fig. 8, h264dec-1x1: "Nanos performs pretty bad and cannot achieve any
/// speedup. Nexus# on the other hand achieved up to 6.9x … Nexus++ does not
/// support the task-wait-on OmpSs pragma and achieved only 2.2x".
#[test]
fn h264dec_fine_grain_ordering_nexus_sharp_beats_nexus_pp_beats_nanos() {
    let trace = Benchmark::H264Dec(MbGrouping::G1x1).trace_scaled(11, 0.1);
    let cfg = HostConfig::with_workers(32);
    let sharp = simulate(&trace, &mut NexusSharp::paper(6), &cfg).speedup();
    let pp = simulate(&trace, &mut NexusPP::paper(), &cfg).speedup();
    let nanos = simulate(
        &trace,
        &mut NanosRuntime::for_benchmark(&trace.name, 32),
        &cfg,
    )
    .speedup();

    assert!(sharp > 2.0 * pp, "Nexus# {sharp:.1} vs Nexus++ {pp:.1}");
    assert!(pp > nanos, "Nexus++ {pp:.1} vs Nanos {nanos:.1}");
    assert!(
        nanos < 1.5,
        "Nanos should not scale at macroblock granularity: {nanos:.1}"
    );
    assert!(
        sharp > 5.0,
        "Nexus# should reach several-fold speedup: {sharp:.1}"
    );
}

/// §VI: "the larger the task size is, the easier it becomes" — Nanos recovers
/// as macroblocks are grouped, and the hardware managers' advantage shrinks.
#[test]
fn grouping_macroblocks_helps_the_software_runtime() {
    let cfg = HostConfig::with_workers(16);
    let fine = Benchmark::H264Dec(MbGrouping::G1x1).trace_scaled(11, 0.1);
    let coarse = Benchmark::H264Dec(MbGrouping::G8x8).trace_scaled(11, 0.5);
    let nanos_fine = simulate(
        &fine,
        &mut NanosRuntime::for_benchmark(&fine.name, 16),
        &cfg,
    )
    .speedup();
    let nanos_coarse = simulate(
        &coarse,
        &mut NanosRuntime::for_benchmark(&coarse.name, 16),
        &cfg,
    )
    .speedup();
    assert!(
        nanos_coarse > 1.5 * nanos_fine,
        "coarse {nanos_coarse:.1} vs fine {nanos_fine:.1}"
    );
}

/// §VI / Fig. 8 streamcluster: the hardware managers beat Nanos decisively, and
/// the distributed design beats the centralized one.
#[test]
fn streamcluster_separates_the_three_managers() {
    let trace = Benchmark::Streamcluster.trace_scaled(13, 0.01);
    // Nanos is measured at its 32-core maximum; the hardware managers separate
    // most clearly at high core counts (the right-hand side of the Fig. 8
    // curves), where the centralized design's in-order task window caps it.
    let nanos = simulate(
        &trace,
        &mut NanosRuntime::for_benchmark(&trace.name, 32),
        &HostConfig::with_workers(32),
    )
    .speedup();
    let cfg = HostConfig::with_workers(128);
    let sharp = simulate(&trace, &mut NexusSharp::paper(6), &cfg).speedup();
    let pp = simulate(&trace, &mut NexusPP::paper(), &cfg).speedup();
    assert!(nanos < 8.0, "Nanos collapses on streamcluster: {nanos:.1}");
    assert!(pp > nanos, "{pp:.1} vs {nanos:.1}");
    assert!(sharp > 1.3 * pp, "Nexus# {sharp:.1} vs Nexus++ {pp:.1}");
}

/// §VI c-ray: "an easy case for all the task managers" — every manager is close
/// to the ideal curve at 32 cores.
#[test]
fn cray_is_easy_for_every_manager() {
    let trace = Benchmark::CRay.trace_scaled(17, 0.1);
    let cfg = HostConfig::with_workers(32);
    let ideal = simulate(&trace, &mut IdealManager::new(), &cfg).speedup();
    for (name, speedup) in [
        (
            "Nexus#",
            simulate(&trace, &mut NexusSharp::paper(6), &cfg).speedup(),
        ),
        (
            "Nexus++",
            simulate(&trace, &mut NexusPP::paper(), &cfg).speedup(),
        ),
        (
            "Nanos",
            simulate(
                &trace,
                &mut NanosRuntime::for_benchmark(&trace.name, 32),
                &cfg,
            )
            .speedup(),
        ),
    ] {
        assert!(
            speedup > 0.85 * ideal,
            "{name}: {speedup:.1} vs ideal {ideal:.1}"
        );
    }
}

/// §VI Fig. 9: Nexus# (2 TGs) improves on Nexus++ for the Gaussian-elimination
/// pattern, and the improvement is largest for the finest tasks (smallest
/// matrix); both handle unbounded kick-off lists.
#[test]
fn gaussian_elimination_improvement_shrinks_with_matrix_size() {
    let cores = 32;
    let mut improvements = Vec::new();
    for dim in [120u32, 360] {
        let trace = nexus::trace::generators::gaussian::generate(dim);
        let cfg = HostConfig::with_workers(cores);
        let baseline =
            simulate(&trace, &mut NexusPP::paper(), &HostConfig::with_workers(1)).makespan;
        let pp = simulate(&trace, &mut NexusPP::paper(), &cfg).makespan;
        let sharp = simulate(&trace, &mut NexusSharp::at_mhz(2, 100.0), &cfg).makespan;
        let pp_speedup = baseline.as_us_f64() / pp.as_us_f64();
        let sharp_speedup = baseline.as_us_f64() / sharp.as_us_f64();
        assert!(sharp_speedup > pp_speedup, "dim {dim}");
        improvements.push(sharp_speedup / pp_speedup);
    }
    assert!(
        improvements[0] >= improvements[1] * 0.95,
        "improvement should not grow with matrix size: {improvements:?}"
    );
}

/// Fig. 7: for the finest h264dec granularity, adding task graphs helps up to
/// the middle of the range; the 6-TG configuration (at its lower frequency) is
/// at least as good as the 1-TG configuration at 100 MHz.
#[test]
fn more_task_graphs_help_fine_grained_decoding() {
    let trace = Benchmark::H264Dec(MbGrouping::G1x1).trace_scaled(23, 0.1);
    let cfg = HostConfig::with_workers(32);
    let one_tg_100 = simulate(&trace, &mut NexusSharp::at_mhz(1, 100.0), &cfg).speedup();
    let six_tg_100 = simulate(&trace, &mut NexusSharp::at_mhz(6, 100.0), &cfg).speedup();
    let six_tg_test = simulate(&trace, &mut NexusSharp::paper(6), &cfg).speedup();
    assert!(
        six_tg_100 >= one_tg_100 * 0.99,
        "{six_tg_100:.2} vs {one_tg_100:.2}"
    );
    // "their performance results were slightly smaller than their higher speed
    // siblings": the frequency drop must not cost more than ~35%.
    assert!(
        six_tg_test > 0.65 * six_tg_100,
        "{six_tg_test:.2} vs {six_tg_100:.2}"
    );
}

/// Table I: every synthesized configuration fits the ZC706 and the frequency
/// falls as task graphs are added.
#[test]
fn resource_model_matches_the_synthesis_story() {
    let model = ResourceModel::paper_calibrated();
    let dev = DeviceCapacity::ZC706;
    let mut last_freq = f64::INFINITY;
    for tgs in [1u32, 2, 4, 6, 8] {
        let est = model.estimate(ManagerConfig::NexusSharp { task_graphs: tgs });
        assert!(est.fits(dev), "{tgs} TGs must fit the ZC706");
        assert!(est.test_freq_mhz <= last_freq);
        last_freq = est.test_freq_mhz;
    }
    // The 6-TG configuration used in Fig. 8 runs at 55.56 MHz.
    assert!((model.test_freq_mhz(6) - 55.56).abs() < 0.05);
}

/// §IV-E: the Nexus# pipeline handles the 5-task micro-benchmark in far fewer
/// cycles than the 172 reported for the task-superscalar prototype, and the
/// average-case insertion span beats the Nexus++ insert stage (11 vs 18 cycles).
#[test]
fn pipeline_cycle_claims() {
    use nexus::sharp::pipeline::{insertion_span_cycles, micro_benchmark_cycles, PipelineCase};
    let cfg4 = NexusSharpConfig::at_mhz(4, 100.0);
    assert_eq!(insertion_span_cycles(&cfg4, 4, PipelineCase::Average), 11);
    assert_eq!(insertion_span_cycles(&cfg4, 4, PipelineCase::BestCase), 5);
    let cfg1 = NexusSharpConfig::at_mhz(1, 100.0);
    assert!(micro_benchmark_cycles(&cfg1) < 172);
    let pp = NexusPPConfig::paper();
    assert_eq!(pp.insert_cycles(4), 18);
}
