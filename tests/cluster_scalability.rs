//! Integration: the multi-node cluster simulation scales where it should and
//! degrades where it should (the acceptance criteria of the `nexus-cluster`
//! subsystem).
//!
//! * A node-partitioned sparselu trace with ≤10% remote dependency edges must
//!   get *faster* as nodes are added (1 → 2 → 4).
//! * A fully-coupled trace (every task carries a halo read) must show
//!   measurable interconnect-bound degradation: the same workload on the same
//!   cluster gets slower when the links go from ideal to slow.

use nexus::cluster::{remote_edge_fraction, simulate_cluster, ClusterConfig, LinkConfig, Topology};
use nexus::prelude::*;
use nexus::trace::generators::distributed;
use nexus::trace::Trace;

const WORKERS_PER_NODE: usize = 8;

fn run(trace: &Trace, nodes: usize, link: LinkConfig) -> ClusterOutcome {
    let cfg = ClusterConfig::new(nodes, WORKERS_PER_NODE).with_link(link);
    simulate_cluster(trace, &cfg, |_| NexusSharp::paper(6))
}

#[test]
fn partitioned_sparselu_speeds_up_from_one_to_four_nodes() {
    // Four sparselu domains, lightly coupled: ≤10% of dependency edges cross
    // nodes when routed onto 4 nodes.
    let trace = distributed::sparselu(4, 0.1, 42, 0.004);
    let remote = remote_edge_fraction(&trace, 4);
    assert!(
        remote > 0.0 && remote <= 0.10,
        "coupling outside the target band: {remote}"
    );

    let one = run(&trace, 1, LinkConfig::rdma());
    let two = run(&trace, 2, LinkConfig::rdma());
    let four = run(&trace, 4, LinkConfig::rdma());
    assert_eq!(one.tasks, four.tasks);
    assert!(
        two.makespan < one.makespan,
        "2 nodes must beat 1: {} vs {}",
        two.makespan,
        one.makespan
    );
    assert!(
        four.makespan < two.makespan,
        "4 nodes must beat 2: {} vs {}",
        four.makespan,
        two.makespan
    );
    // The improvement must be substantial, not marginal: 4 nodes with 4x the
    // workers should at least halve the makespan on a lightly-coupled trace.
    assert!(
        four.makespan.as_us_f64() < 0.55 * one.makespan.as_us_f64(),
        "4 nodes only reached {} vs {} on 1 node",
        four.makespan,
        one.makespan
    );
    // Cross-node dependencies actually exercised the interconnect.
    assert!(four.notifications > 0);
    assert!(four.link.messages > 0);
}

#[test]
fn fully_remote_trace_is_interconnect_bound() {
    // Every task carries a halo read from a neighbouring node's domain.
    let trace = distributed::sparselu(4, 1.0, 42, 0.004);
    assert!(remote_edge_fraction(&trace, 4) > 0.20);

    let lightly_coupled = distributed::sparselu(4, 0.1, 42, 0.004);
    let coupled = run(&trace, 4, LinkConfig::ideal());
    let reference = run(&lightly_coupled, 4, LinkConfig::ideal());
    // Dependency coupling alone already hurts (the halo chains serialize the
    // domains) …
    assert!(
        coupled.makespan > reference.makespan,
        "full coupling must cost parallelism: {} vs {}",
        coupled.makespan,
        reference.makespan
    );

    // … and on a slow shared bus the interconnect itself becomes the
    // bottleneck: same trace, same cluster, only the links change.
    let slow = LinkConfig {
        latency: nexus::sim::SimDuration::from_us(200),
        per_word: nexus::sim::SimDuration::from_ns(3),
        topology: Topology::SharedBus,
    };
    let bound = run(&trace, 4, slow);
    assert!(
        bound.makespan.as_us_f64() > 1.10 * coupled.makespan.as_us_f64(),
        "slow links must measurably degrade the coupled trace: {} vs {}",
        bound.makespan,
        coupled.makespan
    );
    assert_eq!(bound.notifications, coupled.notifications);
    assert!(bound.link.busy_time > coupled.link.busy_time);
}

#[test]
fn node_local_outcomes_are_consistent_with_the_aggregate() {
    let trace = distributed::wavefront(4, 0.1, 8, 8, SimDuration::from_us(40), 3);
    let out = run(&trace, 4, LinkConfig::rdma());
    assert_eq!(out.per_node.len(), 4);
    assert_eq!(out.per_node.iter().map(|n| n.tasks).sum::<u64>(), out.tasks);
    assert_eq!(
        out.per_node
            .iter()
            .map(|n| n.total_work)
            .sum::<SimDuration>(),
        out.total_work
    );
    for node in &out.per_node {
        assert!(node.makespan <= out.makespan);
        assert!(node.tasks > 0, "{}: starved node", node.benchmark);
    }
    // Routing follows the affinity hints: 4 domains on 4 nodes is balanced.
    assert!(out.balance().imbalance() < 1.05, "{:?}", out.node_tasks());
}
