//! Integration: the acceptance criteria of the `nexus-sched` subsystem.
//!
//! * Work stealing must *strictly* improve the makespan of a deliberately
//!   imbalanced partition at 2 and 4 nodes (idle nodes drain the overloaded
//!   node's input backlog, paying descriptor re-forwarding).
//! * `LocalityAware` placement must reduce aggregate interconnect words (and
//!   the remote-edge census) versus the `XorHash` baseline on un-hinted
//!   traces at equal node counts.
//! * Every placement × stealing combination must be bit-identical across
//!   reruns.
//! * `XorHash` with stealing disabled must reproduce the original
//!   (pre-`nexus-sched`) cluster routing exactly.

use nexus::cluster::routing::DepScanner;
use nexus::cluster::{home_of, simulate_cluster, ClusterConfig, ClusterOutcome, LinkConfig};
use nexus::prelude::*;
use nexus::sched::{PolicyKind, StealKind};
use nexus::sharp::NexusSharpConfig;
use nexus::trace::generators::distributed;
use nexus::trace::Trace;

/// A Nexus# manager with a deliberately small task pool: overloaded nodes
/// back-pressure early, which keeps the tests fast while still building the
/// pending backlog that stealing feeds on.
fn tight_sharp() -> NexusSharp {
    let mut cfg = NexusSharpConfig::paper(6);
    cfg.task_pool_capacity = 16;
    NexusSharp::new(cfg)
}

fn us(v: u64) -> SimDuration {
    SimDuration::from_us(v)
}

#[test]
fn stealing_strictly_improves_makespan_on_the_skewed_trace() {
    // Node 0 owns 6x the tasks of the last node; affinity hints pin the
    // imbalance, so without stealing the makespan is node 0's backlog.
    let trace = distributed::imbalanced(4, 48, 6.0, us(50), 0.0, 5);
    for nodes in [2usize, 4] {
        let cfg = ClusterConfig::new(nodes, 2).with_link(LinkConfig::rdma());
        let frozen = simulate_cluster(&trace, &cfg, |_| tight_sharp());
        let stolen = simulate_cluster(&trace, &cfg.with_stealing(StealKind::MostLoaded), |_| {
            tight_sharp()
        });
        assert_eq!(frozen.tasks, stolen.tasks, "{nodes} nodes");
        assert_eq!(frozen.steals, 0);
        assert!(stolen.steals > 0, "{nodes} nodes: stealing must happen");
        // Strict improvement, with slack: at least 10% off the makespan.
        assert!(
            stolen.makespan.as_us_f64() < 0.90 * frozen.makespan.as_us_f64(),
            "{nodes} nodes: stealing only reached {} vs {}",
            stolen.makespan,
            frozen.makespan
        );
        // The recovered time was paid for over the interconnect.
        assert!(stolen.link.words > frozen.link.words, "{nodes} nodes");
    }
}

#[test]
fn locality_placement_cuts_link_traffic_on_unhinted_traces() {
    // Affinity-stripped partition: routing is entirely the policy's call.
    let trace = distributed::unhinted(&distributed::sparselu(4, 0.3, 42, 0.002));
    let run = |placement: PolicyKind| -> ClusterOutcome {
        let cfg = ClusterConfig::new(4, 8)
            .with_link(LinkConfig::rdma())
            .with_placement(placement);
        simulate_cluster(&trace, &cfg, |_| NexusSharp::paper(6))
    };
    let xor = run(PolicyKind::XorHash);
    let loc = run(PolicyKind::LocalityAware);
    assert_eq!(xor.tasks, loc.tasks);
    assert_eq!(xor.edges.total, loc.edges.total, "same census");
    // The greedy placement keeps most producer→consumer edges node-local …
    assert!(
        (loc.edges.remote as f64) < 0.6 * xor.edges.remote as f64,
        "remote edges: locality {} vs xorhash {}",
        loc.edges.remote,
        xor.edges.remote
    );
    assert!(loc.notifications < xor.notifications);
    // … which shows up as fewer aggregate words on the wire (with slack).
    assert!(
        (loc.link.words as f64) < 0.95 * xor.link.words as f64,
        "link words: locality {} vs xorhash {}",
        loc.link.words,
        xor.link.words
    );
}

#[test]
fn every_policy_combination_is_deterministic() {
    let trace = distributed::unhinted(&distributed::sparselu(3, 0.4, 7, 0.002));
    for placement in PolicyKind::ALL {
        for stealing in StealKind::ALL {
            let cfg = ClusterConfig::new(3, 4)
                .with_placement(placement)
                .with_stealing(stealing);
            let a = simulate_cluster(&trace, &cfg, |_| tight_sharp());
            let b = simulate_cluster(&trace, &cfg, |_| tight_sharp());
            assert_eq!(
                a.makespan, b.makespan,
                "{placement}/{stealing}: makespan must be bit-identical"
            );
            assert_eq!(a.steals, b.steals, "{placement}/{stealing}");
            assert_eq!(a.notifications, b.notifications, "{placement}/{stealing}");
            assert_eq!(a.link.words, b.link.words, "{placement}/{stealing}");
            assert_eq!(a.node_tasks(), b.node_tasks(), "{placement}/{stealing}");
            assert_eq!(a.placement, placement.name());
            assert_eq!(a.stealing, stealing.name());
        }
    }
}

#[test]
fn xorhash_without_stealing_reproduces_the_original_routing() {
    let traces: Vec<Trace> = vec![
        distributed::sparselu(4, 0.3, 42, 0.002),
        distributed::unhinted(&distributed::sparselu(4, 0.3, 42, 0.002)),
        distributed::wavefront(4, 0.2, 6, 6, us(20), 3),
    ];
    for trace in &traces {
        // The policy-driven scanner agrees with the original home function on
        // every single task.
        let mut scanner = DepScanner::new(4);
        let mut expected_tasks = vec![0u64; 4];
        for task in trace.tasks() {
            let (home, _) = scanner.scan(task);
            assert_eq!(home, home_of(task, 4), "{}: {}", trace.name, task.id);
            expected_tasks[home] += 1;
        }

        // And the driver under the default config places tasks exactly there:
        // the explicit policy selection is a no-op relative to PR 2.
        let defaults = ClusterConfig::new(4, 4);
        let explicit = defaults
            .with_placement(PolicyKind::XorHash)
            .with_stealing(StealKind::Disabled);
        let a = simulate_cluster(trace, &defaults, |_| NexusSharp::paper(6));
        let b = simulate_cluster(trace, &explicit, |_| NexusSharp::paper(6));
        assert_eq!(a.node_tasks(), expected_tasks, "{}", trace.name);
        assert_eq!(a.makespan, b.makespan, "{}", trace.name);
        assert_eq!(a.notifications, b.notifications, "{}", trace.name);
        assert_eq!(a.link.words, b.link.words, "{}", trace.name);
        assert_eq!(a.steals, 0, "{}", trace.name);
    }
}
