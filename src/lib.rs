//! # nexus — Nexus# distributed task-dependency management (IPDPS 2015 reproduction)
//!
//! This is the facade crate of the workspace: it re-exports every component of
//! the reproduction of *"Nexus#: A Distributed Hardware Task Manager for
//! Task-Based Programming Models"* (Dallou, Engelhardt, Elhossini, Juurlink —
//! IPDPS 2015) so applications and the examples can depend on a single crate.
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`sim`] | `nexus-sim` | discrete-event simulation substrate |
//! | [`trace`] | `nexus-trace` | task model + workload generators (Table II/III) |
//! | [`taskgraph`] | `nexus-taskgraph` | set-associative tables, kick-off lists, dependency tracking |
//! | [`resources`] | `nexus-resources` | FPGA utilization / frequency model (Table I) |
//! | [`pp`] | `nexus-pp` | the Nexus++ centralized baseline (§III) |
//! | [`sharp`] | `nexus-core` | **Nexus#**, the distributed manager (§IV) |
//! | [`nanos`] | `nexus-nanos` | the software runtime (Nanos) cost model |
//! | [`host`] | `nexus-host` | the simulated multicore host / testbench (§V) |
//! | [`topo`] | `nexus-topo` | non-uniform interconnect topologies (fabric graphs, distance matrices) |
//! | [`sched`] | `nexus-sched` | pluggable placement and work-stealing policies |
//! | [`obs`] | `nexus-obs` | task-lifecycle tracing, metrics registry, Chrome-trace export |
//! | [`cluster`] | `nexus-cluster` | multi-node cluster simulation with an interconnect model |
//! | [`flow`] | `nexus-flow` | streaming ingestion: open-loop arrivals, latency percentiles, knee sweeps |
//! | [`runtime`] | `nexus-runtime` | a real single-node threaded runtime using the Nexus# algorithm |
//! | [`rt`] | `nexus-rt` | a real threaded *cluster* runtime executing the simulator's policies on live channels |
//!
//! ## Quick example
//!
//! ```
//! use nexus::host::{simulate, HostConfig, IdealManager};
//! use nexus::sharp::NexusSharp;
//! use nexus::sim::SimDuration;
//! use nexus::trace::generators::micro;
//!
//! // A 16x16 macroblock wavefront of 50 µs tasks (Listing 1 of the paper).
//! let trace = micro::wavefront(16, 16, SimDuration::from_us(50));
//! let cfg = HostConfig::with_workers(16);
//!
//! let ideal = simulate(&trace, &mut IdealManager::new(), &cfg);
//! let sharp = simulate(&trace, &mut NexusSharp::paper(6), &cfg);
//!
//! assert!(sharp.speedup() > 0.8 * ideal.speedup());
//! ```

#![warn(missing_docs)]

pub use nexus_cluster as cluster;
pub use nexus_core as sharp;
pub use nexus_flow as flow;
pub use nexus_host as host;
pub use nexus_nanos as nanos;
pub use nexus_obs as obs;
pub use nexus_pp as pp;
pub use nexus_resources as resources;
pub use nexus_rt as rt;
pub use nexus_runtime as runtime;
pub use nexus_sched as sched;
pub use nexus_sim as sim;
pub use nexus_taskgraph as taskgraph;
pub use nexus_topo as topo;
pub use nexus_trace as trace;

/// Commonly used items from across the workspace.
pub mod prelude {
    pub use nexus_cluster::{
        simulate_cluster, AdmissionConfig, ClusterConfig, ClusterOutcome, LinkConfig,
    };
    pub use nexus_core::{NexusSharp, NexusSharpConfig};
    pub use nexus_flow::{
        simulate_service, ArrivalConfig, ArrivalKind, LatencyHistogram, ServiceConfig,
    };
    pub use nexus_host::{simulate, HostConfig, IdealManager, SimOutcome, TaskManager};
    pub use nexus_nanos::NanosRuntime;
    pub use nexus_obs::{chrome_trace, MemRecorder, Recorder, Registry, SharedRecorder, SpanEvent};
    pub use nexus_pp::{NexusPP, NexusPPConfig};
    pub use nexus_resources::{ManagerConfig, ResourceModel};
    pub use nexus_rt::{ClusterRuntime, RtConfig, RtTask, RuntimeHandle};
    pub use nexus_runtime::{Runtime, TaskSpec};
    pub use nexus_sched::{PlacementPolicy, PolicyKind, StealKind, StealPolicy};
    pub use nexus_sim::{SimDuration, SimTime};
    pub use nexus_topo::{Fabric, TopologyKind};
    pub use nexus_trace::{Benchmark, TaskDescriptor, Trace, TraceStats};
}
