//! The paper's headline experiment in miniature: how many task graphs does
//! Nexus# need to keep up with macroblock-granularity H.264 decoding, and what
//! does the lack of `taskwait on` support cost Nexus++?
//!
//! Generates the h264dec workload at several granularities and prints a
//! Fig.-7/Fig.-8-style comparison.
//!
//! Run with: `cargo run --release --example h264_scalability`
//! (set `H264_SCALE=1.0` for the full 10-frame trace).

use nexus::prelude::*;
use nexus::trace::generators::MbGrouping;

fn main() {
    let scale = std::env::var("H264_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.2);

    for grouping in MbGrouping::all() {
        let bench = Benchmark::H264Dec(grouping);
        let trace = bench.trace_scaled(42, scale);
        let stats = TraceStats::of(&trace);
        println!(
            "\n=== {} — {} tasks, avg {:.1} us/task ===",
            trace.name, stats.tasks, stats.avg_task_us
        );
        println!(
            "{:<28} {:>6} {:>6} {:>6} {:>6}",
            "manager", "8c", "16c", "32c", "64c"
        );

        let mut rows: Vec<(String, Vec<f64>)> = Vec::new();

        // Ideal upper bound.
        let mut ideal_row = Vec::new();
        for workers in [8usize, 16, 32, 64] {
            let out = simulate(
                &trace,
                &mut IdealManager::new(),
                &HostConfig::with_workers(workers),
            );
            ideal_row.push(out.speedup());
        }
        rows.push(("No Overhead (ideal)".into(), ideal_row));

        // Nexus# with 1/2/4/6 task graphs at their synthesis test frequency.
        for tgs in [1usize, 2, 4, 6] {
            let mut row = Vec::new();
            for workers in [8usize, 16, 32, 64] {
                let mut mgr = NexusSharp::paper(tgs);
                let out = simulate(&trace, &mut mgr, &HostConfig::with_workers(workers));
                row.push(out.speedup());
            }
            rows.push((format!("Nexus# {tgs} TG(s)"), row));
        }

        // Nexus++ — no taskwait-on support, so every per-row wait becomes a
        // full barrier.
        let mut pp_row = Vec::new();
        for workers in [8usize, 16, 32, 64] {
            let mut mgr = NexusPP::paper();
            let out = simulate(&trace, &mut mgr, &HostConfig::with_workers(workers));
            pp_row.push(out.speedup());
        }
        rows.push(("Nexus++ (taskwait-on escalated)".into(), pp_row));

        for (name, row) in rows {
            print!("{name:<28}");
            for v in row {
                print!(" {v:>5.1}x");
            }
            println!();
        }
    }
}
