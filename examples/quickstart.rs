//! Quickstart: simulate the macroblock-wavefront workload of Listing 1 under
//! the ideal manager, Nexus++ and Nexus#, and print the resulting speedups and
//! manager diagnostics.
//!
//! Run with: `cargo run --release --example quickstart`

use nexus::prelude::*;
use nexus::trace::generators::micro;

fn main() {
    // The paper's motivating example (Listing 1): decoding one frame of
    // macroblocks where each block depends on its left and up-right neighbours.
    // Use a 68x120 grid (one full-HD frame) of fine 25 µs tasks.
    let trace = micro::wavefront(68, 120, SimDuration::from_us(25));
    println!(
        "workload: {} tasks, {:.1} ms of total work, {} barrier(s)\n",
        trace.task_count(),
        trace.total_work().as_ms_f64(),
        trace.barrier_count()
    );

    let available_parallelism =
        nexus::taskgraph::refgraph::ParallelismProfile::of(&trace).average_parallelism();
    println!("available parallelism (work / critical path): {available_parallelism:.1}\n");

    for workers in [8usize, 16, 32, 64] {
        let cfg = HostConfig::with_workers(workers);

        let ideal = simulate(&trace, &mut IdealManager::new(), &cfg);
        let mut pp = NexusPP::paper();
        let pp_out = simulate(&trace, &mut pp, &cfg);
        let mut sharp = NexusSharp::paper(6);
        let sharp_out = simulate(&trace, &mut sharp, &cfg);

        println!(
            "{workers:>3} cores | ideal {:>6.2}x | Nexus++ {:>6.2}x | Nexus# (6 TGs) {:>6.2}x",
            ideal.speedup(),
            pp_out.speedup(),
            sharp_out.speedup()
        );
    }

    // Peek inside Nexus# after a run: distribution fairness and utilizations.
    let cfg = HostConfig::with_workers(32);
    let mut sharp = NexusSharp::paper(6);
    simulate(&trace, &mut sharp, &cfg);
    println!("\nNexus# internals after the 32-core run:");
    for (key, value) in sharp.stats_summary() {
        println!("  {key:<28} {value:.3}");
    }
}
