//! One trace schema, two clocks: exporting Chrome traces from the simulator
//! and the live runtime (`nexus-obs`).
//!
//! The same skewed workload is run twice — once through the event-driven
//! cluster simulator (virtual picoseconds) and once on the threaded
//! `nexus-rt` runtime (wall-clock nanoseconds) — with a recorder attached to
//! each. Both logs use the same `SpanEvent` schema, flow through the same
//! conservation checker, and export through the same Chrome-trace writer, so
//! the two runs land side by side as `trace_sim.json` / `trace_rt.json`:
//! open either in <https://ui.perfetto.dev> or `chrome://tracing` to see one
//! process row per node, one thread row per worker, and flow arrows where
//! descriptors were forwarded or stolen.
//!
//! Run with: `cargo run --release --example cluster_trace`

use nexus::obs::{check_conservation, text_timeline, TimeBase};
use nexus::prelude::*;
use nexus::rt::SharedRecorder;
use nexus::sim::SimDuration;
use nexus::trace::generators::distributed;
use std::time::Duration;

fn main() {
    // Node 0 owns 6x the last node's work, so most-loaded stealing fires and
    // the trace gets steal arrows, not just forward arrows.
    let nodes = 4;
    let trace = distributed::imbalanced(nodes, 120, 6.0, SimDuration::from_us(50), 0.2, 42);
    let cfg = ClusterConfig::new(nodes, 4).with_stealing(StealKind::MostLoaded);

    // --- Simulated run: virtual time. -----------------------------------
    let mut sim_rec = MemRecorder::new(TimeBase::VirtualPs);
    let out = nexus::cluster::simulate_cluster_traced(
        &trace,
        &cfg,
        |_| NexusSharp::paper(6),
        &mut sim_rec,
    );
    let conserved = check_conservation(&sim_rec.events).expect("sim lifecycle must conserve");
    println!(
        "sim: {} tasks, makespan {}, {} steals, {} span events",
        out.tasks,
        out.makespan,
        out.steals,
        sim_rec.len()
    );
    println!(
        "     conservation: {} submitted = {} retired, {} stolen",
        conserved.submitted, conserved.retired, conserved.stolen
    );
    std::fs::write("trace_sim.json", chrome_trace(&sim_rec)).expect("write trace_sim.json");

    // --- Live run: real threads, wall clock, same schema. ----------------
    let shared = SharedRecorder::new();
    let mut rt = ClusterRuntime::new(
        RtConfig::from_cluster(&cfg)
            .with_time_scale(2_000)
            .with_recorder(shared.clone()),
    );
    let handle = rt.start();
    handle.run_trace(&trace).expect("live replay failed");
    let report = rt.shutdown_timeout(Duration::from_secs(60));
    assert_eq!(report.pending, 0, "the live run must drain");

    let rt_rec = shared.snapshot();
    let conserved = check_conservation(&rt_rec.events).expect("live lifecycle must conserve");
    println!(
        "rt:  {} tasks, {} steal grants, {} span events",
        report.retired,
        report.metrics.counter("steal.grants"),
        rt_rec.len()
    );
    println!(
        "     conservation: {} submitted = {} retired, {} stolen",
        conserved.submitted, conserved.retired, conserved.stolen
    );
    std::fs::write("trace_rt.json", chrome_trace(&rt_rec)).expect("write trace_rt.json");

    // Both sides populate the same registry keys, so the censuses line up.
    println!(
        "census: sim task.executed={}  rt task.executed={}",
        out.metrics.counter("task.executed"),
        report.metrics.counter("task.executed"),
    );

    // A peek at the text timeline (the full log is thousands of lines).
    println!("\nfirst lines of the simulated timeline:");
    for line in text_timeline(&sim_rec).lines().take(6) {
        println!("  {line}");
    }
    println!("\nwrote trace_sim.json and trace_rt.json — load them in ui.perfetto.dev");
}
