//! Live execution on the threaded cluster runtime (`nexus-rt`).
//!
//! Everything else in this repository simulates the cluster; this example
//! runs it. A skewed imbalanced trace (node 0 deliberately overloaded) is
//! replayed twice on real manager + worker threads — once with stealing off,
//! once under the most-loaded steal policy — and the per-node statistics
//! show descriptors actually migrating between the live nodes. The same
//! placement scanner, steal policy objects, and master state machine as the
//! simulators are doing the work; only the clock is real.
//!
//! Run with: `cargo run --release --example cluster_rt`
//!
//! Knobs (loud-abort on typos, exit 2):
//! `NEXUS_RT_NODES=<n>` (default 4) and `NEXUS_RT_WORKERS=<n>` (default 2).

use nexus::prelude::*;
use nexus::sched::StealKind;
use nexus::sim::SimDuration;
use nexus::trace::generators::distributed;
use std::time::{Duration, Instant};

/// Reads a positive-integer knob, aborting loudly on anything unparsable —
/// the same convention as the bench harness (`error: VAR: message`, exit 2).
fn knob(var: &str, default: usize) -> usize {
    let Ok(raw) = std::env::var(var) else {
        return default;
    };
    match raw.trim().parse::<usize>() {
        Ok(v) if v > 0 => v,
        _ => {
            eprintln!("error: {var}: unparsable count {raw:?} (expected a positive integer)");
            std::process::exit(2);
        }
    }
}

fn main() {
    let nodes = knob("NEXUS_RT_NODES", 4);
    let workers = knob("NEXUS_RT_WORKERS", 2);

    // Node 0 owns 6x the last node's work — the reproducible test bed for
    // work stealing. A small time scale maps the simulated 30 us tasks to
    // real sleeps so the backlog is alive long enough to steal from.
    let trace = distributed::imbalanced(nodes, 160, 6.0, SimDuration::from_us(30), 0.1, 42);
    println!(
        "== live runtime: {} ({} tasks) on {nodes} nodes x {workers} workers ==\n",
        trace.name,
        trace.task_count()
    );

    for stealing in [StealKind::Disabled, StealKind::MostLoaded] {
        let cfg = RtConfig::new(nodes, workers)
            .with_stealing(stealing)
            .with_time_scale(2_000);
        let mut rt = ClusterRuntime::new(cfg);
        let handle = rt.start();
        let t0 = Instant::now();
        let run = handle
            .run_trace(&trace)
            .expect("runtime shut down mid-replay");
        let wall = t0.elapsed();
        let stats = handle.node_stats();
        let report = rt.shutdown_timeout(Duration::from_secs(60));
        assert_eq!(report.pending, 0, "the run must drain completely");

        println!(
            "-- stealing {:<10} {:>8.1} ms wall, {:>7.0} tasks/sec",
            format!("{:?}", stealing),
            wall.as_secs_f64() * 1e3,
            run.retired as f64 / wall.as_secs_f64().max(1e-9),
        );
        for s in &stats {
            println!(
                "   node {}: admitted {:>4}  executed {:>4}  stolen in {:>3} / out {:>3}  per-worker {:?}",
                s.node,
                s.admitted.len(),
                s.executed,
                s.stolen_in,
                s.stolen_out,
                s.per_worker_done,
            );
        }
        println!();
    }
}
