//! The Gaussian-elimination micro-benchmark of §V-A / Fig. 6 / Fig. 9: a
//! triangular wavefront where every elimination wave fans out to all remaining
//! rows, so the number of tasks waiting on one memory address grows with the
//! matrix — the property the dummy-entry (chained kick-off list) design exists
//! for.
//!
//! Run with: `cargo run --release --example gaussian_elimination`

use nexus::prelude::*;
use nexus::trace::generators::gaussian;

fn main() {
    for dim in [100u32, 250, 500] {
        let trace = gaussian::generate(dim);
        let stats = TraceStats::of(&trace);
        println!(
            "\n=== gaussian-{dim}: {} tasks, avg {:.3} us/task (2 GFLOPS cores) ===",
            stats.tasks, stats.avg_task_us
        );

        // Baseline, as in Fig. 9: single-core execution time under Nexus++.
        let baseline =
            simulate(&trace, &mut NexusPP::paper(), &HostConfig::with_workers(1)).makespan;

        println!("{:<22} {:>7} {:>7} {:>7}", "manager", "8c", "32c", "64c");
        for (name, tgs) in [("Nexus# 1 TG", 1usize), ("Nexus# 2 TGs", 2)] {
            print!("{name:<22}");
            for workers in [8usize, 32, 64] {
                let mut mgr = NexusSharp::at_mhz(tgs, 100.0);
                let out = simulate(&trace, &mut mgr, &HostConfig::with_workers(workers));
                print!(" {:>6.2}x", baseline.as_us_f64() / out.makespan.as_us_f64());
            }
            println!();
        }
        print!("{:<22}", "Nexus++");
        for workers in [8usize, 32, 64] {
            let mut mgr = NexusPP::paper();
            let out = simulate(&trace, &mut mgr, &HostConfig::with_workers(workers));
            print!(" {:>6.2}x", baseline.as_us_f64() / out.makespan.as_us_f64());
        }
        println!();

        // Show the kick-off list growth the benchmark is designed to exercise.
        let mut mgr = NexusSharp::at_mhz(2, 100.0);
        simulate(&trace, &mut mgr, &HostConfig::with_workers(32));
        let max_kol = mgr
            .stats_summary()
            .into_iter()
            .find(|(k, _)| k == "max_kickoff_list")
            .map(|(_, v)| v)
            .unwrap_or(0.0);
        println!(
            "largest kick-off list observed: {max_kol:.0} waiting tasks (first pivot row fans out to {} tasks)",
            dim - 1
        );
    }
}
