//! Using the *real* runtime (`nexus-runtime`) — not the simulator — to execute a
//! blocked LU factorization on the current machine's threads, with the same
//! task graph the sparselu benchmark models (lu0 / fwd / bdiv / bmod tasks and
//! their in/out/inout footprints), then verifying the result against a
//! sequential factorization.
//!
//! Run with: `cargo run --release --example runtime_blocked_lu`

use nexus::prelude::*;
use std::sync::Arc;

const NB: usize = 8; // blocks per dimension
const BS: usize = 24; // block size (elements per dimension)
const N: usize = NB * BS;

/// Dense matrix stored as a flat Vec with interior mutability per run.
/// The runtime guarantees exclusive access per declared block footprint, so the
/// unsafe cell access below never races (same contract as the OmpSs pragmas).
struct Matrix {
    data: std::cell::UnsafeCell<Vec<f64>>,
}
unsafe impl Sync for Matrix {}

impl Matrix {
    fn new(data: Vec<f64>) -> Self {
        Matrix {
            data: std::cell::UnsafeCell::new(data),
        }
    }
    #[allow(clippy::mut_from_ref)]
    fn slice(&self) -> &mut Vec<f64> {
        unsafe { &mut *self.data.get() }
    }
    fn at(&self, r: usize, c: usize) -> f64 {
        self.slice()[r * N + c]
    }
}

fn block_key(bi: usize, bj: usize) -> u64 {
    (bi * NB + bj) as u64 * 64
}

/// Sequential LU (no pivoting) used as the reference.
fn lu_sequential(a: &mut [f64]) {
    for k in 0..N {
        for i in (k + 1)..N {
            a[i * N + k] /= a[k * N + k];
            for j in (k + 1)..N {
                a[i * N + j] -= a[i * N + k] * a[k * N + j];
            }
        }
    }
}

/// The blocked kernels (operating on the global matrix through block indices).
fn lu0(m: &Matrix, kb: usize) {
    let a = m.slice();
    let base = kb * BS;
    for k in 0..BS {
        for i in (k + 1)..BS {
            a[(base + i) * N + base + k] /= a[(base + k) * N + base + k];
            for j in (k + 1)..BS {
                a[(base + i) * N + base + j] -=
                    a[(base + i) * N + base + k] * a[(base + k) * N + base + j];
            }
        }
    }
}

fn fwd(m: &Matrix, kb: usize, jb: usize) {
    let a = m.slice();
    let (kb0, jb0) = (kb * BS, jb * BS);
    for k in 0..BS {
        for i in (k + 1)..BS {
            let l = a[(kb0 + i) * N + kb0 + k];
            for j in 0..BS {
                a[(kb0 + i) * N + jb0 + j] -= l * a[(kb0 + k) * N + jb0 + j];
            }
        }
    }
}

fn bdiv(m: &Matrix, kb: usize, ib: usize) {
    let a = m.slice();
    let (kb0, ib0) = (kb * BS, ib * BS);
    for k in 0..BS {
        for i in 0..BS {
            a[(ib0 + i) * N + kb0 + k] /= a[(kb0 + k) * N + kb0 + k];
            for j in (k + 1)..BS {
                a[(ib0 + i) * N + kb0 + j] -=
                    a[(ib0 + i) * N + kb0 + k] * a[(kb0 + k) * N + kb0 + j];
            }
        }
    }
}

fn bmod(m: &Matrix, ib: usize, kb: usize, jb: usize) {
    let a = m.slice();
    let (ib0, kb0, jb0) = (ib * BS, kb * BS, jb * BS);
    for i in 0..BS {
        for k in 0..BS {
            let l = a[(ib0 + i) * N + kb0 + k];
            for j in 0..BS {
                a[(ib0 + i) * N + jb0 + j] -= l * a[(kb0 + k) * N + jb0 + j];
            }
        }
    }
}

fn main() {
    // A diagonally dominant matrix so LU without pivoting is stable.
    let mut seed = 1u64;
    let mut next = || {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((seed >> 33) as f64 / (1u64 << 31) as f64) - 0.5
    };
    let mut original = vec![0.0f64; N * N];
    for r in 0..N {
        for c in 0..N {
            original[r * N + c] = if r == c { N as f64 } else { next() };
        }
    }

    // Reference factorization.
    let mut reference = original.clone();
    lu_sequential(&mut reference);

    // Task-parallel factorization via nexus-runtime.
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let rt = Runtime::with_shards(workers, 6).unwrap();
    let matrix = Arc::new(Matrix::new(original));

    let t0 = std::time::Instant::now();
    for kb in 0..NB {
        {
            let m = Arc::clone(&matrix);
            rt.submit(TaskSpec::new(move || lu0(&m, kb)).inout(block_key(kb, kb)));
        }
        for jb in (kb + 1)..NB {
            let m = Arc::clone(&matrix);
            rt.submit(
                TaskSpec::new(move || fwd(&m, kb, jb))
                    .input(block_key(kb, kb))
                    .inout(block_key(kb, jb)),
            );
        }
        for ib in (kb + 1)..NB {
            let m = Arc::clone(&matrix);
            rt.submit(
                TaskSpec::new(move || bdiv(&m, kb, ib))
                    .input(block_key(kb, kb))
                    .inout(block_key(ib, kb)),
            );
        }
        for ib in (kb + 1)..NB {
            for jb in (kb + 1)..NB {
                let m = Arc::clone(&matrix);
                rt.submit(
                    TaskSpec::new(move || bmod(&m, ib, kb, jb))
                        .input(block_key(ib, kb))
                        .input(block_key(kb, jb))
                        .inout(block_key(ib, jb)),
                );
            }
        }
    }
    rt.taskwait();
    let elapsed = t0.elapsed();

    // Verify against the sequential reference.
    let mut max_err = 0.0f64;
    for r in 0..N {
        for c in 0..N {
            max_err = max_err.max((matrix.at(r, c) - reference[r * N + c]).abs());
        }
    }
    let stats = rt.stats();
    println!("blocked LU of a {N}x{N} matrix ({NB}x{NB} blocks of {BS}x{BS}) on {workers} threads");
    println!("tasks executed: {}", stats.executed);
    println!(
        "largest per-key waiter list: {}",
        stats.max_waiters_on_a_key
    );
    println!("wall time: {elapsed:?}");
    println!("max |parallel - sequential| = {max_err:.3e}");
    assert!(
        max_err < 1e-8,
        "parallel factorization diverged from the reference"
    );
    println!("OK — task-parallel result matches the sequential factorization");
}
