//! Multi-node cluster simulation of a partitioned blocked LU factorization.
//!
//! Each node owns one sparselu domain (with a 5% halo coupling to its
//! neighbour) and runs its own Nexus# (6 task graphs) manager over 8 worker
//! cores; the nodes are connected by an RDMA-class interconnect. The example
//! sweeps the node count, then shows how a fully-coupled (100% remote edges)
//! workload degrades on a commodity-Ethernet shared bus.
//!
//! Run with: `cargo run --release --example cluster_lu`

use nexus::cluster::{remote_edge_fraction, simulate_cluster, ClusterConfig, LinkConfig};
use nexus::sharp::NexusSharp;
use nexus::trace::generators::distributed;

fn main() {
    let workers_per_node = 8;

    println!("== dist-sparselu, 5% halo coupling, RDMA-class links ==");
    let trace = distributed::sparselu(4, 0.05, 42, 0.004);
    println!(
        "   {} tasks, {:.1}% remote edges on 4 nodes\n",
        trace.task_count(),
        remote_edge_fraction(&trace, 4) * 100.0
    );
    for nodes in [1usize, 2, 4] {
        let cfg = ClusterConfig::new(nodes, workers_per_node).with_link(LinkConfig::rdma());
        let out = simulate_cluster(&trace, &cfg, |_| NexusSharp::paper(6));
        println!("   {}", out.summary());
        for node in &out.per_node {
            println!("      {}", node.summary());
        }
    }

    println!("\n== same workload, 100% halo coupling, Ethernet shared bus ==");
    let coupled = distributed::sparselu(4, 1.0, 42, 0.004);
    for (label, link) in [
        ("RDMA mesh", LinkConfig::rdma()),
        ("Ethernet bus", LinkConfig::ethernet()),
    ] {
        let cfg = ClusterConfig::new(4, workers_per_node).with_link(link);
        let out = simulate_cluster(&coupled, &cfg, |_| NexusSharp::paper(6));
        println!(
            "   {:<14} makespan {:>12}  speedup {:>6.2}x  {} notifications, link wait {}",
            label,
            format!("{}", out.makespan),
            out.speedup(),
            out.notifications,
            out.link.wait_time,
        );
    }
}
