//! # nexus-flow — streaming ingestion, open-loop traffic and service metrics
//!
//! Every other driver in this workspace replays a trace *closed-loop*: the
//! master submits as fast as the pipeline allows and the result is a single
//! makespan — a batch job. This crate turns the cluster into a *service*, in
//! the spirit of asynchronous distributed task front-ends (Bosch et al.) and
//! the task-as-request framing of the task/actor duality work:
//!
//! * [`ArrivalKind`] / [`ArrivalConfig`] — deterministic, seeded open-loop
//!   arrival processes (Poisson, bursty, diurnal, or closed-loop
//!   pass-through) generating an
//!   [`ArrivalOverlay`](nexus_trace::ArrivalOverlay) over any trace,
//! * [`simulate_service`] / [`ServiceConfig`] — drives
//!   [`nexus_cluster::simulate_streaming`]: submissions released at arrival
//!   times through bounded per-node admission queues
//!   ([`AdmissionConfig`](nexus_cluster::AdmissionConfig)) with back-pressure
//!   to the source (arrivals block, never drop),
//! * [`LatencyHistogram`] — fixed log-bucket (≤ 3.125 % relative width),
//!   integer-only submit→retire latency distribution with deterministic
//!   merges, exposed as p50/p99/p999,
//! * [`knee_sweep`] — ramps the offered load over the same trace to find the
//!   sustainable-throughput knee: below it p99 is bounded and back-pressure
//!   is zero; above it back-pressure engages and no task is lost.
//!
//! ## Example
//!
//! ```
//! use nexus_flow::{simulate_service, ArrivalConfig, ArrivalKind, ServiceConfig};
//! use nexus_cluster::ClusterConfig;
//! use nexus_host::IdealManager;
//! use nexus_sim::SimDuration;
//! use nexus_trace::generators::distributed;
//!
//! let trace = distributed::wavefront(2, 0.0, 4, 4, SimDuration::from_us(20), 1);
//! // Offer one task per 200 us — far below capacity, so nothing blocks.
//! let arrival = ArrivalConfig::new(ArrivalKind::Poisson, SimDuration::from_us(200), 42);
//! let out = simulate_service(
//!     &trace,
//!     &ServiceConfig::new(arrival),
//!     &ClusterConfig::new(2, 4),
//!     |_| IdealManager::new(),
//! );
//! assert_eq!(out.stream.cluster.tasks, 32);
//! assert_eq!(out.backpressure_events(), 0);
//! assert!(out.p99() >= out.p50());
//! ```

#![warn(missing_docs)]

pub mod arrival;
pub mod histogram;
pub mod service;

pub use arrival::{ArrivalConfig, ArrivalKind};
pub use histogram::LatencyHistogram;
pub use service::{
    knee_sweep, simulate_service, KneePoint, KneeReport, ServiceConfig, ServiceOutcome,
};

/// Convenience prelude.
pub mod prelude {
    pub use crate::arrival::{ArrivalConfig, ArrivalKind};
    pub use crate::histogram::LatencyHistogram;
    pub use crate::service::{
        knee_sweep, simulate_service, KneePoint, KneeReport, ServiceConfig, ServiceOutcome,
    };
}
