//! Fixed log-bucket latency histogram: integer-only, deterministic merges.
//!
//! Service percentiles must survive two things a `Vec<f64>` does not: *merges*
//! (per-shard histograms combined in any order must give the same answer) and
//! *determinism* (no float accumulation whose result depends on summation
//! order). [`LatencyHistogram`] therefore buckets raw picosecond values into a
//! fixed log₂ grid with [`SUB`] sub-buckets per octave: every bucket spans at
//! most `1/SUB` of its value (≤ 3.125 % relative width), counts are plain
//! `u64` adds, and a percentile is *the upper bound of the bucket holding the
//! rank* (clamped to the observed maximum) — a deterministic integer, never an
//! interpolation.
//!
//! The grid is value-independent (no rescaling, no per-histogram
//! configuration), so merging is element-wise addition: associative,
//! commutative, and bit-identical regardless of shard order.

use nexus_sim::SimDuration;

/// log₂ of the sub-buckets per octave.
const SUB_BITS: u32 = 5;

/// Sub-buckets per octave; also the relative resolution (1/32 ≈ 3.125 %).
pub const SUB: u64 = 1 << SUB_BITS;

/// Total buckets: values below [`SUB`] get exact unit buckets, every octave
/// above contributes [`SUB`] buckets, up to the full `u64` range.
const BUCKETS: usize = ((64 - SUB_BITS + 1) * SUB as u32) as usize;

/// Bucket index of a raw value (monotonic in `v`).
#[inline]
fn index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let octave = msb - SUB_BITS;
        ((octave + 1) * SUB as u32) as usize + ((v >> octave) - SUB) as usize
    }
}

/// Inclusive `(lo, hi)` value range of bucket `i`.
#[inline]
fn bounds(i: usize) -> (u64, u64) {
    if i < SUB as usize {
        (i as u64, i as u64)
    } else {
        let octave = (i as u64 / SUB - 1) as u32;
        let sub = i as u64 % SUB;
        let lo = (SUB + sub) << octave;
        // `(1 << octave) - 1` first: the top octave's `hi` is exactly
        // `u64::MAX` and `lo + (1 << octave)` would overflow.
        (lo, lo + ((1u64 << octave) - 1))
    }
}

/// A fixed log-bucket histogram over `u64` picosecond latencies (see the
/// [module docs](self)).
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// A histogram over a batch of latencies.
    pub fn from_latencies(latencies: &[SimDuration]) -> Self {
        let mut h = Self::new();
        for &d in latencies {
            h.record(d);
        }
        h
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: SimDuration) {
        self.record_ps(latency.as_ps());
    }

    /// Records one raw picosecond sample.
    pub fn record_ps(&mut self, v: u64) {
        self.counts[index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self`: element-wise, associative, commutative.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded sample ([`SimDuration::ZERO`] when empty).
    pub fn min(&self) -> SimDuration {
        if self.is_empty() {
            SimDuration::ZERO
        } else {
            SimDuration::from_ps(self.min)
        }
    }

    /// Largest recorded sample ([`SimDuration::ZERO`] when empty).
    pub fn max(&self) -> SimDuration {
        SimDuration::from_ps(self.max)
    }

    /// Exact arithmetic mean (integer sum, one final division).
    pub fn mean(&self) -> SimDuration {
        if self.is_empty() {
            SimDuration::ZERO
        } else {
            SimDuration::from_ps((self.sum / self.count as u128) as u64)
        }
    }

    /// The `ppm`-th permille-of-permille percentile (parts per million:
    /// `500_000` = p50, `990_000` = p99, `999_000` = p99.9). Returns the
    /// upper bound of the bucket holding that rank, clamped to the observed
    /// maximum — within one bucket width (≤ 3.125 %) of the exact order
    /// statistic. [`SimDuration::ZERO`] when empty.
    pub fn percentile_ppm(&self, ppm: u64) -> SimDuration {
        if self.is_empty() {
            return SimDuration::ZERO;
        }
        // Integer ceiling rank in 1..=count (u128: no overflow for any count).
        let rank = (self.count as u128 * ppm as u128).div_ceil(1_000_000);
        let rank = rank.clamp(1, self.count as u128);
        let mut seen: u128 = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c as u128;
            if seen >= rank {
                let (_, hi) = bounds(i);
                return SimDuration::from_ps(hi.min(self.max));
            }
        }
        SimDuration::from_ps(self.max)
    }

    /// Median (see [`LatencyHistogram::percentile_ppm`]).
    pub fn p50(&self) -> SimDuration {
        self.percentile_ppm(500_000)
    }

    /// 99th percentile (see [`LatencyHistogram::percentile_ppm`]).
    pub fn p99(&self) -> SimDuration {
        self.percentile_ppm(990_000)
    }

    /// 99.9th percentile (see [`LatencyHistogram::percentile_ppm`]).
    pub fn p999(&self) -> SimDuration {
        self.percentile_ppm(999_000)
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .field("p999", &self.p999())
            .field("max", &self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotonic_and_bounds_invert_it() {
        // Probe around every power of two plus a pseudo-random spread.
        let mut vs: Vec<u64> = vec![0, 1, 2, u64::MAX];
        for shift in 1..64u32 {
            let p = 1u64 << shift;
            vs.extend([p - 1, p, p + 1, p + (p >> 1)]);
        }
        let mut rng = nexus_sim::SimRng::new(7);
        vs.extend((0..1000).map(|_| rng.next_u64()));
        vs.sort_unstable();
        let mut prev = 0usize;
        for &v in &vs {
            let i = index(v);
            assert!(i >= prev, "index not monotonic at v={v}");
            prev = i;
            assert!(i < BUCKETS);
            let (lo, hi) = bounds(i);
            assert!(lo <= v && v <= hi, "v={v} not in [{lo},{hi}] (bucket {i})");
            // Relative width is bounded by 1/SUB of the bucket's low end.
            assert!(hi - lo <= (lo / SUB).max(1));
        }
    }

    #[test]
    fn exact_below_sub() {
        for v in 0..SUB {
            assert_eq!(bounds(index(v)), (v, v));
        }
    }

    #[test]
    fn empty_and_single_sample() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.p50(), SimDuration::ZERO);
        assert_eq!(h.p999(), SimDuration::ZERO);
        assert_eq!(h.mean(), SimDuration::ZERO);

        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_us(7));
        assert_eq!(h.count(), 1);
        // Every percentile of a single sample is (clamped to) that sample.
        assert_eq!(h.p50(), SimDuration::from_us(7));
        assert_eq!(h.p99(), SimDuration::from_us(7));
        assert_eq!(h.p999(), SimDuration::from_us(7));
        assert_eq!(h.mean(), SimDuration::from_us(7));
    }

    #[test]
    fn percentile_error_is_bounded_by_the_bucket_width() {
        // Deterministic pseudo-random samples; compare against the exact
        // order statistic from a sorted copy.
        let mut rng = nexus_sim::SimRng::new(0xF10A);
        let samples: Vec<u64> = (0..10_000)
            .map(|_| rng.next_below(1_000_000_000) + 1)
            .collect();
        let mut h = LatencyHistogram::new();
        for &s in &samples {
            h.record_ps(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for ppm in [100_000u64, 500_000, 900_000, 990_000, 999_000, 1_000_000] {
            let rank = ((sorted.len() as u128 * ppm as u128).div_ceil(1_000_000))
                .clamp(1, sorted.len() as u128) as usize;
            let exact = sorted[rank - 1];
            let approx = h.percentile_ppm(ppm).as_ps();
            assert!(approx >= exact, "p{ppm}: {approx} < exact {exact}");
            // Upper bound of the exact value's bucket ⇒ within one bucket
            // width above the exact order statistic.
            let (lo, hi) = bounds(index(exact));
            assert!(
                approx <= hi,
                "p{ppm}: {approx} above bucket [{lo},{hi}] of {exact}"
            );
        }
    }

    #[test]
    fn merge_is_associative_and_matches_the_union() {
        let mut rng = nexus_sim::SimRng::new(42);
        let shards: Vec<Vec<u64>> = (0..3)
            .map(|_| (0..500).map(|_| rng.next_below(10_000_000)).collect())
            .collect();
        let hs: Vec<LatencyHistogram> = shards
            .iter()
            .map(|s| {
                let mut h = LatencyHistogram::new();
                for &v in s {
                    h.record_ps(v);
                }
                h
            })
            .collect();
        // (a ∪ b) ∪ c == a ∪ (b ∪ c) == union recorded directly.
        let mut left = hs[0].clone();
        left.merge(&hs[1]);
        left.merge(&hs[2]);
        let mut right = hs[2].clone();
        right.merge(&hs[1]);
        right.merge(&hs[0]);
        let mut union = LatencyHistogram::new();
        for s in &shards {
            for &v in s {
                union.record_ps(v);
            }
        }
        for h in [&left, &right] {
            assert_eq!(h.count(), union.count());
            for ppm in [500_000u64, 990_000, 999_000] {
                assert_eq!(h.percentile_ppm(ppm), union.percentile_ppm(ppm));
            }
            assert_eq!(h.mean(), union.mean());
            assert_eq!(h.min(), union.min());
            assert_eq!(h.max(), union.max());
        }
    }

    #[test]
    fn merging_an_empty_histogram_is_identity() {
        let mut h =
            LatencyHistogram::from_latencies(&[SimDuration::from_us(1), SimDuration::from_us(100)]);
        let before = format!("{h:?}");
        h.merge(&LatencyHistogram::new());
        assert_eq!(format!("{h:?}"), before);
    }
}
