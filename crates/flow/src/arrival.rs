//! Open-loop arrival processes: deterministic, seeded inter-arrival
//! generators layered over a trace as an [`ArrivalOverlay`].
//!
//! Arrival times are built by accumulating nonnegative inter-arrival gaps, so
//! every overlay is nondecreasing by construction — per-node program order is
//! preserved through the cluster's FIFO input queues. All processes are
//! seeded ([`SimRng`], xoshiro256**): the same `(kind, mean_gap, seed, n)`
//! always yields the bit-identical overlay.

use nexus_sim::{SimDuration, SimRng, SimTime};
use nexus_trace::{ArrivalOverlay, Trace};
use std::fmt;
use std::str::FromStr;

/// The shape of the offered load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalKind {
    /// Memoryless arrivals: exponential inter-arrival gaps at the configured
    /// mean rate (the M/·/· baseline).
    Poisson,
    /// On/off traffic: bursts of back-to-back arrivals separated by long idle
    /// gaps, same long-run mean rate as [`ArrivalKind::Poisson`].
    Bursty,
    /// A slow sinusoidal rate modulation on top of Poisson arrivals (the
    /// day/night cycle of a service, compressed to simulation scale).
    Diurnal,
    /// No arrival process: the master self-clocks exactly as in the
    /// closed-loop driver ([`overlay`](ArrivalConfig::overlay) is empty and
    /// the streaming source degenerates to
    /// [`StreamingSource::closed_loop`](nexus_cluster::StreamingSource::closed_loop)).
    ClosedLoop,
}

impl ArrivalKind {
    /// Every kind, for sweeps and tests.
    pub const ALL: [ArrivalKind; 4] = [
        ArrivalKind::Poisson,
        ArrivalKind::Bursty,
        ArrivalKind::Diurnal,
        ArrivalKind::ClosedLoop,
    ];

    /// The accepted (lower-case canonical) spellings, for error messages.
    pub const VALID: &'static str = "poisson|bursty|diurnal|closed";

    /// The canonical name.
    pub fn name(self) -> &'static str {
        match self {
            ArrivalKind::Poisson => "poisson",
            ArrivalKind::Bursty => "bursty",
            ArrivalKind::Diurnal => "diurnal",
            ArrivalKind::ClosedLoop => "closed",
        }
    }
}

impl fmt::Display for ArrivalKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for ArrivalKind {
    type Err = String;

    /// Case-insensitive; accepts a few aliases (`"closed-loop"`, …).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "poisson" => Ok(ArrivalKind::Poisson),
            "bursty" | "burst" => Ok(ArrivalKind::Bursty),
            "diurnal" => Ok(ArrivalKind::Diurnal),
            "closed" | "closedloop" | "closed-loop" => Ok(ArrivalKind::ClosedLoop),
            other => Err(format!(
                "unknown arrival kind {other:?} (expected {})",
                Self::VALID
            )),
        }
    }
}

/// A fully specified arrival process: kind, mean inter-arrival gap, seed and
/// the kind-specific shape knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrivalConfig {
    /// The process shape.
    pub kind: ArrivalKind,
    /// Mean inter-arrival gap — the offered rate is `1 / mean_gap`.
    pub mean_gap: SimDuration,
    /// RNG seed; identical configs yield bit-identical overlays.
    pub seed: u64,
    /// Arrivals per burst ([`ArrivalKind::Bursty`] only).
    pub burst_len: usize,
    /// Modulation period ([`ArrivalKind::Diurnal`] only).
    pub period: SimDuration,
    /// Modulation amplitude in per-mille of the base rate, clamped to 950
    /// ([`ArrivalKind::Diurnal`] only).
    pub amplitude_permille: u32,
}

impl ArrivalConfig {
    /// An arrival process of `kind` at mean gap `mean_gap`, with default
    /// shape knobs (burst length 8, period `1000 × mean_gap`, amplitude 0.8).
    pub fn new(kind: ArrivalKind, mean_gap: SimDuration, seed: u64) -> Self {
        ArrivalConfig {
            kind,
            mean_gap,
            seed,
            burst_len: 8,
            period: mean_gap * 1000,
            amplitude_permille: 800,
        }
    }

    /// Sets the burst length (≥ 1; [`ArrivalKind::Bursty`]).
    pub fn with_burst_len(mut self, burst_len: usize) -> Self {
        self.burst_len = burst_len.max(1);
        self
    }

    /// Sets the diurnal modulation period and amplitude (per-mille of the
    /// base rate, clamped to 950 so the rate never reaches zero).
    pub fn with_diurnal(mut self, period: SimDuration, amplitude_permille: u32) -> Self {
        self.period = period;
        self.amplitude_permille = amplitude_permille.min(950);
        self
    }

    /// Scales the offered load by `factor` (> 0): `factor = 2.0` doubles the
    /// arrival rate (halves the mean gap). Used by knee sweeps.
    pub fn with_load_factor(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "load factor must be positive");
        self.mean_gap = SimDuration::from_ns_f64(self.mean_gap.as_ns() as f64 / factor);
        self
    }

    /// The offered load in arrivals per second of simulated time
    /// (`0` for [`ArrivalKind::ClosedLoop`]).
    pub fn offered_per_sec(&self) -> f64 {
        if self.kind == ArrivalKind::ClosedLoop {
            return 0.0;
        }
        let secs = self.mean_gap.as_secs_f64();
        if secs <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / secs
        }
    }

    /// Generates the overlay for `n` submissions (empty for
    /// [`ArrivalKind::ClosedLoop`]). Deterministic in the config and `n`.
    pub fn overlay(&self, n: usize) -> ArrivalOverlay {
        let mut rng = SimRng::new(self.seed ^ 0xF10A_A212);
        let g_ns = (self.mean_gap.as_ns() as f64).max(1e-3);
        let mut t = SimTime::ZERO;
        let mut times = Vec::with_capacity(n);
        match self.kind {
            ArrivalKind::ClosedLoop => {}
            ArrivalKind::Poisson => {
                for _ in 0..n {
                    t += exp_gap(&mut rng, g_ns);
                    times.push(t);
                }
            }
            ArrivalKind::Bursty => {
                // Bursts of `burst_len` back-to-back arrivals at g/8 spacing,
                // separated by exponential idle gaps sized so the long-run
                // mean gap stays `mean_gap`.
                let b = self.burst_len.max(1);
                let intra_ns = g_ns / 8.0;
                let idle_ns = (b as f64 * g_ns - (b as f64 - 1.0) * intra_ns).max(intra_ns);
                let mut in_burst = 0usize;
                for _ in 0..n {
                    if in_burst == 0 {
                        t += exp_gap(&mut rng, idle_ns);
                        in_burst = b;
                    } else {
                        t += SimDuration::from_ns_f64(intra_ns);
                    }
                    in_burst -= 1;
                    times.push(t);
                }
            }
            ArrivalKind::Diurnal => {
                let amp = self.amplitude_permille.min(950) as f64 / 1000.0;
                let period_ns = (self.period.as_ns() as f64).max(1.0);
                for _ in 0..n {
                    let phase = (t.as_ps() as f64 / 1e3) / period_ns;
                    let rate = 1.0 + amp * (phase * std::f64::consts::TAU).sin();
                    t += exp_gap(&mut rng, g_ns / rate);
                    times.push(t);
                }
            }
        }
        ArrivalOverlay::new(times).expect("accumulated gaps are nondecreasing")
    }

    /// The overlay sized for `trace` (see [`ArrivalConfig::overlay`]).
    pub fn overlay_for(&self, trace: &Trace) -> ArrivalOverlay {
        self.overlay(trace.task_count())
    }
}

/// One exponential inter-arrival gap with mean `mean_ns`.
fn exp_gap(rng: &mut SimRng, mean_ns: f64) -> SimDuration {
    let u = rng.next_f64();
    SimDuration::from_ns_f64(-(1.0 - u).ln() * mean_ns)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_us(v)
    }

    #[test]
    fn kinds_parse_case_insensitively_and_reject_garbage() {
        assert_eq!("Poisson".parse::<ArrivalKind>(), Ok(ArrivalKind::Poisson));
        assert_eq!(" BURSTY ".parse::<ArrivalKind>(), Ok(ArrivalKind::Bursty));
        assert_eq!("diurnal".parse::<ArrivalKind>(), Ok(ArrivalKind::Diurnal));
        assert_eq!(
            "Closed-Loop".parse::<ArrivalKind>(),
            Ok(ArrivalKind::ClosedLoop)
        );
        let err = "open".parse::<ArrivalKind>().unwrap_err();
        assert!(err.contains(ArrivalKind::VALID), "{err}");
        for kind in ArrivalKind::ALL {
            assert_eq!(kind.name().parse::<ArrivalKind>(), Ok(kind));
        }
    }

    #[test]
    fn overlays_are_deterministic_and_nondecreasing() {
        for kind in ArrivalKind::ALL {
            let cfg = ArrivalConfig::new(kind, us(50), 99);
            let a = cfg.overlay(500);
            let b = cfg.overlay(500);
            assert_eq!(a, b, "{kind}");
            if kind == ArrivalKind::ClosedLoop {
                assert!(a.is_empty());
            } else {
                assert_eq!(a.len(), 500);
            }
            // A different seed moves the times (except closed-loop).
            let c = ArrivalConfig::new(kind, us(50), 100).overlay(500);
            if kind != ArrivalKind::ClosedLoop {
                assert_ne!(a, c, "{kind}");
            }
        }
    }

    #[test]
    fn mean_rate_is_respected() {
        // Long-run mean gap within 10% of the configured mean for every
        // open-loop kind (bursty redistributes, diurnal modulates — both
        // preserve the long-run rate).
        for kind in [
            ArrivalKind::Poisson,
            ArrivalKind::Bursty,
            ArrivalKind::Diurnal,
        ] {
            let n = 20_000;
            let cfg = ArrivalConfig::new(kind, us(50), 7);
            let overlay = cfg.overlay(n);
            let mean_ns = overlay.span().as_ps() as f64 / 1e3 / n as f64;
            let want = us(50).as_ns() as f64;
            assert!(
                (mean_ns - want).abs() < 0.1 * want,
                "{kind}: mean gap {mean_ns} ns vs {want} ns"
            );
        }
    }

    #[test]
    fn bursty_clusters_arrivals() {
        let cfg = ArrivalConfig::new(ArrivalKind::Bursty, us(100), 3).with_burst_len(8);
        let overlay = cfg.overlay(800);
        // Count gaps far below the mean: a bursty process has ~7/8 of them.
        let tight = overlay
            .times()
            .windows(2)
            .filter(|w| w[1].since(w[0]) < us(20))
            .count();
        assert!(tight > 600, "only {tight}/799 tight gaps");
    }

    #[test]
    fn load_factor_scales_the_rate() {
        let base = ArrivalConfig::new(ArrivalKind::Poisson, us(100), 1);
        let double = base.with_load_factor(2.0);
        assert_eq!(double.mean_gap, us(50));
        assert!((base.offered_per_sec() - 10_000.0).abs() < 1.0);
        assert!((double.offered_per_sec() - 20_000.0).abs() < 2.0);
    }
}
