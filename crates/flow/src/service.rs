//! Service-mode simulation: an arrival process + admission bound driving the
//! cluster, folded into latency percentiles — and the knee sweep that ramps
//! offered load to find sustainable throughput.

use crate::arrival::{ArrivalConfig, ArrivalKind};
use crate::histogram::LatencyHistogram;
use nexus_cluster::{simulate_streaming, AdmissionConfig, ClusterConfig, StreamingSource};
use nexus_host::manager::TaskManager;
use nexus_sim::SimDuration;
use nexus_trace::Trace;

/// How a service run is driven: the arrival process and the per-node
/// admission bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// The offered-load process.
    pub arrival: ArrivalConfig,
    /// Bounded per-node admission (back-pressure past this depth).
    pub admission: AdmissionConfig,
}

impl ServiceConfig {
    /// A service driven by `arrival` with the default admission bound.
    pub fn new(arrival: ArrivalConfig) -> Self {
        ServiceConfig {
            arrival,
            admission: AdmissionConfig::default(),
        }
    }

    /// Sets the per-node admission depth.
    pub fn with_admission(mut self, admission: AdmissionConfig) -> Self {
        self.admission = admission;
        self
    }

    /// The [`StreamingSource`] this config induces for `trace`.
    pub fn source_for(&self, trace: &Trace) -> StreamingSource {
        match self.arrival.kind {
            ArrivalKind::ClosedLoop => StreamingSource::closed_loop(),
            _ => StreamingSource::open_loop(self.arrival.overlay_for(trace), self.admission),
        }
    }
}

/// The result of a service run: the raw streaming outcome plus the latency
/// histogram folded from the per-task latencies.
#[derive(Debug, Clone)]
pub struct ServiceOutcome {
    /// The streaming outcome (cluster fields, raw latencies, back-pressure).
    pub stream: nexus_cluster::StreamOutcome,
    /// Submit→retire latency distribution.
    pub histogram: LatencyHistogram,
}

impl ServiceOutcome {
    /// Median latency.
    pub fn p50(&self) -> SimDuration {
        self.histogram.p50()
    }

    /// 99th-percentile latency.
    pub fn p99(&self) -> SimDuration {
        self.histogram.p99()
    }

    /// 99.9th-percentile latency.
    pub fn p999(&self) -> SimDuration {
        self.histogram.p999()
    }

    /// Back-pressure episodes at the source (zero ⇔ the offered load was
    /// sustained without ever filling an admission queue).
    pub fn backpressure_events(&self) -> u64 {
        self.stream.backpressure_events
    }
}

/// Runs `trace` as a service on a cluster configured by `cluster`: the
/// arrival process and admission bound come from `service`, and the per-task
/// latencies are folded into a [`LatencyHistogram`]. Deterministic end to
/// end for fixed seeds and configs.
pub fn simulate_service<M: TaskManager>(
    trace: &Trace,
    service: &ServiceConfig,
    cluster: &ClusterConfig,
    make_manager: impl FnMut(usize) -> M,
) -> ServiceOutcome {
    let source = service.source_for(trace);
    let stream = simulate_streaming(trace, &source, cluster, make_manager);
    let histogram = LatencyHistogram::from_latencies(&stream.latencies);
    ServiceOutcome { stream, histogram }
}

/// One point of a [`knee_sweep`]: the service metrics at one offered load.
#[derive(Debug, Clone)]
pub struct KneePoint {
    /// The load multiplier applied to the base arrival rate.
    pub load_factor: f64,
    /// Offered arrivals per second at this point.
    pub offered_per_sec: f64,
    /// Completed tasks per second of simulated time.
    pub completed_per_sec: f64,
    /// Median latency.
    pub p50: SimDuration,
    /// 99th-percentile latency.
    pub p99: SimDuration,
    /// 99.9th-percentile latency.
    pub p999: SimDuration,
    /// Back-pressure episodes at the source.
    pub backpressure_events: u64,
    /// Total source-clock shift from admission blocking.
    pub source_lag: SimDuration,
}

/// A ramp of offered load over the same trace and cluster (see
/// [`knee_sweep`]).
#[derive(Debug, Clone)]
pub struct KneeReport {
    /// One point per load factor, in ramp order.
    pub points: Vec<KneePoint>,
}

impl KneeReport {
    /// The knee: the highest offered load the cluster sustained without any
    /// back-pressure. `None` if even the lowest point back-pressured.
    pub fn knee(&self) -> Option<&KneePoint> {
        self.points
            .iter()
            .filter(|p| p.backpressure_events == 0)
            .max_by(|a, b| a.offered_per_sec.total_cmp(&b.offered_per_sec))
    }

    /// True when the ramp actually crossed the knee: at least one point
    /// sustained (zero back-pressure) and at least one collapsed.
    pub fn demonstrates_knee(&self) -> bool {
        self.points.iter().any(|p| p.backpressure_events == 0)
            && self.points.iter().any(|p| p.backpressure_events > 0)
    }
}

/// Ramps the offered load over `load_factors` (each multiplies `base`'s
/// arrival rate) and runs one service simulation per point, on a fresh
/// cluster each time. The returned report exposes the sustainable-throughput
/// knee: below it p99 stays bounded and back-pressure is zero; above it the
/// admission queues fill and back-pressure engages (no task is ever lost).
pub fn knee_sweep<M: TaskManager>(
    trace: &Trace,
    base: &ServiceConfig,
    cluster: &ClusterConfig,
    load_factors: &[f64],
    make_manager: impl Fn(usize) -> M,
) -> KneeReport {
    assert!(
        base.arrival.kind != ArrivalKind::ClosedLoop,
        "a knee sweep needs an open-loop arrival process"
    );
    let points = load_factors
        .iter()
        .map(|&factor| {
            let service = ServiceConfig {
                arrival: base.arrival.with_load_factor(factor),
                admission: base.admission,
            };
            let out = simulate_service(trace, &service, cluster, &make_manager);
            KneePoint {
                load_factor: factor,
                offered_per_sec: service.arrival.offered_per_sec(),
                completed_per_sec: out.stream.completed_per_sec(),
                p50: out.p50(),
                p99: out.p99(),
                p999: out.p999(),
                backpressure_events: out.backpressure_events(),
                source_lag: out.stream.source_lag,
            }
        })
        .collect();
    KneeReport { points }
}
