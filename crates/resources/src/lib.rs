//! # nexus-resources — FPGA utilization and clock-frequency model
//!
//! The paper synthesizes Nexus++ and Nexus# (1–8 task graphs) for the Xilinx
//! ZYNQ-7 ZC706 board and reports device utilization and maximum/test clock
//! frequencies (Table I). Those frequencies then drive the performance
//! evaluation: Fig. 7(b) and Fig. 8 run each configuration at its *test*
//! frequency (100 MHz for 1–2 task graphs down to 41.66 MHz for 8).
//!
//! There is no HDL synthesis ecosystem for Rust, so this crate substitutes an
//! **analytical resource model** calibrated to Table I (see DESIGN.md §2):
//!
//! * register / LUT / block-RAM counts grow linearly with the number of task
//!   graphs (a shared front-end plus a per-task-graph block), matching the
//!   paper's observation that "the number of block RAMs almost doubles due to
//!   using multiple task graphs, and the number of LUTs also doubles because of
//!   the extra work the Input Parser and the Dependence Counts Arbiter blocks
//!   have to manage",
//! * the maximum frequency is interpolated from the paper's measured points,
//!   and the *test* frequency is derived the same way the authors appear to
//!   have chosen theirs: the fastest integer divider of a 500 MHz source clock
//!   that does not exceed the achievable frequency.
//!
//! The crate also embeds the paper's reported Table I rows verbatim
//! ([`paper_table1`]) so the benchmark harness can print model-vs-paper deltas.

#![warn(missing_docs)]

pub mod model;
pub mod table1;

pub use model::{DeviceCapacity, ManagerConfig, ResourceEstimate, ResourceModel};
pub use table1::{paper_table1, PaperTable1Row};
