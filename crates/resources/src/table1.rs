//! The paper's Table I rows, embedded verbatim for model-vs-paper reporting.

use crate::model::ManagerConfig;
use serde::{Deserialize, Serialize};

/// One row of Table I as printed in the paper (percentages of the ZC706).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperTable1Row {
    /// Configuration the row describes.
    pub config: ManagerConfig,
    /// Register utilization (percent).
    pub registers_pct: f64,
    /// LUT utilization (percent).
    pub luts_pct: f64,
    /// Block-RAM utilization (percent).
    pub brams_pct: f64,
    /// Maximum achievable frequency (MHz).
    pub max_freq_mhz: f64,
    /// Test frequency used in the evaluation (MHz).
    pub test_freq_mhz: f64,
    /// "Total Util." column (percent).
    pub total_util_pct: f64,
}

/// The six configuration rows of Table I.
pub fn paper_table1() -> Vec<PaperTable1Row> {
    vec![
        PaperTable1Row {
            config: ManagerConfig::NexusPP,
            registers_pct: 1.0,
            luts_pct: 7.0,
            brams_pct: 14.0,
            max_freq_mhz: 114.44,
            test_freq_mhz: 100.0,
            total_util_pct: 7.0,
        },
        PaperTable1Row {
            config: ManagerConfig::NexusSharp { task_graphs: 1 },
            registers_pct: 1.0,
            luts_pct: 8.0,
            brams_pct: 13.0,
            max_freq_mhz: 112.63,
            test_freq_mhz: 100.0,
            total_util_pct: 7.0,
        },
        PaperTable1Row {
            config: ManagerConfig::NexusSharp { task_graphs: 2 },
            registers_pct: 2.0,
            luts_pct: 15.0,
            brams_pct: 25.0,
            max_freq_mhz: 112.63,
            test_freq_mhz: 100.0,
            total_util_pct: 15.0,
        },
        PaperTable1Row {
            config: ManagerConfig::NexusSharp { task_graphs: 4 },
            registers_pct: 3.0,
            luts_pct: 29.0,
            brams_pct: 47.0,
            max_freq_mhz: 85.26,
            test_freq_mhz: 83.33,
            total_util_pct: 29.0,
        },
        PaperTable1Row {
            config: ManagerConfig::NexusSharp { task_graphs: 6 },
            registers_pct: 4.0,
            luts_pct: 44.0,
            brams_pct: 69.0,
            max_freq_mhz: 55.66,
            test_freq_mhz: 55.56,
            total_util_pct: 44.0,
        },
        PaperTable1Row {
            config: ManagerConfig::NexusSharp { task_graphs: 8 },
            registers_pct: 4.0,
            luts_pct: 58.0,
            brams_pct: 91.0,
            max_freq_mhz: 43.53,
            test_freq_mhz: 41.66,
            total_util_pct: 58.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DeviceCapacity, ResourceModel};

    #[test]
    fn table_has_all_six_rows_in_order() {
        let rows = paper_table1();
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0].config, ManagerConfig::NexusPP);
        assert_eq!(rows[5].config, ManagerConfig::NexusSharp { task_graphs: 8 });
    }

    #[test]
    fn model_tracks_every_paper_row_within_tolerance() {
        let model = ResourceModel::paper_calibrated();
        let dev = DeviceCapacity::ZC706;
        for row in paper_table1() {
            let est = model.estimate(row.config);
            assert!(
                (est.lut_util(dev) * 100.0 - row.luts_pct).abs() <= 1.5,
                "{}: LUT {} vs {}",
                row.config.label(),
                est.lut_util(dev) * 100.0,
                row.luts_pct
            );
            assert!(
                (est.bram_util(dev) * 100.0 - row.brams_pct).abs() <= 2.0,
                "{}: BRAM",
                row.config.label()
            );
            assert!(
                (est.test_freq_mhz - row.test_freq_mhz).abs() < 0.05,
                "{}: test freq {} vs {}",
                row.config.label(),
                est.test_freq_mhz,
                row.test_freq_mhz
            );
        }
    }

    #[test]
    fn frequencies_decrease_with_task_graphs() {
        let rows = paper_table1();
        for w in rows[1..].windows(2) {
            assert!(w[1].max_freq_mhz <= w[0].max_freq_mhz);
        }
    }
}
