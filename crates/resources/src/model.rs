//! The analytical resource & frequency model.

use serde::{Deserialize, Serialize};

/// The FPGA device the paper targets (Xilinx ZYNQ-7 ZC706, XC7Z045).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceCapacity {
    /// Total flip-flops/registers.
    pub registers: u64,
    /// Total look-up tables.
    pub luts: u64,
    /// Total 36 Kb block RAMs.
    pub brams: u64,
}

impl DeviceCapacity {
    /// The ZC706 capacities from Table I.
    pub const ZC706: DeviceCapacity = DeviceCapacity {
        registers: 437_200,
        luts: 218_600,
        brams: 545,
    };
}

/// A hardware task-manager configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ManagerConfig {
    /// The Nexus++ baseline (single central task graph).
    NexusPP,
    /// Nexus# with the given number of task graphs (1–32 supported by the
    /// distribution function; 1–8 synthesized in the paper).
    NexusSharp {
        /// Number of task-graph units.
        task_graphs: u32,
    },
}

impl ManagerConfig {
    /// Human-readable label matching the paper's Table I rows.
    pub fn label(&self) -> String {
        match self {
            ManagerConfig::NexusPP => "Nexus++".to_string(),
            ManagerConfig::NexusSharp { task_graphs } => {
                format!(
                    "Nexus# {task_graphs} TG{}",
                    if *task_graphs == 1 { "" } else { "s" }
                )
            }
        }
    }
}

/// Estimated resources and clocking of a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceEstimate {
    /// Flip-flop / register count.
    pub registers: u64,
    /// LUT count.
    pub luts: u64,
    /// Block-RAM count.
    pub brams: u64,
    /// Maximum achievable clock frequency (MHz).
    pub max_freq_mhz: f64,
    /// Frequency actually used for the performance evaluation (MHz).
    pub test_freq_mhz: f64,
}

impl ResourceEstimate {
    /// Register utilization (0–1) of a device.
    pub fn register_util(&self, dev: DeviceCapacity) -> f64 {
        self.registers as f64 / dev.registers as f64
    }
    /// LUT utilization (0–1) of a device.
    pub fn lut_util(&self, dev: DeviceCapacity) -> f64 {
        self.luts as f64 / dev.luts as f64
    }
    /// Block-RAM utilization (0–1) of a device.
    pub fn bram_util(&self, dev: DeviceCapacity) -> f64 {
        self.brams as f64 / dev.brams as f64
    }
    /// The paper's "Total Util." column: the dominant computational-resource
    /// utilization (LUTs) rounded to a percentage.
    pub fn total_util(&self, dev: DeviceCapacity) -> f64 {
        self.lut_util(dev)
    }
    /// True if the configuration fits on the device.
    pub fn fits(&self, dev: DeviceCapacity) -> bool {
        self.registers <= dev.registers && self.luts <= dev.luts && self.brams <= dev.brams
    }
}

/// Calibration constants of the linear area model (per-unit increments and the
/// shared front-end), fitted to Table I. See the crate docs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceModel {
    /// Registers of the shared front-end (Nexus IO, Input Parser, arbiter core).
    pub base_registers: f64,
    /// Registers added per task graph.
    pub per_tg_registers: f64,
    /// LUTs of the shared front-end.
    pub base_luts: f64,
    /// LUTs added per task graph (task-graph FSM plus its share of the
    /// distribution and arbitration logic).
    pub per_tg_luts: f64,
    /// Block RAMs of the shared front-end (task pool, function-pointer table,
    /// global dependence-counts table).
    pub base_brams: f64,
    /// Block RAMs per task graph (the set-associative tables and buffers).
    pub per_tg_brams: f64,
    /// Source clock (MHz) whose integer dividers are the selectable test
    /// frequencies.
    pub source_clock_mhz: f64,
}

impl Default for ResourceModel {
    fn default() -> Self {
        // Linear fit through the 1-TG and 8-TG rows of Table I (the 8-TG row is
        // given in absolute numbers in §IV-E: 19,350 registers / 127,290 LUTs).
        ResourceModel {
            base_registers: 2_230.0,
            per_tg_registers: 2_140.0,
            base_luts: 1_870.0,
            per_tg_luts: 15_620.0,
            base_brams: 10.0,
            per_tg_brams: 60.8,
            source_clock_mhz: 500.0,
        }
    }
}

/// Measured maximum-frequency points from Table I used for interpolation:
/// (task graphs, MHz).
const FMAX_POINTS: [(f64, f64); 5] = [
    (1.0, 112.63),
    (2.0, 112.63),
    (4.0, 85.26),
    (6.0, 55.66),
    (8.0, 43.53),
];

impl ResourceModel {
    /// The default, Table-I-calibrated model.
    pub fn paper_calibrated() -> Self {
        Self::default()
    }

    /// Resource estimate for a configuration.
    pub fn estimate(&self, config: ManagerConfig) -> ResourceEstimate {
        match config {
            ManagerConfig::NexusPP => ResourceEstimate {
                // Nexus++ is "most analogous" to the 1-TG Nexus# configuration
                // but with a slightly leaner front-end (no scatter-gather) and a
                // slightly larger single table (Table I: 7% LUTs, 14% BRAMs).
                registers: 4_350,
                luts: 15_300,
                brams: 76,
                max_freq_mhz: 114.44,
                test_freq_mhz: 100.0,
            },
            ManagerConfig::NexusSharp { task_graphs } => {
                let n = task_graphs.max(1) as f64;
                let max_freq = self.max_freq_mhz(task_graphs);
                ResourceEstimate {
                    registers: (self.base_registers + self.per_tg_registers * n).round() as u64,
                    luts: (self.base_luts + self.per_tg_luts * n).round() as u64,
                    brams: (self.base_brams + self.per_tg_brams * n).round() as u64,
                    max_freq_mhz: max_freq,
                    test_freq_mhz: self.test_freq_mhz(task_graphs),
                }
            }
        }
    }

    /// Maximum achievable frequency for a Nexus# configuration, interpolated
    /// piecewise-linearly between the paper's measured points (clamped at the
    /// ends, extrapolated ∝ 1/n beyond 8 task graphs).
    pub fn max_freq_mhz(&self, task_graphs: u32) -> f64 {
        let n = task_graphs.max(1) as f64;
        let (first_n, first_f) = FMAX_POINTS[0];
        let (last_n, last_f) = FMAX_POINTS[FMAX_POINTS.len() - 1];
        if n <= first_n {
            return first_f;
        }
        if n >= last_n {
            // Critical path keeps growing with the arbiter fan-in: scale ~1/n.
            return last_f * last_n / n;
        }
        for w in FMAX_POINTS.windows(2) {
            let (n0, f0) = w[0];
            let (n1, f1) = w[1];
            if n >= n0 && n <= n1 {
                let t = (n - n0) / (n1 - n0);
                return f0 + t * (f1 - f0);
            }
        }
        unreachable!("interpolation covers the full range")
    }

    /// The test frequency used in the evaluation: the fastest integer divider
    /// of the source clock that does not exceed the achievable frequency,
    /// floored at 1 MHz.
    pub fn test_freq_mhz(&self, task_graphs: u32) -> f64 {
        let fmax = self.max_freq_mhz(task_graphs);
        let mut div = 1u32;
        loop {
            let f = self.source_clock_mhz / div as f64;
            if f <= fmax + 1e-9 {
                return f;
            }
            div += 1;
            if div > 500 {
                return 1.0;
            }
        }
    }

    /// Largest Nexus# configuration that fits on a device.
    pub fn largest_fitting(&self, dev: DeviceCapacity, max_tgs: u32) -> u32 {
        let mut best = 0;
        for n in 1..=max_tgs {
            if self
                .estimate(ManagerConfig::NexusSharp { task_graphs: n })
                .fits(dev)
            {
                best = n;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lut_percentages_are_reproduced() {
        let m = ResourceModel::paper_calibrated();
        let dev = DeviceCapacity::ZC706;
        // Paper: 8%, 15%, 29%, 44%, 58% for 1/2/4/6/8 TGs (LUT column).
        let expect = [(1u32, 8.0), (2, 15.0), (4, 29.0), (6, 44.0), (8, 58.0)];
        for (tgs, pct) in expect {
            let est = m.estimate(ManagerConfig::NexusSharp { task_graphs: tgs });
            let got = est.lut_util(dev) * 100.0;
            assert!(
                (got - pct).abs() <= 1.5,
                "{tgs} TGs: model {got:.1}% vs paper {pct}%"
            );
        }
    }

    #[test]
    fn table1_bram_percentages_are_reproduced() {
        let m = ResourceModel::paper_calibrated();
        let dev = DeviceCapacity::ZC706;
        let expect = [(1u32, 13.0), (2, 25.0), (4, 47.0), (6, 69.0), (8, 91.0)];
        for (tgs, pct) in expect {
            let est = m.estimate(ManagerConfig::NexusSharp { task_graphs: tgs });
            let got = est.bram_util(dev) * 100.0;
            assert!(
                (got - pct).abs() <= 2.0,
                "{tgs} TGs: model {got:.1}% vs paper {pct}%"
            );
        }
    }

    #[test]
    fn eight_tg_absolute_numbers_match_section_4e() {
        let m = ResourceModel::paper_calibrated();
        let est = m.estimate(ManagerConfig::NexusSharp { task_graphs: 8 });
        // Paper §IV-E: 19,350 registers and 127,290 LUTs for the 8-TG design.
        assert!(
            (est.registers as f64 - 19_350.0).abs() / 19_350.0 < 0.03,
            "{}",
            est.registers
        );
        assert!(
            (est.luts as f64 - 127_290.0).abs() / 127_290.0 < 0.03,
            "{}",
            est.luts
        );
    }

    #[test]
    fn test_frequencies_match_table1() {
        let m = ResourceModel::paper_calibrated();
        let expect = [
            (1u32, 100.0),
            (2, 100.0),
            (4, 83.33),
            (6, 55.56),
            (8, 41.66),
        ];
        for (tgs, mhz) in expect {
            let got = m.test_freq_mhz(tgs);
            assert!((got - mhz).abs() < 0.05, "{tgs} TGs: {got} vs {mhz}");
        }
    }

    #[test]
    fn max_frequencies_interpolate_and_extrapolate() {
        let m = ResourceModel::paper_calibrated();
        assert!((m.max_freq_mhz(1) - 112.63).abs() < 1e-9);
        assert!((m.max_freq_mhz(6) - 55.66).abs() < 1e-9);
        // Between measured points: monotone non-increasing.
        assert!(m.max_freq_mhz(3) <= m.max_freq_mhz(2));
        assert!(m.max_freq_mhz(5) <= m.max_freq_mhz(4));
        // Beyond 8 TGs the frequency keeps dropping.
        assert!(m.max_freq_mhz(16) < m.max_freq_mhz(8));
        assert!(m.max_freq_mhz(16) > 0.0);
    }

    #[test]
    fn nexus_pp_matches_its_table1_row() {
        let m = ResourceModel::paper_calibrated();
        let dev = DeviceCapacity::ZC706;
        let est = m.estimate(ManagerConfig::NexusPP);
        assert!((est.lut_util(dev) * 100.0 - 7.0).abs() < 1.0);
        assert!((est.bram_util(dev) * 100.0 - 14.0).abs() < 1.0);
        assert_eq!(est.test_freq_mhz, 100.0);
        assert!(est.fits(dev));
        assert_eq!(ManagerConfig::NexusPP.label(), "Nexus++");
        assert_eq!(
            ManagerConfig::NexusSharp { task_graphs: 6 }.label(),
            "Nexus# 6 TGs"
        );
    }

    #[test]
    fn everything_up_to_8_tgs_fits_the_zc706() {
        let m = ResourceModel::paper_calibrated();
        assert!(m.largest_fitting(DeviceCapacity::ZC706, 16) >= 8);
        // A much smaller device (say a Virtex-5-class part) cannot fit the
        // larger configurations — the reason the authors switched boards.
        let small = DeviceCapacity {
            registers: 81_920,
            luts: 81_920,
            brams: 298,
        };
        assert!(m.largest_fitting(small, 16) < 8);
    }
}
