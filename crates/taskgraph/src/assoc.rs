//! The set-associative address table.
//!
//! Both Nexus++ and each Nexus# task graph store per-address tracking state in
//! a "set-associative cache-like structure" (§III, §IV-C): the low bits of the
//! (cache-line-aligned) address select a set, and a small number of ways per
//! set hold the active address entries. When a set is full, the design falls
//! back to dummy/overflow entries, which cost extra cycles to reach; the table
//! reports these events so the timing models can charge for them and the
//! statistics can show how often they happen.

use nexus_sim::FxHashMap;
use serde::{Deserialize, Serialize};

/// Geometry of a set-associative table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SetAssocConfig {
    /// Number of sets (must be a power of two).
    pub sets: usize,
    /// Ways (entries) per set.
    pub ways: usize,
    /// Low address bits ignored when indexing (cache-line offset bits).
    pub line_offset_bits: u32,
}

impl Default for SetAssocConfig {
    fn default() -> Self {
        // 512 sets x 4 ways = 2048 simultaneously tracked addresses per task
        // graph, comfortably above the working sets of the paper's benchmarks.
        SetAssocConfig {
            sets: 512,
            ways: 4,
            line_offset_bits: 6,
        }
    }
}

impl SetAssocConfig {
    /// Total entry capacity before overflow.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways
    }

    /// Set index for an address.
    pub fn set_of(&self, addr: u64) -> usize {
        ((addr >> self.line_offset_bits) as usize) & (self.sets - 1)
    }

    /// Validates the geometry.
    pub fn validate(&self) -> Result<(), String> {
        if self.sets == 0 || !self.sets.is_power_of_two() {
            return Err(format!(
                "sets must be a non-zero power of two, got {}",
                self.sets
            ));
        }
        if self.ways == 0 {
            return Err("ways must be non-zero".to_string());
        }
        Ok(())
    }
}

/// Where an entry lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// In its home set.
    Way,
    /// In the overflow (dummy-entry) area because the home set was full.
    Overflow,
}

#[derive(Debug, Clone)]
struct WayEntry<V> {
    addr: u64,
    value: V,
}

/// Occupancy and event statistics of a table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableStats {
    /// Entries currently resident in ways.
    pub resident: usize,
    /// Entries currently in the overflow area.
    pub overflowed: usize,
    /// Total insertions.
    pub insertions: u64,
    /// Insertions that had to use the overflow area.
    pub overflow_insertions: u64,
    /// Lookups that found their entry in the overflow area.
    pub overflow_hits: u64,
    /// Peak number of simultaneously live entries (ways + overflow).
    pub peak_live: usize,
}

/// A set-associative table keyed by 48-bit addresses with an overflow area.
#[derive(Debug, Clone)]
pub struct SetAssocTable<V> {
    config: SetAssocConfig,
    sets: Vec<Vec<WayEntry<V>>>,
    overflow: FxHashMap<u64, V>,
    stats: TableStats,
}

impl<V> SetAssocTable<V> {
    /// Creates an empty table with the given geometry.
    ///
    /// # Panics
    /// Panics if the geometry is invalid.
    pub fn new(config: SetAssocConfig) -> Self {
        config.validate().expect("invalid set-associative geometry");
        SetAssocTable {
            config,
            sets: (0..config.sets)
                .map(|_| Vec::with_capacity(config.ways))
                .collect(),
            overflow: FxHashMap::default(),
            stats: TableStats::default(),
        }
    }

    /// Table geometry.
    pub fn config(&self) -> &SetAssocConfig {
        &self.config
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> TableStats {
        self.stats
    }

    /// Number of live entries (ways + overflow).
    pub fn len(&self) -> usize {
        self.stats.resident + self.stats.overflowed
    }

    /// True if the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up an entry, reporting where it was found.
    pub fn get(&self, addr: u64) -> Option<(&V, Placement)> {
        let set = &self.sets[self.config.set_of(addr)];
        if let Some(e) = set.iter().find(|e| e.addr == addr) {
            return Some((&e.value, Placement::Way));
        }
        self.overflow.get(&addr).map(|v| (v, Placement::Overflow))
    }

    /// Mutable lookup, reporting where the entry was found and counting
    /// overflow hits.
    pub fn get_mut(&mut self, addr: u64) -> Option<(&mut V, Placement)> {
        let set_idx = self.config.set_of(addr);
        // Split borrows: check the home set first.
        if self.sets[set_idx].iter().any(|e| e.addr == addr) {
            let e = self.sets[set_idx]
                .iter_mut()
                .find(|e| e.addr == addr)
                .expect("just found");
            return Some((&mut e.value, Placement::Way));
        }
        if let Some(v) = self.overflow.get_mut(&addr) {
            self.stats.overflow_hits += 1;
            return Some((v, Placement::Overflow));
        }
        None
    }

    /// Returns the entry for `addr`, inserting a fresh one created by `init` if
    /// absent. Reports the placement and whether a new entry was allocated.
    pub fn get_or_insert_with(
        &mut self,
        addr: u64,
        init: impl FnOnce() -> V,
    ) -> (&mut V, Placement, bool) {
        let set_idx = self.config.set_of(addr);
        let in_way = self.sets[set_idx].iter().any(|e| e.addr == addr);
        if in_way {
            let e = self.sets[set_idx]
                .iter_mut()
                .find(|e| e.addr == addr)
                .expect("just found");
            return (&mut e.value, Placement::Way, false);
        }
        if self.overflow.contains_key(&addr) {
            self.stats.overflow_hits += 1;
            let v = self.overflow.get_mut(&addr).expect("just found");
            return (v, Placement::Overflow, false);
        }
        // Allocate.
        self.stats.insertions += 1;
        let placement = if self.sets[set_idx].len() < self.config.ways {
            self.sets[set_idx].push(WayEntry {
                addr,
                value: init(),
            });
            self.stats.resident += 1;
            Placement::Way
        } else {
            self.stats.overflow_insertions += 1;
            self.overflow.insert(addr, init());
            self.stats.overflowed += 1;
            Placement::Overflow
        };
        self.stats.peak_live = self.stats.peak_live.max(self.len());
        match placement {
            Placement::Way => {
                let e = self.sets[set_idx].last_mut().expect("just pushed");
                (&mut e.value, Placement::Way, true)
            }
            Placement::Overflow => (
                self.overflow.get_mut(&addr).expect("just inserted"),
                Placement::Overflow,
                true,
            ),
        }
    }

    /// Removes the entry for `addr`, returning its value.
    pub fn remove(&mut self, addr: u64) -> Option<V> {
        let set_idx = self.config.set_of(addr);
        if let Some(pos) = self.sets[set_idx].iter().position(|e| e.addr == addr) {
            self.stats.resident -= 1;
            return Some(self.sets[set_idx].swap_remove(pos).value);
        }
        if let Some(v) = self.overflow.remove(&addr) {
            self.stats.overflowed -= 1;
            return Some(v);
        }
        None
    }

    /// Iterates over all live entries (way entries first, then overflow).
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.sets
            .iter()
            .flat_map(|s| s.iter().map(|e| (e.addr, &e.value)))
            .chain(self.overflow.iter().map(|(a, v)| (*a, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocTable<u32> {
        SetAssocTable::new(SetAssocConfig {
            sets: 2,
            ways: 2,
            line_offset_bits: 6,
        })
    }

    #[test]
    fn insert_lookup_remove_round_trip() {
        let mut t = tiny();
        let (v, p, fresh) = t.get_or_insert_with(0x1000, || 7);
        assert_eq!((*v, p, fresh), (7, Placement::Way, true));
        let (v, p, fresh) = t.get_or_insert_with(0x1000, || 99);
        assert_eq!((*v, p, fresh), (7, Placement::Way, false));
        *v = 8;
        assert_eq!(t.get(0x1000).unwrap().0, &8);
        assert_eq!(t.remove(0x1000), Some(8));
        assert!(t.get(0x1000).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn set_conflicts_fall_back_to_overflow() {
        let mut t = tiny();
        // Addresses 0x0, 0x80, 0x100, 0x180 with 64-byte lines and 2 sets:
        // line indices 0,2,4,6 -> all even -> set 0. Two fit, the rest overflow.
        let addrs = [0x0u64, 0x80, 0x100, 0x180];
        let mut placements = Vec::new();
        for (i, &a) in addrs.iter().enumerate() {
            let (_, p, fresh) = t.get_or_insert_with(a, || i as u32);
            assert!(fresh);
            placements.push(p);
        }
        assert_eq!(placements[0], Placement::Way);
        assert_eq!(placements[1], Placement::Way);
        assert_eq!(placements[2], Placement::Overflow);
        assert_eq!(placements[3], Placement::Overflow);
        let s = t.stats();
        assert_eq!(s.insertions, 4);
        assert_eq!(s.overflow_insertions, 2);
        assert_eq!(s.resident, 2);
        assert_eq!(s.overflowed, 2);
        assert_eq!(s.peak_live, 4);
        // Lookups in the overflow area are counted.
        assert_eq!(t.get_mut(0x100).unwrap().1, Placement::Overflow);
        assert!(t.stats().overflow_hits >= 1);
        // Removing a way entry frees the slot for a later insertion.
        t.remove(0x0);
        let (_, p, _) = t.get_or_insert_with(0x200, || 9);
        assert_eq!(p, Placement::Way);
    }

    #[test]
    fn iter_visits_everything() {
        let mut t = tiny();
        for i in 0..6u64 {
            t.get_or_insert_with(i * 64, || i as u32);
        }
        let mut seen: Vec<u64> = t.iter().map(|(a, _)| a).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..6).map(|i| i * 64).collect::<Vec<_>>());
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn default_config_is_sane() {
        let c = SetAssocConfig::default();
        assert!(c.validate().is_ok());
        assert_eq!(c.capacity(), 2048);
        // Two addresses on the same line map to the same set.
        assert_eq!(c.set_of(0x1000), c.set_of(0x1020));
        assert_ne!(c.set_of(0x1000), c.set_of(0x1040));
    }

    #[test]
    fn invalid_geometry_rejected() {
        assert!(SetAssocConfig {
            sets: 3,
            ways: 2,
            line_offset_bits: 6
        }
        .validate()
        .is_err());
        assert!(SetAssocConfig {
            sets: 4,
            ways: 0,
            line_offset_bits: 6
        }
        .validate()
        .is_err());
    }
}
