//! The Dependence Counts table.
//!
//! The Dependence Counts Arbiter of Nexus# gathers, for every inserted task,
//! the number of kick-off lists it was added to across all task graphs, and
//! stores tasks that are not yet ready in "the global Dep. Counts Table"
//! (§IV-C). When finished tasks kick off waiters, the arbiter decrements their
//! counts "one by one, and decides accordingly whether they are ready to run,
//! or not yet".
//!
//! [`DepCountsTable`] is that table: per-task outstanding dependence counters
//! with add/decrement operations, plus a pending-parameter counter used during
//! the scatter-gather phase (a task is only decided once *all* its parameters
//! have been processed by their task graphs — the role of the Sim(-ultaneous)
//! Tasks Dep. Counts Buffer).

use nexus_sim::FxHashMap;
use nexus_trace::TaskId;
use serde::{Deserialize, Serialize};

/// Per-task gathering state while its parameters are being processed and while
/// it waits for its dependencies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
struct Entry {
    /// Parameters not yet processed by their task graph.
    pending_params: u32,
    /// Unresolved dependencies (kick-off lists the task sits in).
    deps: u32,
}

/// Statistics of the dependence-counts table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DepCountsStats {
    /// Tasks tracked.
    pub tasks: u64,
    /// Tasks that were ready as soon as their last parameter was processed.
    pub ready_at_gather: u64,
    /// Peak number of simultaneously tracked tasks.
    pub peak_tracked: usize,
}

/// The global dependence-counts table of the arbiter.
#[derive(Debug, Clone, Default)]
pub struct DepCountsTable {
    entries: FxHashMap<TaskId, Entry>,
    stats: DepCountsStats,
}

impl DepCountsTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> DepCountsStats {
        self.stats
    }

    /// Number of tasks currently tracked (parameters outstanding or waiting).
    pub fn tracked(&self) -> usize {
        self.entries.len()
    }

    /// Registers a task that will have `num_params` parameters processed.
    pub fn begin_task(&mut self, task: TaskId, num_params: u32) {
        debug_assert!(num_params > 0, "a task must have at least one parameter");
        debug_assert!(
            !self.entries.contains_key(&task),
            "{task} registered twice in the dependence-counts table"
        );
        self.stats.tasks += 1;
        self.entries.insert(
            task,
            Entry {
                pending_params: num_params,
                deps: 0,
            },
        );
        self.stats.peak_tracked = self.stats.peak_tracked.max(self.entries.len());
    }

    /// Records the arbiter gathering the result of one parameter insertion:
    /// `blocked` tells whether that parameter landed in a kick-off list.
    /// Returns `Some(ready)` when this was the task's last outstanding
    /// parameter — `ready` is true if the task ended up with zero dependencies
    /// (and is removed from the table); otherwise it stays tracked.
    pub fn param_processed(&mut self, task: TaskId, blocked: bool) -> Option<bool> {
        let e = self
            .entries
            .get_mut(&task)
            .expect("param_processed for unregistered task");
        debug_assert!(e.pending_params > 0);
        e.pending_params -= 1;
        if blocked {
            e.deps += 1;
        }
        if e.pending_params == 0 {
            let ready = e.deps == 0;
            if ready {
                self.stats.ready_at_gather += 1;
                self.entries.remove(&task);
            }
            Some(ready)
        } else {
            None
        }
    }

    /// Decrements the dependence count of a waiting task (one of its kick-off
    /// list entries was released). Returns `true` if the task became ready
    /// (it is then removed from the table). Decrements received while
    /// parameters are still being gathered simply lower the running count.
    pub fn release_one(&mut self, task: TaskId) -> bool {
        let e = self
            .entries
            .get_mut(&task)
            .expect("release_one for unknown task");
        debug_assert!(e.deps > 0, "{task} released more times than it was blocked");
        e.deps -= 1;
        if e.deps == 0 && e.pending_params == 0 {
            self.entries.remove(&task);
            true
        } else {
            false
        }
    }

    /// Current outstanding dependence count (`None` if the task is not tracked).
    pub fn deps(&self, task: TaskId) -> Option<u32> {
        self.entries.get(&task).map(|e| e.deps)
    }

    /// Parameters still to be gathered for a task (`None` if not tracked).
    pub fn pending_params(&self, task: TaskId) -> Option<u32> {
        self.entries.get(&task).map(|e| e.pending_params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(id: u64) -> TaskId {
        TaskId(id)
    }

    #[test]
    fn ready_task_is_decided_at_last_param() {
        let mut table = DepCountsTable::new();
        table.begin_task(t(0), 3);
        assert_eq!(table.param_processed(t(0), false), None);
        assert_eq!(table.param_processed(t(0), false), None);
        assert_eq!(table.param_processed(t(0), false), Some(true));
        assert_eq!(table.tracked(), 0);
        assert_eq!(table.stats().ready_at_gather, 1);
    }

    #[test]
    fn blocked_task_waits_for_releases() {
        let mut table = DepCountsTable::new();
        table.begin_task(t(1), 2);
        assert_eq!(table.param_processed(t(1), true), None);
        assert_eq!(table.param_processed(t(1), true), Some(false));
        assert_eq!(table.deps(t(1)), Some(2));
        assert!(!table.release_one(t(1)));
        assert!(table.release_one(t(1)));
        assert_eq!(table.tracked(), 0);
    }

    #[test]
    fn early_release_during_gather_is_handled() {
        // A task graph may kick off a waiting parameter before the arbiter has
        // gathered the task's remaining parameters (out-of-order completion of
        // the scatter phase).
        let mut table = DepCountsTable::new();
        table.begin_task(t(2), 2);
        assert_eq!(table.param_processed(t(2), true), None);
        // The blocker retires before the second parameter is gathered.
        assert!(!table.release_one(t(2)));
        // Second parameter not blocked: the task is ready at gather completion.
        assert_eq!(table.param_processed(t(2), false), Some(true));
    }

    #[test]
    fn peak_tracking() {
        let mut table = DepCountsTable::new();
        for i in 0..10 {
            table.begin_task(t(i), 1);
            table.param_processed(t(i), true);
        }
        assert_eq!(table.stats().peak_tracked, 10);
        assert_eq!(table.pending_params(t(3)), Some(0));
        for i in 0..10 {
            assert!(table.release_one(t(i)));
        }
        assert_eq!(table.tracked(), 0);
    }
}
