//! A reference software dependency graph.
//!
//! [`ReferenceGraph`] implements OmpSs dependency semantics with the simplest
//! possible bookkeeping (per-address last-writer / reader-set maps and explicit
//! per-task predecessor sets). It has no capacity limits and no timing model.
//! It serves three purposes:
//!
//! 1. **test oracle** — property tests check that [`crate::DependencyTracker`]
//!    (and, transitively, both hardware manager models) release tasks in
//!    exactly the same situations,
//! 2. **software runtime model** — the Nanos cost model resolves dependencies
//!    with this graph,
//! 3. **trace analysis** — critical-path and parallelism profiling of the
//!    generated workloads.

use nexus_trace::{TaskDescriptor, TaskId};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Per-address bookkeeping.
#[derive(Debug, Clone, Default)]
struct AddrInfo {
    /// Most recently submitted writer (retired or not).
    last_writer: Option<TaskId>,
    /// Tasks reading the current version since the last writer.
    readers_since_write: Vec<TaskId>,
}

/// Statistics of a reference graph.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RefGraphStats {
    /// Tasks inserted.
    pub tasks_inserted: u64,
    /// Tasks that were immediately ready at insertion.
    pub ready_at_insert: u64,
    /// Tasks retired.
    pub tasks_retired: u64,
    /// Total number of direct dependency edges recorded.
    pub edges: u64,
}

/// A software dependency graph with exact OmpSs semantics.
#[derive(Debug, Clone, Default)]
pub struct ReferenceGraph {
    addr_info: HashMap<u64, AddrInfo>,
    /// Unretired predecessors per live task.
    blockers: HashMap<TaskId, HashSet<TaskId>>,
    /// Dependents per live task (tasks that wait for it).
    dependents: HashMap<TaskId, Vec<TaskId>>,
    /// Tasks inserted but not retired.
    live: HashSet<TaskId>,
    /// Direct dependencies recorded at insertion time (including already
    /// retired predecessors) — used for trace analysis.
    direct_deps: HashMap<TaskId, Vec<TaskId>>,
    stats: RefGraphStats,
}

impl ReferenceGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> RefGraphStats {
        self.stats
    }

    /// Number of tasks inserted but not yet retired.
    pub fn live_tasks(&self) -> usize {
        self.live.len()
    }

    /// Inserts a task; returns `true` if it is immediately ready (no unretired
    /// predecessors).
    pub fn insert(&mut self, task: &TaskDescriptor) -> bool {
        self.stats.tasks_inserted += 1;
        let id = task.id;
        let mut blockers: HashSet<TaskId> = HashSet::new();
        let mut direct: HashSet<TaskId> = HashSet::new();

        for p in &task.params {
            let info = self.addr_info.entry(p.addr).or_default();
            if p.dir.writes() {
                // WAW on the last writer, WAR on every reader since it.
                if let Some(w) = info.last_writer {
                    direct.insert(w);
                    if self.live.contains(&w) {
                        blockers.insert(w);
                    }
                }
                for &r in &info.readers_since_write {
                    if r != id {
                        direct.insert(r);
                        if self.live.contains(&r) {
                            blockers.insert(r);
                        }
                    }
                }
                info.last_writer = Some(id);
                info.readers_since_write.clear();
                if p.dir.reads() {
                    // An inout also reads the previous version, but the RAW edge
                    // is already covered by the WAW edge on the last writer.
                }
            } else {
                // RAW on the last writer.
                if let Some(w) = info.last_writer {
                    direct.insert(w);
                    if self.live.contains(&w) {
                        blockers.insert(w);
                    }
                }
                info.readers_since_write.push(id);
            }
        }

        self.stats.edges += direct.len() as u64;
        let mut direct: Vec<TaskId> = direct.into_iter().collect();
        direct.sort_unstable();
        self.direct_deps.insert(id, direct);

        self.live.insert(id);
        for &b in &blockers {
            self.dependents.entry(b).or_default().push(id);
        }
        let ready = blockers.is_empty();
        if ready {
            self.stats.ready_at_insert += 1;
        } else {
            self.blockers.insert(id, blockers);
        }
        ready
    }

    /// Retires a task; returns the tasks that become ready as a result,
    /// in deterministic (id) order.
    pub fn retire(&mut self, id: TaskId) -> Vec<TaskId> {
        self.stats.tasks_retired += 1;
        debug_assert!(
            self.live.contains(&id),
            "retiring unknown or retired task {id}"
        );
        self.live.remove(&id);
        let mut newly_ready = Vec::new();
        if let Some(deps) = self.dependents.remove(&id) {
            for d in deps {
                if let Some(b) = self.blockers.get_mut(&d) {
                    b.remove(&id);
                    if b.is_empty() {
                        self.blockers.remove(&d);
                        newly_ready.push(d);
                    }
                }
            }
        }
        newly_ready.sort_unstable();
        newly_ready
    }

    /// Number of unretired predecessors of a live task (0 if ready or unknown).
    pub fn blocker_count(&self, id: TaskId) -> usize {
        self.blockers.get(&id).map(|b| b.len()).unwrap_or(0)
    }

    /// True if the task was inserted and is currently ready to run (no
    /// unretired predecessors) but not yet retired.
    pub fn is_ready(&self, id: TaskId) -> bool {
        self.live.contains(&id) && !self.blockers.contains_key(&id)
    }

    /// Direct dependencies recorded for a task (including retired ones).
    pub fn direct_deps(&self, id: TaskId) -> Option<&[TaskId]> {
        self.direct_deps.get(&id).map(|v| v.as_slice())
    }

    /// The most recently submitted writer of an address, if any (used to
    /// resolve `taskwait on(addr)`).
    pub fn last_writer(&self, addr: u64) -> Option<TaskId> {
        self.addr_info.get(&addr).and_then(|i| i.last_writer)
    }
}

/// Critical-path analysis of a whole trace: the longest chain of dependent
/// tasks weighted by task duration, and the resulting maximum speedup
/// (total work / critical path). Used to compute the "No Overhead" ideal
/// curves' asymptotes and for workload validation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParallelismProfile {
    /// Total work in microseconds.
    pub total_work_us: f64,
    /// Critical path length in microseconds (including barrier ordering).
    pub critical_path_us: f64,
}

impl ParallelismProfile {
    /// Average available parallelism (total work / critical path).
    pub fn average_parallelism(&self) -> f64 {
        if self.critical_path_us <= 0.0 {
            0.0
        } else {
            self.total_work_us / self.critical_path_us
        }
    }

    /// Computes the profile of a trace.
    pub fn of(trace: &nexus_trace::Trace) -> Self {
        use nexus_trace::TraceOp;
        let mut graph = ReferenceGraph::new();
        // Earliest completion time (in µs) of each retired-or-live task assuming
        // unlimited cores and zero overhead.
        let mut completion: HashMap<TaskId, f64> = HashMap::new();
        let mut barrier_floor = 0.0_f64; // earliest start after the last taskwait
        let mut max_completion = 0.0_f64;
        let mut total = 0.0_f64;

        for op in &trace.ops {
            match op {
                TraceOp::Submit(task) => {
                    graph.insert(task);
                    let dep_finish = graph
                        .direct_deps(task.id)
                        .unwrap_or(&[])
                        .iter()
                        .filter_map(|d| completion.get(d).copied())
                        .fold(0.0_f64, f64::max);
                    let start = dep_finish.max(barrier_floor);
                    let finish = start + task.duration.as_us_f64();
                    completion.insert(task.id, finish);
                    max_completion = max_completion.max(finish);
                    total += task.duration.as_us_f64();
                }
                TraceOp::Taskwait => {
                    barrier_floor = barrier_floor.max(max_completion);
                }
                TraceOp::TaskwaitOn(addr) => {
                    if let Some(w) = graph.last_writer(*addr) {
                        if let Some(&f) = completion.get(&w) {
                            barrier_floor = barrier_floor.max(f);
                        }
                    }
                }
                TraceOp::MasterCompute(d) => {
                    barrier_floor += d.as_us_f64();
                }
            }
        }

        ParallelismProfile {
            total_work_us: total,
            critical_path_us: max_completion.max(barrier_floor),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexus_sim::SimDuration;
    use nexus_trace::generators::micro;
    use nexus_trace::TaskDescriptor;

    fn task(
        id: u64,
        f: impl FnOnce(nexus_trace::task::TaskBuilder) -> nexus_trace::task::TaskBuilder,
    ) -> TaskDescriptor {
        f(TaskDescriptor::builder(id).duration_us(1.0)).build()
    }

    #[test]
    fn simple_raw_chain() {
        let mut g = ReferenceGraph::new();
        let t0 = task(0, |b| b.output(0xa));
        let t1 = task(1, |b| b.input(0xa).output(0xb));
        let t2 = task(2, |b| b.input(0xb));
        assert!(g.insert(&t0));
        assert!(!g.insert(&t1));
        assert!(!g.insert(&t2));
        assert_eq!(g.blocker_count(TaskId(1)), 1);
        assert_eq!(g.retire(TaskId(0)), vec![TaskId(1)]);
        assert!(g.is_ready(TaskId(1)));
        assert_eq!(g.retire(TaskId(1)), vec![TaskId(2)]);
        assert_eq!(g.retire(TaskId(2)), vec![]);
        assert_eq!(g.live_tasks(), 0);
        assert_eq!(g.stats().edges, 2);
    }

    #[test]
    fn readers_then_writer_waits_for_all() {
        let mut g = ReferenceGraph::new();
        g.insert(&task(0, |b| b.output(0xa)));
        g.retire(TaskId(0));
        assert!(g.insert(&task(1, |b| b.input(0xa))));
        assert!(g.insert(&task(2, |b| b.input(0xa))));
        assert!(!g.insert(&task(3, |b| b.inout(0xa))));
        assert_eq!(g.blocker_count(TaskId(3)), 2);
        assert!(g.retire(TaskId(1)).is_empty());
        assert_eq!(g.retire(TaskId(2)), vec![TaskId(3)]);
    }

    #[test]
    fn retired_predecessors_do_not_block() {
        let mut g = ReferenceGraph::new();
        g.insert(&task(0, |b| b.output(0xa)));
        g.retire(TaskId(0));
        // The writer is retired, so the reader is ready immediately, but the
        // direct dependency edge is still recorded for analysis.
        assert!(g.insert(&task(1, |b| b.input(0xa))));
        assert_eq!(g.direct_deps(TaskId(1)).unwrap(), &[TaskId(0)]);
    }

    #[test]
    fn last_writer_is_tracked_for_taskwait_on() {
        let mut g = ReferenceGraph::new();
        assert_eq!(g.last_writer(0xa), None);
        g.insert(&task(0, |b| b.output(0xa)));
        g.insert(&task(1, |b| b.input(0xa)));
        g.insert(&task(2, |b| b.inout(0xa)));
        assert_eq!(g.last_writer(0xa), Some(TaskId(2)));
    }

    #[test]
    fn wavefront_parallelism_profile() {
        // The H.264 wavefront dependency (left + up-right) makes each row lag
        // its predecessor by two columns, so the critical path of a
        // rows x cols frame is 2*(rows-1) + cols tasks.
        let trace = micro::wavefront(6, 8, SimDuration::from_us(10));
        let p = ParallelismProfile::of(&trace);
        assert!((p.total_work_us - 480.0).abs() < 1e-9);
        assert!(
            (p.critical_path_us - 180.0).abs() < 1e-9,
            "{}",
            p.critical_path_us
        );
        assert!((p.average_parallelism() - 480.0 / 180.0).abs() < 1e-9);
    }

    #[test]
    fn chain_has_no_parallelism() {
        let trace = micro::chain(10, SimDuration::from_us(5));
        let p = ParallelismProfile::of(&trace);
        assert!((p.average_parallelism() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn independent_tasks_have_full_parallelism() {
        let trace = micro::independent_tasks(16, 2, SimDuration::from_us(5));
        let p = ParallelismProfile::of(&trace);
        assert!((p.average_parallelism() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn taskwait_on_only_waits_for_the_named_address() {
        use nexus_trace::{Trace, TraceOp};
        let mut tr = Trace::new("tw-on");
        // Long task writes A, short task writes B; master waits on B only.
        tr.submit(task(0, |b| b.output(0xa).duration_us(1000.0)));
        tr.submit(task(1, |b| b.output(0xb).duration_us(1.0)));
        tr.push(TraceOp::TaskwaitOn(0xb));
        tr.submit(task(2, |b| b.input(0xb).duration_us(1.0)));
        let p = ParallelismProfile::of(&tr);
        // The barrier only waits for the short writer of B, so the critical
        // path is the long writer of A (1000 µs), not 1000 + 1 + 1.
        assert!(
            (p.critical_path_us - 1000.0).abs() < 1e-9,
            "{}",
            p.critical_path_us
        );
    }
}
