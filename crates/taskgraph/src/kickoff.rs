//! Kick-off lists: per-address lists of waiting tasks.
//!
//! "Each one of the task graphs … uses the same set-associative data structure
//! to maintain a Kick-Off List for each incoming memory address" (§IV-C).
//! A kick-off list entry in the VHDL design is a fixed-size segment; when more
//! tasks wait on an address than a segment can hold, an additional *dummy entry*
//! is chained (validated by the Gaussian-elimination benchmark, where the first
//! pivot row is awaited by `n − 1` tasks). Traversing extra segments costs extra
//! cycles, which the timing models account for via [`KickOffList::segments`].

use nexus_trace::TaskId;
use serde::{Deserialize, Serialize};

/// Number of waiter slots per hardware segment (per dummy entry).
pub const DEFAULT_SEGMENT_CAPACITY: usize = 8;

/// A per-address list of waiting tasks with segment accounting.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KickOffList {
    waiters: Vec<TaskId>,
    segment_capacity: usize,
    /// Highest number of segments this list ever needed.
    max_segments: usize,
}

impl KickOffList {
    /// Creates an empty list with the default segment capacity.
    pub fn new() -> Self {
        Self::with_segment_capacity(DEFAULT_SEGMENT_CAPACITY)
    }

    /// Creates an empty list with a specific segment capacity.
    ///
    /// # Panics
    /// Panics if `segment_capacity` is zero.
    pub fn with_segment_capacity(segment_capacity: usize) -> Self {
        assert!(segment_capacity > 0, "segment capacity must be non-zero");
        KickOffList {
            waiters: Vec::new(),
            segment_capacity,
            max_segments: 0,
        }
    }

    /// Appends a waiting task. Returns the (1-based) segment index the waiter
    /// landed in, which the timing models translate into chaining cycles.
    pub fn push(&mut self, task: TaskId) -> usize {
        self.waiters.push(task);
        let seg = self.segments();
        self.max_segments = self.max_segments.max(seg);
        seg
    }

    /// Number of waiting tasks.
    pub fn len(&self) -> usize {
        self.waiters.len()
    }

    /// True if no task is waiting.
    pub fn is_empty(&self) -> bool {
        self.waiters.is_empty()
    }

    /// Number of hardware segments currently needed to hold the waiters
    /// (0 if the list is empty).
    pub fn segments(&self) -> usize {
        self.waiters.len().div_ceil(self.segment_capacity)
    }

    /// Highest number of segments ever needed by this list.
    pub fn max_segments(&self) -> usize {
        self.max_segments
    }

    /// Segment capacity.
    pub fn segment_capacity(&self) -> usize {
        self.segment_capacity
    }

    /// Drains all waiters (used when the producer retires and the whole list is
    /// kicked off).
    pub fn drain(&mut self) -> Vec<TaskId> {
        std::mem::take(&mut self.waiters)
    }

    /// Removes a specific waiter (used when a waiter is cancelled).
    pub fn remove(&mut self, task: TaskId) -> bool {
        if let Some(pos) = self.waiters.iter().position(|&t| t == task) {
            self.waiters.remove(pos);
            true
        } else {
            false
        }
    }

    /// Iterates over the waiting tasks in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &TaskId> {
        self.waiters.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_grow_with_waiters() {
        let mut kol = KickOffList::with_segment_capacity(4);
        assert_eq!(kol.segments(), 0);
        for i in 0..4 {
            assert_eq!(kol.push(TaskId(i)), 1);
        }
        assert_eq!(kol.segments(), 1);
        assert_eq!(kol.push(TaskId(4)), 2, "fifth waiter chains a dummy entry");
        assert_eq!(kol.len(), 5);
        assert_eq!(kol.max_segments(), 2);
        assert_eq!(kol.segment_capacity(), 4);
    }

    #[test]
    fn drain_returns_waiters_in_order_and_empties() {
        let mut kol = KickOffList::new();
        for i in 0..10 {
            kol.push(TaskId(i));
        }
        let drained = kol.drain();
        assert_eq!(drained, (0..10).map(TaskId).collect::<Vec<_>>());
        assert!(kol.is_empty());
        assert_eq!(kol.segments(), 0);
        // max_segments remembers the high-water mark.
        assert_eq!(kol.max_segments(), 2);
    }

    #[test]
    fn remove_specific_waiter() {
        let mut kol = KickOffList::new();
        kol.push(TaskId(1));
        kol.push(TaskId(2));
        kol.push(TaskId(3));
        assert!(kol.remove(TaskId(2)));
        assert!(!kol.remove(TaskId(99)));
        let rest: Vec<_> = kol.iter().copied().collect();
        assert_eq!(rest, vec![TaskId(1), TaskId(3)]);
    }

    #[test]
    fn gaussian_scale_lists_are_supported() {
        // The paper's point: no static limit. 2999 waiters on one pivot row.
        let mut kol = KickOffList::new();
        for i in 0..2999 {
            kol.push(TaskId(i));
        }
        assert_eq!(kol.len(), 2999);
        assert_eq!(kol.segments(), 2999usize.div_ceil(DEFAULT_SEGMENT_CAPACITY));
    }

    #[test]
    #[should_panic(expected = "segment capacity")]
    fn zero_segment_capacity_rejected() {
        let _ = KickOffList::with_segment_capacity(0);
    }
}
