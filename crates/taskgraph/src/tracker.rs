//! The functional dependency-resolution core shared by the hardware models.
//!
//! A [`DependencyTracker`] owns the per-address state for a *subset* of the
//! address space: the single central task graph of Nexus++ owns all addresses,
//! while each Nexus# task graph owns the addresses its distribution function
//! maps to it. The tracker implements full OmpSs dependency semantics:
//!
//! * an `in` parameter waits for the most recent unretired *writer* of the
//!   address (read-after-write),
//! * an `out`/`inout` parameter waits for every unretired earlier access of the
//!   address (write-after-write and write-after-read),
//!
//! and reports, per parameter insertion, whether the task has to wait
//! ([`InsertOutcome`]) and, per parameter retirement, which waiting tasks lost
//! their last blocker on this address ([`RetireOutcome`]). The caller (the
//! task-graph unit or the Dependence Counts Arbiter) aggregates these
//! per-address events into per-task dependence counts.
//!
//! Storage is the paper's set-associative table ([`SetAssocTable`]); overflow
//! (dummy-entry) usage and kick-off-list segment chaining are reported so the
//! timing models can charge extra cycles for them.

use crate::assoc::{Placement, SetAssocConfig, SetAssocTable};
use crate::kickoff::DEFAULT_SEGMENT_CAPACITY;
use nexus_sim::FxHashMap;
use nexus_trace::{Direction, TaskId};
use serde::{Deserialize, Serialize};

/// One outstanding (unretired) access by one task parameter.
#[derive(Debug, Clone)]
struct Access {
    writes: bool,
    /// Tasks whose parameter on this address waits for this access to retire.
    dependents: Vec<TaskId>,
}

/// Per-address tracking state.
#[derive(Debug, Clone, Default)]
struct AddrState {
    /// Outstanding accesses, keyed by task.
    outstanding: FxHashMap<TaskId, Access>,
    /// Outstanding writers in submission order (newest last). Almost always
    /// length 0–2 in practice.
    writer_order: Vec<TaskId>,
    /// Number of tasks currently waiting on this address (the kick-off list
    /// occupancy).
    kickoff_len: usize,
    /// High-water mark of the kick-off list.
    kickoff_peak: usize,
}

impl AddrState {
    fn kickoff_segments(&self) -> usize {
        self.kickoff_len.div_ceil(DEFAULT_SEGMENT_CAPACITY)
    }
}

/// Result of inserting one task parameter into the task graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InsertOutcome {
    /// True if the parameter has unresolved predecessors (the task must wait
    /// for this address).
    pub blocked: bool,
    /// True if a new address entry had to be allocated.
    pub new_entry: bool,
    /// True if the entry lives in the overflow (dummy-entry) area.
    pub overflow: bool,
    /// Kick-off-list segment the waiter landed in (0 if not blocked);
    /// segments beyond the first model dummy-entry chaining cycles.
    pub kickoff_segment: usize,
}

/// Result of retiring one task parameter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetireOutcome {
    /// Tasks whose dependency *on this address* became fully resolved.
    pub released: Vec<TaskId>,
    /// True if the address entry became empty and was freed.
    pub entry_freed: bool,
    /// Number of waiters examined while walking the kick-off list (for timing).
    pub waiters_scanned: usize,
}

/// Statistics of a dependency tracker.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TrackerStats {
    /// Parameters inserted.
    pub params_inserted: u64,
    /// Parameters that had to wait.
    pub params_blocked: u64,
    /// Parameters retired.
    pub params_retired: u64,
    /// Largest kick-off list observed.
    pub max_kickoff_len: usize,
    /// Largest number of outstanding accesses on one address.
    pub max_accesses_per_addr: usize,
}

/// Dependency tracker over a (subset of the) address space.
#[derive(Debug, Clone)]
pub struct DependencyTracker {
    table: SetAssocTable<AddrState>,
    /// Remaining blockers per (waiting task, address).
    waiting: FxHashMap<(TaskId, u64), u32>,
    stats: TrackerStats,
}

impl DependencyTracker {
    /// Creates a tracker with the given table geometry.
    pub fn new(config: SetAssocConfig) -> Self {
        DependencyTracker {
            table: SetAssocTable::new(config),
            waiting: FxHashMap::default(),
            stats: TrackerStats::default(),
        }
    }

    /// Creates a tracker with the default geometry.
    pub fn with_default_geometry() -> Self {
        Self::new(SetAssocConfig::default())
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> TrackerStats {
        self.stats
    }

    /// Number of live address entries.
    pub fn live_addresses(&self) -> usize {
        self.table.len()
    }

    /// Underlying table statistics (occupancy, overflow usage).
    pub fn table_stats(&self) -> crate::assoc::TableStats {
        self.table.stats()
    }

    /// Inserts one parameter of `task` into the graph.
    ///
    /// Parameters must be inserted in task submission order per address (the
    /// managers guarantee this by processing requests in order per task graph).
    pub fn insert_param(&mut self, task: TaskId, addr: u64, dir: Direction) -> InsertOutcome {
        self.stats.params_inserted += 1;
        let (state, placement, new_entry) = self.table.get_or_insert_with(addr, AddrState::default);

        // Determine which outstanding accesses block this parameter.
        let mut blockers: Vec<TaskId> = Vec::new();
        if dir.writes() {
            // WAW + WAR: wait for every outstanding access.
            blockers.extend(state.outstanding.keys().copied());
        } else if let Some(&w) = state.writer_order.last() {
            // RAW: wait for the most recent outstanding writer only.
            blockers.push(w);
        }

        let blocked = !blockers.is_empty();
        let mut kickoff_segment = 0;
        if blocked {
            self.stats.params_blocked += 1;
            for b in &blockers {
                state
                    .outstanding
                    .get_mut(b)
                    .expect("blocker must be outstanding")
                    .dependents
                    .push(task);
            }
            state.kickoff_len += 1;
            state.kickoff_peak = state.kickoff_peak.max(state.kickoff_len);
            kickoff_segment = state.kickoff_segments();
            self.waiting.insert((task, addr), blockers.len() as u32);
        }

        // Record this task's own access so later tasks can depend on it.
        debug_assert!(
            !state.outstanding.contains_key(&task),
            "{task} inserted two parameters on address {addr:#x}"
        );
        state.outstanding.insert(
            task,
            Access {
                writes: dir.writes(),
                dependents: Vec::new(),
            },
        );
        if dir.writes() {
            state.writer_order.push(task);
        }

        self.stats.max_kickoff_len = self.stats.max_kickoff_len.max(state.kickoff_peak);
        self.stats.max_accesses_per_addr = self
            .stats
            .max_accesses_per_addr
            .max(state.outstanding.len());

        InsertOutcome {
            blocked,
            new_entry,
            overflow: placement == Placement::Overflow,
            kickoff_segment,
        }
    }

    /// Retires one parameter of `task` (the task has finished executing and the
    /// manager is cleaning up its entries). Returns the tasks whose dependency
    /// on this address is now fully resolved.
    pub fn retire_param(&mut self, task: TaskId, addr: u64, _dir: Direction) -> RetireOutcome {
        self.stats.params_retired += 1;
        let Some((state, _)) = self.table.get_mut(addr) else {
            debug_assert!(false, "retire_param: no entry for address {addr:#x}");
            return RetireOutcome {
                released: Vec::new(),
                entry_freed: false,
                waiters_scanned: 0,
            };
        };

        let Some(access) = state.outstanding.remove(&task) else {
            debug_assert!(false, "retire_param: {task} has no access on {addr:#x}");
            return RetireOutcome {
                released: Vec::new(),
                entry_freed: false,
                waiters_scanned: 0,
            };
        };
        if access.writes {
            if let Some(pos) = state.writer_order.iter().position(|&w| w == task) {
                state.writer_order.remove(pos);
            }
        }

        let waiters_scanned = access.dependents.len();
        let mut released = Vec::new();
        for dep in access.dependents {
            let remaining = self
                .waiting
                .get_mut(&(dep, addr))
                .expect("dependent must be registered as waiting");
            *remaining -= 1;
            if *remaining == 0 {
                self.waiting.remove(&(dep, addr));
                state.kickoff_len -= 1;
                released.push(dep);
            }
        }

        let entry_freed = state.outstanding.is_empty();
        if entry_freed {
            debug_assert_eq!(state.kickoff_len, 0, "waiters left on a freed entry");
            self.table.remove(addr);
        }

        RetireOutcome {
            released,
            entry_freed,
            waiters_scanned,
        }
    }

    /// True if `task` still waits on `addr`.
    pub fn is_waiting(&self, task: TaskId, addr: u64) -> bool {
        self.waiting.contains_key(&(task, addr))
    }

    /// Current kick-off-list length of an address (0 if untracked).
    pub fn kickoff_len(&self, addr: u64) -> usize {
        self.table
            .get(addr)
            .map(|(s, _)| s.kickoff_len)
            .unwrap_or(0)
    }

    /// Number of outstanding accesses on an address (0 if untracked).
    pub fn outstanding_accesses(&self, addr: u64) -> usize {
        self.table
            .get(addr)
            .map(|(s, _)| s.outstanding.len())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(id: u64) -> TaskId {
        TaskId(id)
    }

    #[test]
    fn raw_dependency_is_tracked_and_released() {
        let mut g = DependencyTracker::with_default_geometry();
        // T0 writes A, T1 reads A => T1 waits for T0.
        let a = 0x1000;
        let o0 = g.insert_param(t(0), a, Direction::Out);
        assert!(!o0.blocked);
        assert!(o0.new_entry);
        let o1 = g.insert_param(t(1), a, Direction::In);
        assert!(o1.blocked);
        assert_eq!(o1.kickoff_segment, 1);
        assert!(g.is_waiting(t(1), a));
        assert_eq!(g.kickoff_len(a), 1);

        let r = g.retire_param(t(0), a, Direction::Out);
        assert_eq!(r.released, vec![t(1)]);
        assert!(!g.is_waiting(t(1), a));
        assert!(!r.entry_freed, "T1's own access is still outstanding");
        let r1 = g.retire_param(t(1), a, Direction::In);
        assert!(r1.entry_freed);
        assert_eq!(g.live_addresses(), 0);
    }

    #[test]
    fn concurrent_readers_do_not_block_each_other() {
        let mut g = DependencyTracker::with_default_geometry();
        let a = 0x2000;
        g.insert_param(t(0), a, Direction::Out);
        g.retire_param(t(0), a, Direction::Out);
        // Writer retired: two readers arrive, neither blocks.
        assert!(!g.insert_param(t(1), a, Direction::In).blocked);
        assert!(!g.insert_param(t(2), a, Direction::In).blocked);
    }

    #[test]
    fn war_dependency_waits_for_all_readers() {
        let mut g = DependencyTracker::with_default_geometry();
        let a = 0x3000;
        g.insert_param(t(0), a, Direction::Out);
        g.retire_param(t(0), a, Direction::Out);
        g.insert_param(t(1), a, Direction::In);
        g.insert_param(t(2), a, Direction::In);
        // A writer after two outstanding readers waits for both.
        let o = g.insert_param(t(3), a, Direction::InOut);
        assert!(o.blocked);
        let r1 = g.retire_param(t(1), a, Direction::In);
        assert!(r1.released.is_empty(), "still blocked by the second reader");
        let r2 = g.retire_param(t(2), a, Direction::In);
        assert_eq!(r2.released, vec![t(3)]);
    }

    #[test]
    fn waw_chain_serializes() {
        let mut g = DependencyTracker::with_default_geometry();
        let a = 0x4000;
        assert!(!g.insert_param(t(0), a, Direction::InOut).blocked);
        assert!(g.insert_param(t(1), a, Direction::InOut).blocked);
        assert!(g.insert_param(t(2), a, Direction::InOut).blocked);
        // Retiring T0 releases T1 but not T2 (T2 also waits on T1).
        let r = g.retire_param(t(0), a, Direction::InOut);
        assert_eq!(r.released, vec![t(1)]);
        assert!(g.is_waiting(t(2), a));
        let r = g.retire_param(t(1), a, Direction::InOut);
        assert_eq!(r.released, vec![t(2)]);
    }

    #[test]
    fn reader_only_waits_for_most_recent_writer() {
        let mut g = DependencyTracker::with_default_geometry();
        let a = 0x5000;
        g.insert_param(t(0), a, Direction::Out); // writer 1 (outstanding)
        g.insert_param(t(1), a, Direction::Out); // writer 2 (outstanding, waits on writer 1)
        let o = g.insert_param(t(2), a, Direction::In);
        assert!(o.blocked);
        // Retiring writer 2 releases the reader even though writer 1 is still
        // outstanding: the reader's only blocker is the most recent writer.
        // (Writer 2 could not have run before writer 1 retired, so in a real
        // execution this ordering cannot happen; the tracker is still safe.)
        let r = g.retire_param(t(1), a, Direction::Out);
        assert!(r.released.contains(&t(2)));
    }

    #[test]
    fn long_kickoff_lists_report_segments() {
        let mut g = DependencyTracker::with_default_geometry();
        let a = 0x7000;
        g.insert_param(t(0), a, Direction::Out);
        let mut max_seg = 0;
        for i in 1..=100 {
            let o = g.insert_param(t(i), a, Direction::In);
            assert!(o.blocked);
            max_seg = max_seg.max(o.kickoff_segment);
        }
        assert!(max_seg >= 100 / DEFAULT_SEGMENT_CAPACITY);
        assert_eq!(g.kickoff_len(a), 100);
        // Retiring the producer releases all 100 readers at once.
        let r = g.retire_param(t(0), a, Direction::Out);
        assert_eq!(r.released.len(), 100);
        assert_eq!(r.waiters_scanned, 100);
        assert_eq!(g.stats().max_kickoff_len, 100);
    }

    #[test]
    fn stats_accumulate() {
        let mut g = DependencyTracker::with_default_geometry();
        g.insert_param(t(0), 0x10, Direction::Out);
        g.insert_param(t(1), 0x10, Direction::In);
        g.insert_param(t(1), 0x20, Direction::Out);
        let s = g.stats();
        assert_eq!(s.params_inserted, 3);
        assert_eq!(s.params_blocked, 1);
        assert_eq!(g.outstanding_accesses(0x10), 2);
        assert_eq!(g.outstanding_accesses(0x999), 0);
        assert_eq!(g.live_addresses(), 2);
    }

    #[test]
    fn overflow_placement_is_reported() {
        let mut g = DependencyTracker::new(SetAssocConfig {
            sets: 2,
            ways: 1,
            line_offset_bits: 6,
        });
        // Four distinct addresses mapping to the two sets: the third and fourth
        // allocations overflow.
        let outcomes: Vec<_> = (0..4u64)
            .map(|i| g.insert_param(t(i), i * 64, Direction::Out))
            .collect();
        assert!(outcomes.iter().filter(|o| o.overflow).count() >= 2);
        // Entries are freed on retirement even from the overflow area.
        for i in 0..4u64 {
            g.retire_param(t(i), i * 64, Direction::Out);
        }
        assert_eq!(g.live_addresses(), 0);
    }
}
