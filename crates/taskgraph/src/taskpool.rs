//! The Task Pool: bounded storage for in-flight task descriptors.
//!
//! "After having distributed all the memory addresses in the new task's
//! input/output list, the Input Parser stores the new task in the Task Pool.
//! This is important at the end of a task's life cycle; i.e., after running it
//! … the Input Parser will read its input/output list from the Task Pool, and
//! distribute them subsequently" (§IV-B).
//!
//! The pool is a fixed-size hardware structure: when it is full the manager
//! back-pressures the submitting runtime. Two retirement disciplines are
//! modelled:
//!
//! * [`RetirementOrder::FreeList`] — any finished slot is immediately reusable
//!   (Nexus#),
//! * [`RetirementOrder::InOrder`] — slots are recycled in allocation order
//!   (a circular buffer, the simpler hardware used by the Nexus++ baseline);
//!   a long-running early task then blocks slot reuse (head-of-line blocking),
//!   which is one of the structural reasons the central design falls behind on
//!   irregular workloads.

use nexus_sim::FxHashMap;
use nexus_trace::{TaskDescriptor, TaskId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Slot recycling discipline of the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RetirementOrder {
    /// Finished slots are reusable immediately (free-list allocation).
    FreeList,
    /// Slots are recycled strictly in allocation order (circular buffer).
    InOrder,
}

/// Occupancy statistics of the pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskPoolStats {
    /// Tasks ever admitted.
    pub admitted: u64,
    /// Tasks retired (slot made reusable).
    pub recycled: u64,
    /// Admission attempts rejected because the pool was full.
    pub rejections: u64,
    /// Peak occupancy.
    pub peak_occupancy: usize,
}

/// A bounded pool of in-flight task descriptors.
#[derive(Debug, Clone)]
pub struct TaskPool {
    capacity: usize,
    order: RetirementOrder,
    tasks: FxHashMap<TaskId, TaskDescriptor>,
    /// Occupied slots (admitted and not yet recycled).
    occupied: usize,
    /// Allocation order — maintained only under in-order recycling (free-list
    /// slots have no positional identity, so keeping this queue would cost an
    /// O(occupancy) scan per retirement for nothing).
    fifo: VecDeque<TaskId>,
    /// Tasks finished but whose slot is not yet recyclable (in-order mode only).
    finished_pending: FxHashMap<TaskId, ()>,
    stats: TaskPoolStats,
}

impl TaskPool {
    /// Creates a pool with the given capacity and retirement discipline.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, order: RetirementOrder) -> Self {
        assert!(capacity > 0, "task pool capacity must be non-zero");
        TaskPool {
            capacity,
            order,
            tasks: FxHashMap::default(),
            occupied: 0,
            fifo: VecDeque::with_capacity(capacity),
            finished_pending: FxHashMap::default(),
            stats: TaskPoolStats::default(),
        }
    }

    /// Pool capacity in tasks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Retirement discipline.
    pub fn order(&self) -> RetirementOrder {
        self.order
    }

    /// Number of occupied slots (admitted and not yet recycled).
    pub fn occupancy(&self) -> usize {
        self.occupied
    }

    /// True if a new task can be admitted right now.
    pub fn has_free_slot(&self) -> bool {
        self.occupancy() < self.capacity
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> TaskPoolStats {
        self.stats
    }

    /// Admits a task. Returns `Err(task)` if the pool is full.
    pub fn admit(&mut self, task: TaskDescriptor) -> Result<(), TaskDescriptor> {
        if !self.has_free_slot() {
            self.stats.rejections += 1;
            return Err(task);
        }
        self.stats.admitted += 1;
        let id = task.id;
        debug_assert!(!self.tasks.contains_key(&id), "{id} admitted twice");
        self.tasks.insert(id, task);
        self.occupied += 1;
        if self.order == RetirementOrder::InOrder {
            self.fifo.push_back(id);
        }
        self.stats.peak_occupancy = self.stats.peak_occupancy.max(self.occupancy());
        Ok(())
    }

    /// Looks up the descriptor of an in-flight task.
    pub fn get(&self, id: TaskId) -> Option<&TaskDescriptor> {
        self.tasks.get(&id)
    }

    /// Marks a task as finished and recycles whatever slots the retirement
    /// discipline allows. Returns the number of slots made reusable by this
    /// call (0 is possible under in-order recycling when an older task is
    /// still running).
    pub fn finish(&mut self, id: TaskId) -> usize {
        debug_assert!(self.tasks.contains_key(&id), "finishing unknown task {id}");
        match self.order {
            RetirementOrder::FreeList => {
                self.tasks.remove(&id);
                self.occupied -= 1;
                self.stats.recycled += 1;
                1
            }
            RetirementOrder::InOrder => {
                self.finished_pending.insert(id, ());
                let mut recycled = 0;
                while let Some(&head) = self.fifo.front() {
                    if self.finished_pending.remove(&head).is_some() {
                        self.fifo.pop_front();
                        self.tasks.remove(&head);
                        self.occupied -= 1;
                        recycled += 1;
                    } else {
                        break;
                    }
                }
                self.stats.recycled += recycled as u64;
                recycled
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexus_sim::SimDuration;

    fn task(id: u64) -> TaskDescriptor {
        TaskDescriptor::builder(id)
            .inout(0x1000 + id * 64)
            .duration(SimDuration::from_us(1))
            .build()
    }

    #[test]
    fn free_list_recycles_immediately() {
        let mut p = TaskPool::new(2, RetirementOrder::FreeList);
        p.admit(task(0)).unwrap();
        p.admit(task(1)).unwrap();
        assert!(!p.has_free_slot());
        assert!(p.admit(task(2)).is_err());
        assert_eq!(p.stats().rejections, 1);
        // Finishing the *second* task frees a slot immediately.
        assert_eq!(p.finish(TaskId(1)), 1);
        assert!(p.has_free_slot());
        p.admit(task(2)).unwrap();
        assert_eq!(p.occupancy(), 2);
        assert!(p.get(TaskId(0)).is_some());
        assert!(p.get(TaskId(1)).is_none());
    }

    #[test]
    fn in_order_recycling_suffers_head_of_line_blocking() {
        let mut p = TaskPool::new(3, RetirementOrder::InOrder);
        p.admit(task(0)).unwrap();
        p.admit(task(1)).unwrap();
        p.admit(task(2)).unwrap();
        // Tasks 1 and 2 finish, but task 0 (the head) is still running:
        // no slot can be recycled.
        assert_eq!(p.finish(TaskId(1)), 0);
        assert_eq!(p.finish(TaskId(2)), 0);
        assert!(!p.has_free_slot());
        // When the head finishes, all three slots recycle at once.
        assert_eq!(p.finish(TaskId(0)), 3);
        assert_eq!(p.occupancy(), 0);
        assert_eq!(p.stats().recycled, 3);
    }

    #[test]
    fn peak_occupancy_is_tracked() {
        let mut p = TaskPool::new(8, RetirementOrder::FreeList);
        for i in 0..5 {
            p.admit(task(i)).unwrap();
        }
        for i in 0..5 {
            p.finish(TaskId(i));
        }
        assert_eq!(p.stats().peak_occupancy, 5);
        assert_eq!(p.stats().admitted, 5);
        assert_eq!(p.occupancy(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_capacity_rejected() {
        let _ = TaskPool::new(0, RetirementOrder::FreeList);
    }
}
