//! # nexus-taskgraph — task-graph storage and dependency tracking
//!
//! This crate implements the data structures both hardware task managers are
//! built from (§III and §IV-C of the paper):
//!
//! * [`SetAssocTable`] — the "set-associative cache-like structure" that maps a
//!   parameter memory address to its tracking entry, with a bounded number of
//!   ways per set and an overflow (dummy-entry) area,
//! * [`KickOffList`] — the per-address list of tasks waiting for the address,
//!   segmented with dummy-entry chaining so its length is not statically
//!   limited (the property the Gaussian-elimination benchmark validates),
//! * [`DependencyTracker`] — the functional dependency-resolution core: full
//!   OmpSs `in`/`out`/`inout` semantics per address, reporting for every
//!   parameter insertion whether the task must wait and, on task retirement,
//!   which waiting tasks become released,
//! * [`ReferenceGraph`] — a deliberately simple software dependency graph used
//!   as a test oracle and by the software-runtime (Nanos) model,
//! * [`TaskPool`] — the bounded in-flight task storage of the managers,
//!   supporting both free-list and in-order (circular-buffer) retirement,
//! * [`DepCountsTable`] — the per-task outstanding-dependence counters
//!   gathered by the Dependence Counts Arbiter.

#![warn(missing_docs)]

pub mod assoc;
pub mod depcounts;
pub mod kickoff;
pub mod refgraph;
pub mod taskpool;
pub mod tracker;

pub use assoc::{SetAssocConfig, SetAssocTable};
pub use depcounts::DepCountsTable;
pub use kickoff::KickOffList;
pub use refgraph::ReferenceGraph;
pub use taskpool::{RetirementOrder, TaskPool};
pub use tracker::{DependencyTracker, InsertOutcome, RetireOutcome};

/// Convenience prelude.
pub mod prelude {
    pub use crate::assoc::{SetAssocConfig, SetAssocTable};
    pub use crate::depcounts::DepCountsTable;
    pub use crate::kickoff::KickOffList;
    pub use crate::refgraph::ReferenceGraph;
    pub use crate::taskpool::{RetirementOrder, TaskPool};
    pub use crate::tracker::{DependencyTracker, InsertOutcome, RetireOutcome};
}
