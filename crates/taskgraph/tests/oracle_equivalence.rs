//! Property tests: the hardware-style [`DependencyTracker`] must agree with the
//! [`ReferenceGraph`] oracle on readiness for arbitrary interleavings of task
//! submissions and completions, and for all the paper's workload generators.

use nexus_sim::{SimDuration, SimRng};
use nexus_taskgraph::{DependencyTracker, ReferenceGraph};
use nexus_trace::generators::{micro, Benchmark, MbGrouping};
use nexus_trace::{TaskDescriptor, TaskId, Trace};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Drives a trace through the tracker, mirroring what a task-graph unit does:
/// insert all parameters at submission; once all parameters are inserted the
/// task is ready iff no parameter blocked; on completion, retire all parameters
/// and collect releases. Readiness order is compared against the oracle.
struct TrackerHarness {
    tracker: DependencyTracker,
    /// Remaining blocked-parameter count per task.
    blocked_params: HashMap<TaskId, usize>,
    ready: BTreeSet<TaskId>,
}

impl TrackerHarness {
    fn new() -> Self {
        TrackerHarness {
            tracker: DependencyTracker::with_default_geometry(),
            blocked_params: HashMap::new(),
            ready: BTreeSet::new(),
        }
    }

    fn submit(&mut self, task: &TaskDescriptor) {
        let mut blocked = 0;
        for p in &task.params {
            let o = self.tracker.insert_param(task.id, p.addr, p.dir);
            if o.blocked {
                blocked += 1;
            }
        }
        if blocked == 0 {
            self.ready.insert(task.id);
        } else {
            self.blocked_params.insert(task.id, blocked);
        }
    }

    fn finish(&mut self, task: &TaskDescriptor) {
        self.ready.remove(&task.id);
        for p in &task.params {
            let out = self.tracker.retire_param(task.id, p.addr, p.dir);
            for released in out.released {
                let remaining = self
                    .blocked_params
                    .get_mut(&released)
                    .expect("released task must be blocked");
                *remaining -= 1;
                if *remaining == 0 {
                    self.blocked_params.remove(&released);
                    self.ready.insert(released);
                }
            }
        }
    }
}

struct OracleHarness {
    graph: ReferenceGraph,
    ready: BTreeSet<TaskId>,
}

impl OracleHarness {
    fn new() -> Self {
        OracleHarness {
            graph: ReferenceGraph::new(),
            ready: BTreeSet::new(),
        }
    }

    fn submit(&mut self, task: &TaskDescriptor) {
        if self.graph.insert(task) {
            self.ready.insert(task.id);
        }
    }

    fn finish(&mut self, task: &TaskDescriptor) {
        self.ready.remove(&task.id);
        for t in self.graph.retire(task.id) {
            self.ready.insert(t);
        }
    }
}

/// Runs a trace through both implementations with a deterministic pseudo-random
/// execution schedule and asserts the ready sets agree after every step.
/// Returns the number of tasks executed.
fn check_equivalence(trace: &Trace, completion_seed: u64) -> usize {
    let tasks: HashMap<TaskId, &TaskDescriptor> = trace.tasks().map(|t| (t.id, t)).collect();
    let mut tracker = TrackerHarness::new();
    let mut oracle = OracleHarness::new();
    let mut rng = nexus_sim::SimRng::new(completion_seed);
    let mut submitted: VecDeque<&TaskDescriptor> = trace.tasks().collect();
    let mut executed = 0usize;
    let mut outstanding = 0usize;

    loop {
        // Interleave submissions and completions pseudo-randomly, always
        // submitting in program order.
        let can_submit = !submitted.is_empty();
        let can_finish = !tracker.ready.is_empty();
        if !can_submit && !can_finish {
            break;
        }
        let do_submit = can_submit && (!can_finish || rng.chance(0.6) || outstanding < 2);
        if do_submit {
            let t = submitted.pop_front().unwrap();
            tracker.submit(t);
            oracle.submit(t);
            outstanding += 1;
        } else {
            // Pick a pseudo-random ready task (same choice for both since the
            // ready sets must be identical).
            let ready: Vec<TaskId> = tracker.ready.iter().copied().collect();
            let pick = ready[rng.next_below(ready.len() as u64) as usize];
            assert!(
                oracle.ready.contains(&pick),
                "task {pick} ready in tracker but not in oracle"
            );
            let t = tasks[&pick];
            tracker.finish(t);
            oracle.finish(t);
            executed += 1;
            outstanding -= 1;
        }
        assert_eq!(
            tracker.ready, oracle.ready,
            "ready sets diverged after {executed} completions"
        );
    }
    assert_eq!(
        executed,
        trace.task_count(),
        "not all tasks executed: deadlock?"
    );
    assert_eq!(
        tracker.tracker.live_addresses(),
        0,
        "leaked address entries"
    );
    executed
}

/// Generates a random trace: up to `max_tasks` tasks over a small address pool
/// with random directions — maximally adversarial for dependency tracking.
/// Generation uses the workspace's own deterministic [`SimRng`] (the build
/// environment has no crates.io access, so `proptest` is not available); every
/// case is reproducible from its printed seed.
fn arb_trace(rng: &mut SimRng, max_tasks: usize, addr_pool: u64) -> Trace {
    let mut trace = Trace::new("proptest");
    for i in 0..rng.range(1, max_tasks as u64) {
        let mut b = TaskDescriptor::builder(i).duration(SimDuration::from_us(rng.range(1, 100)));
        let mut used = std::collections::HashSet::new();
        for _ in 0..rng.range(1, 5) {
            let addr = 0x1000 + rng.next_below(addr_pool) * 64;
            if !used.insert(addr) {
                continue; // avoid duplicate addresses within one task
            }
            b = match rng.next_below(3) {
                0 => b.input(addr),
                1 => b.output(addr),
                _ => b.inout(addr),
            };
        }
        trace.submit(b.build());
    }
    trace
}

const CASES: u64 = 64;

#[test]
fn tracker_matches_oracle_on_random_traces() {
    for seed in 0..CASES {
        let mut rng = SimRng::new(0x07AC1E + seed);
        let trace = arb_trace(&mut rng, 120, 12);
        check_equivalence(&trace, rng.next_u64());
    }
}

#[test]
fn tracker_matches_oracle_on_contended_single_address() {
    // With only 1-2 distinct addresses every task conflicts with every
    // other: stresses WAW/WAR chains and kick-off list handling.
    for seed in 0..CASES {
        let mut rng = SimRng::new(0xC017E17 + seed);
        let trace = arb_trace(&mut rng, 80, 2);
        check_equivalence(&trace, rng.next_u64());
    }
}

#[test]
fn tracker_matches_oracle_on_paper_workloads() {
    let traces = vec![
        Benchmark::CRay.trace_scaled(1, 0.05),
        Benchmark::RotCc.trace_scaled(2, 0.02),
        Benchmark::SparseLu.trace_scaled(3, 0.01),
        Benchmark::Streamcluster.trace_scaled(4, 0.003),
        Benchmark::H264Dec(MbGrouping::G1x1).trace_scaled(5, 0.01),
        Benchmark::H264Dec(MbGrouping::G8x8).trace_scaled(5, 0.1),
        Benchmark::Gaussian { dim: 40 }.trace_scaled(6, 1.0),
    ];
    for trace in traces {
        let n = check_equivalence(&trace, 0xDEAD_BEEF);
        assert!(n > 0, "{} executed no tasks", trace.name);
    }
}

#[test]
fn tracker_matches_oracle_on_micro_patterns() {
    for trace in [
        micro::five_independent_tasks(),
        micro::chain(50, SimDuration::from_us(1)),
        micro::fork_join(32, SimDuration::from_us(1)),
        micro::wavefront(12, 20, SimDuration::from_us(1)),
    ] {
        check_equivalence(&trace, 7);
    }
}
