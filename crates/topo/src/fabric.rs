//! The fabric graph: links, routes and the derived distance matrix.
//!
//! A [`Fabric`] is the static description of a cluster interconnect: a set of
//! directed physical links (each with its own latency, bandwidth and *tier* —
//! the locality class it belongs to, e.g. intra-rack vs. inter-rack) plus one
//! precomputed route per ordered node pair. The cluster simulation
//! (`nexus-cluster`) instantiates one serializing wire per fabric link and
//! forwards every message hop by hop along its route, so multi-hop paths pay
//! per-hop serialization and contend with every other flow sharing a link.
//!
//! The [`DistanceMatrix`] is the fabric's summary for the schedulers: per
//! ordered pair, the hop count, the aggregate propagation latency and the
//! highest tier crossed. Placement policies weight remote dependence edges by
//! [`DistanceMatrix::weight`]; hierarchical work stealing escalates victims
//! bucket by bucket in `(tier, hops)` order.

use nexus_sim::SimDuration;

/// One directed physical link of a fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSpec {
    /// Propagation latency added after serialization on this link.
    pub latency: SimDuration,
    /// Serialization cost per 32-bit word (the inverse of bandwidth).
    pub per_word: SimDuration,
    /// Locality class of the link (0 = most local). Tier indices are small
    /// and dense; [`Fabric::tier_name`] names them for reports.
    pub tier: usize,
}

impl LinkSpec {
    /// A tier-0 link with the given timing.
    pub fn local(latency: SimDuration, per_word: SimDuration) -> Self {
        LinkSpec {
            latency,
            per_word,
            tier: 0,
        }
    }
}

/// A concrete interconnect graph: directed links plus one precomputed route
/// per ordered node pair (see the [module docs](self)).
#[derive(Debug, Clone)]
pub struct Fabric {
    name: String,
    nodes: usize,
    links: Vec<LinkSpec>,
    /// `routes[from * nodes + to]` = link ids traversed in order. The diagonal
    /// is empty (node-local messages never touch the fabric).
    routes: Vec<Vec<usize>>,
    tier_names: Vec<&'static str>,
}

impl Fabric {
    /// Builds a fabric from its parts, validating the invariants: one route
    /// per ordered pair, empty diagonal, non-empty off-diagonal routes, link
    /// ids in range and every tier named.
    ///
    /// # Panics
    /// Panics if any invariant is violated (fabrics are built by trusted
    /// constructors; a violation is a topology-builder bug).
    pub fn new(
        name: impl Into<String>,
        nodes: usize,
        links: Vec<LinkSpec>,
        routes: Vec<Vec<usize>>,
        tier_names: Vec<&'static str>,
    ) -> Self {
        let name = name.into();
        assert!(nodes > 0, "{name}: need at least one node");
        assert_eq!(
            routes.len(),
            nodes * nodes,
            "{name}: need one route per ordered node pair"
        );
        let tiers = tier_names.len();
        assert!(
            tiers <= u8::MAX as usize + 1,
            "{name}: at most 256 tiers (the distance matrix stores tiers as u8)"
        );
        for (i, l) in links.iter().enumerate() {
            assert!(
                l.tier < tiers,
                "{name}: link {i} has unnamed tier {}",
                l.tier
            );
        }
        for from in 0..nodes {
            for to in 0..nodes {
                let route = &routes[from * nodes + to];
                if from == to {
                    assert!(route.is_empty(), "{name}: self-route {from} not empty");
                } else {
                    assert!(!route.is_empty(), "{name}: no route {from}->{to}");
                    for &l in route {
                        assert!(
                            l < links.len(),
                            "{name}: route {from}->{to} uses bad link {l}"
                        );
                    }
                }
            }
        }
        Fabric {
            name,
            nodes,
            links,
            routes,
            tier_names,
        }
    }

    /// Human-readable fabric name (includes the derived shape, e.g.
    /// `"racktiers-r2"` or `"torus-4x2"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes the fabric connects.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The directed physical links.
    pub fn links(&self) -> &[LinkSpec] {
        &self.links
    }

    /// The route from `from` to `to` as an ordered slice of link ids (empty
    /// for `from == to`).
    pub fn route(&self, from: usize, to: usize) -> &[usize] {
        &self.routes[from * self.nodes + to]
    }

    /// Number of distinct link tiers.
    pub fn tier_count(&self) -> usize {
        self.tier_names.len()
    }

    /// The name of tier `tier` (e.g. `"intra-rack"`).
    pub fn tier_name(&self, tier: usize) -> &'static str {
        self.tier_names[tier]
    }

    /// Computes the distance matrix of the fabric.
    pub fn distances(&self) -> DistanceMatrix {
        let n = self.nodes;
        let mut hops = vec![0u32; n * n];
        let mut latency = vec![SimDuration::ZERO; n * n];
        let mut tier = vec![0u8; n * n];
        for from in 0..n {
            for to in 0..n {
                let route = self.route(from, to);
                let i = from * n + to;
                hops[i] = route.len() as u32;
                latency[i] = route.iter().map(|&l| self.links[l].latency).sum();
                tier[i] = route
                    .iter()
                    .map(|&l| self.links[l].tier as u8)
                    .max()
                    .unwrap_or(0);
            }
        }
        DistanceMatrix {
            nodes: n,
            hops,
            latency,
            tier,
        }
    }
}

/// Per-pair distance summary of a [`Fabric`]: hop count, aggregate propagation
/// latency and the highest tier crossed. This is everything the placement and
/// stealing policies (`nexus-sched`) need to reason about locality without
/// seeing the graph itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistanceMatrix {
    nodes: usize,
    hops: Vec<u32>,
    latency: Vec<SimDuration>,
    tier: Vec<u8>,
}

impl DistanceMatrix {
    /// The distance matrix of a uniform (single-tier, single-hop) fabric:
    /// every off-diagonal pair is one zero-latency tier-0 hop apart, so every
    /// remote node is equally (un)attractive. Note that passing this to a
    /// distance-aware policy is *not* identical to passing no matrix at all —
    /// with no matrix the policies take their documented uniform-wiring
    /// fallback paths (e.g. `TopologyAware` decays to `LocalityAware`), which
    /// tie-break slightly differently.
    pub fn uniform(nodes: usize) -> Self {
        assert!(nodes > 0, "need at least one node");
        let mut hops = vec![1u32; nodes * nodes];
        for n in 0..nodes {
            hops[n * nodes + n] = 0;
        }
        DistanceMatrix {
            nodes,
            hops,
            latency: vec![SimDuration::ZERO; nodes * nodes],
            tier: vec![0u8; nodes * nodes],
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Hop count from `a` to `b` (0 for `a == b`).
    pub fn hops(&self, a: usize, b: usize) -> u32 {
        self.hops[a * self.nodes + b]
    }

    /// Aggregate propagation latency of the route from `a` to `b`.
    pub fn latency(&self, a: usize, b: usize) -> SimDuration {
        self.latency[a * self.nodes + b]
    }

    /// The highest tier crossed on the route from `a` to `b` (0 for `a == b`
    /// and for purely local routes).
    pub fn tier(&self, a: usize, b: usize) -> usize {
        self.tier[a * self.nodes + b] as usize
    }

    /// The highest tier anywhere in the matrix.
    pub fn max_tier(&self) -> usize {
        self.tier.iter().copied().max().unwrap_or(0) as usize
    }

    /// Scalar placement weight of the `a -> b` distance: the route's
    /// propagation latency in picoseconds plus one per hop (so distances stay
    /// ordered by hop count even on ideal, zero-latency fabrics). Zero for
    /// `a == b`.
    pub fn weight(&self, a: usize, b: usize) -> u64 {
        let i = a * self.nodes + b;
        self.latency[i].as_ps() + self.hops[i] as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_us(v)
    }

    fn two_node_fabric() -> Fabric {
        // 0 -> 1 is one slow tier-1 hop; 1 -> 0 is two fast tier-0 hops over
        // the same link (a contrived asymmetric fabric for the accessors).
        let links = vec![
            LinkSpec {
                latency: us(10),
                per_word: us(1),
                tier: 1,
            },
            LinkSpec::local(us(2), us(1)),
        ];
        Fabric::new(
            "test",
            2,
            links,
            vec![vec![], vec![0], vec![1, 1], vec![]],
            vec!["local", "global"],
        )
    }

    #[test]
    fn accessors_and_distances() {
        let f = two_node_fabric();
        assert_eq!(f.nodes(), 2);
        assert_eq!(f.route(0, 1), &[0]);
        assert_eq!(f.route(1, 1), &[] as &[usize]);
        assert_eq!(f.tier_count(), 2);
        assert_eq!(f.tier_name(1), "global");

        let d = f.distances();
        assert_eq!(d.hops(0, 1), 1);
        assert_eq!(d.hops(1, 0), 2);
        assert_eq!(d.hops(0, 0), 0);
        assert_eq!(d.latency(0, 1), us(10));
        assert_eq!(d.latency(1, 0), us(4));
        assert_eq!(d.tier(0, 1), 1);
        assert_eq!(d.tier(1, 0), 0);
        assert_eq!(d.max_tier(), 1);
        assert_eq!(d.weight(0, 0), 0);
        assert_eq!(d.weight(0, 1), us(10).as_ps() + 1);
        assert!(d.weight(0, 1) > d.weight(1, 0));
    }

    #[test]
    fn uniform_matrix_is_flat() {
        let d = DistanceMatrix::uniform(3);
        for a in 0..3 {
            for b in 0..3 {
                if a == b {
                    assert_eq!(d.weight(a, b), 0);
                } else {
                    assert_eq!(d.hops(a, b), 1);
                    assert_eq!(d.tier(a, b), 0);
                    assert_eq!(d.weight(a, b), 1);
                }
            }
        }
        assert_eq!(d.max_tier(), 0);
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn missing_route_is_rejected() {
        let links = vec![LinkSpec::local(us(1), us(1))];
        let _ = Fabric::new(
            "bad",
            2,
            links,
            vec![vec![], vec![0], vec![], vec![]],
            vec!["local"],
        );
    }

    #[test]
    #[should_panic(expected = "unnamed tier")]
    fn unnamed_tier_is_rejected() {
        let links = vec![LinkSpec {
            latency: us(1),
            per_word: us(1),
            tier: 1,
        }];
        let _ = Fabric::new("bad", 1, links, vec![vec![]], vec!["local"]);
    }
}
