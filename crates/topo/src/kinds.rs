//! Concrete topology builders and the serializable [`TopologyKind`] selector.
//!
//! Every builder takes the *base* link timing (latency + per-word
//! serialization cost of a tier-0 link, i.e. what `LinkConfig` describes in
//! `nexus-cluster`) and derives the higher tiers from it:
//!
//! * [`shared_bus`] — one wire, every message contends globally (tier 0),
//! * [`full_mesh`] — a dedicated link per ordered pair (tier 0) — together
//!   with the bus, the degenerate uniform cases the cluster shipped with,
//! * [`rack_tiers`] — full mesh inside each rack; one shared trunk per
//!   ordered rack pair with [`RACK_TRUNK_LATENCY_X`]× the latency and
//!   [`RACK_TRUNK_PER_WORD_X`]× the per-word cost (tier 1). Cross-rack routes
//!   go node → rack router (lowest node of the rack) → trunk → destination,
//! * [`torus2d`] — a wrap-around W×H grid of base links (W the largest
//!   divisor of `nodes` ≤ √nodes, so prime node counts degrade to a ring);
//!   dimension-order (X then Y) minimal routing, ties broken toward the
//!   positive direction,
//! * [`dragonfly`] — full mesh inside each group; one long-haul global link
//!   per ordered group pair ([`DRAGONFLY_GLOBAL_LATENCY_X`]× latency, full
//!   bandwidth, tier 1), attached to per-pair gateway nodes as in the
//!   canonical dragonfly, so global traffic funnels through its gateway.

use crate::fabric::{Fabric, LinkSpec};
use nexus_sim::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

/// Latency multiplier of an inter-rack trunk relative to the base link.
pub const RACK_TRUNK_LATENCY_X: u64 = 8;
/// Per-word (inverse bandwidth) multiplier of an inter-rack trunk.
pub const RACK_TRUNK_PER_WORD_X: u64 = 4;
/// Latency multiplier of a dragonfly global link (long but full-bandwidth).
pub const DRAGONFLY_GLOBAL_LATENCY_X: u64 = 4;

/// Integer square root, rounded up (`ceil_sqrt(8) == 3`).
fn ceil_sqrt(n: usize) -> usize {
    let r = n.isqrt();
    r + usize::from(r * r != n)
}

/// One shared medium: every message (any source, any destination) serializes
/// on the same wire.
pub fn shared_bus(nodes: usize, latency: SimDuration, per_word: SimDuration) -> Fabric {
    assert!(nodes > 0, "need at least one node");
    let links = vec![LinkSpec::local(latency, per_word)];
    let mut routes = vec![Vec::new(); nodes * nodes];
    for from in 0..nodes {
        for to in 0..nodes {
            if from != to {
                routes[from * nodes + to] = vec![0];
            }
        }
    }
    Fabric::new("bus", nodes, links, routes, vec!["bus"])
}

/// A dedicated link per ordered node pair: messages only queue behind traffic
/// of the same (source, destination) pair. Link ids are laid out
/// `from * nodes + to`, exactly like the uniform interconnect the cluster
/// driver shipped with (the diagonal is allocated but never routed over).
pub fn full_mesh(nodes: usize, latency: SimDuration, per_word: SimDuration) -> Fabric {
    assert!(nodes > 0, "need at least one node");
    let links = vec![LinkSpec::local(latency, per_word); nodes * nodes];
    let mut routes = vec![Vec::new(); nodes * nodes];
    for from in 0..nodes {
        for to in 0..nodes {
            if from != to {
                routes[from * nodes + to] = vec![from * nodes + to];
            }
        }
    }
    Fabric::new("mesh", nodes, links, routes, vec!["link"])
}

/// Builds the intra-cluster wiring shared by the two-level fabrics: one
/// direct tier-0 base link per ordered pair of nodes inside the same cluster
/// of `cluster` consecutive nodes. Appends to `links` and returns the
/// `(from, to) → link id` lookup map.
fn cluster_mesh(
    nodes: usize,
    cluster: usize,
    latency: SimDuration,
    per_word: SimDuration,
    links: &mut Vec<LinkSpec>,
) -> HashMap<(usize, usize), usize> {
    let mut direct = HashMap::new();
    for a in 0..nodes {
        for b in 0..nodes {
            if a != b && a / cluster == b / cluster {
                direct.insert((a, b), links.len());
                links.push(LinkSpec::local(latency, per_word));
            }
        }
    }
    direct
}

/// Racks of `rack` consecutive nodes: full mesh of base links inside a rack
/// (tier 0, `"intra-rack"`); one shared trunk per ordered rack pair (tier 1,
/// `"inter-rack"`, [`RACK_TRUNK_LATENCY_X`]×/[`RACK_TRUNK_PER_WORD_X`]× the
/// base timing). A cross-rack message hops node → rack router (the rack's
/// lowest node) → trunk → destination node, paying serialization at every hop
/// and contending with all other traffic between the two racks on the trunk.
///
/// # Panics
/// Panics if `nodes` or `rack` is zero.
pub fn rack_tiers(
    nodes: usize,
    rack: usize,
    latency: SimDuration,
    per_word: SimDuration,
) -> Fabric {
    assert!(nodes > 0, "need at least one node");
    assert!(rack > 0, "need at least one node per rack");
    let racks = nodes.div_ceil(rack);
    let mut links = Vec::new();
    let direct = cluster_mesh(nodes, rack, latency, per_word, &mut links);
    let mut trunks: HashMap<(usize, usize), usize> = HashMap::new();
    for ra in 0..racks {
        for rb in 0..racks {
            if ra != rb {
                trunks.insert((ra, rb), links.len());
                links.push(LinkSpec {
                    latency: latency * RACK_TRUNK_LATENCY_X,
                    per_word: per_word * RACK_TRUNK_PER_WORD_X,
                    tier: 1,
                });
            }
        }
    }
    let mut routes = vec![Vec::new(); nodes * nodes];
    for a in 0..nodes {
        for b in 0..nodes {
            if a == b {
                continue;
            }
            let (ra, rb) = (a / rack, b / rack);
            let route = &mut routes[a * nodes + b];
            if ra == rb {
                route.push(direct[&(a, b)]);
            } else {
                let router_a = ra * rack;
                let router_b = rb * rack;
                if a != router_a {
                    route.push(direct[&(a, router_a)]);
                }
                route.push(trunks[&(ra, rb)]);
                if router_b != b {
                    route.push(direct[&(router_b, b)]);
                }
            }
        }
    }
    let tier_names = if racks > 1 {
        vec!["intra-rack", "inter-rack"]
    } else {
        vec!["intra-rack"]
    };
    Fabric::new(
        format!("racktiers-r{rack}"),
        nodes,
        links,
        routes,
        tier_names,
    )
}

/// The W×H shape [`torus2d`] derives for `nodes`: W is the largest divisor of
/// `nodes` not exceeding √nodes (1 for primes — a ring), H is `nodes / W`.
pub fn torus_dims(nodes: usize) -> (usize, usize) {
    assert!(nodes > 0, "need at least one node");
    let w = (1..=nodes.isqrt())
        .rev()
        .find(|&w| nodes.is_multiple_of(w))
        .unwrap_or(1);
    (w, nodes / w)
}

/// The next node on the shortest ring walk from `cur` to `target` on a ring
/// of `len` positions, ties broken toward the positive direction.
fn ring_next(cur: usize, target: usize, len: usize) -> usize {
    let fwd = (target + len - cur) % len;
    debug_assert!(fwd != 0);
    if fwd <= len - fwd {
        (cur + 1) % len
    } else {
        (cur + len - 1) % len
    }
}

/// A wrap-around 2-D torus of base links ([`torus_dims`] picks the shape;
/// node `n` sits at `(n % W, n / W)`). Every grid-neighbour pair gets one
/// directed tier-0 link; routes are minimal dimension-order (X first, then
/// Y), so distance shows up as hop count rather than as slower links.
pub fn torus2d(nodes: usize, latency: SimDuration, per_word: SimDuration) -> Fabric {
    let (w, h) = torus_dims(nodes);
    let node_at = |x: usize, y: usize| y * w + x;
    let mut links = Vec::new();
    let mut ids: HashMap<(usize, usize), usize> = HashMap::new();
    for n in 0..nodes {
        let (x, y) = (n % w, n / w);
        let neighbours = [
            node_at((x + 1) % w, y),
            node_at((x + w - 1) % w, y),
            node_at(x, (y + 1) % h),
            node_at(x, (y + h - 1) % h),
        ];
        for nb in neighbours {
            if nb != n && !ids.contains_key(&(n, nb)) {
                ids.insert((n, nb), links.len());
                links.push(LinkSpec::local(latency, per_word));
            }
        }
    }
    let mut routes = vec![Vec::new(); nodes * nodes];
    for a in 0..nodes {
        for b in 0..nodes {
            if a == b {
                continue;
            }
            let (mut x, mut y) = (a % w, a / w);
            let (tx, ty) = (b % w, b / w);
            let route = &mut routes[a * nodes + b];
            while x != tx {
                let nx = ring_next(x, tx, w);
                route.push(ids[&(node_at(x, y), node_at(nx, y))]);
                x = nx;
            }
            while y != ty {
                let ny = ring_next(y, ty, h);
                route.push(ids[&(node_at(x, y), node_at(x, ny))]);
                y = ny;
            }
        }
    }
    Fabric::new(format!("torus-{w}x{h}"), nodes, links, routes, vec!["hop"])
}

/// A dragonfly of groups of `group` consecutive nodes: full mesh of base
/// links inside a group (tier 0, `"intra-group"`); one global link per
/// ordered group pair (tier 1, `"global"`,
/// [`DRAGONFLY_GLOBAL_LATENCY_X`]× latency at full bandwidth — long optical
/// haul). The global link from group `Ga` to `Gb` is attached to gateway
/// member `Gb mod |Ga|` of `Ga` and lands on member `Ga mod |Gb|` of `Gb`
/// (the canonical distributed attachment), so minimal routes are
/// local → global → local and global traffic funnels through its gateways.
///
/// # Panics
/// Panics if `nodes` or `group` is zero.
pub fn dragonfly(
    nodes: usize,
    group: usize,
    latency: SimDuration,
    per_word: SimDuration,
) -> Fabric {
    assert!(nodes > 0, "need at least one node");
    assert!(group > 0, "need at least one node per group");
    let groups = nodes.div_ceil(group);
    let base_of = |g: usize| g * group;
    let size_of = |g: usize| (nodes - base_of(g)).min(group);
    let mut links = Vec::new();
    let direct = cluster_mesh(nodes, group, latency, per_word, &mut links);
    let mut global: HashMap<(usize, usize), usize> = HashMap::new();
    for ga in 0..groups {
        for gb in 0..groups {
            if ga != gb {
                global.insert((ga, gb), links.len());
                links.push(LinkSpec {
                    latency: latency * DRAGONFLY_GLOBAL_LATENCY_X,
                    per_word,
                    tier: 1,
                });
            }
        }
    }
    let mut routes = vec![Vec::new(); nodes * nodes];
    for a in 0..nodes {
        for b in 0..nodes {
            if a == b {
                continue;
            }
            let (ga, gb) = (a / group, b / group);
            let route = &mut routes[a * nodes + b];
            if ga == gb {
                route.push(direct[&(a, b)]);
            } else {
                let gateway = base_of(ga) + gb % size_of(ga);
                let landing = base_of(gb) + ga % size_of(gb);
                if a != gateway {
                    route.push(direct[&(a, gateway)]);
                }
                route.push(global[&(ga, gb)]);
                if landing != b {
                    route.push(direct[&(landing, b)]);
                }
            }
        }
    }
    let tier_names = if groups > 1 {
        vec!["intra-group", "global"]
    } else {
        vec!["intra-group"]
    };
    Fabric::new(
        format!("dragonfly-g{group}"),
        nodes,
        links,
        routes,
        tier_names,
    )
}

/// Selectable interconnect topologies (the `LinkConfig` / `NEXUS_TOPO` handle
/// for the fabric builders in this module). The degenerate uniform cases
/// ([`SharedBus`](TopologyKind::SharedBus) / [`FullMesh`](TopologyKind::FullMesh))
/// reproduce the original `nexus-cluster` interconnect exactly; the tiered
/// kinds derive rack/group sizes from the node count (see
/// [`TopologyKind::default_cluster_size`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TopologyKind {
    /// [`shared_bus`].
    SharedBus,
    /// [`full_mesh`] — the default.
    #[default]
    FullMesh,
    /// [`rack_tiers`] with racks of [`TopologyKind::default_cluster_size`].
    RackTiers,
    /// [`torus2d`].
    Torus2D,
    /// [`dragonfly`] with groups of [`TopologyKind::default_cluster_size`].
    Dragonfly,
}

impl TopologyKind {
    /// Every selectable topology, in display order.
    pub const ALL: [TopologyKind; 5] = [
        TopologyKind::SharedBus,
        TopologyKind::FullMesh,
        TopologyKind::RackTiers,
        TopologyKind::Torus2D,
        TopologyKind::Dragonfly,
    ];

    /// The accepted (lower-case canonical) spellings, for error messages.
    pub const VALID: &'static str = "bus|mesh|racktiers|torus|dragonfly";

    /// The rack/group size the tiered kinds derive for `nodes` nodes:
    /// ⌈√nodes⌉, the balanced two-level split (4 nodes → racks of 2,
    /// 8 → racks of 3, 16 → racks of 4).
    pub fn default_cluster_size(nodes: usize) -> usize {
        ceil_sqrt(nodes.max(1))
    }

    /// Builds the fabric for `nodes` nodes from the base (tier-0) link
    /// timing.
    ///
    /// # Panics
    /// Panics if `nodes` is zero.
    pub fn build(self, nodes: usize, latency: SimDuration, per_word: SimDuration) -> Fabric {
        let cluster = Self::default_cluster_size(nodes);
        match self {
            TopologyKind::SharedBus => shared_bus(nodes, latency, per_word),
            TopologyKind::FullMesh => full_mesh(nodes, latency, per_word),
            TopologyKind::RackTiers => rack_tiers(nodes, cluster, latency, per_word),
            TopologyKind::Torus2D => torus2d(nodes, latency, per_word),
            TopologyKind::Dragonfly => dragonfly(nodes, cluster, latency, per_word),
        }
    }

    /// The canonical name.
    pub fn name(self) -> &'static str {
        match self {
            TopologyKind::SharedBus => "bus",
            TopologyKind::FullMesh => "mesh",
            TopologyKind::RackTiers => "racktiers",
            TopologyKind::Torus2D => "torus",
            TopologyKind::Dragonfly => "dragonfly",
        }
    }
}

impl fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for TopologyKind {
    type Err = String;

    /// Case-insensitive; also accepts the type names (`"SharedBus"`,
    /// `"rack-tiers"`, `"torus2d"`, …).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "bus" | "sharedbus" | "shared-bus" => Ok(TopologyKind::SharedBus),
            "mesh" | "fullmesh" | "full-mesh" => Ok(TopologyKind::FullMesh),
            "racktiers" | "rack-tiers" | "rack" | "racks" => Ok(TopologyKind::RackTiers),
            "torus" | "torus2d" | "torus-2d" => Ok(TopologyKind::Torus2D),
            "dragonfly" | "dfly" => Ok(TopologyKind::Dragonfly),
            other => Err(format!(
                "unknown topology {other:?} (expected {})",
                Self::VALID
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_us(v)
    }

    #[test]
    fn bus_and_mesh_reproduce_the_uniform_layouts() {
        let bus = shared_bus(4, us(10), us(1));
        assert_eq!(bus.links().len(), 1);
        for a in 0..4 {
            for b in 0..4 {
                if a != b {
                    assert_eq!(bus.route(a, b), &[0]);
                }
            }
        }
        let mesh = full_mesh(4, us(10), us(1));
        assert_eq!(mesh.links().len(), 16);
        assert_eq!(mesh.route(1, 3), &[4 + 3]);
        assert_eq!(mesh.route(2, 2), &[] as &[usize]);
        let d = mesh.distances();
        assert_eq!(d.hops(1, 3), 1);
        assert_eq!(d.max_tier(), 0);
    }

    #[test]
    fn rack_tiers_route_through_the_rack_routers() {
        // 4 nodes, racks of 2: racks {0,1} and {2,3}; routers 0 and 2.
        let f = rack_tiers(4, 2, us(1), us(1));
        let d = f.distances();
        // Intra-rack: one direct base hop.
        assert_eq!(d.hops(0, 1), 1);
        assert_eq!(d.tier(0, 1), 0);
        assert_eq!(d.latency(0, 1), us(1));
        // Router to router: just the trunk.
        assert_eq!(d.hops(0, 2), 1);
        assert_eq!(d.tier(0, 2), 1);
        assert_eq!(d.latency(0, 2), us(RACK_TRUNK_LATENCY_X));
        // Leaf to leaf: leaf -> router -> trunk -> leaf.
        assert_eq!(d.hops(1, 3), 3);
        assert_eq!(d.tier(1, 3), 1);
        assert_eq!(d.latency(1, 3), us(1 + RACK_TRUNK_LATENCY_X + 1));
        // Cross-rack weight dominates intra-rack weight.
        assert!(d.weight(1, 3) > 5 * d.weight(0, 1));
        assert_eq!(f.tier_count(), 2);
        assert_eq!(f.tier_name(1), "inter-rack");
    }

    #[test]
    fn single_rack_tiers_degenerate_to_a_full_mesh() {
        let f = rack_tiers(3, 4, us(2), us(1));
        assert_eq!(f.tier_count(), 1);
        let d = f.distances();
        for a in 0..3 {
            for b in 0..3 {
                if a != b {
                    assert_eq!(d.hops(a, b), 1);
                    assert_eq!(d.latency(a, b), us(2));
                }
            }
        }
    }

    #[test]
    fn torus_dims_pick_the_squarest_divisor() {
        assert_eq!(torus_dims(4), (2, 2));
        assert_eq!(torus_dims(8), (2, 4));
        assert_eq!(torus_dims(16), (4, 4));
        assert_eq!(torus_dims(12), (3, 4));
        assert_eq!(torus_dims(7), (1, 7), "primes degrade to a ring");
        assert_eq!(torus_dims(1), (1, 1));
    }

    #[test]
    fn torus_routes_are_minimal_and_wrap() {
        // 3x3 torus: node = y*3 + x.
        let f = torus2d(9, us(1), us(1));
        let d = f.distances();
        assert_eq!(d.hops(0, 1), 1);
        assert_eq!(d.hops(0, 2), 1, "wrap-around is shorter than two steps");
        assert_eq!(d.hops(0, 4), 2);
        assert_eq!(d.hops(0, 8), 2, "both dimensions wrap");
        assert_eq!(d.max_tier(), 0);
        assert_eq!(d.latency(0, 4), us(2), "per-hop latency accumulates");
        // Symmetric hop counts on a torus.
        for a in 0..9 {
            for b in 0..9 {
                assert_eq!(d.hops(a, b), d.hops(b, a), "{a}->{b}");
            }
        }
    }

    #[test]
    fn dragonfly_funnels_through_gateways() {
        // 8 nodes, groups of 3: {0,1,2}, {3,4,5}, {6,7} (last group short).
        let f = dragonfly(8, 3, us(1), us(1));
        let d = f.distances();
        assert_eq!(d.tier(0, 1), 0);
        assert!(d.tier(0, 7) == 1 && d.hops(0, 7) <= 3);
        // Global latency multiplier shows up on the gateway-to-landing pair.
        let g = DRAGONFLY_GLOBAL_LATENCY_X;
        assert!(d.latency(0, 7) >= us(g));
        assert!(d.latency(0, 7) <= us(g + 2));
        // Single group degenerates to one tier.
        assert_eq!(dragonfly(3, 4, us(1), us(1)).tier_count(), 1);
    }

    #[test]
    fn kind_parsing_is_case_insensitive_with_clear_errors() {
        assert_eq!(
            "SharedBus".parse::<TopologyKind>().unwrap(),
            TopologyKind::SharedBus
        );
        assert_eq!(
            "MESH".parse::<TopologyKind>().unwrap(),
            TopologyKind::FullMesh
        );
        assert_eq!(
            " Rack-Tiers ".parse::<TopologyKind>().unwrap(),
            TopologyKind::RackTiers
        );
        assert_eq!(
            "Torus2D".parse::<TopologyKind>().unwrap(),
            TopologyKind::Torus2D
        );
        assert_eq!(
            "dfly".parse::<TopologyKind>().unwrap(),
            TopologyKind::Dragonfly
        );
        let err = "racktier5".parse::<TopologyKind>().unwrap_err();
        assert!(err.contains(TopologyKind::VALID), "{err}");
        for kind in TopologyKind::ALL {
            assert_eq!(kind.name().parse::<TopologyKind>().unwrap(), kind);
        }
        assert_eq!(TopologyKind::default(), TopologyKind::FullMesh);
        assert_eq!(TopologyKind::RackTiers.to_string(), "racktiers");
    }

    #[test]
    fn every_kind_builds_valid_fabrics_at_odd_node_counts() {
        for kind in TopologyKind::ALL {
            for nodes in [1usize, 2, 3, 5, 7, 8, 12] {
                let f = kind.build(nodes, us(1), us(1));
                assert_eq!(f.nodes(), nodes, "{kind} @ {nodes}");
                let d = f.distances();
                for a in 0..nodes {
                    for b in 0..nodes {
                        if a != b {
                            assert!(d.hops(a, b) >= 1, "{kind} @ {nodes}: {a}->{b}");
                        }
                    }
                }
            }
        }
        assert_eq!(TopologyKind::default_cluster_size(4), 2);
        assert_eq!(TopologyKind::default_cluster_size(8), 3);
        assert_eq!(TopologyKind::default_cluster_size(16), 4);
    }
}
