//! # nexus-topo — non-uniform interconnect topologies
//!
//! The cluster simulation (`nexus-cluster`) originally modelled only uniform
//! wiring: one shared bus or a full mesh of identical links, so every node
//! pair was equidistant. Real fabrics are tiered — intra-rack links are short
//! and fat, inter-rack trunks are long, shared and thin — and, as the
//! transaction-level analysis of clustered hardware task managers (Gregorek
//! et al.) and DuctTeip's hierarchical task distribution both show, the tiers
//! change which placement and stealing strategies win. This crate models the
//! fabric as an explicit graph:
//!
//! * [`Fabric`] — directed links (latency, bandwidth, locality *tier*) plus a
//!   precomputed multi-hop route per ordered node pair,
//! * [`DistanceMatrix`] — the schedulers' summary: per-pair hop count,
//!   aggregate latency and highest tier crossed (with a
//!   [`uniform`](DistanceMatrix::uniform) fallback),
//! * [`TopologyKind`] — serializable selector over the built-in fabrics:
//!   the degenerate uniform [`SharedBus`](TopologyKind::SharedBus) /
//!   [`FullMesh`](TopologyKind::FullMesh), plus tiered
//!   [`RackTiers`](TopologyKind::RackTiers), [`Torus2D`](TopologyKind::Torus2D)
//!   and [`Dragonfly`](TopologyKind::Dragonfly); `FromStr` is case-insensitive
//!   and lists the valid spellings on a typo (the benches hook it up to
//!   `NEXUS_TOPO`).
//!
//! `nexus-cluster` instantiates one serializing wire per fabric link and
//! forwards messages hop by hop (store-and-forward), so multi-hop routes pay
//! per-hop serialization and shared trunks contend. `nexus-sched` consumes
//! the [`DistanceMatrix`] for distance-aware placement and hierarchical
//! victim selection.
//!
//! ## Example
//!
//! ```
//! use nexus_sim::SimDuration;
//! use nexus_topo::TopologyKind;
//!
//! let us = SimDuration::from_us;
//! // 4 nodes in racks of 2: two tiers, cross-rack routes cost more.
//! let fabric = TopologyKind::RackTiers.build(4, us(1), us(1));
//! let d = fabric.distances();
//! assert_eq!(d.tier(0, 1), 0); // same rack
//! assert_eq!(d.tier(0, 2), 1); // crosses the inter-rack trunk
//! assert!(d.weight(1, 3) > d.weight(0, 1));
//! ```

#![warn(missing_docs)]

pub mod fabric;
pub mod kinds;

pub use fabric::{DistanceMatrix, Fabric, LinkSpec};
pub use kinds::{
    dragonfly, full_mesh, rack_tiers, shared_bus, torus2d, torus_dims, TopologyKind,
    DRAGONFLY_GLOBAL_LATENCY_X, RACK_TRUNK_LATENCY_X, RACK_TRUNK_PER_WORD_X,
};

/// Convenience prelude.
pub mod prelude {
    pub use crate::fabric::{DistanceMatrix, Fabric, LinkSpec};
    pub use crate::kinds::TopologyKind;
}
