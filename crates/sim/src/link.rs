//! Point-to-point interconnect links.
//!
//! The cluster-scale simulation (`nexus-cluster`) connects Nexus# nodes with
//! links that have three cost components, matching the standard LogGP-style
//! decomposition used by distributed task-manager studies (DuctTeip, the
//! distributed-runtime work of Bosch et al.):
//!
//! * **serialization** — the sender occupies the wire for
//!   `words × per_word`; back-to-back messages queue behind each other
//!   (modelled with a [`SerialResource`]),
//! * **latency** — a fixed propagation delay added after serialization,
//! * **bandwidth** — the inverse of the per-word occupancy.
//!
//! A message handed to the link at time `t` therefore frees the sender at
//! `start + words × per_word` (where `start ≥ t` accounts for earlier traffic)
//! and is delivered at `start + words × per_word + latency`. Links are FIFO:
//! deliveries never overtake each other, which the cluster driver relies on to
//! preserve per-node program order of forwarded task descriptors.

use crate::clock::ClockDomain;
use crate::resource::SerialResource;
use crate::time::{SimDuration, SimTime};

/// The outcome of handing one message to a [`LinkResource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkDelivery {
    /// When the sender has fully serialized the message onto the wire and can
    /// continue (the wire itself stays busy until this time as well).
    pub sender_free: SimTime,
    /// When the message arrives at the receiver.
    pub delivered: SimTime,
}

/// A serial point-to-point link with latency, bandwidth and per-message
/// serialization cost.
#[derive(Debug, Clone)]
pub struct LinkResource {
    latency: SimDuration,
    per_word: SimDuration,
    wire: SerialResource,
    words: u64,
    messages: u64,
}

impl LinkResource {
    /// Creates a link with a propagation `latency` and a serialization cost of
    /// `per_word` per 32-bit word.
    pub fn new(latency: SimDuration, per_word: SimDuration) -> Self {
        LinkResource {
            latency,
            per_word,
            wire: SerialResource::new(),
            words: 0,
            messages: 0,
        }
    }

    /// Creates a link driven by a clock domain: serialization takes
    /// `cycles_per_word` link cycles per word and propagation takes
    /// `latency_cycles` cycles.
    pub fn from_clock(clock: &ClockDomain, latency_cycles: u64, cycles_per_word: u64) -> Self {
        Self::new(clock.cycles(latency_cycles), clock.cycles(cycles_per_word))
    }

    /// An infinitely fast link (zero latency, zero serialization) — the
    /// "single shared memory" limit used as a baseline.
    pub fn ideal() -> Self {
        Self::new(SimDuration::ZERO, SimDuration::ZERO)
    }

    /// Hands a `words`-word message to the link at `now`. Returns when the
    /// sender is free again and when the message is delivered.
    pub fn send(&mut self, now: SimTime, words: u64) -> LinkDelivery {
        let res = self.wire.acquire(now, self.per_word * words);
        self.words += words;
        self.messages += 1;
        LinkDelivery {
            sender_free: res.end,
            delivered: res.end + self.latency,
        }
    }

    /// The propagation latency.
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    /// Serialization cost per 32-bit word.
    pub fn per_word(&self) -> SimDuration {
        self.per_word
    }

    /// Total words transferred.
    pub fn words(&self) -> u64 {
        self.words
    }

    /// Total messages transferred.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Total time the wire spent serializing messages.
    pub fn busy_time(&self) -> SimDuration {
        self.wire.busy_time()
    }

    /// Total time messages spent queued behind earlier traffic.
    pub fn wait_time(&self) -> SimDuration {
        self.wire.wait_time()
    }

    /// Wire utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        self.wire.utilization(horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_us(v)
    }
    fn at(v: u64) -> SimTime {
        SimTime::from_ps(v * 1_000_000)
    }

    #[test]
    fn delivery_is_serialization_plus_latency() {
        let mut link = LinkResource::new(us(10), us(1));
        let d = link.send(at(0), 4);
        assert_eq!(d.sender_free, at(4));
        assert_eq!(d.delivered, at(14));
        assert_eq!(link.words(), 4);
        assert_eq!(link.messages(), 1);
    }

    #[test]
    fn back_to_back_messages_queue_but_latency_pipelines() {
        let mut link = LinkResource::new(us(10), us(1));
        let a = link.send(at(0), 5);
        let b = link.send(at(0), 5);
        // The second message waits for the wire, not for the first delivery.
        assert_eq!(a.delivered, at(15));
        assert_eq!(b.sender_free, at(10));
        assert_eq!(b.delivered, at(20));
        assert_eq!(link.wait_time(), us(5));
        assert_eq!(link.busy_time(), us(10));
    }

    #[test]
    fn fifo_ordering_is_preserved() {
        let mut link = LinkResource::new(us(3), us(1));
        let first = link.send(at(0), 10);
        let second = link.send(at(1), 1);
        assert!(second.delivered > first.delivered);
    }

    #[test]
    fn ideal_link_is_free_and_instant() {
        let mut link = LinkResource::ideal();
        let d = link.send(at(7), 1000);
        assert_eq!(d.sender_free, at(7));
        assert_eq!(d.delivered, at(7));
        assert_eq!(link.utilization(at(100)), 0.0);
    }

    #[test]
    fn clocked_link_uses_cycle_counts() {
        let clk = ClockDomain::mhz_100(); // 10 ns period
        let mut link = LinkResource::from_clock(&clk, 100, 1);
        assert_eq!(link.latency(), SimDuration::from_ns(1000));
        assert_eq!(link.per_word(), SimDuration::from_ns(10));
        let d = link.send(SimTime::ZERO, 2);
        assert_eq!(d.delivered, SimTime::from_ps(1020 * 1000));
    }
}
