//! Simulated time.
//!
//! All simulated timestamps are kept in **picoseconds** stored in a `u64`.
//! Picosecond resolution lets us represent single cycles of the slowest clock in
//! the paper (41.66 MHz → 24 000 ps) and of worker cores exactly, while a `u64`
//! still covers more than 200 days of simulated time — far beyond the longest
//! benchmark (streamcluster, ~238 s of aggregate work).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of picoseconds in one nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Number of picoseconds in one microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Number of picoseconds in one millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Number of picoseconds in one second.
pub const PS_PER_S: u64 = 1_000_000_000_000;

/// A span of simulated time (picosecond resolution).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Creates a duration from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns * PS_PER_NS)
    }

    /// Creates a duration from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * PS_PER_US)
    }

    /// Creates a duration from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * PS_PER_MS)
    }

    /// Creates a duration from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * PS_PER_S)
    }

    /// Creates a duration from a floating-point number of microseconds,
    /// rounding to the nearest picosecond. Negative values clamp to zero.
    #[inline]
    pub fn from_us_f64(us: f64) -> Self {
        if us <= 0.0 {
            SimDuration::ZERO
        } else {
            SimDuration((us * PS_PER_US as f64).round() as u64)
        }
    }

    /// Creates a duration from a floating-point number of nanoseconds,
    /// rounding to the nearest picosecond. Negative values clamp to zero.
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Self {
        if ns <= 0.0 {
            SimDuration::ZERO
        } else {
            SimDuration((ns * PS_PER_NS as f64).round() as u64)
        }
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Duration expressed in (truncated) nanoseconds.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0 / PS_PER_NS
    }

    /// Duration expressed as floating-point microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Duration expressed as floating-point milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }

    /// Duration expressed as floating-point seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// True if this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps >= PS_PER_S {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ps >= PS_PER_MS {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if ps >= PS_PER_US {
            write!(f, "{:.3}us", self.as_us_f64())
        } else if ps >= PS_PER_NS {
            write!(f, "{}ns", self.as_ns())
        } else {
            write!(f, "{}ps", ps)
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

/// An absolute point in simulated time (picoseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation origin, t = 0.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as an "unscheduled" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a timestamp from raw picoseconds since simulation start.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Raw picosecond count since simulation start.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Timestamp in floating-point microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Timestamp in floating-point milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }

    /// Timestamp in floating-point seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// The later of two timestamps.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two timestamps.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Elapsed duration since `earlier`. Panics in debug builds if `earlier`
    /// is in the future.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(self.0 >= earlier.0, "SimTime::since: earlier is later");
        SimDuration(self.0 - earlier.0)
    }

    /// Elapsed duration since `earlier`, clamped at zero.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", SimDuration(self.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_are_consistent() {
        assert_eq!(SimDuration::from_ns(1).as_ps(), 1_000);
        assert_eq!(SimDuration::from_us(1).as_ps(), 1_000_000);
        assert_eq!(SimDuration::from_ms(1).as_ps(), 1_000_000_000);
        assert_eq!(SimDuration::from_secs(1).as_ps(), PS_PER_S);
        assert_eq!(SimDuration::from_us(3).as_us_f64(), 3.0);
    }

    #[test]
    fn duration_from_f64_rounds_and_clamps() {
        assert_eq!(SimDuration::from_us_f64(1.5).as_ps(), 1_500_000);
        assert_eq!(SimDuration::from_us_f64(-2.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_ns_f64(0.5).as_ps(), 500);
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_ns(10);
        let t2 = t1 + SimDuration::from_ns(5);
        assert_eq!(t2.since(t0), SimDuration::from_ns(15));
        assert_eq!(t2 - t1, SimDuration::from_ns(5));
        assert_eq!(t1.max(t2), t2);
        assert_eq!(t1.min(t2), t1);
        assert_eq!(t0.saturating_since(t2), SimDuration::ZERO);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_ns(7);
        assert_eq!((d * 3).as_ps(), 21_000);
        assert_eq!((d / 7).as_ps(), 1_000);
        let total: SimDuration = (0..4).map(|_| SimDuration::from_ns(2)).sum();
        assert_eq!(total, SimDuration::from_ns(8));
    }

    #[test]
    fn display_formats_pick_sensible_units() {
        assert_eq!(format!("{}", SimDuration::from_ps(12)), "12ps");
        assert_eq!(format!("{}", SimDuration::from_ns(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_us(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_ms(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }

    #[test]
    fn streamcluster_scale_fits() {
        // 238 seconds of aggregate work must be representable with slack.
        let total = SimDuration::from_ms(237_908);
        assert!(total.as_ps() < u64::MAX / 1000);
    }
}
