//! Deterministic pseudo-random number generation.
//!
//! Workload generation and duration jitter must be exactly reproducible across
//! runs and platforms so the benchmark harness regenerates identical tables.
//! [`SimRng`] is a small, allocation-free xoshiro256**-style generator seeded
//! with SplitMix64 — enough statistical quality for workload synthesis without
//! pulling the full `rand` stack into every crate.

/// A deterministic xoshiro256** pseudo-random number generator.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`. Returns 0 for `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            // Lemire-style bounded generation without modulo bias for practical purposes.
            let x = self.next_u64();
            ((x as u128 * bound as u128) >> 64) as u64
        }
    }

    /// Uniform value in `[lo, hi)`. Requires `lo < hi`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi, "range requires lo < hi");
        lo + self.next_below(hi - lo)
    }

    /// Uniform floating-point value in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform floating-point value in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Approximately normally-distributed value (mean 0, std 1) via the
    /// sum-of-uniforms method (Irwin–Hall with 12 terms). Plenty for duration
    /// jitter.
    pub fn gaussian(&mut self) -> f64 {
        let mut acc = 0.0;
        for _ in 0..12 {
            acc += self.next_f64();
        }
        acc - 6.0
    }

    /// A log-normal-ish heavy-tailed sample with the given median and sigma
    /// (sigma is the standard deviation of the underlying normal). Used for
    /// benchmark duration distributions such as streamcluster's.
    pub fn lognormal(&mut self, median: f64, sigma: f64) -> f64 {
        median * (sigma * self.gaussian()).exp()
    }

    /// Returns `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        let n = slice.len();
        if n < 2 {
            return;
        }
        for i in (1..n).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn bounded_values_stay_in_range() {
        let mut r = SimRng::new(7);
        for _ in 0..10_000 {
            let v = r.next_below(13);
            assert!(v < 13);
            let w = r.range(5, 9);
            assert!((5..9).contains(&w));
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            let u = r.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&u));
        }
        assert_eq!(r.next_below(0), 0);
    }

    #[test]
    fn bounded_values_cover_the_range_roughly_uniformly() {
        let mut r = SimRng::new(123);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[r.next_below(8) as usize] += 1;
        }
        for &c in &counts {
            // Expect 10_000 each; allow generous 15% slack.
            assert!((8_500..11_500).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gaussian_has_reasonable_moments() {
        let mut r = SimRng::new(99);
        let n = 50_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = r.gaussian();
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn lognormal_median_is_close() {
        let mut r = SimRng::new(5);
        let mut samples: Vec<f64> = (0..20_001).map(|_| r.lognormal(100.0, 0.8)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((70.0..140.0).contains(&median), "median {median}");
        // Heavy tail: the max should be far above the median.
        assert!(*samples.last().unwrap() > 4.0 * median);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::new(11);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        let expected: Vec<u32> = (0..100).collect();
        assert_eq!(sorted, expected);
        assert_ne!(
            v, expected,
            "shuffle should change order (overwhelmingly likely)"
        );
    }
}
