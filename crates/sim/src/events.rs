//! Time-ordered event queue.
//!
//! The multicore host simulation (`nexus-host`) is driven by a classical
//! discrete-event loop: worker-core completions, manager ready notifications and
//! master wake-ups are all [`TimedEvent`]s popped in timestamp order. Ties are
//! broken by insertion sequence so the simulation is fully deterministic.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a point in simulated time.
#[derive(Debug, Clone)]
pub struct TimedEvent<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Monotonic sequence number used as a deterministic tie-breaker.
    pub seq: u64,
    /// The payload.
    pub payload: E,
}

impl<E> PartialEq for TimedEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for TimedEvent<E> {}

impl<E> PartialOrd for TimedEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for TimedEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is popped first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority queue of events keyed by simulated time.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<TimedEvent<E>>,
    next_seq: u64,
    scheduled: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            scheduled: 0,
        }
    }

    /// Schedules `payload` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        self.heap.push(TimedEvent { time, seq, payload });
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<TimedEvent<E>> {
        self.heap.pop()
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled.
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(v: u64) -> SimTime {
        SimTime::from_ps(v)
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(at(30), "c");
        q.schedule(at(10), "a");
        q.schedule(at(20), "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(at(10)));
        assert_eq!(q.pop().unwrap().payload, "a");
        assert_eq!(q.pop().unwrap().payload, "b");
        assert_eq!(q.pop().unwrap().payload, "c");
        assert!(q.pop().is_none());
        assert!(q.is_empty());
        assert_eq!(q.total_scheduled(), 3);
    }

    #[test]
    fn ties_resolve_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(at(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        let expected: Vec<_> = (0..100).collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(at(10), 1);
        q.schedule(at(5), 0);
        assert_eq!(q.pop().unwrap().payload, 0);
        q.schedule(at(7), 2);
        assert_eq!(q.pop().unwrap().payload, 2);
        assert_eq!(q.pop().unwrap().payload, 1);
    }
}
