//! Time-ordered event queue with pluggable engines.
//!
//! The discrete-event simulations (`nexus-host`, `nexus-cluster`) are driven by
//! a classical event loop: worker-core completions, manager ready notifications,
//! link relays and master wake-ups are all [`TimedEvent`]s popped in timestamp
//! order. Ties are broken by insertion sequence so the simulation is fully
//! deterministic.
//!
//! Two engines implement the same deterministic `(time, seq)` pop order:
//!
//! * [`EngineKind::Heap`] — the original `BinaryHeap` implementation, kept as
//!   the reference engine. `O(log n)` per operation with a large constant from
//!   pointer-chasing sift operations.
//! * [`EngineKind::Calendar`] — an indexed calendar queue (Brown's
//!   calendar-queue / timer-wheel family): a power-of-two ring of unsorted
//!   buckets spanning a sliding time window, with a shared overflow list for
//!   events beyond the horizon. Scheduling is `O(1)` (a shift and a push into
//!   a reused bucket arena — no per-event allocation in steady state), popping
//!   scans the current bucket for the minimum `(time, seq)` key, and the
//!   geometry (bucket count and width) adapts to the live event population
//!   whenever the wheel is re-anchored or rebuilt.
//!
//! Both engines expose the same API and, by construction, the exact same pop
//! order — the cluster equivalence suite asserts bit-identical outcomes across
//! the whole determinism grid. The engine is selected by [`EventQueue::with_engine`]
//! (drivers plumb it through their configs; the benches read the
//! `NEXUS_EVENT_ENGINE` env knob).

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;
use std::str::FromStr;

/// An event scheduled at a point in simulated time.
#[derive(Debug, Clone)]
pub struct TimedEvent<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Monotonic sequence number used as a deterministic tie-breaker.
    pub seq: u64,
    /// The payload.
    pub payload: E,
}

impl<E> PartialEq for TimedEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for TimedEvent<E> {}

impl<E> PartialOrd for TimedEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for TimedEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is popped first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Which data structure backs an [`EventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// The reference `BinaryHeap` engine.
    Heap,
    /// The indexed calendar-queue / timer-wheel engine (the default).
    #[default]
    Calendar,
}

impl EngineKind {
    /// Every engine, in documentation order.
    pub const ALL: [EngineKind; 2] = [EngineKind::Heap, EngineKind::Calendar];

    /// The canonical knob spelling (`"heap"` / `"calendar"`).
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Heap => "heap",
            EngineKind::Calendar => "calendar",
        }
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for EngineKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "heap" | "binary-heap" | "binaryheap" => Ok(EngineKind::Heap),
            "calendar" | "wheel" | "timer-wheel" => Ok(EngineKind::Calendar),
            other => Err(format!(
                "unknown event engine {other:?} (valid: heap | calendar)"
            )),
        }
    }
}

/// Initial/minimum number of buckets in the calendar wheel.
const MIN_BUCKETS: usize = 16;
/// Maximum number of buckets (bounds rebuild cost and memory).
const MAX_BUCKETS: usize = 1 << 16;

/// The indexed calendar-queue engine: a power-of-two ring of unsorted buckets
/// over the window `[win_start, win_start + nbuckets << shift)`, plus an
/// overflow list for events beyond the horizon. Invariants:
///
/// * every wheel event sits in a bucket `>= cur` of the current window (the
///   cursor never passes a non-empty bucket), so the first non-empty bucket at
///   or after `cur` contains the global minimum;
/// * equal timestamps land in the same bucket, so FIFO ties are resolved by
///   the in-bucket `(time, seq)` order;
/// * when `cur_sorted` is set, the cursor bucket is sorted by *descending*
///   `(time, seq)` — the minimum is its last element, pops are O(1) from the
///   back, and pushes into the cursor bucket binary-insert to keep the order.
///   Same-time event cascades pile dozens of events into the cursor bucket,
///   so an unsorted cursor bucket degrades pops to O(bucket²) rescans.
#[derive(Debug, Clone)]
struct CalendarQueue<E> {
    buckets: Vec<Vec<TimedEvent<E>>>,
    /// log2 of the bucket width in picoseconds.
    shift: u32,
    /// Lower bound (ps) of bucket 0 of the current window.
    win_start: u64,
    /// Current scan position in `buckets`.
    cur: usize,
    /// Whether `buckets[cur]` is currently sorted by descending `(time, seq)`.
    cur_sorted: bool,
    /// Events at or beyond the window horizon, unsorted.
    overflow: Vec<TimedEvent<E>>,
    /// Events currently stored in `buckets`.
    wheel_len: usize,
}

impl<E> CalendarQueue<E> {
    fn new() -> Self {
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            shift: 10, // 1 ns buckets until the first rebuild adapts
            win_start: 0,
            cur: 0,
            cur_sorted: false,
            overflow: Vec::new(),
            wheel_len: 0,
        }
    }

    fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    /// Maximum bucket-width exponent: 2^16 buckets × 2^47 ps ≈ 2^63 ps of
    /// window coverage, far beyond any simulated horizon, while keeping every
    /// shift below the u64 overflow edge.
    const MAX_SHIFT: u32 = 47;

    /// ceil(log2(width)) clamped to a safe shift, for an average inter-event
    /// spacing of `span / count` picoseconds.
    fn shift_for(span: u64, count: usize) -> u32 {
        let width = (span / count.max(1) as u64).max(1);
        let ceil_log2 = 63 - width.leading_zeros() + u32::from(!width.is_power_of_two());
        ceil_log2.min(Self::MAX_SHIFT)
    }

    #[inline]
    fn win_end(&self) -> u64 {
        self.win_start
            .saturating_add((self.buckets.len() as u64).saturating_mul(1u64 << self.shift))
    }

    #[inline]
    fn cur_start(&self) -> u64 {
        self.win_start
            .saturating_add((self.cur as u64).saturating_mul(1u64 << self.shift))
    }

    #[inline]
    fn key(ev: &TimedEvent<E>) -> (u64, u64) {
        (ev.time.as_ps(), ev.seq)
    }

    fn push(&mut self, ev: TimedEvent<E>) {
        let t = ev.time.as_ps();
        if self.len() == 0 {
            // Empty queue: re-anchor the window at the new event for free.
            self.win_start = t;
            self.cur = 0;
            self.cur_sorted = false;
        }
        if t >= self.win_end() {
            self.overflow.push(ev);
        } else {
            // Clamp "past" times (relative to the scan cursor) into the
            // current bucket; the in-bucket order keeps them first.
            let b = if t < self.cur_start() {
                self.cur
            } else {
                ((t - self.win_start) >> self.shift) as usize
            };
            if b == self.cur && self.cur_sorted {
                // Keep the cursor bucket sorted (descending): find the first
                // slot whose key is below the new one.
                let k = (t, ev.seq);
                let pos = self.buckets[b].partition_point(|e| Self::key(e) > k);
                self.buckets[b].insert(pos, ev);
            } else {
                self.buckets[b].push(ev);
            }
            self.wheel_len += 1;
        }
        if self.len() > 4 * self.buckets.len() && self.buckets.len() < MAX_BUCKETS {
            self.rebuild();
        }
    }

    /// Drains every stored event into a scratch vector and re-anchors the
    /// wheel geometry (bucket count ~ population, bucket width ~ average
    /// inter-event spacing) at the earliest pending time.
    fn rebuild(&mut self) {
        let mut all: Vec<TimedEvent<E>> = Vec::with_capacity(self.len());
        for b in &mut self.buckets {
            all.append(b);
        }
        all.append(&mut self.overflow);
        self.wheel_len = 0;
        self.cur_sorted = false;
        if all.is_empty() {
            self.cur = 0;
            return;
        }
        let min_t = all.iter().map(|e| e.time.as_ps()).min().unwrap();
        let max_t = all.iter().map(|e| e.time.as_ps()).max().unwrap();
        let n = all
            .len()
            .next_power_of_two()
            .clamp(MIN_BUCKETS, MAX_BUCKETS);
        if self.buckets.len() < n {
            self.buckets.resize_with(n, Vec::new);
        } else {
            // All buckets are drained; dropping the tail keeps pop scans
            // proportional to the live population.
            self.buckets.truncate(n);
        }
        self.shift = Self::shift_for(max_t - min_t, all.len());
        self.win_start = min_t;
        self.cur = 0;
        for ev in all {
            let t = ev.time.as_ps();
            if t >= self.win_end() {
                self.overflow.push(ev);
            } else {
                let b = ((t - self.win_start) >> self.shift) as usize;
                self.buckets[b].push(ev);
                self.wheel_len += 1;
            }
        }
    }

    /// Re-seeds the wheel from the overflow list once the wheel has drained:
    /// the window jumps to the earliest overflow event (a "wheel-overflow
    /// tick") and every overflow event inside the new window moves into its
    /// bucket.
    fn reanchor_from_overflow(&mut self) {
        debug_assert!(self.wheel_len == 0 && !self.overflow.is_empty());
        let min_t = self.overflow.iter().map(|e| e.time.as_ps()).min().unwrap();
        let max_t = self.overflow.iter().map(|e| e.time.as_ps()).max().unwrap();
        self.shift = Self::shift_for(max_t - min_t, self.overflow.len());
        self.win_start = min_t;
        self.cur = 0;
        self.cur_sorted = false;
        let mut i = 0;
        while i < self.overflow.len() {
            let t = self.overflow[i].time.as_ps();
            if t < self.win_end() {
                let ev = self.overflow.swap_remove(i);
                let b = ((t - self.win_start) >> self.shift) as usize;
                self.buckets[b].push(ev);
                self.wheel_len += 1;
            } else {
                i += 1;
            }
        }
        debug_assert!(self.wheel_len > 0);
    }

    /// Positions the cursor on the bucket holding the minimum `(time, seq)`
    /// and sorts it (descending) so the minimum is its last element. Advances
    /// the scan cursor past empty buckets and re-anchors from the overflow as
    /// needed. Returns `false` iff the queue is empty.
    fn settle_min(&mut self) -> bool {
        if self.len() == 0 {
            return false;
        }
        // Shrink a wheel that has drained far below its bucket count, so pops
        // never scan long runs of stale empty buckets.
        if self.len() < self.buckets.len() / 16 && self.buckets.len() > MIN_BUCKETS {
            self.rebuild();
        }
        if self.wheel_len == 0 {
            self.reanchor_from_overflow();
        }
        while self.buckets[self.cur].is_empty() {
            self.cur += 1;
            self.cur_sorted = false;
            debug_assert!(self.cur < self.buckets.len(), "wheel invariant violated");
        }
        if !self.cur_sorted {
            self.buckets[self.cur].sort_unstable_by(|a, b| Self::key(b).cmp(&Self::key(a)));
            self.cur_sorted = true;
        }
        true
    }

    fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        if !self.settle_min() {
            return None;
        }
        let ev = self.buckets[self.cur]
            .last()
            .expect("cursor bucket nonempty");
        Some((ev.time, ev.seq))
    }

    fn pop(&mut self) -> Option<TimedEvent<E>> {
        if !self.settle_min() {
            return None;
        }
        let ev = self.buckets[self.cur]
            .pop()
            .expect("cursor bucket nonempty");
        self.wheel_len -= 1;
        Some(ev)
    }
}

enum Engine<E> {
    Heap(BinaryHeap<TimedEvent<E>>),
    Calendar(CalendarQueue<E>),
}

impl<E: Clone> Clone for Engine<E> {
    fn clone(&self) -> Self {
        match self {
            Engine::Heap(h) => Engine::Heap(h.clone()),
            Engine::Calendar(c) => Engine::Calendar(c.clone()),
        }
    }
}

impl<E: fmt::Debug> fmt::Debug for Engine<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Engine::Heap(h) => f.debug_tuple("Heap").field(h).finish(),
            Engine::Calendar(c) => f.debug_tuple("Calendar").field(c).finish(),
        }
    }
}

/// A deterministic min-priority queue of events keyed by simulated time.
///
/// Events pop in `(time, seq)` order regardless of the backing
/// [`EngineKind`]; `seq` is assigned monotonically at scheduling time (or
/// reserved up front via [`EventQueue::reserve_seq`], which lets a driver
/// decide *after* scheduling-adjacent work whether to enqueue the event or
/// coalesce it inline without perturbing the deterministic order).
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    engine: Engine<E>,
    next_seq: u64,
    scheduled: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue backed by the default engine
    /// ([`EngineKind::Calendar`]).
    pub fn new() -> Self {
        Self::with_engine(EngineKind::default())
    }

    /// Creates an empty queue backed by the given engine.
    pub fn with_engine(kind: EngineKind) -> Self {
        let engine = match kind {
            EngineKind::Heap => Engine::Heap(BinaryHeap::new()),
            EngineKind::Calendar => Engine::Calendar(CalendarQueue::new()),
        };
        EventQueue {
            engine,
            next_seq: 0,
            scheduled: 0,
        }
    }

    /// The engine backing this queue.
    pub fn engine(&self) -> EngineKind {
        match self.engine {
            Engine::Heap(_) => EngineKind::Heap,
            Engine::Calendar(_) => EngineKind::Calendar,
        }
    }

    /// Schedules `payload` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.push(TimedEvent { time, seq, payload });
    }

    /// Burns and returns the sequence number the *next* scheduled event would
    /// receive. Pass it to [`EventQueue::schedule_at_seq`] to enqueue an event
    /// later (e.g. after deciding not to coalesce it inline) at exactly the
    /// deterministic position it would have had.
    pub fn reserve_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Schedules `payload` at `time` under a sequence number previously
    /// obtained from [`EventQueue::reserve_seq`].
    pub fn schedule_at_seq(&mut self, time: SimTime, seq: u64, payload: E) {
        debug_assert!(seq < self.next_seq, "seq {seq} was never reserved");
        self.push(TimedEvent { time, seq, payload });
    }

    fn push(&mut self, ev: TimedEvent<E>) {
        self.scheduled += 1;
        match &mut self.engine {
            Engine::Heap(h) => h.push(ev),
            Engine::Calendar(c) => c.push(ev),
        }
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<TimedEvent<E>> {
        match &mut self.engine {
            Engine::Heap(h) => h.pop(),
            Engine::Calendar(c) => c.pop(),
        }
    }

    /// Timestamp of the earliest pending event. May advance internal cursors
    /// (hence `&mut self`); the observable state is unchanged.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.peek_key().map(|(t, _)| t)
    }

    /// `(time, seq)` key of the earliest pending event. May advance internal
    /// cursors (hence `&mut self`); the observable state is unchanged.
    pub fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        match &mut self.engine {
            Engine::Heap(h) => h.peek().map(|e| (e.time, e.seq)),
            Engine::Calendar(c) => c.peek_key(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.engine {
            Engine::Heap(h) => h.len(),
            Engine::Calendar(c) => c.len(),
        }
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled.
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(v: u64) -> SimTime {
        SimTime::from_ps(v)
    }

    fn queues() -> Vec<EventQueue<i64>> {
        EngineKind::ALL
            .iter()
            .map(|&k| EventQueue::with_engine(k))
            .collect()
    }

    #[test]
    fn events_pop_in_time_order() {
        for mut q in queues() {
            q.schedule(at(30), 2);
            q.schedule(at(10), 0);
            q.schedule(at(20), 1);
            assert_eq!(q.len(), 3);
            assert_eq!(q.peek_time(), Some(at(10)));
            assert_eq!(q.pop().unwrap().payload, 0);
            assert_eq!(q.pop().unwrap().payload, 1);
            assert_eq!(q.pop().unwrap().payload, 2);
            assert!(q.pop().is_none());
            assert!(q.is_empty());
            assert_eq!(q.total_scheduled(), 3);
        }
    }

    #[test]
    fn ties_resolve_in_insertion_order() {
        for mut q in queues() {
            for i in 0..100 {
                q.schedule(at(5), i);
            }
            let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
            let expected: Vec<_> = (0..100).collect();
            assert_eq!(order, expected, "{:?}", q.engine());
        }
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        for mut q in queues() {
            q.schedule(at(10), 1);
            q.schedule(at(5), 0);
            assert_eq!(q.pop().unwrap().payload, 0);
            q.schedule(at(7), 2);
            assert_eq!(q.pop().unwrap().payload, 2);
            assert_eq!(q.pop().unwrap().payload, 1);
        }
    }

    #[test]
    fn same_timestamp_bursts_are_fifo_under_interleaved_pops() {
        // Same-timestamp cascades are the backbone of the cluster's ideal-link
        // scenarios: scheduling more work at `now` *while* popping must keep
        // strict FIFO order on every engine.
        for mut q in queues() {
            q.schedule(at(100), 0);
            q.schedule(at(100), 1);
            assert_eq!(q.pop().unwrap().payload, 0);
            q.schedule(at(100), 2); // scheduled mid-cascade, still at now
            q.schedule(at(50), -1); // "past" clamp: must still pop first
            assert_eq!(q.pop().unwrap().payload, -1);
            assert_eq!(q.pop().unwrap().payload, 1);
            assert_eq!(q.pop().unwrap().payload, 2);
            assert!(q.pop().is_none());
        }
    }

    #[test]
    fn wheel_overflow_ticks_deliver_far_future_events_in_order() {
        // Events far beyond the wheel horizon park in the overflow list and
        // must re-seed the wheel (one window jump per "tick") in exact order.
        let mut q: EventQueue<usize> = EventQueue::with_engine(EngineKind::Calendar);
        let times: Vec<u64> = (0..64)
            .map(|i| 1 + (i as u64) * 1_000_000_000_000) // 1s apart: way past any window
            .collect();
        // Schedule in reverse so the wheel anchors at the *latest* time first.
        for (i, &t) in times.iter().enumerate().rev() {
            q.schedule(at(t), i);
        }
        for (i, &t) in times.iter().enumerate() {
            let ev = q.pop().unwrap();
            assert_eq!(ev.time, at(t));
            assert_eq!(ev.payload, i);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn reserved_seqs_keep_deterministic_positions() {
        for mut q in queues() {
            q.schedule(at(10), 0);
            let s = q.reserve_seq();
            q.schedule(at(10), 2);
            // The reserved event enqueues late but sorts between 0 and 2.
            q.schedule_at_seq(at(10), s, 1);
            let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
            assert_eq!(order, vec![0, 1, 2], "{:?}", q.engine());
        }
    }

    #[test]
    fn peek_key_matches_next_pop() {
        for mut q in queues() {
            q.schedule(at(30), 0);
            q.schedule(at(20), 1);
            q.schedule(at(20), 2);
            while let Some((t, s)) = q.peek_key() {
                let ev = q.pop().unwrap();
                assert_eq!((ev.time, ev.seq), (t, s));
            }
        }
    }

    #[test]
    fn engines_agree_on_a_large_random_workload() {
        // A deterministic pseudo-random stress: mixed far/near/equal times,
        // interleaved pops, occasional reserve+late-schedule. Both engines
        // must produce the identical (time, seq) stream.
        let mut heap = EventQueue::with_engine(EngineKind::Heap);
        let mut cal = EventQueue::with_engine(EngineKind::Calendar);
        let mut popped: Vec<(SimTime, u64)> = Vec::new();
        let mut popped_cal: Vec<(SimTime, u64)> = Vec::new();
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut now = 0u64;
        let mut reserved: Vec<u64> = Vec::new();
        for round in 0..20_000u64 {
            let r = rng();
            let dt = match r % 5 {
                0 => 0,
                1 => r % 1_000,
                2 => r % 1_000_000,
                3 => r % 1_000_000_000,
                _ => r % 100,
            };
            let t = at(now + dt);
            match r % 7 {
                6 => {
                    let s = heap.reserve_seq();
                    let s2 = cal.reserve_seq();
                    assert_eq!(s, s2);
                    reserved.push(s);
                }
                5 if !reserved.is_empty() => {
                    let s = reserved.pop().unwrap();
                    heap.schedule_at_seq(t, s, round);
                    cal.schedule_at_seq(t, s, round);
                }
                _ => {
                    heap.schedule(t, round);
                    cal.schedule(t, round);
                }
            }
            if r % 3 == 0 {
                if let Some(e) = heap.pop() {
                    now = e.time.as_ps();
                    popped.push((e.time, e.seq));
                }
                if let Some(e) = cal.pop() {
                    popped_cal.push((e.time, e.seq));
                }
            }
        }
        while let Some(e) = heap.pop() {
            popped.push((e.time, e.seq));
        }
        while let Some(e) = cal.pop() {
            popped_cal.push((e.time, e.seq));
        }
        assert_eq!(popped.len(), popped_cal.len());
        assert_eq!(popped, popped_cal);
        // And the stream is globally sorted wherever no interleaving happened:
        // verify monotone non-decreasing keys after the final drain point.
        let tail = &popped[popped.len().saturating_sub(1000)..];
        assert!(tail.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn engine_kind_parses_and_displays() {
        assert_eq!("heap".parse::<EngineKind>().unwrap(), EngineKind::Heap);
        assert_eq!(
            "Calendar".parse::<EngineKind>().unwrap(),
            EngineKind::Calendar
        );
        assert_eq!("wheel".parse::<EngineKind>().unwrap(), EngineKind::Calendar);
        assert!("quantum".parse::<EngineKind>().is_err());
        assert_eq!(EngineKind::Heap.to_string(), "heap");
        assert_eq!(EngineKind::default(), EngineKind::Calendar);
        for k in EngineKind::ALL {
            assert_eq!(k.name().parse::<EngineKind>().unwrap(), k);
        }
    }
}
