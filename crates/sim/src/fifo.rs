//! Bounded FIFOs with a forwarding latency.
//!
//! The paper uses FIFO lists as the decoupling/synchronization medium between
//! every pair of pipeline stages ("Data communication between the different
//! stages are done using FIFOs lists … the data written to them needs 3 cycles
//! to appear at their output"). [`LatencyFifo`] models exactly that: a bounded
//! queue where an element pushed at time `t` becomes visible to the consumer at
//! `t + latency`, and where a full queue back-pressures the producer until the
//! consumer pops.

use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// A bounded FIFO whose entries become visible `latency` after being pushed.
#[derive(Debug, Clone)]
pub struct LatencyFifo<T> {
    /// (time the entry becomes readable, payload)
    entries: VecDeque<(SimTime, T)>,
    capacity: usize,
    latency: SimDuration,
    /// Statistics: maximum occupancy observed and number of pushes that stalled.
    max_occupancy: usize,
    stalled_pushes: u64,
    total_pushes: u64,
}

impl<T> LatencyFifo<T> {
    /// Creates a FIFO with the given capacity (entries) and forwarding latency.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, latency: SimDuration) -> Self {
        assert!(capacity > 0, "FIFO capacity must be at least 1");
        LatencyFifo {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            latency,
            max_occupancy: 0,
            stalled_pushes: 0,
            total_pushes: 0,
        }
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Forwarding latency.
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    /// Current occupancy (including entries not yet visible at the output).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if the FIFO has no free slot.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Pushes a value at time `now`. Returns the time at which the value will be
    /// readable at the output (`now + latency`), or `Err(value)` if the FIFO is
    /// full (the caller must retry after popping — i.e. the producer stalls).
    pub fn push(&mut self, now: SimTime, value: T) -> Result<SimTime, T> {
        self.total_pushes += 1;
        if self.is_full() {
            self.stalled_pushes += 1;
            return Err(value);
        }
        let ready = now + self.latency;
        self.entries.push_back((ready, value));
        self.max_occupancy = self.max_occupancy.max(self.entries.len());
        Ok(ready)
    }

    /// Time at which the head entry becomes readable, if any.
    pub fn head_ready_at(&self) -> Option<SimTime> {
        self.entries.front().map(|(t, _)| *t)
    }

    /// Pops the head entry if it is readable at `now`.
    pub fn pop_ready(&mut self, now: SimTime) -> Option<(SimTime, T)> {
        match self.entries.front() {
            Some((ready, _)) if *ready <= now => self.entries.pop_front(),
            _ => None,
        }
    }

    /// Pops the head entry regardless of visibility, returning the time it
    /// becomes readable. Useful for schedule-ahead simulation styles where the
    /// consumer simply waits until the returned time.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.entries.pop_front()
    }

    /// Iterates over queued entries in FIFO order (readable-time, payload).
    pub fn iter(&self) -> impl Iterator<Item = &(SimTime, T)> {
        self.entries.iter()
    }

    /// Highest occupancy ever observed.
    pub fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }

    /// Number of pushes rejected because the FIFO was full.
    pub fn stalled_pushes(&self) -> u64 {
        self.stalled_pushes
    }

    /// Total number of push attempts.
    pub fn total_pushes(&self) -> u64 {
        self.total_pushes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(v: u64) -> SimDuration {
        SimDuration::from_ns(v)
    }
    fn at(v: u64) -> SimTime {
        SimTime::from_ps(v * 1000)
    }

    #[test]
    fn entries_become_visible_after_latency() {
        let mut f = LatencyFifo::new(4, ns(3));
        let ready = f.push(at(10), "a").unwrap();
        assert_eq!(ready, at(13));
        // Not yet visible.
        assert!(f.pop_ready(at(12)).is_none());
        let (t, v) = f.pop_ready(at(13)).unwrap();
        assert_eq!((t, v), (at(13), "a"));
        assert!(f.is_empty());
    }

    #[test]
    fn order_is_fifo() {
        let mut f = LatencyFifo::new(4, ns(0));
        f.push(at(0), 1).unwrap();
        f.push(at(1), 2).unwrap();
        f.push(at(2), 3).unwrap();
        assert_eq!(f.pop_ready(at(10)).unwrap().1, 1);
        assert_eq!(f.pop_ready(at(10)).unwrap().1, 2);
        assert_eq!(f.pop_ready(at(10)).unwrap().1, 3);
    }

    #[test]
    fn full_fifo_back_pressures() {
        let mut f = LatencyFifo::new(2, ns(1));
        f.push(at(0), 1).unwrap();
        f.push(at(0), 2).unwrap();
        assert!(f.is_full());
        let rejected = f.push(at(0), 3);
        assert_eq!(rejected.unwrap_err(), 3);
        assert_eq!(f.stalled_pushes(), 1);
        // Draining frees a slot.
        f.pop();
        assert!(f.push(at(5), 3).is_ok());
        assert_eq!(f.max_occupancy(), 2);
        assert_eq!(f.total_pushes(), 4);
    }

    #[test]
    fn head_ready_at_reports_visibility_time() {
        let mut f = LatencyFifo::new(2, ns(3));
        assert!(f.head_ready_at().is_none());
        f.push(at(7), 42).unwrap();
        assert_eq!(f.head_ready_at(), Some(at(10)));
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_rejected() {
        let _: LatencyFifo<u8> = LatencyFifo::new(0, ns(1));
    }
}
