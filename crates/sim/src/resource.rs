//! Busy-until resource reservation.
//!
//! Hardware blocks in the Nexus models (the Input Parser, each task-graph insert
//! engine, the Dependence Counts Arbiter, the write-back port, the Nexus++ central
//! graph engine, the Nanos runtime lock, …) are *serial*: they handle one request
//! at a time and queue the rest. [`SerialResource`] models such a block as a
//! "busy until" timestamp: a request arriving at time `t` starts at
//! `max(t, busy_until)` and occupies the resource for its service time.
//!
//! [`PooledResource`] generalizes this to `k` identical servers (used for the
//! worker-core pool in simple capacity checks and for banked structures).

use crate::time::{SimDuration, SimTime};
use std::collections::BinaryHeap;

/// A single-server resource with FIFO queueing, modeled by a busy-until time.
#[derive(Debug, Clone, Default)]
pub struct SerialResource {
    busy_until: SimTime,
    /// Total busy time accumulated (for utilization reporting).
    busy_time: SimDuration,
    /// Total time requests spent waiting for the resource.
    wait_time: SimDuration,
    /// Number of requests served.
    requests: u64,
}

/// The outcome of a resource reservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// When the request actually started service.
    pub start: SimTime,
    /// When the request completed service (resource free again).
    pub end: SimTime,
}

impl Reservation {
    /// Time the request spent queued before service.
    pub fn queue_delay(&self, arrival: SimTime) -> SimDuration {
        self.start.saturating_since(arrival)
    }
}

impl SerialResource {
    /// Creates an idle resource.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves the resource for `service` starting no earlier than `now`.
    /// Returns when the request starts and ends.
    pub fn acquire(&mut self, now: SimTime, service: SimDuration) -> Reservation {
        let start = now.max(self.busy_until);
        let end = start + service;
        self.wait_time += start.saturating_since(now);
        self.busy_time += service;
        self.busy_until = end;
        self.requests += 1;
        Reservation { start, end }
    }

    /// Reserves the resource but does not start before `not_before`
    /// (used when an upstream FIFO only delivers data at a later time).
    pub fn acquire_after(
        &mut self,
        now: SimTime,
        not_before: SimTime,
        service: SimDuration,
    ) -> Reservation {
        self.acquire(now.max(not_before), service)
    }

    /// The earliest time a new request could start service.
    #[inline]
    pub fn next_free(&self) -> SimTime {
        self.busy_until
    }

    /// True if the resource is idle at `now`.
    #[inline]
    pub fn is_idle_at(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }

    /// Pushes the busy-until time forward to at least `t` without accounting
    /// busy time (used to model blocking dependencies such as a stalled
    /// task-graph set waiting for an eviction).
    pub fn block_until(&mut self, t: SimTime) {
        self.busy_until = self.busy_until.max(t);
    }

    /// Total busy (service) time accumulated.
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// Total queueing delay accumulated over all requests.
    pub fn wait_time(&self) -> SimDuration {
        self.wait_time
    }

    /// Number of requests served.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Utilization over the interval `[SimTime::ZERO, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            0.0
        } else {
            self.busy_time.as_ps() as f64 / horizon.as_ps() as f64
        }
    }
}

/// A pool of `k` identical servers with FIFO queueing.
///
/// Internally keeps a min-heap of server free times; a request is assigned to
/// the earliest-free server.
#[derive(Debug, Clone)]
pub struct PooledResource {
    /// Negated free times (BinaryHeap is a max-heap; we want the minimum).
    free_times: BinaryHeap<std::cmp::Reverse<SimTime>>,
    servers: usize,
    busy_time: SimDuration,
    requests: u64,
}

impl PooledResource {
    /// Creates a pool with `servers` identical servers, all idle.
    ///
    /// # Panics
    /// Panics if `servers` is zero.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "a resource pool needs at least one server");
        let mut free_times = BinaryHeap::with_capacity(servers);
        for _ in 0..servers {
            free_times.push(std::cmp::Reverse(SimTime::ZERO));
        }
        PooledResource {
            free_times,
            servers,
            busy_time: SimDuration::ZERO,
            requests: 0,
        }
    }

    /// Number of servers in the pool.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Reserves one server for `service`, starting no earlier than `now`.
    pub fn acquire(&mut self, now: SimTime, service: SimDuration) -> Reservation {
        let std::cmp::Reverse(free) = self
            .free_times
            .pop()
            .expect("pool always has `servers` entries");
        let start = now.max(free);
        let end = start + service;
        self.free_times.push(std::cmp::Reverse(end));
        self.busy_time += service;
        self.requests += 1;
        Reservation { start, end }
    }

    /// Earliest time at which any server is (or becomes) free.
    pub fn next_free(&self) -> SimTime {
        self.free_times
            .peek()
            .map(|std::cmp::Reverse(t)| *t)
            .unwrap_or(SimTime::ZERO)
    }

    /// Number of requests served.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Total busy time summed over all servers.
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// Average per-server utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            0.0
        } else {
            self.busy_time.as_ps() as f64 / (horizon.as_ps() as f64 * self.servers as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(v: u64) -> SimDuration {
        SimDuration::from_ns(v)
    }
    fn at(v: u64) -> SimTime {
        SimTime::from_ps(v * 1000)
    }

    #[test]
    fn serial_resource_serializes_back_to_back_requests() {
        let mut r = SerialResource::new();
        let a = r.acquire(at(0), ns(10));
        assert_eq!(a.start, at(0));
        assert_eq!(a.end, at(10));
        // Second request arrives while the first is in service: it queues.
        let b = r.acquire(at(5), ns(10));
        assert_eq!(b.start, at(10));
        assert_eq!(b.end, at(20));
        assert_eq!(b.queue_delay(at(5)), ns(5));
        // Third request arrives after the resource went idle: no queueing.
        let c = r.acquire(at(50), ns(1));
        assert_eq!(c.start, at(50));
        assert_eq!(r.requests(), 3);
        assert_eq!(r.busy_time(), ns(21));
        assert_eq!(r.wait_time(), ns(5));
    }

    #[test]
    fn acquire_after_respects_data_availability() {
        let mut r = SerialResource::new();
        let res = r.acquire_after(at(0), at(30), ns(10));
        assert_eq!(res.start, at(30));
        assert_eq!(res.end, at(40));
    }

    #[test]
    fn block_until_delays_future_requests() {
        let mut r = SerialResource::new();
        r.block_until(at(100));
        let res = r.acquire(at(0), ns(5));
        assert_eq!(res.start, at(100));
        // Blocking does not count as busy time.
        assert_eq!(r.busy_time(), ns(5));
    }

    #[test]
    fn utilization_is_fraction_of_horizon() {
        let mut r = SerialResource::new();
        r.acquire(at(0), ns(25));
        assert!((r.utilization(at(100)) - 0.25).abs() < 1e-12);
        assert_eq!(r.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn pooled_resource_runs_k_requests_in_parallel() {
        let mut p = PooledResource::new(2);
        let a = p.acquire(at(0), ns(10));
        let b = p.acquire(at(0), ns(10));
        let c = p.acquire(at(0), ns(10));
        assert_eq!(a.start, at(0));
        assert_eq!(b.start, at(0));
        // Third request waits for the first free server.
        assert_eq!(c.start, at(10));
        assert_eq!(p.requests(), 3);
        assert_eq!(p.servers(), 2);
    }

    #[test]
    fn pooled_resource_next_free_tracks_earliest_server() {
        let mut p = PooledResource::new(2);
        p.acquire(at(0), ns(10));
        assert_eq!(p.next_free(), SimTime::ZERO);
        p.acquire(at(0), ns(20));
        assert_eq!(p.next_free(), at(10));
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_pool_rejected() {
        let _ = PooledResource::new(0);
    }
}
