//! A fast, deterministic hasher for simulator-internal tables.
//!
//! The simulators key almost every hot table by small integers (task ids,
//! memory addresses, node indices). The standard library's SipHash is
//! DoS-resistant but costs tens of cycles per lookup, which dominates the
//! per-event budget of the discrete-event engines. This module provides the
//! classic Fx multiply-xor hash (the `rustc` compiler's internal hasher): a
//! couple of cycles per word, deterministic across runs and platforms, and
//! more than uniform enough for trusted integer keys.
//!
//! Never use these tables for attacker-controlled keys — there is no seed.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 2^64 / golden ratio, the classic Fx multiplier.
const K: u64 = 0x517c_c1b7_2722_0a95;

/// The Fx multiply-xor hasher (word-at-a-time, not DoS-resistant).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// [`BuildHasher`](std::hash::BuildHasher) for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A [`HashMap`] using the Fx hasher (fast, deterministic, not DoS-resistant).
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A [`HashSet`] using the Fx hasher (fast, deterministic, not DoS-resistant).
pub type FxHashSet<K> = HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_roundtrip_and_stay_deterministic() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..10_000u64 {
            m.insert(i * 0x9e37_79b9, i);
        }
        for i in 0..10_000u64 {
            assert_eq!(m.get(&(i * 0x9e37_79b9)), Some(&i));
        }
        // Hash values are a pure function of the key (no random seed).
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn byte_slices_hash_like_padded_words() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 0, 0, 0, 0, 0]);
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(&[1, 2, 4]);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn sets_behave() {
        let mut s: FxHashSet<(u64, u64)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
        assert!(s.contains(&(1, 2)));
        assert!(!s.contains(&(2, 1)));
    }
}
