//! Online statistics and histograms.
//!
//! These are used throughout the evaluation harness: per-benchmark task-size
//! statistics (Table II / Table III), resource utilization summaries, queue
//! occupancy distributions, and speedup series.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Numerically stable online mean / variance / min / max accumulator
/// (Welford's algorithm).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Adds a duration observation, in microseconds.
    pub fn push_duration_us(&mut self, d: SimDuration) {
        self.push(d.as_us_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of observations (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Maximum observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean = (n1 * self.mean + n2 * other.mean) / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A fixed-bucket histogram over a linear range, with overflow/underflow bins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram covering `[lo, hi)` with `buckets` equal-width bins.
    ///
    /// # Panics
    /// Panics if `lo >= hi` or `buckets == 0`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo < hi, "histogram range must be non-empty");
        assert!(buckets > 0, "histogram needs at least one bucket");
        Histogram {
            lo,
            hi,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Records an observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Total number of observations (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Per-bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// `(low_edge, high_edge, count)` for each bucket.
    pub fn iter_bins(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        self.buckets.iter().enumerate().map(move |(i, &c)| {
            let lo = self.lo + width * i as f64;
            (lo, lo + width, c)
        })
    }

    /// Approximate quantile from the binned data (`q` in `[0,1]`).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return self.lo;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).round() as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return self.lo;
        }
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return self.lo + width * (i as f64 + 0.5);
            }
        }
        self.hi
    }
}

/// A load-balance summary over a set of parallel units (e.g. how evenly the
/// distribution function spreads addresses over task graphs — the fairness
/// property of §IV-B and Fig. 3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadBalance {
    /// Item count per unit.
    pub per_unit: Vec<u64>,
}

impl LoadBalance {
    /// Creates a summary from per-unit counts.
    pub fn new(per_unit: Vec<u64>) -> Self {
        LoadBalance { per_unit }
    }

    /// Total items distributed.
    pub fn total(&self) -> u64 {
        self.per_unit.iter().sum()
    }

    /// Ratio of the most-loaded unit to the ideal (total / units).
    /// 1.0 is perfectly balanced; `units` is the pathological worst case where
    /// everything landed on a single unit.
    pub fn imbalance(&self) -> f64 {
        let total = self.total();
        if total == 0 || self.per_unit.is_empty() {
            return 1.0;
        }
        let ideal = total as f64 / self.per_unit.len() as f64;
        let max = *self.per_unit.iter().max().unwrap() as f64;
        max / ideal
    }

    /// Coefficient of variation of the per-unit load (0 = perfectly even).
    pub fn coefficient_of_variation(&self) -> f64 {
        let mut s = OnlineStats::new();
        for &c in &self.per_unit {
            s.push(c as f64);
        }
        if s.mean() == 0.0 {
            0.0
        } else {
            s.std_dev() / s.mean()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic_moments() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_benign() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn merge_matches_sequential_push() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..40] {
            a.push(x);
        }
        for &x in &data[40..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.5, 1.5, 1.7, 9.99, -1.0, 10.0, 25.0] {
            h.record(x);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 2);
        assert_eq!(h.buckets()[9], 1);
        let bins: Vec<_> = h.iter_bins().collect();
        assert_eq!(bins.len(), 10);
        assert!((bins[1].0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantile_is_monotone_and_roughly_right() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..1000 {
            h.record((i % 100) as f64);
        }
        let q50 = h.quantile(0.5);
        let q90 = h.quantile(0.9);
        assert!(q50 < q90);
        assert!((45.0..55.0).contains(&q50), "q50 {q50}");
        assert!((85.0..95.0).contains(&q90), "q90 {q90}");
    }

    #[test]
    fn load_balance_imbalance_metrics() {
        let even = LoadBalance::new(vec![100, 100, 100, 100]);
        assert!((even.imbalance() - 1.0).abs() < 1e-12);
        assert!(even.coefficient_of_variation() < 1e-12);

        let worst = LoadBalance::new(vec![400, 0, 0, 0]);
        assert!((worst.imbalance() - 4.0).abs() < 1e-12);
        assert!(worst.coefficient_of_variation() > 1.0);
        assert_eq!(worst.total(), 400);

        let empty = LoadBalance::new(vec![0, 0]);
        assert_eq!(empty.imbalance(), 1.0);
    }
}
