//! Clock-domain modelling.
//!
//! The hardware task managers run at a frequency determined by their synthesis
//! configuration (Table I of the paper: 100 MHz for Nexus++ and the 1/2-TG Nexus#
//! configurations, down to 41.66 MHz for 8 task graphs), while worker-core task
//! durations come from wall-clock traces. [`ClockDomain`] converts between cycle
//! counts of a block and simulated time.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A clock domain: a frequency plus helpers to convert cycles to durations and
/// to align timestamps to cycle boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockDomain {
    /// Frequency in Hz.
    freq_hz: f64,
    /// Clock period in picoseconds (rounded to the nearest picosecond).
    period_ps: u64,
}

impl ClockDomain {
    /// Creates a clock domain from a frequency in MHz.
    ///
    /// # Panics
    /// Panics if the frequency is not strictly positive.
    pub fn from_mhz(mhz: f64) -> Self {
        assert!(mhz > 0.0, "clock frequency must be positive, got {mhz} MHz");
        let freq_hz = mhz * 1.0e6;
        let period_ps = (1.0e12 / freq_hz).round() as u64;
        ClockDomain { freq_hz, period_ps }
    }

    /// Creates a clock domain from a frequency in Hz.
    pub fn from_hz(hz: f64) -> Self {
        Self::from_mhz(hz / 1.0e6)
    }

    /// The paper's reference configuration: a 100 MHz management clock.
    pub fn mhz_100() -> Self {
        Self::from_mhz(100.0)
    }

    /// Frequency in Hz.
    #[inline]
    pub fn freq_hz(&self) -> f64 {
        self.freq_hz
    }

    /// Frequency in MHz.
    #[inline]
    pub fn freq_mhz(&self) -> f64 {
        self.freq_hz / 1.0e6
    }

    /// Clock period.
    #[inline]
    pub fn period(&self) -> SimDuration {
        SimDuration::from_ps(self.period_ps)
    }

    /// Duration of `cycles` clock cycles.
    #[inline]
    pub fn cycles(&self, cycles: u64) -> SimDuration {
        SimDuration::from_ps(self.period_ps * cycles)
    }

    /// Number of whole cycles contained in `duration` (truncating).
    #[inline]
    pub fn cycles_in(&self, duration: SimDuration) -> u64 {
        duration.as_ps() / self.period_ps
    }

    /// Number of cycles needed to cover `duration` (rounding up).
    #[inline]
    pub fn cycles_to_cover(&self, duration: SimDuration) -> u64 {
        duration.as_ps().div_ceil(self.period_ps)
    }

    /// Rounds a timestamp up to the next cycle boundary of this clock
    /// (timestamps already on a boundary are returned unchanged).
    #[inline]
    pub fn align_up(&self, t: SimTime) -> SimTime {
        let ps = t.as_ps();
        let rem = ps % self.period_ps;
        if rem == 0 {
            t
        } else {
            SimTime::from_ps(ps + (self.period_ps - rem))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn period_of_100mhz_is_10ns() {
        let clk = ClockDomain::mhz_100();
        assert_eq!(clk.period(), SimDuration::from_ns(10));
        assert_eq!(clk.cycles(18), SimDuration::from_ns(180));
        assert_eq!(clk.freq_mhz(), 100.0);
    }

    #[test]
    fn period_of_55_56mhz_matches_paper_6tg_config() {
        let clk = ClockDomain::from_mhz(55.56);
        // 1 / 55.56 MHz = 17.998... ns
        let p = clk.period().as_ps();
        assert!((17_990..=18_010).contains(&p), "period {p} ps");
    }

    #[test]
    fn cycle_counting_round_trips() {
        let clk = ClockDomain::from_mhz(41.66);
        let d = clk.cycles(1000);
        assert_eq!(clk.cycles_in(d), 1000);
        assert_eq!(clk.cycles_to_cover(d), 1000);
        assert_eq!(clk.cycles_to_cover(d + SimDuration::from_ps(1)), 1001);
    }

    #[test]
    fn align_up_snaps_to_boundaries() {
        let clk = ClockDomain::mhz_100(); // 10 ns period
        let t = SimTime::from_ps(25_000);
        assert_eq!(clk.align_up(t), SimTime::from_ps(30_000));
        let aligned = SimTime::from_ps(40_000);
        assert_eq!(clk.align_up(aligned), aligned);
        assert_eq!(clk.align_up(SimTime::ZERO), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_frequency_rejected() {
        let _ = ClockDomain::from_mhz(0.0);
    }
}
