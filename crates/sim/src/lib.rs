//! # nexus-sim — discrete-event simulation substrate
//!
//! This crate provides the timing machinery shared by every hardware and software
//! model in the Nexus# reproduction:
//!
//! * [`SimTime`] / [`SimDuration`] — picosecond-resolution simulated time,
//! * [`ClockDomain`] — cycle ↔ time conversion for a hardware block running at a
//!   given frequency (the Nexus# designs run at 41.66–100 MHz depending on the
//!   number of task graphs, while task durations come from wall-clock traces),
//! * [`SerialResource`] / [`PooledResource`] — busy-until reservation of pipeline
//!   stages, engines and ports,
//! * [`LatencyFifo`] — the bounded FIFOs with a fixed forwarding latency that the
//!   paper uses as the decoupling medium between pipeline stages,
//! * [`LinkResource`] — a point-to-point interconnect link (latency + bandwidth
//!   + serialization) used by the multi-node cluster simulation,
//! * [`EventQueue`] — a time-ordered event queue for the multicore host simulation,
//! * [`stats`] — online statistics and histograms used by the benchmark harness,
//! * [`rng`] — a small deterministic pseudo-random generator so traces and
//!   simulations are exactly reproducible without external crates.
//!
//! The model of computation is *timed-functional*: components are functionally
//! exact (dependency semantics are always respected) and their cost is expressed
//! through reservations of serial resources, which is precisely the level at which
//! the paper's evaluation operates (pipeline stage cycle counts, queueing, clock
//! frequency).

#![warn(missing_docs)]

pub mod clock;
pub mod events;
pub mod fifo;
pub mod fxhash;
pub mod link;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;

pub use clock::ClockDomain;
pub use events::{EngineKind, EventQueue, TimedEvent};
pub use fifo::LatencyFifo;
pub use fxhash::{FxHashMap, FxHashSet};
pub use link::{LinkDelivery, LinkResource};
pub use resource::{PooledResource, SerialResource};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};

/// Convenience prelude bringing the most common simulation types into scope.
pub mod prelude {
    pub use crate::clock::ClockDomain;
    pub use crate::events::{EngineKind, EventQueue, TimedEvent};
    pub use crate::fifo::LatencyFifo;
    pub use crate::link::{LinkDelivery, LinkResource};
    pub use crate::resource::{PooledResource, SerialResource};
    pub use crate::rng::SimRng;
    pub use crate::stats::{Histogram, OnlineStats};
    pub use crate::time::{SimDuration, SimTime};
}
