//! Task-lifecycle span events and the `Recorder` sink they flow into.
//!
//! The simulator and the live runtime emit the same event schema; only the
//! timestamp base differs (virtual picoseconds vs. monotonic wall
//! nanoseconds). A recorder is purely observational: producers must behave
//! bit-identically whether one is attached or not, which the cluster crate
//! asserts across its full determinism grid.

use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Unit and origin of the timestamps fed to a [`Recorder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeBase {
    /// Virtual simulation time in picoseconds since the start of the run.
    VirtualPs,
    /// Monotonic wall-clock nanoseconds since the recorder's epoch.
    WallNs,
}

impl TimeBase {
    /// Converts a raw timestamp in this base to Chrome-trace microseconds.
    pub fn to_micros(self, at: u64) -> f64 {
        match self {
            TimeBase::VirtualPs => at as f64 / 1_000_000.0,
            TimeBase::WallNs => at as f64 / 1_000.0,
        }
    }

    /// Short human-readable unit suffix (`ps` / `ns`).
    pub fn unit(self) -> &'static str {
        match self {
            TimeBase::VirtualPs => "ps",
            TimeBase::WallNs => "ns",
        }
    }
}

/// A single typed event in a task's lifecycle (or on the transport fabric).
///
/// Task ids are the producer's dense ids; node, worker and link ids are the
/// producer's indices. The same schema is emitted by the event simulator and
/// the threaded runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanEvent {
    /// The master state machine accepted the task from the program order.
    Submitted {
        /// Dense task id.
        task: usize,
    },
    /// Placement chose a home node; the descriptor forward is in flight.
    Placed {
        /// Dense task id.
        task: usize,
        /// Node the placement policy selected.
        node: usize,
    },
    /// The home node's manager popped the task from its ready pool.
    Dispatched {
        /// Dense task id.
        task: usize,
        /// Node whose manager dispatched it.
        node: usize,
    },
    /// A worker began executing the task body.
    Started {
        /// Dense task id.
        task: usize,
        /// Node the worker belongs to.
        node: usize,
        /// Worker index within the node.
        worker: usize,
    },
    /// The task finished and its dependences were released.
    Retired {
        /// Dense task id.
        task: usize,
        /// Node that retired it.
        node: usize,
    },
    /// A steal grant moved the task from a victim to a thief node.
    Stolen {
        /// Dense task id.
        task: usize,
        /// Victim node that gave the task up.
        from: usize,
        /// Thief node that received it.
        to: usize,
    },
    /// A reclaim grant pulled the task — not yet dispatchable, still waiting
    /// on producers — out of a loaded node's pool onto a lighter node.
    Reclaimed {
        /// Dense task id.
        task: usize,
        /// Loaded node that handed the task back.
        from: usize,
        /// Node that took it over.
        to: usize,
    },
    /// A message crossed one fabric link hop.
    LinkHop {
        /// Link index in the fabric graph.
        link: usize,
        /// Tier of that link (0 = cheapest).
        tier: usize,
        /// Payload size in words.
        words: u64,
    },
    /// Streaming admission blocked the source clock on a full node queue.
    Backpressure {
        /// Node whose admission queue was full.
        node: usize,
    },
}

impl SpanEvent {
    /// The task this event belongs to, if it is a task-lifecycle event.
    pub fn task(&self) -> Option<usize> {
        match *self {
            SpanEvent::Submitted { task }
            | SpanEvent::Placed { task, .. }
            | SpanEvent::Dispatched { task, .. }
            | SpanEvent::Started { task, .. }
            | SpanEvent::Retired { task, .. }
            | SpanEvent::Stolen { task, .. }
            | SpanEvent::Reclaimed { task, .. } => Some(task),
            SpanEvent::LinkHop { .. } | SpanEvent::Backpressure { .. } => None,
        }
    }

    /// Short event-kind name used by the text timeline and counters.
    pub fn kind(&self) -> &'static str {
        match self {
            SpanEvent::Submitted { .. } => "submitted",
            SpanEvent::Placed { .. } => "placed",
            SpanEvent::Dispatched { .. } => "dispatched",
            SpanEvent::Started { .. } => "started",
            SpanEvent::Retired { .. } => "retired",
            SpanEvent::Stolen { .. } => "stolen",
            SpanEvent::Reclaimed { .. } => "reclaimed",
            SpanEvent::LinkHop { .. } => "link_hop",
            SpanEvent::Backpressure { .. } => "backpressure",
        }
    }
}

/// Sink for span events. Producers call [`Recorder::record`] with a raw
/// timestamp in the producer's time base.
///
/// Implementations must not influence the producer: the cluster determinism
/// grid asserts bit-identical outcomes with and without a recorder attached.
pub trait Recorder {
    /// Receives one event stamped `at` (units per the producer's time base).
    fn record(&mut self, at: u64, event: SpanEvent);
}

/// A recorder that drops everything. Useful as an explicit "tracing off"
/// argument; the hot paths skip the virtual call entirely when no recorder
/// is attached, so this mostly serves tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&mut self, _at: u64, _event: SpanEvent) {}
}

/// In-memory recorder: an append-only event log plus its time base.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemRecorder {
    /// Unit of the `u64` timestamps in [`MemRecorder::events`].
    pub time_base: TimeBase,
    /// `(timestamp, event)` pairs in emission order.
    pub events: Vec<(u64, SpanEvent)>,
}

impl MemRecorder {
    /// Creates an empty log stamped in `time_base` units.
    pub fn new(time_base: TimeBase) -> Self {
        MemRecorder {
            time_base,
            events: Vec::new(),
        }
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Count of events matching `pred`.
    pub fn count(&self, pred: impl Fn(&SpanEvent) -> bool) -> usize {
        self.events.iter().filter(|(_, ev)| pred(ev)).count()
    }

    /// Stable-sorts the log by timestamp. Wall-clock logs written by several
    /// threads interleave out of order; exporters call this first.
    pub fn sort_by_time(&mut self) {
        self.events.sort_by_key(|&(at, _)| at);
    }
}

impl Recorder for MemRecorder {
    fn record(&mut self, at: u64, event: SpanEvent) {
        self.events.push((at, event));
    }
}

/// Thread-safe wall-clock recorder for the live runtime.
///
/// Clones share one log and one epoch, so manager and worker threads stamp
/// events on a common monotonic axis. `Clone + Debug` lets it ride inside
/// `RtConfig`.
#[derive(Debug, Clone)]
pub struct SharedRecorder {
    epoch: Instant,
    events: Arc<Mutex<Vec<(u64, SpanEvent)>>>,
}

impl Default for SharedRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedRecorder {
    /// Creates an empty shared log whose epoch is "now".
    pub fn new() -> Self {
        SharedRecorder {
            epoch: Instant::now(),
            events: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Monotonic nanoseconds since this recorder's epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Records `event` stamped with the current wall clock.
    pub fn record_now(&self, event: SpanEvent) {
        let at = self.now_ns();
        self.events.lock().expect("recorder lock").push((at, event));
    }

    /// Number of recorded events so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("recorder lock").len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the log out as a time-sorted [`MemRecorder`] in [`TimeBase::WallNs`].
    pub fn snapshot(&self) -> MemRecorder {
        let mut rec = MemRecorder::new(TimeBase::WallNs);
        rec.events
            .extend(self.events.lock().expect("recorder lock").iter().copied());
        rec.sort_by_time();
        rec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_recorder_appends_in_order() {
        let mut rec = MemRecorder::new(TimeBase::VirtualPs);
        rec.record(5, SpanEvent::Submitted { task: 0 });
        rec.record(9, SpanEvent::Retired { task: 0, node: 1 });
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.events[0], (5, SpanEvent::Submitted { task: 0 }));
        assert_eq!(rec.count(|ev| ev.kind() == "retired"), 1);
    }

    #[test]
    fn shared_recorder_clones_share_one_log() {
        let rec = SharedRecorder::new();
        let clone = rec.clone();
        clone.record_now(SpanEvent::Submitted { task: 3 });
        rec.record_now(SpanEvent::Retired { task: 3, node: 0 });
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap.time_base, TimeBase::WallNs);
        // snapshot() sorts, so timestamps are monotone.
        assert!(snap.events[0].0 <= snap.events[1].0);
    }

    #[test]
    fn time_base_converts_to_chrome_micros() {
        assert_eq!(TimeBase::VirtualPs.to_micros(2_000_000), 2.0);
        assert_eq!(TimeBase::WallNs.to_micros(1_500), 1.5);
        assert_eq!(TimeBase::VirtualPs.unit(), "ps");
    }
}
