//! Trace-conservation checks shared by the simulator and runtime test
//! suites: every submitted task retires exactly once, and the lifecycle
//! timestamps of each task are monotone (`Submitted ≤ Placed ≤ Dispatched ≤
//! Started ≤ Retired` where present).

use std::collections::BTreeMap;

use crate::span::SpanEvent;

/// Aggregate counts returned by a successful [`check_conservation`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConservationReport {
    /// Tasks submitted.
    pub submitted: usize,
    /// Tasks that started executing.
    pub started: usize,
    /// Tasks retired.
    pub retired: usize,
    /// Steal grants observed.
    pub stolen: usize,
    /// Reclaim grants observed (tasks pulled back out of a loaded pool).
    pub reclaimed: usize,
}

#[derive(Default)]
struct Lifecycle {
    submitted: Option<u64>,
    submitted_count: usize,
    placed: Option<u64>,
    dispatched: Option<u64>,
    started: Option<u64>,
    retired: Option<u64>,
    retired_count: usize,
}

/// Validates task-lifecycle conservation over a recorded event log.
///
/// Checks, per task: at most one `Submitted` and exactly one `Retired` for
/// every submitted task, no retirement without submission, and monotone
/// timestamps across the lifecycle stages that were recorded. Returns the
/// aggregate counts on success and a description of the first violation
/// otherwise.
pub fn check_conservation(events: &[(u64, SpanEvent)]) -> Result<ConservationReport, String> {
    let mut tasks: BTreeMap<usize, Lifecycle> = BTreeMap::new();
    let mut report = ConservationReport::default();

    for &(at, ev) in events {
        let Some(task) = ev.task() else { continue };
        let life = tasks.entry(task).or_default();
        match ev {
            SpanEvent::Submitted { .. } => {
                life.submitted = Some(at);
                life.submitted_count += 1;
                report.submitted += 1;
            }
            SpanEvent::Placed { .. } => life.placed = Some(at),
            SpanEvent::Dispatched { .. } => life.dispatched = Some(at),
            SpanEvent::Started { .. } => {
                life.started = Some(at);
                report.started += 1;
            }
            SpanEvent::Retired { .. } => {
                life.retired = Some(at);
                life.retired_count += 1;
                report.retired += 1;
            }
            SpanEvent::Stolen { .. } => report.stolen += 1,
            SpanEvent::Reclaimed { .. } => report.reclaimed += 1,
            SpanEvent::LinkHop { .. } | SpanEvent::Backpressure { .. } => {}
        }
    }

    for (&task, life) in &tasks {
        if life.submitted_count > 1 {
            return Err(format!(
                "task {task} submitted {} times",
                life.submitted_count
            ));
        }
        if life.submitted_count == 1 && life.retired_count != 1 {
            return Err(format!(
                "task {task} submitted once but retired {} times",
                life.retired_count
            ));
        }
        if life.submitted_count == 0 && life.retired_count > 0 {
            return Err(format!("task {task} retired without being submitted"));
        }
        // Timestamp monotonicity over whichever stages were recorded.
        let stages = [
            ("submitted", life.submitted),
            ("placed", life.placed),
            ("dispatched", life.dispatched),
            ("started", life.started),
            ("retired", life.retired),
        ];
        let mut prev: Option<(&str, u64)> = None;
        for (name, at) in stages {
            let Some(at) = at else { continue };
            if let Some((prev_name, prev_at)) = prev {
                if prev_at > at {
                    return Err(format!(
                        "task {task}: {prev_name} at {prev_at} after {name} at {at}"
                    ));
                }
            }
            prev = Some((name, at));
        }
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{MemRecorder, Recorder, TimeBase};

    fn full_lifecycle(rec: &mut MemRecorder, task: usize, base: u64) {
        rec.record(base, SpanEvent::Submitted { task });
        rec.record(base + 1, SpanEvent::Placed { task, node: 0 });
        rec.record(base + 2, SpanEvent::Dispatched { task, node: 0 });
        rec.record(
            base + 3,
            SpanEvent::Started {
                task,
                node: 0,
                worker: 0,
            },
        );
        rec.record(base + 9, SpanEvent::Retired { task, node: 0 });
    }

    #[test]
    fn complete_lifecycles_pass() {
        let mut rec = MemRecorder::new(TimeBase::VirtualPs);
        full_lifecycle(&mut rec, 0, 0);
        full_lifecycle(&mut rec, 1, 100);
        let report = check_conservation(&rec.events).unwrap();
        assert_eq!(report.submitted, 2);
        assert_eq!(report.started, 2);
        assert_eq!(report.retired, 2);
    }

    #[test]
    fn missing_retirement_is_a_violation() {
        let mut rec = MemRecorder::new(TimeBase::VirtualPs);
        rec.record(0, SpanEvent::Submitted { task: 5 });
        let err = check_conservation(&rec.events).unwrap_err();
        assert!(err.contains("task 5"), "{err}");
        assert!(err.contains("retired 0 times"), "{err}");
    }

    #[test]
    fn double_retirement_is_a_violation() {
        let mut rec = MemRecorder::new(TimeBase::VirtualPs);
        full_lifecycle(&mut rec, 2, 0);
        rec.record(50, SpanEvent::Retired { task: 2, node: 1 });
        let err = check_conservation(&rec.events).unwrap_err();
        assert!(err.contains("retired 2 times"), "{err}");
    }

    #[test]
    fn retirement_before_start_is_a_violation() {
        let mut rec = MemRecorder::new(TimeBase::VirtualPs);
        rec.record(0, SpanEvent::Submitted { task: 3 });
        rec.record(
            10,
            SpanEvent::Started {
                task: 3,
                node: 0,
                worker: 0,
            },
        );
        rec.record(4, SpanEvent::Retired { task: 3, node: 0 });
        let err = check_conservation(&rec.events).unwrap_err();
        assert!(err.contains("started at 10 after retired at 4"), "{err}");
    }

    #[test]
    fn reclaimed_tasks_still_retire_exactly_once() {
        let mut rec = MemRecorder::new(TimeBase::VirtualPs);
        rec.record(0, SpanEvent::Submitted { task: 0 });
        rec.record(1, SpanEvent::Placed { task: 0, node: 2 });
        rec.record(
            4,
            SpanEvent::Reclaimed {
                task: 0,
                from: 2,
                to: 1,
            },
        );
        rec.record(9, SpanEvent::Retired { task: 0, node: 1 });
        let report = check_conservation(&rec.events).unwrap();
        assert_eq!(report.reclaimed, 1);
        assert_eq!(report.retired, 1);

        // A reclaimed task that never retires is still a violation …
        rec.record(10, SpanEvent::Submitted { task: 1 });
        rec.record(
            12,
            SpanEvent::Reclaimed {
                task: 1,
                from: 0,
                to: 1,
            },
        );
        let err = check_conservation(&rec.events).unwrap_err();
        assert!(err.contains("task 1"), "{err}");
        // … and so is one that retires on both the old and the new home.
        rec.record(20, SpanEvent::Retired { task: 1, node: 0 });
        rec.record(21, SpanEvent::Retired { task: 1, node: 1 });
        let err = check_conservation(&rec.events).unwrap_err();
        assert!(err.contains("retired 2 times"), "{err}");
    }

    #[test]
    fn orphan_retirement_is_a_violation() {
        let mut rec = MemRecorder::new(TimeBase::VirtualPs);
        rec.record(4, SpanEvent::Retired { task: 9, node: 0 });
        let err = check_conservation(&rec.events).unwrap_err();
        assert!(err.contains("without being submitted"), "{err}");
    }
}
