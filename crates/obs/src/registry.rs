//! Named metrics registry: monotonic counters and sampled gauges.
//!
//! `ClusterOutcome`, `StreamOutcome` and the runtime's `ShutdownReport` are
//! views over one of these, so the simulator and the live runtime expose the
//! same key names and the conformance suite can compare them directly. Merge
//! is associative (and counter-merge commutative), which is what per-node
//! aggregation needs.

use std::collections::BTreeMap;

/// A sampled gauge: last/max/sum/count of the observed values.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gauge {
    /// Most recently sampled value.
    pub last: u64,
    /// Largest value sampled so far.
    pub max: u64,
    /// Number of samples taken.
    pub samples: u64,
    /// Sum of all samples (wide to avoid overflow on long runs).
    pub sum: u128,
}

impl Gauge {
    /// Mean of the samples, or 0.0 when none were taken.
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum as f64 / self.samples as f64
        }
    }
}

/// Named monotonic counters plus sampled gauges.
///
/// Keys use dotted lowercase paths (`steal.stolen`, `link.tier0.words`,
/// `engine.pops`). Backed by `BTreeMap` so `Debug` output — which the
/// determinism grid compares — is ordered and stable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, Gauge>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Increments counter `key` by `delta` (creating it at zero first).
    pub fn add(&mut self, key: &str, delta: u64) {
        if let Some(slot) = self.counters.get_mut(key) {
            *slot += delta;
        } else {
            self.counters.insert(key.to_string(), delta);
        }
    }

    /// Current value of counter `key` (0 when never incremented).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Records one observation of gauge `key`.
    pub fn sample(&mut self, key: &str, value: u64) {
        let g = self.gauges.entry(key.to_string()).or_default();
        g.last = value;
        g.max = g.max.max(value);
        g.samples += 1;
        g.sum += u128::from(value);
    }

    /// The gauge stored under `key`, if any sample was ever taken.
    pub fn gauge(&self, key: &str) -> Option<Gauge> {
        self.gauges.get(key).copied()
    }

    /// Folds `other` into `self`: counters add; each gauge merges max/sum/
    /// samples, with `last` taken from `other` when it has samples (so a
    /// left-to-right fold behaves like log concatenation). Associative.
    pub fn merge(&mut self, other: &Registry) {
        for (key, value) in &other.counters {
            self.add(key, *value);
        }
        for (key, theirs) in &other.gauges {
            let g = self.gauges.entry(key.clone()).or_default();
            if theirs.samples > 0 {
                g.last = theirs.last;
            }
            g.max = g.max.max(theirs.max);
            g.samples += theirs.samples;
            g.sum += theirs.sum;
        }
    }

    /// Counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Gauges in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, Gauge)> {
        self.gauges.iter().map(|(k, g)| (k.as_str(), *g))
    }

    /// Counters whose key starts with `prefix`, in key order.
    pub fn counters_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.counters().filter(move |(k, _)| k.starts_with(prefix))
    }

    /// True when no counter or gauge exists.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg(pairs: &[(&str, u64)], samples: &[(&str, u64)]) -> Registry {
        let mut r = Registry::new();
        for (k, v) in pairs {
            r.add(k, *v);
        }
        for (k, v) in samples {
            r.sample(k, *v);
        }
        r
    }

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut r = Registry::new();
        r.add("steal.stolen", 2);
        r.add("steal.stolen", 3);
        assert_eq!(r.counter("steal.stolen"), 5);
        assert_eq!(r.counter("never.touched"), 0);
    }

    #[test]
    fn gauges_track_last_max_mean() {
        let mut r = Registry::new();
        for v in [4, 10, 1] {
            r.sample("queue.depth", v);
        }
        let g = r.gauge("queue.depth").unwrap();
        assert_eq!(g.last, 1);
        assert_eq!(g.max, 10);
        assert_eq!(g.samples, 3);
        assert_eq!(g.mean(), 5.0);
        assert!(r.gauge("missing").is_none());
    }

    #[test]
    fn merge_is_associative() {
        let a = reg(&[("c", 1), ("only.a", 7)], &[("g", 3)]);
        let b = reg(&[("c", 10)], &[("g", 9), ("h", 2)]);
        let c = reg(&[("c", 100), ("only.c", 5)], &[("g", 1)]);

        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);

        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);

        assert_eq!(left, right);
        assert_eq!(left.counter("c"), 111);
        let g = left.gauge("g").unwrap();
        assert_eq!((g.last, g.max, g.samples), (1, 9, 3));
    }

    #[test]
    fn counter_merge_is_commutative() {
        let a = reg(&[("x", 1), ("y", 2)], &[]);
        let b = reg(&[("x", 10), ("z", 3)], &[]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn prefix_iteration_is_ordered() {
        let r = reg(
            &[
                ("link.tier1.words", 2),
                ("link.tier0.words", 1),
                ("steal.stolen", 9),
            ],
            &[],
        );
        let tiers: Vec<_> = r.counters_with_prefix("link.").collect();
        assert_eq!(
            tiers,
            vec![("link.tier0.words", 1), ("link.tier1.words", 2)]
        );
    }
}
