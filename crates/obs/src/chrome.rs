//! Chrome-trace / Perfetto JSON export plus a compact text timeline.
//!
//! Hand-rolled JSON (the vendored serde is a no-op, same policy as
//! `nexus_bench::baseline`). Layout: one Chrome *process* per node plus a
//! synthetic `master` process, thread 0 of each node is the manager and
//! thread `w + 1` is worker `w`. Task executions are complete (`ph:"X"`)
//! spans on the worker row; descriptor forwards and steal grants are flow
//! arrows (`ph:"s"` / `ph:"f"`); backpressure stalls are instants. Open the
//! file at <https://ui.perfetto.dev> (or `chrome://tracing`) via *Open trace
//! file*.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::span::{MemRecorder, SpanEvent};

#[derive(Default)]
struct TaskRec {
    placed: Option<(f64, usize)>,
    started: Option<(f64, usize, usize)>,
    retired: Option<f64>,
    steals: Vec<(f64, usize, usize)>,
    reclaims: Vec<(f64, usize, usize)>,
}

/// Escapes a string for embedding in a JSON literal.
fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a Chrome-trace timestamp (microseconds) keeping sub-µs precision.
fn micros(ts: f64) -> String {
    format!("{ts:.6}")
}

/// Renders the recorded events as a Chrome-trace JSON document.
///
/// The number of `"ph":"X"` events equals the number of tasks that both
/// started and retired — for a completed run, exactly the retired-task
/// count, which is what `quick_report` and CI validate.
pub fn chrome_trace(rec: &MemRecorder) -> String {
    let mut sorted = rec.clone();
    sorted.sort_by_time();
    let base = sorted.time_base;

    let mut tasks: BTreeMap<usize, TaskRec> = BTreeMap::new();
    // node -> highest worker index seen (manager row always exists).
    let mut nodes: BTreeMap<usize, usize> = BTreeMap::new();
    let mut backpressure: Vec<(f64, usize)> = Vec::new();
    let mut link_hops: Vec<(f64, usize, u64)> = Vec::new();
    let mut max_tier = 0usize;

    for &(at, ev) in &sorted.events {
        let ts = base.to_micros(at);
        match ev {
            SpanEvent::Submitted { .. } => {
                // Timeline-only; the forward arrow starts at `Placed`.
            }
            SpanEvent::Placed { task, node } => {
                nodes.entry(node).or_insert(0);
                tasks.entry(task).or_default().placed = Some((ts, node));
            }
            SpanEvent::Dispatched { node, .. } => {
                nodes.entry(node).or_insert(0);
            }
            SpanEvent::Started { task, node, worker } => {
                let max_worker = nodes.entry(node).or_insert(0);
                *max_worker = (*max_worker).max(worker);
                tasks.entry(task).or_default().started = Some((ts, node, worker));
            }
            SpanEvent::Retired { task, node } => {
                nodes.entry(node).or_insert(0);
                tasks.entry(task).or_default().retired = Some(ts);
            }
            SpanEvent::Stolen { task, from, to } => {
                nodes.entry(from).or_insert(0);
                nodes.entry(to).or_insert(0);
                tasks.entry(task).or_default().steals.push((ts, from, to));
            }
            SpanEvent::Reclaimed { task, from, to } => {
                nodes.entry(from).or_insert(0);
                nodes.entry(to).or_insert(0);
                tasks.entry(task).or_default().reclaims.push((ts, from, to));
            }
            SpanEvent::LinkHop { tier, words, .. } => {
                max_tier = max_tier.max(tier);
                link_hops.push((ts, tier, words));
            }
            SpanEvent::Backpressure { node } => {
                nodes.entry(node).or_insert(0);
                backpressure.push((ts, node));
            }
        }
    }

    let master_pid = nodes.keys().max().map_or(0, |n| n + 1);
    let mut events: Vec<String> = Vec::new();

    // Process / thread naming metadata.
    events.push(format!(
        "{{\"ph\":\"M\",\"pid\":{master_pid},\"tid\":0,\"name\":\"process_name\",\
         \"args\":{{\"name\":\"master\"}}}}"
    ));
    for (&node, &max_worker) in &nodes {
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{node},\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"node {node}\"}}}}"
        ));
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{node},\"tid\":0,\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"manager\"}}}}"
        ));
        for worker in 0..=max_worker {
            events.push(format!(
                "{{\"ph\":\"M\",\"pid\":{node},\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"worker {worker}\"}}}}",
                worker + 1
            ));
        }
    }

    let mut next_flow_id: u64 = 1;
    for (&task, rec) in &tasks {
        let Some((start_ts, node, worker)) = rec.started else {
            continue;
        };
        let tid = worker + 1;
        if let Some(retire_ts) = rec.retired {
            let dur = (retire_ts - start_ts).max(0.0);
            events.push(format!(
                "{{\"ph\":\"X\",\"pid\":{node},\"tid\":{tid},\"ts\":{},\"dur\":{},\
                 \"cat\":\"task\",\"name\":\"task {task}\",\"args\":{{\"task\":{task}}}}}",
                micros(start_ts),
                micros(dur)
            ));
        }
        // Forward arrow: master placement decision -> execution start.
        if let Some((placed_ts, _)) = rec.placed {
            if placed_ts <= start_ts {
                let id = next_flow_id;
                next_flow_id += 1;
                events.push(format!(
                    "{{\"ph\":\"s\",\"pid\":{master_pid},\"tid\":0,\"ts\":{},\
                     \"cat\":\"flow\",\"name\":\"forward\",\"id\":{id}}}",
                    micros(placed_ts)
                ));
                events.push(format!(
                    "{{\"ph\":\"f\",\"bp\":\"e\",\"pid\":{node},\"tid\":{tid},\"ts\":{},\
                     \"cat\":\"flow\",\"name\":\"forward\",\"id\":{id}}}",
                    micros(start_ts)
                ));
            }
        }
        // Steal / reclaim arrows: victim manager -> execution start on the
        // node that took the descriptor over.
        for (name, moves) in [("steal", &rec.steals), ("reclaim", &rec.reclaims)] {
            for &(move_ts, from, _to) in moves {
                if move_ts <= start_ts {
                    let id = next_flow_id;
                    next_flow_id += 1;
                    events.push(format!(
                        "{{\"ph\":\"s\",\"pid\":{from},\"tid\":0,\"ts\":{},\
                         \"cat\":\"flow\",\"name\":\"{name}\",\"id\":{id}}}",
                        micros(move_ts)
                    ));
                    events.push(format!(
                        "{{\"ph\":\"f\",\"bp\":\"e\",\"pid\":{node},\"tid\":{tid},\"ts\":{},\
                         \"cat\":\"flow\",\"name\":\"{name}\",\"id\":{id}}}",
                        micros(start_ts)
                    ));
                }
            }
        }
    }

    for &(ts, node) in &backpressure {
        events.push(format!(
            "{{\"ph\":\"i\",\"pid\":{node},\"tid\":0,\"ts\":{},\"s\":\"p\",\
             \"cat\":\"stream\",\"name\":\"backpressure\"}}",
            micros(ts)
        ));
    }

    // Cumulative per-tier link-word counters on the master process row.
    let mut tier_totals = vec![0u64; max_tier + 1];
    for &(ts, tier, words) in &link_hops {
        tier_totals[tier] += words;
        let mut args = String::new();
        for (t, total) in tier_totals.iter().enumerate() {
            if t > 0 {
                args.push(',');
            }
            let _ = write!(args, "\"tier{t}\":{total}");
        }
        events.push(format!(
            "{{\"ph\":\"C\",\"pid\":{master_pid},\"tid\":0,\"ts\":{},\
             \"cat\":\"link\",\"name\":\"link words\",\"args\":{{{args}}}}}",
            micros(ts)
        ));
    }

    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(ev);
    }
    let _ = write!(
        out,
        "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"timeBase\":\"{}\"}}}}\n",
        escape(sorted.time_base.unit())
    );
    out
}

/// Renders the recorded events as a compact, line-oriented text timeline —
/// one event per line, time-sorted, suitable for tests and terminal diffing.
pub fn text_timeline(rec: &MemRecorder) -> String {
    let mut sorted = rec.clone();
    sorted.sort_by_time();
    let unit = sorted.time_base.unit();
    let width = sorted
        .events
        .last()
        .map_or(1, |&(at, _)| at.to_string().len());
    let mut out = String::new();
    for &(at, ev) in &sorted.events {
        let _ = write!(out, "[{at:>width$} {unit}] ");
        let line = match ev {
            SpanEvent::Submitted { task } => format!("submitted    task={task}"),
            SpanEvent::Placed { task, node } => {
                format!("placed       task={task} node={node}")
            }
            SpanEvent::Dispatched { task, node } => {
                format!("dispatched   task={task} node={node}")
            }
            SpanEvent::Started { task, node, worker } => {
                format!("started      task={task} node={node} worker={worker}")
            }
            SpanEvent::Retired { task, node } => {
                format!("retired      task={task} node={node}")
            }
            SpanEvent::Stolen { task, from, to } => {
                format!("stolen       task={task} from={from} to={to}")
            }
            SpanEvent::Reclaimed { task, from, to } => {
                format!("reclaimed    task={task} from={from} to={to}")
            }
            SpanEvent::LinkHop { link, tier, words } => {
                format!("link-hop     link={link} tier={tier} words={words}")
            }
            SpanEvent::Backpressure { node } => format!("backpressure node={node}"),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Recorder, TimeBase};

    fn sample_log() -> MemRecorder {
        let mut rec = MemRecorder::new(TimeBase::VirtualPs);
        rec.record(0, SpanEvent::Submitted { task: 0 });
        rec.record(1_000_000, SpanEvent::Placed { task: 0, node: 1 });
        rec.record(2_000_000, SpanEvent::Dispatched { task: 0, node: 1 });
        rec.record(
            2_000_000,
            SpanEvent::LinkHop {
                link: 3,
                tier: 1,
                words: 8,
            },
        );
        rec.record(
            3_000_000,
            SpanEvent::Stolen {
                task: 0,
                from: 1,
                to: 2,
            },
        );
        rec.record(
            4_000_000,
            SpanEvent::Started {
                task: 0,
                node: 2,
                worker: 1,
            },
        );
        rec.record(5_000_000, SpanEvent::Backpressure { node: 2 });
        rec.record(9_000_000, SpanEvent::Retired { task: 0, node: 2 });
        rec
    }

    #[test]
    fn chrome_trace_has_spans_flows_and_metadata() {
        let json = chrome_trace(&sample_log());
        assert!(json.starts_with("{\"traceEvents\":["));
        // Exactly one complete span (one retired task).
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 1);
        // Forward + steal arrows: two starts, two finishes.
        assert_eq!(json.matches("\"ph\":\"s\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"f\"").count(), 2);
        assert!(json.contains("\"name\":\"steal\""));
        assert!(json.contains("\"name\":\"forward\""));
        // Node 2's process row and its worker-1 thread row exist.
        assert!(json.contains("\"args\":{\"name\":\"node 2\"}"));
        assert!(json.contains("\"args\":{\"name\":\"worker 1\"}"));
        assert!(json.contains("\"args\":{\"name\":\"master\"}"));
        // Backpressure instant and link counter present.
        assert!(json.contains("\"name\":\"backpressure\""));
        assert!(json.contains("\"tier1\":8"));
        // Span geometry: task 0 runs on node 2, worker tid 2, 4 µs .. 9 µs.
        assert!(json.contains("\"ts\":4.000000,\"dur\":5.000000"));
    }

    #[test]
    fn unstarted_tasks_emit_no_span() {
        let mut rec = MemRecorder::new(TimeBase::VirtualPs);
        rec.record(0, SpanEvent::Submitted { task: 7 });
        rec.record(1, SpanEvent::Placed { task: 7, node: 0 });
        let json = chrome_trace(&rec);
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 0);
    }

    #[test]
    fn text_timeline_is_time_sorted() {
        let mut rec = MemRecorder::new(TimeBase::WallNs);
        rec.record(90, SpanEvent::Retired { task: 1, node: 0 });
        rec.record(10, SpanEvent::Submitted { task: 1 });
        let text = text_timeline(&rec);
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("submitted"), "{text}");
        assert!(lines[1].contains("retired"), "{text}");
        assert!(lines[0].contains("ns]"), "{text}");
    }
}
