//! `nexus-obs` — unified observability for the Nexus# reproduction.
//!
//! A zero-cost-when-disabled layer shared by the event simulator
//! (`nexus-cluster`) and the threaded runtime (`nexus-rt`):
//!
//! * **Task-lifecycle tracing** — the [`Recorder`] trait receives typed
//!   [`SpanEvent`]s (`Submitted`, `Placed`, `Dispatched`, `Started`,
//!   `Retired`, `Stolen`, `Reclaimed`, `LinkHop`, `Backpressure`). The
//!   simulator stamps
//!   them in virtual picoseconds, the runtime in monotonic wall nanoseconds
//!   ([`TimeBase`]), through the same schema.
//! * **Metrics [`Registry`]** — named monotonic counters and sampled gauges
//!   with associative merge, so outcome reports on both sides are views over
//!   the same keys.
//! * **Exporters** — a hand-rolled Chrome-trace/Perfetto JSON writer
//!   ([`chrome_trace`]) and a compact [`text_timeline`] for tests, plus the
//!   [`check_conservation`] helper the test suites use to assert one
//!   `Retired` per `Submitted` and monotone lifecycle timestamps.
//!
//! Producers must be bit-identical with tracing on vs. off; the cluster
//! crate asserts this across its full topology × placement × stealing grid.

#![warn(missing_docs)]

mod check;
mod chrome;
mod registry;
mod span;

pub use check::{check_conservation, ConservationReport};
pub use chrome::{chrome_trace, text_timeline};
pub use registry::{Gauge, Registry};
pub use span::{MemRecorder, NullRecorder, Recorder, SharedRecorder, SpanEvent, TimeBase};
