//! **Ablation** — how much does the distribution function matter?
//!
//! §IV-B argues the distribution algorithm needs *speed* and *fairness* and
//! proposes the XOR hash. This ablation runs the fine-grained h264dec workload
//! and the Gaussian-elimination worst case under Nexus# (6 task graphs) with
//! the XOR hash, plain modulo, first-seen round-robin and the degenerate
//! single-graph policy, and reports the resulting speedups and load imbalance.
//!
//! Run with: `cargo bench -p nexus-bench --bench ablation_distribution`

use nexus_bench::report::Table;
use nexus_bench::runner::{bench_scale, hw_core_counts};
use nexus_core::distribution::DistributionPolicy;
use nexus_core::{NexusSharp, NexusSharpConfig};
use nexus_host::sweep::speedup_curve;
use nexus_trace::Benchmark;

fn main() {
    let scale = bench_scale();
    println!("workload scale: {scale}\n");
    let policies = [
        ("XOR hash (paper)", DistributionPolicy::XorHash),
        ("modulo", DistributionPolicy::Modulo),
        ("round-robin", DistributionPolicy::RoundRobin),
        ("single graph", DistributionPolicy::SingleGraph),
    ];
    let benches = [
        Benchmark::H264Dec(nexus_trace::generators::MbGrouping::G1x1),
        Benchmark::Streamcluster,
        Benchmark::Gaussian { dim: 500 },
    ];
    let cores = hw_core_counts();

    let mut table = Table::new(
        "Ablation: distribution policy under Nexus# (6 TGs @ 55.56 MHz)",
        &[
            "benchmark",
            "policy",
            "max speedup",
            "speedup @ 32c",
            "addr imbalance",
        ],
    );

    for bench in benches {
        let trace = bench.trace_scaled(42, scale);
        for (name, policy) in policies {
            let curve = speedup_curve(&trace, &cores, |_| {
                let mut cfg = NexusSharpConfig::paper(6);
                cfg.distribution = policy;
                NexusSharp::new(cfg)
            });
            // Re-run once at 32 cores to extract the imbalance statistic.
            let mut cfg = NexusSharpConfig::paper(6);
            cfg.distribution = policy;
            let mut mgr = NexusSharp::new(cfg);
            nexus_host::simulate(&trace, &mut mgr, &nexus_host::HostConfig::with_workers(32));
            let imbalance = mgr.distribution_balance().imbalance();
            table.row(vec![
                trace.name.clone(),
                name.to_string(),
                format!("{:.1}x", curve.max_speedup()),
                format!("{:.1}x", curve.at(32).unwrap_or(f64::NAN)),
                format!("{imbalance:.2}"),
            ]);
        }
        eprintln!("  finished {}", bench.name());
    }
    table.print();
}
