//! **Figure 7** — Scalability of Nexus# running different configurations of
//! the H264dec benchmark.
//!
//! Sweeps the four macroblock groupings (1×1, 2×2, 4×4, 8×8 macroblocks per
//! task) under Nexus# with 1/2/4/6/8 task graphs, once with every
//! configuration forced to 100 MHz (Fig. 7(a)) and once at the Table I test
//! frequency of each configuration (Fig. 7(b)). The ideal curve is included as
//! the upper bound, as in the figure.
//!
//! Run with: `cargo bench -p nexus-bench --bench fig7_tg_scalability`
//! Environment: `NEXUS_BENCH_SCALE=<0..1>` (default 0.1), `NEXUS_FULL=1`.

use nexus_bench::managers::ManagerKind;
use nexus_bench::report::Table;
use nexus_bench::runner::{bench_scale, curve_for, hw_core_counts};
use nexus_resources::{ManagerConfig, ResourceModel};
use nexus_trace::generators::MbGrouping;
use nexus_trace::Benchmark;

fn main() {
    let scale = bench_scale();
    println!("workload scale: {scale} (NEXUS_FULL=1 for full-size traces)\n");
    let cores = hw_core_counts();
    let tg_counts = [1usize, 2, 4, 6, 8];
    let model = ResourceModel::paper_calibrated();

    for (part, fixed_100mhz) in [
        ("(a) all configurations at 100 MHz", true),
        ("(b) at synthesis test frequency", false),
    ] {
        for grouping in MbGrouping::all() {
            let bench = Benchmark::H264Dec(grouping);
            let mut headers: Vec<String> = vec!["configuration".to_string()];
            headers.extend(cores.iter().map(|c| format!("{c}c")));
            let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
            let mut table = Table::new(
                format!("Fig. 7{part} — h264dec-{grouping}-10f"),
                &headers_ref,
            );

            // Ideal upper bound (the red curve).
            let ideal = curve_for(bench, ManagerKind::Ideal, &cores, scale, 42);
            let mut row = vec!["No Overhead".to_string()];
            for &c in &cores {
                row.push(format!("{:.1}", ideal.at(c).unwrap_or(f64::NAN)));
            }
            table.row(row);

            for &tgs in &tg_counts {
                let mhz = if fixed_100mhz {
                    100.0
                } else {
                    model
                        .estimate(ManagerConfig::NexusSharp {
                            task_graphs: tgs as u32,
                        })
                        .test_freq_mhz
                };
                let kind = ManagerKind::NexusSharpAtMhz {
                    task_graphs: tgs,
                    mhz,
                };
                let curve = curve_for(bench, kind, &cores, scale, 42);
                let mut row = vec![format!("{tgs} TGs @ {mhz:.2} MHz")];
                for &c in &cores {
                    row.push(format!("{:.1}", curve.at(c).unwrap_or(f64::NAN)));
                }
                table.row(row);
            }
            table.print();
            eprintln!("  finished Fig.7{part} {grouping}");
        }
    }
}
