//! **Cluster scalability** — makespan of a node-partitioned sparselu workload
//! on 1/2/4/8 Nexus# nodes, swept over the remote-edge fraction.
//!
//! This is the scenario the paper's title promises one level up: *distributed*
//! task management across nodes, with an explicit interconnect. Each node runs
//! its own Nexus# (6 TGs) manager and worker pool; the trace partitions one
//! sparselu factorization per node domain and couples a configurable fraction
//! of tasks to a neighbouring domain (halo reads). With few remote edges the
//! cluster scales with the node count; at 100 % remote edges every task pays
//! the interconnect and the cluster becomes link-bound.
//!
//! Run with: `cargo bench -p nexus-bench --bench cluster_scalability`
//! Environment: `NEXUS_BENCH_SCALE=<0..1>` (default 0.1), `NEXUS_FULL=1`,
//! `NEXUS_LINK=rdma|ethernet|ideal` (default rdma),
//! `NEXUS_POLICY=xorhash|affinity|locality|topo` (default xorhash),
//! `NEXUS_STEAL=off|steal|steal-half|hier` (default off),
//! `NEXUS_FEEDBACK=off|place|reclaim|full` (default off),
//! `NEXUS_TOPO=bus|mesh|racktiers|torus|dragonfly` (default: the link
//! preset's wiring). All knobs are case-insensitive.

use nexus_bench::report::Table;
use nexus_bench::runner::{
    bench_scale, cluster_feedback, cluster_link, cluster_node_counts, cluster_policy,
    cluster_steal, cluster_topology, event_engine,
};
use nexus_cluster::{remote_edge_fraction, simulate_cluster, ClusterConfig};
use nexus_core::NexusSharp;
use nexus_trace::generators::distributed;

fn main() {
    // The distributed trace grows with the node count; keep the per-domain
    // scale small enough that the 8-node sweep stays quick.
    let scale = (bench_scale() * 0.02).clamp(0.001, 0.05);
    let mut link = cluster_link();
    if let Some(topology) = cluster_topology() {
        link = link.with_topology(topology);
    }
    let placement = cluster_policy();
    let stealing = cluster_steal();
    let feedback = cluster_feedback();
    let engine = event_engine();
    let workers_per_node = 8;
    println!(
        "per-domain sparselu scale: {scale}, link: {link:?}, placement: {placement}, \
         stealing: {stealing}, feedback: {feedback}, engine: {engine}, \
         {workers_per_node} workers/node\n"
    );

    for remote in [0.0, 0.1, 0.5, 1.0] {
        let mut table = Table::new(
            format!(
                "Cluster scalability — dist-sparselu, {:.0}% halo coupling",
                remote * 100.0
            ),
            &[
                "nodes",
                "tasks",
                "remote edges",
                "makespan",
                "speedup",
                "notifications",
                "link peak util",
            ],
        );
        // The same 8-domain workload on every cluster size, so makespans are
        // directly comparable (affinity hints wrap modulo the node count).
        let trace = distributed::sparselu(8, remote, 42, scale);
        for &nodes in &cluster_node_counts() {
            let cfg = ClusterConfig::new(nodes, workers_per_node)
                .with_link(link)
                .with_placement(placement)
                .with_stealing(stealing)
                .with_feedback(feedback)
                .with_engine(engine);
            let out = simulate_cluster(&trace, &cfg, |_| NexusSharp::paper(6));
            table.row(vec![
                format!("{nodes}"),
                format!("{}", out.tasks),
                format!("{:.1}%", remote_edge_fraction(&trace, nodes) * 100.0),
                format!("{}", out.makespan),
                format!("{:.2}x", out.speedup()),
                format!("{}", out.notifications),
                format!("{:.1}%", out.link.peak_utilization * 100.0),
            ]);
        }
        table.print();
    }
}
