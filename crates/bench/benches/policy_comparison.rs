//! **Policy comparison** — placement policies × work stealing on the
//! multi-node cluster.
//!
//! Three questions, three sweeps:
//!
//! 1. **Does stealing recover makespan on imbalanced work?** A deliberately
//!    skewed partition (node 0 owns 6× the tasks of the last node, affinity
//!    hints pin the imbalance) is run with stealing off and on. Idle nodes
//!    pull eligible descriptors from the overloaded node's input queue,
//!    paying the descriptor re-forwarding cost — the makespan should drop
//!    toward the balanced bound while link words rise.
//! 2. **Does locality-aware placement cut link traffic?** The same un-hinted
//!    (affinity-stripped) sparselu partition is routed by every placement
//!    policy. `locality` keeps producer→consumer chains on one node, so it
//!    should move fewer notification words over the interconnect than the
//!    address-hash `xorhash` baseline at equal node counts.
//! 3. **Does runtime feedback beat the static stack?** A chain-skewed
//!    partition (`chained_imbalanced`: node 0 owns 36 serial dependence
//!    chains, the rest a geometric tail) is run under every `FeedbackKind`
//!    against the strongest static stack (`TopologyAware` placement +
//!    `Hierarchical` stealing). Stealing only ever sees the eligible chain
//!    heads; idle nodes must *reclaim* the dependence-blocked tails out of
//!    node 0's pool to take over whole chains. The sweep *asserts* the full
//!    feedback stack lands ≥10% below the static makespan on this fixed
//!    trace, so a feedback regression fails the bench.
//!
//! Run with: `cargo bench -p nexus-bench --bench policy_comparison`
//! Environment: `NEXUS_BENCH_SCALE=<0..1>` (default 0.1), `NEXUS_FULL=1`,
//! `NEXUS_LINK=rdma|ethernet|ideal`, `NEXUS_POLICY=xorhash|affinity|locality`
//! (placement used in the stealing sweep), `NEXUS_STEAL=off|steal`,
//! `NEXUS_FEEDBACK=off|place|reclaim|full` (applied to sweeps 1 and 2;
//! sweep 3 runs every mode regardless).
//! All env knobs are case-insensitive and reject typos with the valid values.

use nexus_bench::report::Table;
use nexus_bench::runner::{bench_scale, cluster_feedback, cluster_link, cluster_policy};
use nexus_cluster::{simulate_cluster, ClusterConfig, FeedbackKind, PolicyKind, StealKind};
use nexus_core::NexusSharp;
use nexus_sim::SimDuration;
use nexus_trace::generators::distributed;

fn main() {
    let link = cluster_link();
    let placement = cluster_policy();
    let feedback = cluster_feedback();
    let scale = bench_scale();
    let workers_per_node = 8;
    println!(
        "link: {link:?}, stealing-sweep placement: {placement}, feedback: {feedback}, \
         scale: {scale}\n"
    );

    // Part 1 — imbalanced domains: stealing recovers the makespan.
    let base_tasks = ((scale * 1920.0) as u64).clamp(96, 1920);
    for nodes in [2usize, 4, 8] {
        let trace =
            distributed::imbalanced(nodes, base_tasks, 6.0, SimDuration::from_us(50), 0.0, 42);
        let mut table = Table::new(
            format!(
                "Work stealing — {} on {nodes} nodes, Nexus# 6TG per node",
                trace.name
            ),
            &[
                "stealing",
                "makespan",
                "speedup",
                "steals",
                "failed",
                "link words",
            ],
        );
        for stealing in StealKind::ALL {
            let cfg = ClusterConfig::new(nodes, workers_per_node)
                .with_link(link)
                .with_placement(placement)
                .with_stealing(stealing)
                .with_feedback(feedback);
            let out = simulate_cluster(&trace, &cfg, |_| NexusSharp::paper(6));
            table.row(vec![
                out.stealing.clone(),
                format!("{}", out.makespan),
                format!("{:.2}x", out.speedup()),
                format!("{}", out.steals),
                format!("{}", out.steal_failures),
                format!("{}", out.link.words),
            ]);
        }
        table.print();
    }

    // Part 2 — un-hinted placement: locality vs hash vs balance.
    let lu_scale = (scale * 0.04).clamp(0.001, 0.05);
    for nodes in [2usize, 4, 8] {
        let trace = distributed::unhinted(&distributed::sparselu(nodes, 0.3, 42, lu_scale));
        let mut table = Table::new(
            format!(
                "Placement — {} on {nodes} nodes, Nexus# 6TG per node",
                trace.name
            ),
            &[
                "placement",
                "makespan",
                "speedup",
                "remote edges",
                "notifications",
                "link words",
            ],
        );
        for placement in PolicyKind::ALL {
            let cfg = ClusterConfig::new(nodes, workers_per_node)
                .with_link(link)
                .with_placement(placement)
                .with_feedback(feedback);
            let out = simulate_cluster(&trace, &cfg, |_| NexusSharp::paper(6));
            table.row(vec![
                out.placement.clone(),
                format!("{}", out.makespan),
                format!("{:.2}x", out.speedup()),
                format!("{:.1}%", out.remote_edge_fraction() * 100.0),
                format!("{}", out.notifications),
                format!("{}", out.link.words),
            ]);
        }
        table.print();
    }

    // Part 3 — runtime feedback: live digests + pool reclamation against the
    // strongest static stack. The trace skews dependence *chains* onto node 0
    // (geometrically — 36/6/1/1 chains of 16 serial links), so at any instant
    // a stealing policy sees at most one eligible head per chain while the
    // blocked tails clog node 0's pool; only the reclamation path can move
    // them. The reference row is feedback `off` on the same TopologyAware +
    // Hierarchical stack. Everything here is pinned — fixed trace size and
    // the default fabric, independent of `NEXUS_BENCH_SCALE`/`NEXUS_LINK` —
    // because the sweep *asserts* on the deterministic makespans.
    let coupled = distributed::chained_imbalanced(4, 36, 16, 6.0, SimDuration::from_us(20));
    let mut table = Table::new(
        format!(
            "Feedback — {} on 4 nodes, TopologyAware + Hierarchical, Nexus# 6TG per node",
            coupled.name
        ),
        &[
            "feedback",
            "makespan",
            "speedup",
            "steals",
            "reclaims",
            "link words",
        ],
    );
    let mut makespans = Vec::new();
    for mode in FeedbackKind::ALL {
        let cfg = ClusterConfig::new(4, workers_per_node)
            .with_placement(PolicyKind::TopologyAware)
            .with_stealing(StealKind::Hierarchical)
            .with_feedback(mode);
        let out = simulate_cluster(&coupled, &cfg, |_| NexusSharp::paper(6));
        table.row(vec![
            mode.to_string(),
            format!("{}", out.makespan),
            format!("{:.2}x", out.speedup()),
            format!("{}", out.steals),
            format!("{}", out.reclaims),
            format!("{}", out.link.words),
        ]);
        makespans.push((mode, out.makespan));
    }
    table.print();

    let ms = |wanted: FeedbackKind| {
        makespans
            .iter()
            .find(|(mode, _)| *mode == wanted)
            .map(|(_, m)| m.as_us_f64())
            .expect("every feedback mode was swept")
    };
    let static_ms = ms(FeedbackKind::Off);
    let full_ms = ms(FeedbackKind::Full);
    let gain = 1.0 - full_ms / static_ms;
    println!(
        "feedback full vs static stack: {:.1}% makespan reduction (assert ≥ 10%)\n",
        gain * 100.0
    );
    assert!(
        full_ms <= static_ms * 0.90,
        "full feedback must beat the static TopologyAware+Hierarchical stack by ≥10% \
         on the imbalanced coupled trace (static {static_ms:.1} us, full {full_ms:.1} us)"
    );
}
