//! **Policy comparison** — placement policies × work stealing on the
//! multi-node cluster.
//!
//! Two questions, two sweeps:
//!
//! 1. **Does stealing recover makespan on imbalanced work?** A deliberately
//!    skewed partition (node 0 owns 6× the tasks of the last node, affinity
//!    hints pin the imbalance) is run with stealing off and on. Idle nodes
//!    pull eligible descriptors from the overloaded node's input queue,
//!    paying the descriptor re-forwarding cost — the makespan should drop
//!    toward the balanced bound while link words rise.
//! 2. **Does locality-aware placement cut link traffic?** The same un-hinted
//!    (affinity-stripped) sparselu partition is routed by every placement
//!    policy. `locality` keeps producer→consumer chains on one node, so it
//!    should move fewer notification words over the interconnect than the
//!    address-hash `xorhash` baseline at equal node counts.
//!
//! Run with: `cargo bench -p nexus-bench --bench policy_comparison`
//! Environment: `NEXUS_BENCH_SCALE=<0..1>` (default 0.1), `NEXUS_FULL=1`,
//! `NEXUS_LINK=rdma|ethernet|ideal`, `NEXUS_POLICY=xorhash|affinity|locality`
//! (placement used in the stealing sweep), `NEXUS_STEAL=off|steal`.
//! All env knobs are case-insensitive and reject typos with the valid values.

use nexus_bench::report::Table;
use nexus_bench::runner::{bench_scale, cluster_link, cluster_policy};
use nexus_cluster::{simulate_cluster, ClusterConfig, PolicyKind, StealKind};
use nexus_core::NexusSharp;
use nexus_sim::SimDuration;
use nexus_trace::generators::distributed;

fn main() {
    let link = cluster_link();
    let placement = cluster_policy();
    let scale = bench_scale();
    let workers_per_node = 8;
    println!("link: {link:?}, stealing-sweep placement: {placement}, scale: {scale}\n");

    // Part 1 — imbalanced domains: stealing recovers the makespan.
    let base_tasks = ((scale * 1920.0) as u64).clamp(96, 1920);
    for nodes in [2usize, 4, 8] {
        let trace =
            distributed::imbalanced(nodes, base_tasks, 6.0, SimDuration::from_us(50), 0.0, 42);
        let mut table = Table::new(
            format!(
                "Work stealing — {} on {nodes} nodes, Nexus# 6TG per node",
                trace.name
            ),
            &[
                "stealing",
                "makespan",
                "speedup",
                "steals",
                "failed",
                "link words",
            ],
        );
        for stealing in StealKind::ALL {
            let cfg = ClusterConfig::new(nodes, workers_per_node)
                .with_link(link)
                .with_placement(placement)
                .with_stealing(stealing);
            let out = simulate_cluster(&trace, &cfg, |_| NexusSharp::paper(6));
            table.row(vec![
                out.stealing.clone(),
                format!("{}", out.makespan),
                format!("{:.2}x", out.speedup()),
                format!("{}", out.steals),
                format!("{}", out.steal_failures),
                format!("{}", out.link.words),
            ]);
        }
        table.print();
    }

    // Part 2 — un-hinted placement: locality vs hash vs balance.
    let lu_scale = (scale * 0.04).clamp(0.001, 0.05);
    for nodes in [2usize, 4, 8] {
        let trace = distributed::unhinted(&distributed::sparselu(nodes, 0.3, 42, lu_scale));
        let mut table = Table::new(
            format!(
                "Placement — {} on {nodes} nodes, Nexus# 6TG per node",
                trace.name
            ),
            &[
                "placement",
                "makespan",
                "speedup",
                "remote edges",
                "notifications",
                "link words",
            ],
        );
        for placement in PolicyKind::ALL {
            let cfg = ClusterConfig::new(nodes, workers_per_node)
                .with_link(link)
                .with_placement(placement);
            let out = simulate_cluster(&trace, &cfg, |_| NexusSharp::paper(6));
            table.row(vec![
                out.placement.clone(),
                format!("{}", out.makespan),
                format!("{:.2}x", out.speedup()),
                format!("{:.1}%", out.remote_edge_fraction() * 100.0),
                format!("{}", out.notifications),
                format!("{}", out.link.words),
            ]);
        }
        table.print();
    }
}
