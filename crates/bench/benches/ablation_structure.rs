//! **Ablation** — which structural differences between Nexus++ and Nexus#
//! actually matter?
//!
//! DESIGN.md calls out three structural deltas between the baseline and the
//! distributed design: (1) `taskwait on` support (missing support escalates to
//! a full `taskwait`), (2) the task-pool recycling discipline (circular buffer
//! vs. free list), and (3) the distributed insertion path. This bench isolates
//! (2) and (3) by running Nexus++ variants and small Nexus# configurations on
//! the two workloads that stress them (streamcluster for pool recycling,
//! h264dec-1x1 for the taskwait-on escalation and front-end throughput).
//!
//! Run with: `cargo bench -p nexus-bench --bench ablation_structure`

use nexus_bench::report::Table;
use nexus_bench::runner::{bench_scale, hw_core_counts};
use nexus_core::{NexusSharp, NexusSharpConfig};
use nexus_host::manager::TaskManager;
use nexus_host::sweep::speedup_curve;
use nexus_pp::{NexusPP, NexusPPConfig};
use nexus_taskgraph::taskpool::RetirementOrder;
use nexus_trace::Benchmark;

enum Variant {
    PP(NexusPPConfig),
    Sharp(NexusSharpConfig),
}

fn main() {
    let scale = bench_scale();
    println!("workload scale: {scale}\n");
    let cores = hw_core_counts();

    let mut variants: Vec<(String, Variant)> = Vec::new();
    variants.push((
        "Nexus++ (in-order pool, no taskwait-on)".into(),
        Variant::PP(NexusPPConfig::paper()),
    ));
    let mut freelist = NexusPPConfig::paper();
    freelist.retirement = RetirementOrder::FreeList;
    variants.push(("Nexus++ + free-list pool".into(), Variant::PP(freelist)));
    let mut big_pool = NexusPPConfig::paper();
    big_pool.task_pool_capacity = 1024;
    variants.push(("Nexus++ + 1024-entry pool".into(), Variant::PP(big_pool)));
    variants.push((
        "Nexus# 1 TG (adds taskwait-on + streaming front-end)".into(),
        Variant::Sharp(NexusSharpConfig::at_mhz(1, 100.0)),
    ));
    variants.push((
        "Nexus# 6 TGs @ 55.56 MHz (full design)".into(),
        Variant::Sharp(NexusSharpConfig::paper(6)),
    ));

    for bench in [
        Benchmark::Streamcluster,
        Benchmark::H264Dec(nexus_trace::generators::MbGrouping::G1x1),
    ] {
        let trace = bench.trace_scaled(42, scale);
        let mut table = Table::new(
            format!("Ablation: structural variants on {}", trace.name),
            &["variant", "max speedup", "speedup @ 32c", "speedup @ 256c"],
        );
        for (name, variant) in &variants {
            let curve = match variant {
                Variant::PP(cfg) => speedup_curve(&trace, &cores, |_| NexusPP::new(*cfg)),
                Variant::Sharp(cfg) => speedup_curve(&trace, &cores, |_| NexusSharp::new(*cfg)),
            };
            table.row(vec![
                name.clone(),
                format!("{:.1}x", curve.max_speedup()),
                format!("{:.1}x", curve.at(32).unwrap_or(f64::NAN)),
                format!("{:.1}x", curve.at(256).unwrap_or(f64::NAN)),
            ]);
        }
        table.print();
        // Sanity: the full design must not lose to the baseline.
        eprintln!("  finished {}", trace.name);
    }

    // Print which variant supports taskwait-on (explains the h264dec gap).
    let mut support = Table::new("taskwait on support", &["design", "supported"]);
    support.row(vec![
        "Nexus++".into(),
        format!("{}", NexusPP::paper().supports_taskwait_on()),
    ]);
    support.row(vec![
        "Nexus#".into(),
        format!("{}", NexusSharp::paper(6).supports_taskwait_on()),
    ]);
    support.print();
}
