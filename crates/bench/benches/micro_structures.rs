//! Criterion micro-benchmarks of the core data structures and of the
//! simulation engine itself: dependency-tracker insert/retire throughput, the
//! XOR distribution hash, the reference graph, and end-to-end simulated-task
//! throughput of the host driver under each manager.
//!
//! Run with: `cargo bench -p nexus-bench --bench micro_structures`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nexus_core::distribution::xor_hash_tg;
use nexus_core::NexusSharp;
use nexus_host::{simulate, HostConfig, IdealManager};
use nexus_nanos::NanosRuntime;
use nexus_pp::NexusPP;
use nexus_sim::SimDuration;
use nexus_taskgraph::{DependencyTracker, ReferenceGraph};
use nexus_trace::generators::micro;
use nexus_trace::{Benchmark, Direction, TaskId};
use std::hint::black_box;

fn bench_distribution_hash(c: &mut Criterion) {
    let mut group = c.benchmark_group("distribution_hash");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.throughput(Throughput::Elements(1024));
    group.bench_function("xor_hash_1024_addrs", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for i in 0..1024u64 {
                acc += xor_hash_tg(black_box(0x7f3a_0000_0000 + i * 64), 6);
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_dependency_tracker(c: &mut Criterion) {
    let mut group = c.benchmark_group("dependency_tracker");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for contended in [false, true] {
        let name = if contended {
            "contended_chain"
        } else {
            "independent"
        };
        group.throughput(Throughput::Elements(4096));
        group.bench_function(BenchmarkId::new("insert_retire", name), |b| {
            b.iter(|| {
                let mut t = DependencyTracker::with_default_geometry();
                for i in 0..4096u64 {
                    let addr = if contended { 0x1000 } else { 0x1000 + i * 64 };
                    t.insert_param(TaskId(i), addr, Direction::InOut);
                }
                for i in 0..4096u64 {
                    let addr = if contended { 0x1000 } else { 0x1000 + i * 64 };
                    t.retire_param(TaskId(i), addr, Direction::InOut);
                }
                black_box(t.stats())
            })
        });
    }
    group.finish();
}

fn bench_reference_graph(c: &mut Criterion) {
    let trace = micro::wavefront(32, 32, SimDuration::from_us(1));
    let tasks: Vec<_> = trace.tasks().cloned().collect();
    let mut group = c.benchmark_group("reference_graph");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.throughput(Throughput::Elements(tasks.len() as u64));
    group.bench_function("insert_retire_wavefront_32x32", |b| {
        b.iter(|| {
            let mut g = ReferenceGraph::new();
            for t in &tasks {
                g.insert(t);
            }
            for t in &tasks {
                g.retire(t.id);
            }
            black_box(g.stats())
        })
    });
    group.finish();
}

fn bench_end_to_end_simulation(c: &mut Criterion) {
    // One small but realistic workload (one coarse h264dec frame) through each
    // manager: measures simulated-tasks-per-second of the whole stack.
    let trace = Benchmark::H264Dec(nexus_trace::generators::MbGrouping::G4x4).trace_scaled(3, 0.05);
    let tasks = trace.task_count() as u64;
    let cfg = HostConfig::with_workers(32);
    let mut group = c.benchmark_group("host_simulation");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.throughput(Throughput::Elements(tasks));
    group.bench_function("ideal", |b| {
        b.iter(|| black_box(simulate(&trace, &mut IdealManager::new(), &cfg).makespan))
    });
    group.bench_function("nanos", |b| {
        b.iter(|| {
            black_box(
                simulate(
                    &trace,
                    &mut NanosRuntime::for_benchmark(&trace.name, 32),
                    &cfg,
                )
                .makespan,
            )
        })
    });
    group.bench_function("nexus_pp", |b| {
        b.iter(|| black_box(simulate(&trace, &mut NexusPP::paper(), &cfg).makespan))
    });
    group.bench_function("nexus_sharp_6tg", |b| {
        b.iter(|| black_box(simulate(&trace, &mut NexusSharp::paper(6), &cfg).makespan))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_distribution_hash,
    bench_dependency_tracker,
    bench_reference_graph,
    bench_end_to_end_simulation
);
criterion_main!(benches);
