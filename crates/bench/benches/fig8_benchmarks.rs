//! **Figure 8** — Performance of Nexus# running different benchmarks, in
//! comparison to other task managers.
//!
//! For each of the eight benchmarks, prints the speedup-vs-cores series of the
//! ideal (No Overhead) curve, Nanos (≤32 cores), Nexus++ (100 MHz) and Nexus#
//! (6 task graphs @ 55.56 MHz) — the four curves of each sub-plot of Fig. 8.
//!
//! Run with: `cargo bench -p nexus-bench --bench fig8_benchmarks`
//! Environment: `NEXUS_BENCH_SCALE=<0..1>` (default 0.1), `NEXUS_FULL=1`.

use nexus_bench::managers::ManagerKind;
use nexus_bench::report::Table;
use nexus_bench::runner::{bench_scale, curves_for, hw_core_counts};
use nexus_trace::Benchmark;

fn main() {
    let scale = bench_scale();
    println!("workload scale: {scale} (NEXUS_FULL=1 for full-size traces)\n");
    let managers = ManagerKind::fig8_set();
    let cores = hw_core_counts();

    for bench in Benchmark::table2_suite() {
        let curves = curves_for(bench, &managers, scale, 42);
        let mut headers: Vec<String> = vec!["manager".to_string()];
        headers.extend(cores.iter().map(|c| format!("{c}c")));
        let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut table = Table::new(
            format!("Fig. 8 — {} (speedup vs cores)", bench.name()),
            &headers_ref,
        );
        for curve in &curves {
            let mut row = vec![curve.manager.clone()];
            for &c in &cores {
                row.push(
                    curve
                        .at(c)
                        .map(|s| format!("{s:.1}"))
                        .unwrap_or_else(|| "-".to_string()),
                );
            }
            table.row(row);
        }
        table.print();
        eprintln!("  finished {}", bench.name());
    }
}
