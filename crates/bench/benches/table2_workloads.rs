//! **Table II** — Benchmarks' durations obtained from traces.
//!
//! Regenerates every workload at full size and prints task counts, total work,
//! average task size and the dependency-count range next to the paper's values.
//!
//! Run with: `cargo bench -p nexus-bench --bench table2_workloads`
//! (this one always uses full-size traces; it only generates, never simulates).

use nexus_bench::paper::TABLE2;
use nexus_bench::report::Table;
use nexus_trace::{Benchmark, TraceStats};

fn main() {
    let mut table = Table::new(
        "Table II: benchmark traces (generated vs. paper)",
        &[
            "benchmark",
            "# tasks",
            "# tasks(paper)",
            "total work (ms)",
            "work(paper)",
            "avg task (us)",
            "avg(paper)",
            "# deps",
            "deps(paper)",
            "taskwaits",
            "taskwait-ons",
        ],
    );

    for (bench, paper) in Benchmark::table2_suite().iter().zip(TABLE2.iter()) {
        let trace = bench.trace(42);
        trace.validate().expect("generated trace must be valid");
        let s = TraceStats::of(&trace);
        table.row(vec![
            s.name.clone(),
            format!("{}", s.tasks),
            format!("{}", paper.1),
            format!("{:.0}", s.total_work_ms),
            format!("{:.0}", paper.2),
            format!("{:.1}", s.avg_task_us),
            format!("{:.1}", paper.3),
            s.deps_column(),
            paper.4.to_string(),
            format!("{}", s.taskwaits),
            format!("{}", s.taskwait_ons),
        ]);
    }
    table.print();
    println!("Note: trace generators are synthetic reconstructions (DESIGN.md §2); task counts");
    println!("match the paper's structure, average task sizes match the reported values.");
}
