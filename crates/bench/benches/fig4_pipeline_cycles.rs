//! **Figures 1, 4 and 5 + §IV-E micro-benchmark** — pipeline cycle schedules.
//!
//! Prints the per-stage cycle layout of inserting the running 4-parameter
//! example task through the Nexus++ pipeline (Fig. 1) and the Nexus# pipeline
//! in its average case (Fig. 4) and best case (Fig. 5), the steady-state
//! write-back intervals the paper quotes (18 vs. 11 vs. 5 cycles), and the
//! §IV-E micro-benchmark (5 independent 2-parameter tasks, one task graph)
//! compared against the 78 cycles the paper reports and the 172 cycles of the
//! task-superscalar prototype of Yazdanpanah et al.
//!
//! Run with: `cargo bench -p nexus-bench --bench fig4_pipeline_cycles`

use nexus_bench::paper::{MICRO_BENCH_NEXUS_SHARP_CYCLES, MICRO_BENCH_TASK_SUPERSCALAR_CYCLES};
use nexus_bench::report::Table;
use nexus_core::pipeline::{
    insertion_span_cycles, micro_benchmark_cycles, sharp_pipeline_schedule, PipelineCase,
};
use nexus_core::NexusSharpConfig;
use nexus_pp::{pipeline_schedule, NexusPPConfig};

fn main() {
    let pp = NexusPPConfig::paper();
    let sharp4 = NexusSharpConfig::at_mhz(4, 100.0);

    // --- Fig. 1: Nexus++ pipeline for one 4-parameter task -----------------
    let (spans, total) = pipeline_schedule(&pp, 1, 4);
    let mut t1 = Table::new(
        "Fig. 1 — Nexus++ pipeline, one 4-parameter task",
        &["stage", "start cycle", "end cycle", "length"],
    );
    for s in &spans {
        t1.row(vec![
            s.stage.to_string(),
            format!("{}", s.start_cycle),
            format!("{}", s.end_cycle),
            format!("{}", s.cycles()),
        ]);
    }
    t1.row(vec![
        "TOTAL".into(),
        "0".into(),
        format!("{total}"),
        format!("{total}"),
    ]);
    t1.print();

    // --- Fig. 4 / Fig. 5: Nexus# pipeline ----------------------------------
    for (title, case) in [
        (
            "Fig. 4 — Nexus# average-case pipeline, one 4-parameter task (4 TGs)",
            PipelineCase::Average,
        ),
        (
            "Fig. 5 — Nexus# best-case pipeline, one 4-parameter task (4 TGs)",
            PipelineCase::BestCase,
        ),
    ] {
        let (spans, total) = sharp_pipeline_schedule(&sharp4, 1, 4, case);
        let mut t = Table::new(title, &["stage", "param", "start", "end", "length"]);
        for s in &spans {
            t.row(vec![
                s.stage.to_string(),
                s.param.map(|p| p.to_string()).unwrap_or_else(|| "-".into()),
                format!("{}", s.start_cycle),
                format!("{}", s.end_cycle),
                format!("{}", s.cycles()),
            ]);
        }
        t.row(vec![
            "TOTAL".into(),
            "-".into(),
            "0".into(),
            format!("{total}"),
            format!("{total}"),
        ]);
        t.print();
    }

    // --- Headline cycle numbers quoted in §IV-D ----------------------------
    let mut head = Table::new(
        "Pipeline headline numbers (measured vs. paper)",
        &["quantity", "measured", "paper"],
    );
    head.row(vec![
        "Nexus++ insert stage, 4 params (cycles)".into(),
        format!("{}", pp.insert_cycles(4)),
        "18".into(),
    ]);
    head.row(vec![
        "Nexus# insertion span, average case (cycles)".into(),
        format!(
            "{}",
            insertion_span_cycles(&sharp4, 4, PipelineCase::Average)
        ),
        "11".into(),
    ]);
    head.row(vec![
        "Nexus# insertion span, best case (cycles)".into(),
        format!(
            "{}",
            insertion_span_cycles(&sharp4, 4, PipelineCase::BestCase)
        ),
        "5".into(),
    ]);
    head.row(vec![
        "Nexus++ steady-state write-back interval (cycles)".into(),
        format!("{}", nexus_pp::pipeline::initiation_interval(&pp, 4)),
        "18".into(),
    ]);
    head.print();

    // --- §IV-E micro-benchmark ---------------------------------------------
    let sharp1 = NexusSharpConfig::at_mhz(1, 100.0);
    let measured = micro_benchmark_cycles(&sharp1);
    let mut micro = Table::new(
        "§IV-E micro-benchmark: 5 independent 2-parameter tasks, 1 task graph",
        &["design", "cycles"],
    );
    micro.row(vec!["Nexus# (this model)".into(), format!("{measured}")]);
    micro.row(vec![
        "Nexus# (paper VHDL prototype)".into(),
        format!("{MICRO_BENCH_NEXUS_SHARP_CYCLES}"),
    ]);
    micro.row(vec![
        "Task superscalar prototype [19]".into(),
        format!("{MICRO_BENCH_TASK_SUPERSCALAR_CYCLES}"),
    ]);
    micro.print();
    assert!(
        measured < MICRO_BENCH_TASK_SUPERSCALAR_CYCLES,
        "the distributed design must beat the comparator"
    );
}
