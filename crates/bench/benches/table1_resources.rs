//! **Table I** — Device utilization using different design configurations on
//! the ZC706 FPGA board.
//!
//! Prints the analytical resource/frequency model next to the paper's reported
//! values for Nexus++ and Nexus# with 1/2/4/6/8 task graphs.
//!
//! Run with: `cargo bench -p nexus-bench --bench table1_resources`

use nexus_bench::report::{fmt_pct, Table};
use nexus_resources::{paper_table1, DeviceCapacity, ResourceModel};

fn main() {
    let model = ResourceModel::paper_calibrated();
    let dev = DeviceCapacity::ZC706;

    let mut table = Table::new(
        "Table I: device utilization on the ZC706 (model vs. paper)",
        &[
            "configuration",
            "registers",
            "LUTs",
            "LUTs(paper)",
            "BRAMs",
            "BRAMs(paper)",
            "fmax MHz",
            "fmax(paper)",
            "test MHz",
            "test(paper)",
            "total util",
        ],
    );

    for row in paper_table1() {
        let est = model.estimate(row.config);
        table.row(vec![
            row.config.label(),
            format!("{} ({})", est.registers, fmt_pct(est.register_util(dev))),
            format!("{} ({})", est.luts, fmt_pct(est.lut_util(dev))),
            format!("{}%", row.luts_pct),
            format!("{} ({})", est.brams, fmt_pct(est.bram_util(dev))),
            format!("{}%", row.brams_pct),
            format!("{:.2}", est.max_freq_mhz),
            format!("{:.2}", row.max_freq_mhz),
            format!("{:.2}", est.test_freq_mhz),
            format!("{:.2}", row.test_freq_mhz),
            fmt_pct(est.total_util(dev)),
        ]);
    }
    table.print();

    println!(
        "ZC706 capacity: {} registers, {} LUTs, {} BRAMs",
        dev.registers, dev.luts, dev.brams
    );
    println!(
        "Largest Nexus# configuration fitting the ZC706 (model): {} task graphs",
        model.largest_fitting(dev, 16)
    );
}
