//! **Service latency** — open-loop arrivals driving the cluster as a service:
//! latency percentiles, admission back-pressure, and the sustainable-
//! throughput knee.
//!
//! A closed-loop run measures makespan: every task is available at t=0 and
//! the question is how fast the cluster drains them. A *service* is driven
//! open-loop: tasks arrive on a clock the cluster does not control, and the
//! question becomes which offered load keeps p99 bounded. This bench runs the
//! same distributed sparselu trace three ways:
//!
//! 1. **under-driven** — arrivals well below capacity: back-pressure must be
//!    exactly zero and p99 stays near the closed-loop per-task latency;
//! 2. **over-driven** — arrivals far above capacity through a shallow
//!    admission queue: back-pressure must engage (and no task is lost);
//! 3. **knee ramp** — a load sweep locating the highest sustained rate.
//!
//! Run with: `cargo bench -p nexus-bench --bench service_latency`
//! Environment: `NEXUS_BENCH_SCALE=<0..1>` (default 0.1),
//! `NEXUS_ARRIVAL=poisson|bursty|diurnal|closed` (default poisson),
//! `NEXUS_ADMIT_DEPTH=<n>` (default 64), plus the usual `NEXUS_LINK`,
//! `NEXUS_EVENT_ENGINE` knobs. All knobs are case-insensitive. With
//! `NEXUS_ARRIVAL=closed` the run degenerates to a closed-loop makespan check
//! and the back-pressure assertions are skipped.

use nexus_bench::report::Table;
use nexus_bench::runner::{admit_depth, bench_scale, cluster_link, event_engine, service_arrival};
use nexus_cluster::{simulate_cluster, AdmissionConfig, ClusterConfig};
use nexus_core::NexusSharp;
use nexus_flow::{knee_sweep, simulate_service, ArrivalConfig, ArrivalKind, ServiceConfig};
use nexus_sim::SimDuration;
use nexus_trace::generators::distributed;

fn main() {
    let scale = (bench_scale() * 0.02).clamp(0.001, 0.05);
    let kind = service_arrival();
    let depth = admit_depth();
    let engine = event_engine();
    let link = cluster_link();
    let nodes = 4;
    let trace = distributed::sparselu(nodes, 0.3, 42, scale);
    let cfg = ClusterConfig::new(nodes, 8)
        .with_link(link)
        .with_engine(engine);
    println!(
        "service-latency: dist-sparselu scale {scale}, {} tasks, arrivals: {kind}, \
         admission depth {depth}, engine: {engine}\n",
        trace.task_count()
    );

    // Capacity estimate from the closed-loop run: at full drive the cluster
    // retires one task every makespan/tasks on average.
    let closed = simulate_cluster(&trace, &cfg, |_| NexusSharp::paper(6));
    let tasks = trace.task_count() as u64;
    let capacity_gap = SimDuration::from_ns((closed.makespan.as_ns() / tasks.max(1)).max(1));
    println!(
        "closed-loop reference: makespan {}, ~{:.0} tasks/s capacity",
        closed.makespan,
        1e9 / capacity_gap.as_ns() as f64
    );

    if kind == ArrivalKind::ClosedLoop {
        // Degenerate mode: the streaming path must reproduce the closed-loop
        // makespan exactly; there is no arrival clock to back-pressure.
        let service = ServiceConfig::new(ArrivalConfig::new(kind, capacity_gap, 42));
        let out = simulate_service(&trace, &service, &cfg, |_| NexusSharp::paper(6));
        assert_eq!(
            out.stream.cluster.makespan, closed.makespan,
            "closed-loop streaming must be bit-identical to the batch run"
        );
        assert_eq!(out.histogram.count(), tasks, "every task must retire once");
        println!("closed-loop streaming: makespan identical, all {tasks} tasks retired\n");
        return;
    }

    let mut table = Table::new(
        format!("Service latency — {kind} arrivals, admission depth per case"),
        &[
            "case",
            "gap",
            "depth",
            "p50",
            "p99",
            "p99.9",
            "backpressure",
            "max depth",
        ],
    );
    let run = |label: &str, gap: SimDuration, depth: usize, table: &mut Table| {
        let service = ServiceConfig::new(ArrivalConfig::new(kind, gap, 42))
            .with_admission(AdmissionConfig::new(depth));
        let out = simulate_service(&trace, &service, &cfg, |_| NexusSharp::paper(6));
        assert_eq!(out.histogram.count(), tasks, "every task must retire once");
        assert!(
            out.stream.max_admission_depth <= depth,
            "admission depth bound violated"
        );
        table.row(vec![
            label.into(),
            format!("{gap}"),
            format!("{depth}"),
            format!("{}", out.p50()),
            format!("{}", out.p99()),
            format!("{}", out.p999()),
            format!("{}", out.backpressure_events()),
            format!("{}", out.stream.max_admission_depth),
        ]);
        out
    };

    // Under-driven: 12.5% of estimated capacity through the configured depth.
    let under = run("under", capacity_gap * 8, depth, &mut table);
    // Over-driven: arrivals every 1 ns through a 4-deep admission queue.
    let over = run("over", SimDuration::from_ns(1), 4, &mut table);
    table.print();

    assert_eq!(
        under.backpressure_events(),
        0,
        "an under-driven service must never back-pressure"
    );
    assert!(
        over.backpressure_events() > 0,
        "an over-driven service must back-pressure"
    );

    // The knee ramp: same trace, load factors around the capacity estimate.
    let base = ServiceConfig::new(ArrivalConfig::new(kind, capacity_gap * 8, 42))
        .with_admission(AdmissionConfig::new(depth.min(8)));
    let report = knee_sweep(
        &trace,
        &base,
        &cfg,
        &[0.5, 1.0, 2.0, 4.0, 16.0, 64.0],
        |_| NexusSharp::paper(6),
    );
    let mut ramp = Table::new(
        "Knee ramp — load factor over 1/8th-capacity base rate",
        &["load", "offered/s", "done/s", "p99", "backpressure", "lag"],
    );
    for p in &report.points {
        ramp.row(vec![
            format!("{:.1}x", p.load_factor),
            format!("{:.0}", p.offered_per_sec),
            format!("{:.0}", p.completed_per_sec),
            format!("{}", p.p99),
            format!("{}", p.backpressure_events),
            format!("{}", p.source_lag),
        ]);
    }
    ramp.print();
    match report.knee() {
        Some(k) => println!("knee: {:.0} offered/s sustained", k.offered_per_sec),
        None => println!("knee: below the lowest point of the ramp"),
    }
}
