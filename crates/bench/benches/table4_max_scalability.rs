//! **Table IV** — Maximum scalability using the different task graph managers.
//!
//! Runs every Table II benchmark under Nanos, Nexus++ and Nexus# (6 task
//! graphs at 55.56 MHz) over the paper's core counts and reports the maximum
//! speedup of each, next to the paper's Table IV values.
//!
//! Run with: `cargo bench -p nexus-bench --bench table4_max_scalability`
//! Environment: `NEXUS_BENCH_SCALE=<0..1>` (default 0.1), `NEXUS_FULL=1`.

use nexus_bench::managers::ManagerKind;
use nexus_bench::paper::table4_row;
use nexus_bench::report::{fmt_speedup, Table};
use nexus_bench::runner::{bench_scale, curves_for};
use nexus_trace::Benchmark;

fn main() {
    let scale = bench_scale();
    println!("workload scale: {scale} (NEXUS_FULL=1 for full-size traces)\n");
    let managers = ManagerKind::fig8_set();

    let mut table = Table::new(
        "Table IV: maximum speedup per task-graph manager (measured | paper)",
        &[
            "benchmark",
            "ideal",
            "Nanos",
            "paper",
            "Nexus++",
            "paper",
            "Nexus# 6TG",
            "paper",
        ],
    );

    for bench in Benchmark::table2_suite() {
        let curves = curves_for(bench, &managers, scale, 42);
        let max_of = |label: &str| -> f64 {
            curves
                .iter()
                .find(|c| c.manager == label)
                .map(|c| c.max_speedup())
                .unwrap_or(f64::NAN)
        };
        let paper = table4_row(&bench.name());
        table.row(vec![
            bench.name(),
            fmt_speedup(max_of("ideal")),
            fmt_speedup(max_of("Nanos")),
            paper.map(|p| fmt_speedup(p.nanos_max)).unwrap_or_default(),
            fmt_speedup(max_of("Nexus++")),
            paper
                .map(|p| fmt_speedup(p.nexus_pp_max))
                .unwrap_or_default(),
            fmt_speedup(max_of("Nexus# 6TG")),
            paper
                .map(|p| fmt_speedup(p.nexus_sharp_max))
                .unwrap_or_default(),
        ]);
        eprintln!("  finished {}", bench.name());
    }
    table.print();
    println!("Nanos curves are limited to 32 cores (the paper's measurement machine);");
    println!("hardware managers sweep 1-256 cores. Scaled-down traces lower the absolute");
    println!("maxima of the embarrassingly parallel benchmarks (fewer tasks than cores).");
}
