//! **Table III** — Gaussian elimination tasks for different matrix sizes,
//! plus a structural check of the Fig. 6 dependency pattern.
//!
//! Run with: `cargo bench -p nexus-bench --bench table3_gaussian`

use nexus_bench::paper::TABLE3;
use nexus_bench::report::Table;
use nexus_taskgraph::refgraph::ParallelismProfile;
use nexus_trace::generators::gaussian;
use nexus_trace::TraceStats;

fn main() {
    let mut table = Table::new(
        "Table III: Gaussian elimination tasks (generated vs. paper)",
        &[
            "matrix dim",
            "# tasks",
            "# tasks(paper)",
            "avg FLOPs",
            "FLOPs(paper)",
            "avg task (us)",
            "us(paper)",
        ],
    );

    for &(dim, paper_tasks, paper_flops, paper_us) in TABLE3 {
        // The 3000x3000 instance has 4.5M tasks; generating it is fine, but we
        // avoid computing full statistics twice.
        let tasks = gaussian::task_count(dim as u64);
        let flops = gaussian::average_flops(dim as u64);
        table.row(vec![
            format!("{dim}"),
            format!("{tasks}"),
            format!("{paper_tasks}"),
            format!("{flops:.0}"),
            format!("{paper_flops}"),
            format!("{:.3}", flops / gaussian::FLOPS_PER_US),
            format!("{paper_us:.3}"),
        ]);
    }
    table.print();

    // Fig. 6 structural check on a small instance: wave widths and the long
    // kick-off list on the first pivot row.
    let n = 64u32;
    let trace = gaussian::generate(n);
    let stats = TraceStats::of(&trace);
    let profile = ParallelismProfile::of(&trace);
    let mut fig6 = Table::new(
        format!("Fig. 6 dependency pattern check (n = {n})"),
        &["metric", "value"],
    );
    fig6.row(vec!["tasks".into(), format!("{}", stats.tasks)]);
    fig6.row(vec!["deps per task".into(), stats.deps_column()]);
    fig6.row(vec![
        "available parallelism (work / critical path)".into(),
        format!("{:.1}", profile.average_parallelism()),
    ]);
    fig6.row(vec![
        "first-wave fan-out (tasks waiting on the first pivot row)".into(),
        format!("{}", n - 1),
    ]);
    fig6.print();
}
