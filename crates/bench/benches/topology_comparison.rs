//! **Topology comparison** — non-uniform interconnect fabrics × scheduling
//! policies on the multi-node cluster.
//!
//! Three questions, three sweeps:
//!
//! 1. **What does the wiring cost?** The same rack-clustered trace (coupling
//!    inside the racks) runs over every built-in fabric. The uniform
//!    `bus`/`mesh` anchor the two ends; `racktiers`/`torus`/`dragonfly` show
//!    how multi-hop routes and shared trunks move words and makespan.
//! 2. **Do topology-aware policies exploit the tiers?** An un-hinted
//!    rack-clustered trace (rack heads own 3× the chains) runs on a
//!    rack-tiered fabric under the flat stack (`xorhash` placement + flat
//!    `steal`) and the aware stack (`topo` placement + `hier` stealing).
//!    The aware stack should win makespan *and* move fewer words over the
//!    inter-rack trunks.
//! 3. **Do the tiers bite?** A trace whose every coupled edge crosses racks
//!    (`cross_rack = 1`) runs on `mesh` vs `racktiers`: the tiered fabric
//!    must degrade, because the traffic fights the wiring.
//!
//! Run with: `cargo bench -p nexus-bench --bench topology_comparison`
//! Environment: `NEXUS_BENCH_SCALE=<0..1>` (default 0.1), `NEXUS_FULL=1`,
//! `NEXUS_LINK=rdma|ethernet|ideal`,
//! `NEXUS_TOPO=bus|mesh|racktiers|torus|dragonfly` (fabric of sweep 2),
//! `NEXUS_POLICY=…`, `NEXUS_STEAL=…`. All env knobs are case-insensitive and
//! reject typos with the valid values.

use nexus_bench::report::Table;
use nexus_bench::runner::{bench_scale, cluster_link, cluster_topology};
use nexus_cluster::{simulate_cluster, ClusterConfig, ClusterOutcome, Topology};
use nexus_core::NexusSharp;
use nexus_sched::{PolicyKind, StealKind};
use nexus_sim::SimDuration;
use nexus_trace::generators::distributed;
use nexus_trace::Trace;

fn tier_summary(out: &ClusterOutcome) -> String {
    out.link
        .per_tier
        .iter()
        .map(|t| format!("{} {}w", t.name, t.words))
        .collect::<Vec<_>>()
        .join(", ")
}

fn main() {
    let link = cluster_link();
    let scale = bench_scale();
    let workers_per_node = 4;
    let us = SimDuration::from_us;
    let chains = ((scale * 60.0) as u64).clamp(4, 60);
    println!("link: {link:?}, chains/node: {chains}, scale: {scale}\n");

    // Sweep 1 — the same matched trace over every fabric. The rack shapes
    // (2x2, 3x3) line up with the fabrics' derived rack/group sizes, so the
    // intra-rack coupling of the trace really is intra-rack on the wire.
    for (racks, nodes_per_rack) in [(2usize, 2usize), (3, 3)] {
        let trace = distributed::rack_clustered(
            racks,
            nodes_per_rack,
            chains,
            10,
            1.0,
            0.5,
            0.0,
            us(30),
            42,
        );
        let nodes = racks * nodes_per_rack;
        let mut table = Table::new(
            format!(
                "Fabric sweep — {} on {nodes} nodes, Nexus# 6TG per node",
                trace.name
            ),
            &["topology", "makespan", "speedup", "link words", "per tier"],
        );
        for topology in Topology::ALL {
            let cfg =
                ClusterConfig::new(nodes, workers_per_node).with_link(link.with_topology(topology));
            let out = simulate_cluster(&trace, &cfg, |_| NexusSharp::paper(6));
            table.row(vec![
                out.topology.clone(),
                format!("{}", out.makespan),
                format!("{:.2}x", out.speedup()),
                format!("{}", out.link.words),
                tier_summary(&out),
            ]);
        }
        table.print();
    }

    // Sweep 2 — flat vs topology-aware stacks on a tiered fabric.
    let fabric_kind = cluster_topology().unwrap_or(Topology::RackTiers);
    let skewed = distributed::unhinted(&distributed::rack_clustered(
        2,
        2,
        chains,
        10,
        3.0,
        0.6,
        0.0,
        us(30),
        11,
    ));
    let stacks: [(&str, PolicyKind, StealKind); 4] = [
        ("flat", PolicyKind::XorHash, StealKind::MostLoaded),
        ("locality", PolicyKind::LocalityAware, StealKind::MostLoaded),
        ("half", PolicyKind::LocalityAware, StealKind::Half),
        ("aware", PolicyKind::TopologyAware, StealKind::Hierarchical),
    ];
    let mut table = Table::new(
        format!(
            "Scheduling stacks — {} on 4 nodes over {fabric_kind}, Nexus# 6TG per node",
            skewed.name
        ),
        &[
            "stack",
            "placement",
            "stealing",
            "makespan",
            "steals",
            "per tier",
        ],
    );
    for (label, placement, stealing) in stacks {
        let cfg = ClusterConfig::new(4, workers_per_node)
            .with_link(link.with_topology(fabric_kind))
            .with_placement(placement)
            .with_stealing(stealing);
        let out = simulate_cluster(&skewed, &cfg, |_| NexusSharp::paper(6));
        table.row(vec![
            label.to_string(),
            out.placement.clone(),
            out.stealing.clone(),
            format!("{}", out.makespan),
            format!("{}", out.steals),
            tier_summary(&out),
        ]);
    }
    table.print();

    // Sweep 3 — traffic that matches vs fights the fabric.
    let mut table = Table::new(
        "Match vs fight — rack-clustered traffic direction × fabric, 4 nodes".to_string(),
        &["trace", "topology", "makespan", "speedup", "per tier"],
    );
    for cross_rack in [0.0, 1.0] {
        let trace: Trace =
            distributed::rack_clustered(2, 2, chains, 10, 1.0, 1.0, cross_rack, us(30), 13);
        for topology in [Topology::FullMesh, Topology::RackTiers] {
            let cfg =
                ClusterConfig::new(4, workers_per_node).with_link(link.with_topology(topology));
            let out = simulate_cluster(&trace, &cfg, |_| NexusSharp::paper(6));
            table.row(vec![
                trace.name.clone(),
                out.topology.clone(),
                format!("{}", out.makespan),
                format!("{:.2}x", out.speedup()),
                tier_summary(&out),
            ]);
        }
    }
    table.print();
}
