//! **Figure 9** — Performance of Nexus# running the Gaussian elimination
//! benchmark for different matrix sizes.
//!
//! Compares Nexus++, Nexus# with one task graph and Nexus# with two task
//! graphs, all at 100 MHz (as in the paper), on 1–64 cores for matrices of
//! 250/500/1000/3000 rows. Worker cores compute 2 GFLOPS, so task durations are
//! the Table III weights. **The speedup baseline is the single-core execution
//! time using Nexus++**, exactly as stated in §VI for this figure (unlike
//! Fig. 8, which is normalized to the ideal single-core time).
//!
//! Run with: `cargo bench -p nexus-bench --bench fig9_gaussian`
//! Environment: `NEXUS_BENCH_SCALE` scales the matrix dimension (default 0.1
//! scales each dimension by sqrt(0.1) ≈ 0.32); `NEXUS_FULL=1` runs the paper's
//! exact sizes including the 4.5-million-task 3000×3000 instance.

use nexus_bench::managers::ManagerKind;
use nexus_bench::paper::{
    FIG9_GAUSSIAN_3000_SPEEDUP, FIG9_IMPROVEMENT_250, FIG9_IMPROVEMENT_LARGE,
};
use nexus_bench::report::Table;
use nexus_bench::runner::{bench_scale, gaussian_core_counts};
use nexus_host::{simulate, HostConfig};
use nexus_trace::Benchmark;

fn main() {
    let scale = bench_scale();
    println!("workload scale: {scale} (NEXUS_FULL=1 for the paper's exact matrix sizes)\n");
    let cores = gaussian_core_counts();
    let managers = [
        ManagerKind::NexusPP,
        ManagerKind::NexusSharpAtMhz {
            task_graphs: 1,
            mhz: 100.0,
        },
        ManagerKind::NexusSharpAtMhz {
            task_graphs: 2,
            mhz: 100.0,
        },
    ];

    let mut improvements: Vec<(String, f64)> = Vec::new();

    for bench in Benchmark::gaussian_suite() {
        let trace = bench.trace_scaled(42, scale);

        // Paper baseline: single-core execution time using Nexus++.
        let baseline = simulate(
            &trace,
            &mut ManagerKind::NexusPP.build(&trace.name, 1),
            &HostConfig::with_workers(1),
        )
        .makespan;

        let mut headers: Vec<String> = vec!["manager".to_string()];
        headers.extend(cores.iter().map(|c| format!("{c}c")));
        let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut table = Table::new(
            format!(
                "Fig. 9 — {} (speedup vs single-core Nexus++, all managers @ 100 MHz)",
                trace.name
            ),
            &headers_ref,
        );

        let mut best_per_manager: Vec<f64> = Vec::new();
        for kind in managers {
            let mut row = vec![kind.label()];
            let mut best = 0.0f64;
            for &c in &cores {
                let out = simulate(
                    &trace,
                    &mut kind.build(&trace.name, c),
                    &HostConfig::with_workers(c),
                );
                let speedup = baseline.as_us_f64() / out.makespan.as_us_f64();
                best = best.max(speedup);
                row.push(format!("{speedup:.1}"));
            }
            best_per_manager.push(best);
            table.row(row);
        }
        table.print();

        improvements.push((
            trace.name.clone(),
            best_per_manager[2] / best_per_manager[0] - 1.0,
        ));
        eprintln!("  finished {}", trace.name);
    }

    let mut summary = Table::new(
        "Fig. 9 summary: Nexus# (2 TG) best speedup relative to Nexus++ best",
        &["matrix", "improvement (measured)", "paper"],
    );
    for (i, (name, imp)) in improvements.iter().enumerate() {
        let paper = if i == 0 {
            FIG9_IMPROVEMENT_250
        } else {
            FIG9_IMPROVEMENT_LARGE
        };
        summary.row(vec![
            name.clone(),
            format!("{:+.0}%", imp * 100.0),
            format!("~{:+.0}%", paper * 100.0),
        ]);
    }
    summary.print();
    println!(
        "Paper headline: ~{FIG9_GAUSSIAN_3000_SPEEDUP:.0}x speedup for the 3000x3000 matrix on 64 cores (Nexus#, 2 TGs)."
    );
}
