//! **Figure 3** — Best vs. worst case scenarios of exploiting the task graphs,
//! i.e. how the distribution function spreads a task's/application's addresses
//! over the task-graph units.
//!
//! Feeds the address streams of the real workload generators through the
//! paper's XOR distribution function (and the alternative policies) and prints
//! the per-task-graph load, the imbalance factor (1.0 = the round-robin best
//! case of Fig. 3(A); N = the serialized worst case of Fig. 3(B)) and the
//! resulting effective insertion parallelism.
//!
//! Run with: `cargo bench -p nexus-bench --bench fig3_distribution`

use nexus_bench::report::Table;
use nexus_core::distribution::{DistributionPolicy, Distributor};
use nexus_trace::{Benchmark, Trace};

fn address_stream(trace: &Trace) -> Vec<u64> {
    trace
        .tasks()
        .flat_map(|t| t.params.iter().map(|p| p.addr))
        .collect()
}

fn main() {
    let policies = [
        ("XOR hash (paper)", DistributionPolicy::XorHash),
        ("modulo", DistributionPolicy::Modulo),
        (
            "round-robin (Fig. 3A best case)",
            DistributionPolicy::RoundRobin,
        ),
        (
            "single graph (Fig. 3B worst case)",
            DistributionPolicy::SingleGraph,
        ),
    ];
    let benches = [
        Benchmark::CRay,
        Benchmark::SparseLu,
        Benchmark::H264Dec(nexus_trace::generators::MbGrouping::G1x1),
        Benchmark::Gaussian { dim: 250 },
    ];

    for tgs in [4usize, 6, 8] {
        let mut table = Table::new(
            format!("Fig. 3 — distribution fairness over {tgs} task graphs"),
            &[
                "benchmark",
                "policy",
                "addresses",
                "imbalance (max/ideal)",
                "effective parallel TGs",
            ],
        );
        for bench in benches {
            let trace = bench.trace_scaled(7, 0.05);
            let addrs = address_stream(&trace);
            for (name, policy) in policies {
                let mut d = Distributor::new(policy, tgs);
                for &a in &addrs {
                    d.pick(a);
                }
                let bal = d.balance();
                table.row(vec![
                    trace.name.clone(),
                    name.to_string(),
                    format!("{}", addrs.len()),
                    format!("{:.2}", bal.imbalance()),
                    format!("{:.2}", tgs as f64 / bal.imbalance()),
                ]);
            }
        }
        table.print();
    }
    println!("Imbalance 1.0 corresponds to the best case of Fig. 3(A) (all task graphs busy);");
    println!("imbalance N corresponds to the worst case of Fig. 3(B) (one task graph at a time).");
}
