//! Construction of the task managers compared in the evaluation.

use nexus_core::{NexusSharp, NexusSharpConfig};
use nexus_host::manager::{ManagerEvent, TaskManager};
use nexus_host::IdealManager;
use nexus_nanos::NanosRuntime;
use nexus_pp::{NexusPP, NexusPPConfig};
use nexus_sim::{SimDuration, SimTime};
use nexus_trace::{TaskDescriptor, TaskId};

/// The manager families compared in Figs. 7–9 and Table IV.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ManagerKind {
    /// The "No Overhead" ideal curve.
    Ideal,
    /// The Nanos software runtime (calibrated per benchmark).
    Nanos,
    /// The Nexus++ centralized hardware manager at 100 MHz.
    NexusPP,
    /// Nexus# with `task_graphs` task graphs at its Table I test frequency.
    NexusSharp {
        /// Number of task-graph units.
        task_graphs: usize,
    },
    /// Nexus# with `task_graphs` task graphs forced to a given frequency
    /// (Fig. 7(a) uses 100 MHz for every configuration; Fig. 9 uses 100 MHz
    /// for the 1-TG and 2-TG configurations).
    NexusSharpAtMhz {
        /// Number of task-graph units.
        task_graphs: usize,
        /// Clock frequency in MHz.
        mhz: f64,
    },
}

impl ManagerKind {
    /// Display label used in tables.
    pub fn label(&self) -> String {
        match self {
            ManagerKind::Ideal => "ideal".to_string(),
            ManagerKind::Nanos => "Nanos".to_string(),
            ManagerKind::NexusPP => "Nexus++".to_string(),
            ManagerKind::NexusSharp { task_graphs } => format!("Nexus# {task_graphs}TG"),
            ManagerKind::NexusSharpAtMhz { task_graphs, mhz } => {
                format!("Nexus# {task_graphs}TG@{mhz:.0}MHz")
            }
        }
    }

    /// Builds a fresh manager instance for a run of `benchmark` on `workers`
    /// worker cores.
    pub fn build(&self, benchmark: &str, workers: usize) -> AnyManager {
        match self {
            ManagerKind::Ideal => AnyManager::Ideal(IdealManager::new()),
            ManagerKind::Nanos => {
                AnyManager::Nanos(NanosRuntime::for_benchmark(benchmark, workers))
            }
            ManagerKind::NexusPP => AnyManager::NexusPP(NexusPP::new(NexusPPConfig::paper())),
            ManagerKind::NexusSharp { task_graphs } => {
                AnyManager::NexusSharp(NexusSharp::new(NexusSharpConfig::paper(*task_graphs)))
            }
            ManagerKind::NexusSharpAtMhz { task_graphs, mhz } => AnyManager::NexusSharp(
                NexusSharp::new(NexusSharpConfig::at_mhz(*task_graphs, *mhz)),
            ),
        }
    }

    /// The four-manager comparison of Fig. 8 (ideal, Nanos, Nexus++, Nexus# 6 TGs).
    pub fn fig8_set() -> Vec<ManagerKind> {
        vec![
            ManagerKind::Ideal,
            ManagerKind::Nanos,
            ManagerKind::NexusPP,
            ManagerKind::NexusSharp { task_graphs: 6 },
        ]
    }
}

/// A type-erased manager so sweeps can be written over `ManagerKind`.
pub enum AnyManager {
    /// The ideal manager.
    Ideal(IdealManager),
    /// The Nanos software runtime model.
    Nanos(NanosRuntime),
    /// The Nexus++ baseline.
    NexusPP(NexusPP),
    /// The Nexus# manager.
    NexusSharp(NexusSharp),
}

impl TaskManager for AnyManager {
    fn name(&self) -> String {
        match self {
            AnyManager::Ideal(m) => m.name(),
            AnyManager::Nanos(m) => m.name(),
            AnyManager::NexusPP(m) => m.name(),
            AnyManager::NexusSharp(m) => m.name(),
        }
    }
    fn can_accept(&self, now: SimTime) -> bool {
        match self {
            AnyManager::Ideal(m) => m.can_accept(now),
            AnyManager::Nanos(m) => m.can_accept(now),
            AnyManager::NexusPP(m) => m.can_accept(now),
            AnyManager::NexusSharp(m) => m.can_accept(now),
        }
    }
    fn submit(&mut self, task: &TaskDescriptor, now: SimTime) -> SimTime {
        match self {
            AnyManager::Ideal(m) => m.submit(task, now),
            AnyManager::Nanos(m) => m.submit(task, now),
            AnyManager::NexusPP(m) => m.submit(task, now),
            AnyManager::NexusSharp(m) => m.submit(task, now),
        }
    }
    fn finish(&mut self, task: TaskId, now: SimTime) -> SimTime {
        match self {
            AnyManager::Ideal(m) => m.finish(task, now),
            AnyManager::Nanos(m) => m.finish(task, now),
            AnyManager::NexusPP(m) => m.finish(task, now),
            AnyManager::NexusSharp(m) => m.finish(task, now),
        }
    }
    fn dispatch_cost(&mut self, task: TaskId, now: SimTime) -> SimDuration {
        match self {
            AnyManager::Ideal(m) => m.dispatch_cost(task, now),
            AnyManager::Nanos(m) => m.dispatch_cost(task, now),
            AnyManager::NexusPP(m) => m.dispatch_cost(task, now),
            AnyManager::NexusSharp(m) => m.dispatch_cost(task, now),
        }
    }
    fn supports_taskwait_on(&self) -> bool {
        match self {
            AnyManager::Ideal(m) => m.supports_taskwait_on(),
            AnyManager::Nanos(m) => m.supports_taskwait_on(),
            AnyManager::NexusPP(m) => m.supports_taskwait_on(),
            AnyManager::NexusSharp(m) => m.supports_taskwait_on(),
        }
    }
    fn drain_events(&mut self) -> Vec<ManagerEvent> {
        match self {
            AnyManager::Ideal(m) => m.drain_events(),
            AnyManager::Nanos(m) => m.drain_events(),
            AnyManager::NexusPP(m) => m.drain_events(),
            AnyManager::NexusSharp(m) => m.drain_events(),
        }
    }
    fn stats_summary(&self) -> Vec<(String, f64)> {
        match self {
            AnyManager::Ideal(m) => m.stats_summary(),
            AnyManager::Nanos(m) => m.stats_summary(),
            AnyManager::NexusPP(m) => m.stats_summary(),
            AnyManager::NexusSharp(m) => m.stats_summary(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_construction() {
        assert_eq!(ManagerKind::Ideal.label(), "ideal");
        assert_eq!(
            ManagerKind::NexusSharp { task_graphs: 6 }.label(),
            "Nexus# 6TG"
        );
        assert_eq!(
            ManagerKind::NexusSharpAtMhz {
                task_graphs: 2,
                mhz: 100.0
            }
            .label(),
            "Nexus# 2TG@100MHz"
        );
        let m = ManagerKind::NexusSharp { task_graphs: 4 }.build("c-ray", 8);
        assert_eq!(m.name(), "Nexus# (4 TGs)");
        let m = ManagerKind::Nanos.build("streamcluster", 8);
        assert_eq!(m.name(), "Nanos");
        assert_eq!(ManagerKind::fig8_set().len(), 4);
    }
}
