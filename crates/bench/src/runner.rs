//! Shared sweep plumbing for the figure/table benches.

use crate::managers::ManagerKind;
use nexus_host::sweep::{speedup_curve, SpeedupCurve};
use nexus_trace::Benchmark;

/// Core counts for the hardware-manager curves (Figs. 7 and 8).
pub fn hw_core_counts() -> Vec<usize> {
    nexus_host::sweep::PAPER_CORE_COUNTS.to_vec()
}

/// Core counts for the Nanos curves (bounded by the real 32-core machine).
pub fn nanos_core_counts() -> Vec<usize> {
    nexus_host::sweep::NANOS_CORE_COUNTS.to_vec()
}

/// Core counts used in the Gaussian-elimination figure (Fig. 9 plots 1–64).
pub fn gaussian_core_counts() -> Vec<usize> {
    vec![1, 2, 4, 8, 16, 32, 64]
}

/// Node counts for the cluster-scalability sweep.
pub fn cluster_node_counts() -> Vec<usize> {
    vec![1, 2, 4, 8]
}

/// Aborts the bench with a clear message when an environment knob is set to
/// something unparseable (listing the valid values is the parser's job).
fn env_knob_error(var: &str, message: &str) -> ! {
    eprintln!("error: {var}: {message}");
    std::process::exit(2);
}

/// The interconnect used by the cluster benches: `NEXUS_LINK=rdma` (default),
/// `ethernet` or `ideal`, case-insensitively. Typos abort with the list of
/// valid values.
pub fn cluster_link() -> nexus_cluster::LinkConfig {
    let Ok(raw) = std::env::var("NEXUS_LINK") else {
        return nexus_cluster::LinkConfig::rdma();
    };
    match raw.trim().to_ascii_lowercase().as_str() {
        "rdma" => nexus_cluster::LinkConfig::rdma(),
        "ethernet" | "eth" => nexus_cluster::LinkConfig::ethernet(),
        "ideal" => nexus_cluster::LinkConfig::ideal(),
        other => env_knob_error(
            "NEXUS_LINK",
            &format!("unknown interconnect {other:?} (expected rdma|ethernet|ideal)"),
        ),
    }
}

/// The placement policy used by the cluster benches: `NEXUS_POLICY=xorhash`
/// (default), `affinity` or `locality`, case-insensitively. Typos abort with
/// the list of valid values.
pub fn cluster_policy() -> nexus_sched::PolicyKind {
    let Ok(raw) = std::env::var("NEXUS_POLICY") else {
        return nexus_sched::PolicyKind::default();
    };
    raw.parse()
        .unwrap_or_else(|e: String| env_knob_error("NEXUS_POLICY", &e))
}

/// The work-stealing policy used by the cluster benches:
/// `NEXUS_STEAL=off` (default), `steal`, `steal-half` or `hier`,
/// case-insensitively. Typos abort with the list of valid values.
pub fn cluster_steal() -> nexus_sched::StealKind {
    let Ok(raw) = std::env::var("NEXUS_STEAL") else {
        return nexus_sched::StealKind::default();
    };
    raw.parse()
        .unwrap_or_else(|e: String| env_knob_error("NEXUS_STEAL", &e))
}

/// The runtime-feedback mode used by the cluster benches:
/// `NEXUS_FEEDBACK=off` (default), `place`, `reclaim` or `full`,
/// case-insensitively. Typos abort with the list of valid values.
pub fn cluster_feedback() -> nexus_sched::FeedbackKind {
    let Ok(raw) = std::env::var("NEXUS_FEEDBACK") else {
        return nexus_sched::FeedbackKind::default();
    };
    raw.parse()
        .unwrap_or_else(|e: String| env_knob_error("NEXUS_FEEDBACK", &e))
}

/// The interconnect topology override used by the cluster benches:
/// `NEXUS_TOPO=bus|mesh|racktiers|torus|dragonfly`, case-insensitively.
/// `None` when unset — the benches then keep the topology of the selected
/// `NEXUS_LINK` preset. Typos abort with the list of valid values.
pub fn cluster_topology() -> Option<nexus_topo::TopologyKind> {
    let raw = std::env::var("NEXUS_TOPO").ok()?;
    Some(
        raw.parse()
            .unwrap_or_else(|e: String| env_knob_error("NEXUS_TOPO", &e)),
    )
}

/// The event-queue engine used by the cluster benches:
/// `NEXUS_EVENT_ENGINE=calendar` (default) or `heap`, case-insensitively.
/// Typos abort with the list of valid values.
pub fn event_engine() -> nexus_sim::EngineKind {
    let Ok(raw) = std::env::var("NEXUS_EVENT_ENGINE") else {
        return nexus_sim::EngineKind::default();
    };
    raw.parse()
        .unwrap_or_else(|e: String| env_knob_error("NEXUS_EVENT_ENGINE", &e))
}

/// The arrival process used by the service benches:
/// `NEXUS_ARRIVAL=poisson` (default), `bursty`, `diurnal` or `closed`,
/// case-insensitively. Typos abort with the list of valid values.
pub fn service_arrival() -> nexus_flow::ArrivalKind {
    let Ok(raw) = std::env::var("NEXUS_ARRIVAL") else {
        return nexus_flow::ArrivalKind::Poisson;
    };
    raw.parse()
        .unwrap_or_else(|e: String| env_knob_error("NEXUS_ARRIVAL", &e))
}

/// The per-node admission depth used by the service benches:
/// `NEXUS_ADMIT_DEPTH=<n>` (default
/// [`AdmissionConfig::DEFAULT_DEPTH`](nexus_cluster::AdmissionConfig::DEFAULT_DEPTH)).
/// Zero or unparsable values abort loudly.
pub fn admit_depth() -> usize {
    let Ok(raw) = std::env::var("NEXUS_ADMIT_DEPTH") else {
        return nexus_cluster::AdmissionConfig::DEFAULT_DEPTH;
    };
    let v: usize = raw.trim().parse().unwrap_or_else(|_| {
        env_knob_error(
            "NEXUS_ADMIT_DEPTH",
            &format!("unparsable admission depth {raw:?} (expected a positive integer)"),
        )
    });
    if v == 0 {
        env_knob_error(
            "NEXUS_ADMIT_DEPTH",
            "admission depth 0 can never admit (expected a positive integer)",
        );
    }
    v
}

/// Parses a positive integer knob shared by the runtime-smoke benches.
fn positive_usize_knob(var: &str, what: &str, default: usize) -> usize {
    let Ok(raw) = std::env::var(var) else {
        return default;
    };
    let v: usize = raw.trim().parse().unwrap_or_else(|_| {
        env_knob_error(
            var,
            &format!("unparsable {what} {raw:?} (expected a positive integer)"),
        )
    });
    if v == 0 {
        env_knob_error(
            var,
            &format!("{what} 0 makes an empty runtime (expected a positive integer)"),
        );
    }
    v
}

/// Trace output mode selected by the observability knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// Tracing disabled (the default).
    #[default]
    Off,
    /// Chrome-trace JSON (loadable in Perfetto / `chrome://tracing`).
    Chrome,
    /// Compact human-readable text timeline.
    Text,
}

/// The trace export format used by `quick_report`: `NEXUS_TRACE=off`
/// (default), `chrome` or `text`, case-insensitively. Typos abort with the
/// list of valid values.
pub fn trace_mode() -> TraceMode {
    let Ok(raw) = std::env::var("NEXUS_TRACE") else {
        return TraceMode::Off;
    };
    match raw.trim().to_ascii_lowercase().as_str() {
        "off" | "0" | "" => TraceMode::Off,
        "chrome" | "json" => TraceMode::Chrome,
        "text" | "timeline" => TraceMode::Text,
        other => env_knob_error(
            "NEXUS_TRACE",
            &format!("unknown trace mode {other:?} (expected off|chrome|text)"),
        ),
    }
}

/// The trace output path used by `quick_report`: `NEXUS_TRACE_OUT=<path>`
/// (overridden by the `--trace-out` flag). `None` when unset; an empty or
/// all-whitespace path aborts loudly — a misquoted shell variable must not
/// silently drop the trace.
pub fn trace_out() -> Option<String> {
    let raw = std::env::var("NEXUS_TRACE_OUT").ok()?;
    if raw.trim().is_empty() {
        env_knob_error(
            "NEXUS_TRACE_OUT",
            "empty trace output path (expected a writable file path)",
        );
    }
    Some(raw)
}

/// Worker threads per node for the live-runtime benches:
/// `NEXUS_RT_WORKERS=<n>` (default 2). Zero or unparsable values abort
/// loudly.
pub fn rt_workers() -> usize {
    positive_usize_knob("NEXUS_RT_WORKERS", "worker count", 2)
}

/// Node count for the live-runtime benches: `NEXUS_RT_NODES=<n>` (default
/// 4). Zero or unparsable values abort loudly.
pub fn rt_nodes() -> usize {
    positive_usize_knob("NEXUS_RT_NODES", "node count", 4)
}

/// The workload scale factor used by the benches: `NEXUS_FULL=1` forces 1.0,
/// otherwise `NEXUS_BENCH_SCALE` (default 0.1). Unparsable or non-finite
/// values abort loudly — a typo like `0,3` must not silently size the whole
/// workload to the default.
pub fn bench_scale() -> f64 {
    if std::env::var("NEXUS_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        return 1.0;
    }
    let Ok(raw) = std::env::var("NEXUS_BENCH_SCALE") else {
        return 0.1;
    };
    let v: f64 = raw.trim().parse().unwrap_or_else(|_| {
        env_knob_error(
            "NEXUS_BENCH_SCALE",
            &format!("unparsable scale {raw:?} (expected a number in 0.001..=1.0)"),
        )
    });
    if !v.is_finite() {
        env_knob_error(
            "NEXUS_BENCH_SCALE",
            &format!("non-finite scale {raw:?} (expected a number in 0.001..=1.0)"),
        );
    }
    v.clamp(0.001, 1.0)
}

/// Runs the speedup curve of `manager` on `bench` (generated at `scale`) over
/// the given core counts.
pub fn curve_for(
    bench: Benchmark,
    manager: ManagerKind,
    cores: &[usize],
    scale: f64,
    seed: u64,
) -> SpeedupCurve {
    let trace = bench.trace_scaled(seed, scale);
    let mut curve = speedup_curve(&trace, cores, |n| manager.build(&trace.name, n));
    // Use the harness label (shorter and unambiguous in tables).
    curve.manager = manager.label();
    curve
}

/// Runs one benchmark under a set of managers. Nanos is automatically limited
/// to the software core counts.
pub fn curves_for(
    bench: Benchmark,
    managers: &[ManagerKind],
    scale: f64,
    seed: u64,
) -> Vec<SpeedupCurve> {
    managers
        .iter()
        .map(|m| {
            let cores = if matches!(m, ManagerKind::Nanos) {
                nanos_core_counts()
            } else {
                hw_core_counts()
            };
            curve_for(bench, *m, &cores, scale, seed)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing_defaults_and_clamps() {
        // The environment is not modified in tests; just exercise the default
        // path (no NEXUS_FULL / NEXUS_BENCH_SCALE set in CI).
        let s = bench_scale();
        assert!(s > 0.0 && s <= 1.0);
    }

    #[test]
    fn env_knob_defaults() {
        // Unset knobs must fall back silently (CI never sets them).
        assert_eq!(cluster_link(), nexus_cluster::LinkConfig::rdma());
        assert_eq!(cluster_policy(), nexus_sched::PolicyKind::XorHash);
        assert_eq!(cluster_steal(), nexus_sched::StealKind::Disabled);
        assert_eq!(cluster_feedback(), nexus_sched::FeedbackKind::Off);
        assert_eq!(cluster_topology(), None);
        assert_eq!(service_arrival(), nexus_flow::ArrivalKind::Poisson);
        assert_eq!(admit_depth(), nexus_cluster::AdmissionConfig::DEFAULT_DEPTH);
        assert_eq!(rt_workers(), 2);
        assert_eq!(rt_nodes(), 4);
        assert_eq!(trace_mode(), TraceMode::Off);
        assert_eq!(trace_out(), None);
    }

    #[test]
    fn quick_curves_have_expected_shape() {
        // A tiny c-ray instance: every manager reaches a decent fraction of the
        // ideal speedup because tasks are 6 ms.
        let curves = curves_for(
            Benchmark::CRay,
            &[
                ManagerKind::Ideal,
                ManagerKind::NexusSharp { task_graphs: 2 },
            ],
            0.02,
            7,
        );
        assert_eq!(curves.len(), 2);
        let ideal = &curves[0];
        let sharp = &curves[1];
        assert!(ideal.max_speedup() >= sharp.max_speedup() * 0.99);
        assert!(sharp.max_speedup() > 0.5 * ideal.max_speedup());
    }

    #[test]
    fn core_count_lists() {
        assert_eq!(hw_core_counts().last(), Some(&256));
        assert_eq!(nanos_core_counts().last(), Some(&32));
        assert_eq!(gaussian_core_counts().last(), Some(&64));
    }
}
