//! Plain-text table rendering for the figure/table benches.

/// A simple fixed-width text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:<width$}", h, width = widths[i]))
            .collect();
        out.push_str(&header_line.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(header_line.join("  ").len()));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .take(cols)
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats a floating-point speedup like the paper ("194.0x").
pub fn fmt_speedup(v: f64) -> String {
    format!("{v:.1}x")
}

/// Formats a percentage.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.0}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(vec!["short".into(), "1".into()]);
        t.row(vec!["a-much-longer-name".into(), "2.5".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("a-much-longer-name"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        // Every data line has the same prefix width for the first column.
        let lines: Vec<&str> = s.lines().collect();
        let col1_width = "a-much-longer-name".len();
        assert!(lines[3].find("1").unwrap() > col1_width);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_speedup(193.96), "194.0x");
        assert_eq!(fmt_pct(0.58), "58%");
    }
}
