//! Machine-readable benchmark baselines (`BENCH_<pr>.json`).
//!
//! The perf flywheel: `quick-report --json BENCH_n.json` records one
//! [`ScenarioRecord`] per tracked cluster scenario; the committed baseline of
//! the previous PR is loaded with [`Baseline::load`] and compared with
//! [`compare`], so "measurably faster" claims (and regressions) show up as
//! numbers, not anecdotes. The vendored `serde` facade is a no-op, so both the
//! writer and the reader are hand-rolled over a tiny JSON model ([`Json`]).
//!
//! Comparison semantics (see [`CompareConfig`]):
//!
//! * **makespan** is *simulated* time and deterministic within one binary; a
//!   relative tolerance (default ±15%) absorbs deliberate model changes
//!   between PRs. Drift beyond the tolerance fails the comparison.
//! * **events/sec** is wall-clock throughput and therefore machine-dependent;
//!   it is only checked against an absolute hard floor, generous enough for
//!   a loaded CI runner but low enough to catch an order-of-magnitude
//!   regression of the event engine.

use std::fmt::Write as _;
use std::path::Path;

/// One tracked scenario of a baseline run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRecord {
    /// Stable scenario key (scenarios are matched across baselines by name).
    pub name: String,
    /// Trace name the scenario ran.
    pub benchmark: String,
    /// Fabric name (e.g. `"fullmesh"`, `"racktiers-r2"`).
    pub topology: String,
    /// Placement-policy name.
    pub placement: String,
    /// Steal-policy name (`"off"` when disabled).
    pub stealing: String,
    /// Event-queue engine the run used.
    pub engine: String,
    /// Nodes simulated.
    pub nodes: u64,
    /// Worker cores per node.
    pub workers_per_node: u64,
    /// Tasks executed cluster-wide.
    pub tasks: u64,
    /// Simulated end-to-end makespan, microseconds.
    pub makespan_us: f64,
    /// Discrete events processed by the cluster event loop.
    pub sim_events: u64,
    /// Wall-clock milliseconds of the simulation call.
    pub wall_ms: f64,
    /// `sim_events / wall_seconds` — the engine's throughput.
    pub events_per_sec: f64,
    /// Descriptors stolen by idle nodes.
    pub steals: u64,
    /// Steal requests that found no eligible descriptor.
    pub steal_failures: u64,
    /// Link-words per fabric tier, in tier order (`(tier_name, words)`).
    pub link_words_per_tier: Vec<(String, u64)>,
    /// Median submit→retire latency, microseconds (service scenarios only).
    pub p50_us: Option<f64>,
    /// 99th-percentile latency, microseconds (service scenarios only).
    pub p99_us: Option<f64>,
    /// 99.9th-percentile latency, microseconds (service scenarios only).
    pub p999_us: Option<f64>,
    /// Source back-pressure episodes (service scenarios only).
    pub backpressure_events: Option<u64>,
}

/// One live-runtime (`nexus-rt`) smoke measurement: real threads executing a
/// trace, so every number here is **wall clock** and machine-dependent. The
/// record is informational — [`compare`] never fails on it (unlike the
/// simulated makespans, which are deterministic and tolerance-checked).
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeRecord {
    /// Trace name the runtime executed.
    pub benchmark: String,
    /// Steal-policy name (`"off"` when disabled).
    pub stealing: String,
    /// Runtime nodes (manager threads).
    pub nodes: u64,
    /// Worker threads per node.
    pub workers_per_node: u64,
    /// Tasks retired.
    pub tasks: u64,
    /// Wall-clock milliseconds from first submission to a drained barrier.
    pub wall_ms: f64,
    /// `tasks / wall_seconds` — live end-to-end task throughput.
    pub tasks_per_sec: f64,
    /// Descriptors stolen between the live nodes.
    pub steals: u64,
}

/// A full baseline file: the tracked scenarios of one PR.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// PR number the baseline was recorded by (`BENCH_<pr>.json`).
    pub pr: u64,
    /// Workload scale the scenarios ran at.
    pub scale: f64,
    /// The recorded scenarios.
    pub scenarios: Vec<ScenarioRecord>,
    /// The live-runtime smoke record, when the run included one. Optional so
    /// baselines recorded before `nexus-rt` existed still parse.
    pub runtime: Option<RuntimeRecord>,
}

impl Baseline {
    /// Schema tag written into every baseline file.
    pub const SCHEMA: &'static str = "nexus-bench-baseline";
    /// Current schema version.
    pub const VERSION: u64 = 1;

    /// Serializes the baseline as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut scenarios = Vec::with_capacity(self.scenarios.len());
        for s in &self.scenarios {
            let tiers = Json::Obj(
                s.link_words_per_tier
                    .iter()
                    .map(|(name, words)| (name.clone(), Json::Num(*words as f64)))
                    .collect(),
            );
            scenarios.push(Json::Obj(vec![
                ("name".into(), Json::Str(s.name.clone())),
                ("benchmark".into(), Json::Str(s.benchmark.clone())),
                ("topology".into(), Json::Str(s.topology.clone())),
                ("placement".into(), Json::Str(s.placement.clone())),
                ("stealing".into(), Json::Str(s.stealing.clone())),
                ("engine".into(), Json::Str(s.engine.clone())),
                ("nodes".into(), Json::Num(s.nodes as f64)),
                (
                    "workers_per_node".into(),
                    Json::Num(s.workers_per_node as f64),
                ),
                ("tasks".into(), Json::Num(s.tasks as f64)),
                ("makespan_us".into(), Json::Num(s.makespan_us)),
                ("sim_events".into(), Json::Num(s.sim_events as f64)),
                ("wall_ms".into(), Json::Num(s.wall_ms)),
                ("events_per_sec".into(), Json::Num(s.events_per_sec)),
                ("steals".into(), Json::Num(s.steals as f64)),
                ("steal_failures".into(), Json::Num(s.steal_failures as f64)),
                ("link_words_per_tier".into(), tiers),
            ]));
            // Service-mode fields are optional: batch scenarios omit them, so
            // baselines from before the streaming subsystem stay comparable.
            let Some(Json::Obj(pairs)) = scenarios.last_mut() else {
                unreachable!("scenario just pushed as an object");
            };
            if let Some(p50) = s.p50_us {
                pairs.push(("p50_us".into(), Json::Num(p50)));
            }
            if let Some(p99) = s.p99_us {
                pairs.push(("p99_us".into(), Json::Num(p99)));
            }
            if let Some(p999) = s.p999_us {
                pairs.push(("p999_us".into(), Json::Num(p999)));
            }
            if let Some(bp) = s.backpressure_events {
                pairs.push(("backpressure_events".into(), Json::Num(bp as f64)));
            }
        }
        let mut root_pairs = vec![
            ("schema".into(), Json::Str(Self::SCHEMA.into())),
            ("version".into(), Json::Num(Self::VERSION as f64)),
            ("pr".into(), Json::Num(self.pr as f64)),
            ("scale".into(), Json::Num(self.scale)),
            ("scenarios".into(), Json::Arr(scenarios)),
        ];
        if let Some(rt) = &self.runtime {
            root_pairs.push((
                "runtime".into(),
                Json::Obj(vec![
                    ("benchmark".into(), Json::Str(rt.benchmark.clone())),
                    ("stealing".into(), Json::Str(rt.stealing.clone())),
                    ("nodes".into(), Json::Num(rt.nodes as f64)),
                    (
                        "workers_per_node".into(),
                        Json::Num(rt.workers_per_node as f64),
                    ),
                    ("tasks".into(), Json::Num(rt.tasks as f64)),
                    ("wall_ms".into(), Json::Num(rt.wall_ms)),
                    ("tasks_per_sec".into(), Json::Num(rt.tasks_per_sec)),
                    ("steals".into(), Json::Num(rt.steals as f64)),
                ]),
            ));
        }
        let root = Json::Obj(root_pairs);
        let mut out = String::new();
        root.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Parses a baseline from its JSON text.
    pub fn from_json(text: &str) -> Result<Baseline, String> {
        let root = Json::parse(text)?;
        if root.get("schema").and_then(Json::as_str) != Some(Self::SCHEMA) {
            return Err(format!("not a {} file", Self::SCHEMA));
        }
        let scenarios = root
            .get("scenarios")
            .and_then(Json::as_arr)
            .ok_or("missing \"scenarios\" array")?
            .iter()
            .map(ScenarioRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let runtime = match root.get("runtime") {
            Some(v) => Some(RuntimeRecord::from_json(v)?),
            None => None,
        };
        Ok(Baseline {
            pr: root.get("pr").and_then(Json::as_u64).unwrap_or(0),
            scale: root.get("scale").and_then(Json::as_f64).unwrap_or(0.0),
            scenarios,
            runtime,
        })
    }

    /// Loads and parses a baseline file.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Writes the baseline file (pretty JSON, trailing newline).
    pub fn store(&self, path: &Path) -> Result<(), String> {
        std::fs::write(path, self.to_json())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))
    }
}

impl ScenarioRecord {
    fn from_json(v: &Json) -> Result<ScenarioRecord, String> {
        let str_field = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("scenario missing string field {k:?}"))
        };
        let num_field = |k: &str| -> Result<f64, String> {
            v.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("scenario missing numeric field {k:?}"))
        };
        let tiers = match v.get("link_words_per_tier") {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .map(|(name, words)| {
                    words
                        .as_u64()
                        .map(|w| (name.clone(), w))
                        .ok_or_else(|| format!("tier {name:?} has a non-numeric word count"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => Vec::new(),
        };
        Ok(ScenarioRecord {
            name: str_field("name")?,
            benchmark: str_field("benchmark")?,
            topology: str_field("topology")?,
            placement: str_field("placement")?,
            stealing: str_field("stealing")?,
            engine: str_field("engine")?,
            nodes: num_field("nodes")? as u64,
            workers_per_node: num_field("workers_per_node")? as u64,
            tasks: num_field("tasks")? as u64,
            makespan_us: num_field("makespan_us")?,
            sim_events: num_field("sim_events")? as u64,
            wall_ms: num_field("wall_ms")?,
            events_per_sec: num_field("events_per_sec")?,
            steals: num_field("steals")? as u64,
            steal_failures: num_field("steal_failures")? as u64,
            link_words_per_tier: tiers,
            p50_us: v.get("p50_us").and_then(Json::as_f64),
            p99_us: v.get("p99_us").and_then(Json::as_f64),
            p999_us: v.get("p999_us").and_then(Json::as_f64),
            backpressure_events: v.get("backpressure_events").and_then(Json::as_u64),
        })
    }
}

impl RuntimeRecord {
    fn from_json(v: &Json) -> Result<RuntimeRecord, String> {
        let str_field = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("runtime record missing string field {k:?}"))
        };
        let num_field = |k: &str| -> Result<f64, String> {
            v.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("runtime record missing numeric field {k:?}"))
        };
        Ok(RuntimeRecord {
            benchmark: str_field("benchmark")?,
            stealing: str_field("stealing")?,
            nodes: num_field("nodes")? as u64,
            workers_per_node: num_field("workers_per_node")? as u64,
            tasks: num_field("tasks")? as u64,
            wall_ms: num_field("wall_ms")?,
            tasks_per_sec: num_field("tasks_per_sec")?,
            steals: num_field("steals")? as u64,
        })
    }
}

/// Tolerances applied by [`compare`].
#[derive(Debug, Clone, Copy)]
pub struct CompareConfig {
    /// Allowed relative drift of the simulated makespan (0.15 = ±15%).
    pub makespan_tolerance: f64,
    /// Hard floor on wall-clock events/sec (absolute; machine-dependent, so
    /// keep it an order of magnitude below healthy throughput).
    pub min_events_per_sec: f64,
}

impl Default for CompareConfig {
    fn default() -> Self {
        CompareConfig {
            makespan_tolerance: 0.15,
            min_events_per_sec: 100_000.0,
        }
    }
}

/// The per-scenario result of a baseline comparison.
#[derive(Debug, Clone)]
pub struct ScenarioDelta {
    /// Scenario name.
    pub name: String,
    /// `current / prior` makespan ratio (`None` when the scenario is new).
    pub makespan_ratio: Option<f64>,
    /// `current / prior` events-per-sec ratio (`None` when the scenario is
    /// new). Informational: wall clock is machine-dependent.
    pub events_per_sec_ratio: Option<f64>,
    /// Human-readable findings; empty when the scenario is clean.
    pub failures: Vec<String>,
}

/// The result of comparing a current run against a prior baseline.
#[derive(Debug, Clone)]
pub struct CompareReport {
    /// Per-scenario deltas, in current-run order.
    pub deltas: Vec<ScenarioDelta>,
    /// Scenarios present in the prior baseline but missing from the current
    /// run (each is a failure: a tracked scenario silently disappeared).
    pub missing: Vec<String>,
}

impl CompareReport {
    /// True when no scenario regressed and none disappeared.
    pub fn is_ok(&self) -> bool {
        self.missing.is_empty() && self.deltas.iter().all(|d| d.failures.is_empty())
    }

    /// Multi-line human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.deltas {
            let ratio = |r: Option<f64>| match r {
                Some(r) => format!("{:+.1}%", (r - 1.0) * 100.0),
                None => "new".into(),
            };
            let _ = writeln!(
                out,
                "  {:<44} makespan {:>7}  events/sec {:>7}  {}",
                d.name,
                ratio(d.makespan_ratio),
                ratio(d.events_per_sec_ratio),
                if d.failures.is_empty() {
                    "ok".to_string()
                } else {
                    d.failures.join("; ")
                }
            );
        }
        for name in &self.missing {
            let _ = writeln!(out, "  {name:<44} MISSING from current run");
        }
        out
    }
}

/// Compares a current run against a prior baseline under `cfg` (scenarios
/// matched by name).
pub fn compare(current: &Baseline, prior: &Baseline, cfg: &CompareConfig) -> CompareReport {
    let mut deltas = Vec::with_capacity(current.scenarios.len());
    for cur in &current.scenarios {
        let mut failures = Vec::new();
        let old = prior.scenarios.iter().find(|s| s.name == cur.name);
        let makespan_ratio = old.map(|o| cur.makespan_us / o.makespan_us);
        if let Some(r) = makespan_ratio {
            if (r - 1.0).abs() > cfg.makespan_tolerance {
                failures.push(format!(
                    "makespan drifted {:+.1}% (tolerance ±{:.0}%)",
                    (r - 1.0) * 100.0,
                    cfg.makespan_tolerance * 100.0
                ));
            }
        }
        // p99 latency of service scenarios: same relative tolerance as the
        // makespan, only checked when both sides recorded it.
        if let (Some(cur_p99), Some(old_p99)) =
            (cur.p99_us, old.and_then(|o| o.p99_us).filter(|&p| p > 0.0))
        {
            let r = cur_p99 / old_p99;
            if (r - 1.0).abs() > cfg.makespan_tolerance {
                failures.push(format!(
                    "p99 latency drifted {:+.1}% (tolerance ±{:.0}%)",
                    (r - 1.0) * 100.0,
                    cfg.makespan_tolerance * 100.0
                ));
            }
        }
        if cur.events_per_sec < cfg.min_events_per_sec {
            failures.push(format!(
                "events/sec {:.0} below the hard floor {:.0}",
                cur.events_per_sec, cfg.min_events_per_sec
            ));
        }
        deltas.push(ScenarioDelta {
            name: cur.name.clone(),
            makespan_ratio,
            events_per_sec_ratio: old.map(|o| cur.events_per_sec / o.events_per_sec),
            failures,
        });
    }
    let missing = prior
        .scenarios
        .iter()
        .filter(|o| !current.scenarios.iter().any(|c| c.name == o.name))
        .map(|o| o.name.clone())
        .collect();
    CompareReport { deltas, missing }
}

/// A minimal JSON value — just enough for the baseline schema (the vendored
/// `serde` facade is a no-op, so this crate carries its own reader/writer).
/// Objects preserve key order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer (rounded).
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|v| v.max(0.0).round() as u64)
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            Json::Obj(pairs) if pairs.is_empty() => out.push_str("{}"),
            Json::Obj(pairs) => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }

    /// Parses a JSON document (must be a single value, whitespace aside).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn write_number(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (JSON strings are valid UTF-8 by
                    // construction — the input is a Rust `&str`).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8")?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &str, makespan_us: f64, eps: f64) -> ScenarioRecord {
        ScenarioRecord {
            name: name.into(),
            benchmark: "dist-sparselu".into(),
            topology: "fullmesh".into(),
            placement: "xorhash".into(),
            stealing: "off".into(),
            engine: "calendar".into(),
            nodes: 8,
            workers_per_node: 8,
            tasks: 1120,
            makespan_us,
            sim_events: 9000,
            wall_ms: 3.5,
            events_per_sec: eps,
            steals: 0,
            steal_failures: 0,
            link_words_per_tier: vec![("hop".into(), 12345)],
            p50_us: None,
            p99_us: None,
            p999_us: None,
            backpressure_events: None,
        }
    }

    fn baseline(scenarios: Vec<ScenarioRecord>) -> Baseline {
        Baseline {
            pr: 6,
            scale: 0.01,
            scenarios,
            runtime: None,
        }
    }

    #[test]
    fn json_roundtrip_preserves_every_field() {
        let b = baseline(vec![
            record("a", 111_271.0, 2.5e6),
            record("b \"quoted\"\n", 0.5, 1.0),
        ]);
        let text = b.to_json();
        let back = Baseline::from_json(&text).unwrap();
        assert_eq!(b, back);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Baseline::from_json("{}").is_err());
        assert!(Baseline::from_json("{\"schema\": \"other\"}").is_err());
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("1 2").is_err());
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let v = Json::parse(r#"{"k": ["A\n", {"x": -1.5e3}, true, null]}"#).unwrap();
        let arr = v.get("k").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_str(), Some("A\n"));
        assert_eq!(arr[1].get("x").and_then(Json::as_f64), Some(-1500.0));
        assert_eq!(arr[2], Json::Bool(true));
        assert_eq!(arr[3], Json::Null);
    }

    #[test]
    fn comparator_accepts_drift_within_tolerance() {
        let prior = baseline(vec![record("a", 100.0, 2.0e6)]);
        let current = baseline(vec![record("a", 110.0, 1.8e6)]);
        let report = compare(&current, &prior, &CompareConfig::default());
        assert!(report.is_ok(), "{}", report.render());
        assert!((report.deltas[0].makespan_ratio.unwrap() - 1.1).abs() < 1e-12);
    }

    #[test]
    fn comparator_flags_makespan_drift_and_slow_engines() {
        let prior = baseline(vec![record("a", 100.0, 2.0e6), record("gone", 1.0, 1.0e6)]);
        let current = baseline(vec![record("a", 130.0, 50_000.0)]);
        let report = compare(&current, &prior, &CompareConfig::default());
        assert!(!report.is_ok());
        assert_eq!(report.deltas[0].failures.len(), 2, "{}", report.render());
        assert_eq!(report.missing, vec!["gone".to_string()]);
    }

    #[test]
    fn service_fields_roundtrip_and_are_optional() {
        let mut svc = record("service", 100.0, 2.0e6);
        svc.p50_us = Some(55.5);
        svc.p99_us = Some(480.0);
        svc.p999_us = Some(900.25);
        svc.backpressure_events = Some(17);
        let b = baseline(vec![record("batch", 10.0, 2.0e6), svc]);
        let text = b.to_json();
        // Batch scenarios carry no service keys at all.
        assert_eq!(text.matches("p99_us").count(), 1);
        let back = Baseline::from_json(&text).unwrap();
        assert_eq!(b, back);
    }

    #[test]
    fn comparator_flags_p99_drift_only_when_both_sides_have_it() {
        let mut old = record("svc", 100.0, 2.0e6);
        old.p99_us = Some(100.0);
        let mut bad = record("svc", 100.0, 2.0e6);
        bad.p99_us = Some(200.0);
        let report = compare(
            &baseline(vec![bad]),
            &baseline(vec![old.clone()]),
            &CompareConfig::default(),
        );
        assert!(!report.is_ok());
        assert!(report.deltas[0].failures[0].contains("p99"));
        // A prior baseline without the field cannot fail the check.
        let mut cur = record("svc", 100.0, 2.0e6);
        cur.p99_us = Some(200.0);
        let report = compare(
            &baseline(vec![cur]),
            &baseline(vec![record("svc", 100.0, 2.0e6)]),
            &CompareConfig::default(),
        );
        assert!(report.is_ok(), "{}", report.render());
    }

    #[test]
    fn runtime_record_roundtrips_and_stays_optional() {
        let mut b = baseline(vec![record("a", 100.0, 2.0e6)]);
        // Without a runtime record the key is absent entirely, so baselines
        // from before nexus-rt parse unchanged.
        assert!(!b.to_json().contains("runtime"));
        b.runtime = Some(RuntimeRecord {
            benchmark: "dist-imbalanced".into(),
            stealing: "steal".into(),
            nodes: 4,
            workers_per_node: 2,
            tasks: 480,
            wall_ms: 12.5,
            tasks_per_sec: 38_400.0,
            steals: 37,
        });
        let text = b.to_json();
        let back = Baseline::from_json(&text).unwrap();
        assert_eq!(b, back);
        // The live numbers are informational: the comparator never fails on
        // them, even against a prior baseline without a record.
        let report = compare(
            &back,
            &baseline(vec![record("a", 100.0, 2.0e6)]),
            &CompareConfig::default(),
        );
        assert!(report.is_ok(), "{}", report.render());
    }

    #[test]
    fn new_scenarios_pass_without_a_prior_entry() {
        let prior = baseline(vec![]);
        let current = baseline(vec![record("brand-new", 10.0, 2.0e6)]);
        let report = compare(&current, &prior, &CompareConfig::default());
        assert!(report.is_ok());
        assert_eq!(report.deltas[0].makespan_ratio, None);
    }
}
