//! `quick-report` — a fast end-to-end sanity run of the whole evaluation.
//!
//! Runs every Table II benchmark at a small scale under the four Fig. 8
//! managers on a few core counts and prints measured vs. paper maximum
//! speedups. Useful as a smoke test before launching the full `cargo bench`
//! reproduction, and as a quickstart demonstration of the library.
//!
//! ```text
//! cargo run --release -p nexus-bench --bin quick-report
//! NEXUS_BENCH_SCALE=0.3 cargo run --release -p nexus-bench --bin quick-report
//! ```
//!
//! ## Baseline mode (the perf flywheel)
//!
//! * `--json <path>` — additionally run the tracked baseline scenarios and
//!   write a machine-readable `BENCH_<pr>.json` (see `nexus_bench::baseline`).
//! * `--compare <path>` — compare the tracked scenarios against a committed
//!   baseline; exits non-zero on regression.
//! * `--tolerance <frac>` — makespan drift tolerance for `--compare`
//!   (default 0.15 = ±15%).
//! * `--min-events-per-sec <n>` — hard wall-clock throughput floor for
//!   `--compare` (default 100000).
//! * `--baseline-only` — skip the human-readable report tables and only run
//!   the baseline scenarios (what CI uses).
//! * `--list-scenarios` — print the tracked scenario names and their trace
//!   seeds (so baseline diffs are explainable without reading source) and
//!   exit.
//!
//! ## Trace export (observability)
//!
//! * `--trace-out <path>` — additionally run one traced scenario (the skewed
//!   imbalanced trace under most-loaded stealing, so steals and flow arrows
//!   appear) and write its span log to `<path>`: Chrome-trace JSON by
//!   default (load it in Perfetto or `chrome://tracing`), or a text timeline
//!   with `NEXUS_TRACE=text`. The written JSON is parsed back and its
//!   complete-span count is checked against the retired-task count — a
//!   mismatch exits non-zero.
//! * `NEXUS_TRACE=off|chrome|text` — export format (default `chrome` when a
//!   path is given); `NEXUS_TRACE_OUT=<path>` — env equivalent of
//!   `--trace-out`.

use nexus_bench::baseline::{
    compare, Baseline, CompareConfig, Json, RuntimeRecord, ScenarioRecord,
};
use nexus_bench::managers::ManagerKind;
use nexus_bench::paper::table4_row;
use nexus_bench::report::{fmt_speedup, Table};
use nexus_bench::runner::{
    admit_depth, bench_scale, cluster_feedback, cluster_link, cluster_policy, cluster_steal,
    cluster_topology, curves_for, event_engine, rt_nodes, rt_workers, service_arrival, trace_mode,
    trace_out, TraceMode,
};
use nexus_cluster::{
    simulate_cluster, simulate_cluster_traced, AdmissionConfig, ClusterConfig, ClusterDriver,
    ClusterOutcome, FeedbackKind, MemRecorder, PolicyKind, StealKind, TimeBase, Topology,
};
use nexus_core::NexusSharp;
use nexus_flow::{simulate_service, ArrivalConfig, ArrivalKind, ServiceConfig};
use nexus_obs::{chrome_trace, text_timeline};
use nexus_sim::SimDuration;
use nexus_trace::generators::distributed;
use nexus_trace::{Benchmark, Trace};
use std::time::Instant;

/// Command-line options of `quick-report` (all optional; see the module docs).
#[derive(Default)]
struct Options {
    json_out: Option<std::path::PathBuf>,
    compare_with: Option<std::path::PathBuf>,
    tolerance: Option<f64>,
    min_events_per_sec: Option<f64>,
    baseline_only: bool,
    list_scenarios: bool,
    trace_out: Option<std::path::PathBuf>,
}

fn parse_args() -> Options {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    let missing = |flag: &str| -> ! {
        eprintln!("error: {flag} needs a value");
        std::process::exit(2);
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => {
                opts.json_out = Some(args.next().unwrap_or_else(|| missing("--json")).into());
            }
            "--compare" => {
                opts.compare_with =
                    Some(args.next().unwrap_or_else(|| missing("--compare")).into());
            }
            "--tolerance" => {
                let raw = args.next().unwrap_or_else(|| missing("--tolerance"));
                opts.tolerance = Some(raw.parse().unwrap_or_else(|_| {
                    eprintln!("error: --tolerance: unparsable fraction {raw:?}");
                    std::process::exit(2);
                }));
            }
            "--min-events-per-sec" => {
                let raw = args
                    .next()
                    .unwrap_or_else(|| missing("--min-events-per-sec"));
                opts.min_events_per_sec = Some(raw.parse().unwrap_or_else(|_| {
                    eprintln!("error: --min-events-per-sec: unparsable number {raw:?}");
                    std::process::exit(2);
                }));
            }
            "--baseline-only" => opts.baseline_only = true,
            "--list-scenarios" => opts.list_scenarios = true,
            "--trace-out" => {
                opts.trace_out = Some(args.next().unwrap_or_else(|| missing("--trace-out")).into());
            }
            other => {
                eprintln!(
                    "error: unknown argument {other:?} (valid: --json <path>, --compare <path>, \
                     --tolerance <frac>, --min-events-per-sec <n>, --baseline-only, \
                     --list-scenarios, --trace-out <path>)"
                );
                std::process::exit(2);
            }
        }
    }
    opts
}

fn main() {
    let opts = parse_args();
    // Validate every environment knob up front: a typo aborts loudly (exit 2,
    // listing the valid values) before any simulation runs, whatever flags
    // were passed.
    let _ = cluster_link();
    let _ = cluster_policy();
    let _ = cluster_steal();
    let _ = cluster_feedback();
    let _ = cluster_topology();
    let _ = event_engine();
    let _ = service_arrival();
    let _ = admit_depth();
    let _ = bench_scale();
    let _ = rt_workers();
    let _ = rt_nodes();
    let trace_request = trace_request(&opts);
    if opts.list_scenarios {
        list_scenarios();
        return;
    }
    if !opts.baseline_only {
        report_tables();
    }
    if let Some((mode, path)) = &trace_request {
        export_trace(*mode, path);
    }
    if opts.json_out.is_none() && opts.compare_with.is_none() {
        return;
    }
    let current = run_baseline_scenarios();
    if let Some(path) = &opts.json_out {
        if let Err(e) = current.store(path) {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
        println!("baseline written to {}", path.display());
    }
    if let Some(path) = &opts.compare_with {
        let prior = Baseline::load(path).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        });
        let mut cfg = CompareConfig::default();
        if let Some(t) = opts.tolerance {
            cfg.makespan_tolerance = t;
        }
        if let Some(f) = opts.min_events_per_sec {
            cfg.min_events_per_sec = f;
        }
        let report = compare(&current, &prior, &cfg);
        println!(
            "baseline comparison vs {} (PR {}, ±{:.0}% makespan, ≥{:.0} ev/s):",
            path.display(),
            prior.pr,
            cfg.makespan_tolerance * 100.0,
            cfg.min_events_per_sec
        );
        print!("{}", report.render());
        if !report.is_ok() {
            eprintln!("error: baseline regression detected");
            std::process::exit(1);
        }
    }
}

/// Resolves the trace-export request from the knobs and flags, up front so
/// an inconsistent request aborts before any simulation runs: `None` when
/// tracing is off, the effective `(mode, path)` otherwise (`--trace-out`
/// beats `NEXUS_TRACE_OUT`; a path with no explicit mode means Chrome).
fn trace_request(opts: &Options) -> Option<(TraceMode, std::path::PathBuf)> {
    let mode = trace_mode();
    let path = opts
        .trace_out
        .clone()
        .or_else(|| trace_out().map(std::path::PathBuf::from));
    let Some(path) = path else {
        if mode != TraceMode::Off {
            eprintln!(
                "error: NEXUS_TRACE: trace mode set but no output path \
                 (pass --trace-out <path> or set NEXUS_TRACE_OUT)"
            );
            std::process::exit(2);
        }
        return None;
    };
    let mode = if mode == TraceMode::Off {
        TraceMode::Chrome
    } else {
        mode
    };
    Some((mode, path))
}

/// Runs the traced scenario and writes its span log to `path` (see
/// [`trace_request`] and the module docs).
///
/// The scenario is the skewed imbalanced trace under most-loaded stealing —
/// chosen because it exercises every span kind: forwards, steals, multi-hop
/// link traffic and cross-node retirements. Chrome output is parsed back and
/// validated (one complete span per retired task) before the function
/// returns, so CI can treat a zero exit as "the trace is loadable".
fn export_trace(mode: TraceMode, path: &std::path::Path) {
    let trace = distributed::imbalanced(4, 160, 6.0, SimDuration::from_us(50), 0.0, 42);
    let cfg = ClusterConfig::new(4, 8)
        .with_link(cluster_link())
        .with_stealing(StealKind::MostLoaded)
        .with_engine(event_engine());
    let mut rec = MemRecorder::new(TimeBase::VirtualPs);
    let out = simulate_cluster_traced(&trace, &cfg, |_| NexusSharp::paper(6), &mut rec);

    let body = match mode {
        TraceMode::Chrome => chrome_trace(&rec),
        TraceMode::Text => text_timeline(&rec),
        TraceMode::Off => unreachable!("defaulted to chrome above"),
    };
    if let Err(e) = std::fs::write(path, &body) {
        eprintln!("error: --trace-out: cannot write {}: {e}", path.display());
        std::process::exit(2);
    }

    if mode == TraceMode::Chrome {
        // Parse the file we just wrote and check the span census: exactly one
        // "X" (complete) event per retired task.
        let parsed = Json::parse(&body).unwrap_or_else(|e| {
            eprintln!("error: trace output is not valid JSON: {e}");
            std::process::exit(1);
        });
        let spans = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .map(|events| {
                events
                    .iter()
                    .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
                    .count() as u64
            })
            .unwrap_or(0);
        if spans != out.tasks {
            eprintln!(
                "error: trace span census mismatch: {spans} complete spans for {} retired tasks",
                out.tasks
            );
            std::process::exit(1);
        }
        println!(
            "trace written to {} ({} span events, {} complete spans, {} steals)",
            path.display(),
            rec.len(),
            spans,
            out.steals
        );
    } else {
        println!(
            "trace timeline written to {} ({} span events, {} steals)",
            path.display(),
            rec.len(),
            out.steals
        );
    }
}

/// The PR number stamped into freshly written baselines.
const BASELINE_PR: u64 = 10;
/// The workload scale of the tracked scenarios — fixed (independent of
/// `NEXUS_BENCH_SCALE`) so baselines are comparable across runs.
const BASELINE_SCALE: f64 = 0.01;

/// The tracked baseline scenarios: name + the seed of the generated trace
/// (also the arrival seed of the service scenario). Kept in sync with
/// [`run_baseline_scenarios`] by an assertion there.
const TRACKED_SCENARIOS: &[(&str, u64)] = &[
    ("sparselu-8d-r0.0-n1-mesh", 42),
    ("sparselu-8d-r0.0-n8-mesh", 42),
    ("sparselu-8d-r0.5-n8-mesh", 42),
    ("sparselu-8d-r0.5-n8-racktiers-topo-hier", 42),
    ("imbalanced-4n-mostloaded", 42),
    ("feedback-imbalanced-n4", 42),
    ("service-poisson-n4-depth16", 42),
];

/// Prints the tracked scenario names and trace seeds (`--list-scenarios`).
fn list_scenarios() {
    println!("tracked baseline scenarios (workload scale {BASELINE_SCALE}):");
    for (name, seed) in TRACKED_SCENARIOS {
        println!("  {name}  seed={seed}");
    }
}

/// Runs the tracked baseline scenarios (fixed traces, fixed seeds, fixed
/// configs — the simulated outcomes are fully deterministic; only the
/// wall-clock fields vary between machines).
fn run_baseline_scenarios() -> Baseline {
    let engine = event_engine();
    let base_record =
        |name: &str, out: &ClusterOutcome, wall: std::time::Duration| -> ScenarioRecord {
            eprintln!("  [baseline {name}] {wall:?}, {} events", out.sim_events);
            ScenarioRecord {
                name: name.into(),
                benchmark: out.benchmark.clone(),
                topology: out.topology.clone(),
                placement: out.placement.clone(),
                stealing: out.stealing.clone(),
                engine: engine.name().into(),
                nodes: out.nodes as u64,
                workers_per_node: out.workers_per_node as u64,
                tasks: out.tasks,
                makespan_us: out.makespan.as_us_f64(),
                sim_events: out.sim_events,
                wall_ms: wall.as_secs_f64() * 1e3,
                events_per_sec: out.sim_events as f64 / wall.as_secs_f64().max(1e-9),
                steals: out.steals,
                steal_failures: out.steal_failures,
                link_words_per_tier: out
                    .link
                    .per_tier
                    .iter()
                    .map(|t| (t.name.clone(), t.words))
                    .collect(),
                p50_us: None,
                p99_us: None,
                p999_us: None,
                backpressure_events: None,
            }
        };
    let record = |name: &str, trace: &Trace, cfg: ClusterConfig| -> ScenarioRecord {
        let t0 = Instant::now();
        let out: ClusterOutcome = simulate_cluster(trace, &cfg, |_| NexusSharp::paper(6));
        base_record(name, &out, t0.elapsed())
    };
    let cfg = |nodes: usize| ClusterConfig::new(nodes, 8).with_engine(engine);
    let sparselu = |remote: f64| distributed::sparselu(8, remote, 42, BASELINE_SCALE);
    let local = sparselu(0.0);
    let halo = sparselu(0.5);
    let skewed = distributed::imbalanced(4, 160, 6.0, SimDuration::from_us(50), 0.0, 42);
    let scenarios = vec![
        record("sparselu-8d-r0.0-n1-mesh", &local, cfg(1)),
        record("sparselu-8d-r0.0-n8-mesh", &local, cfg(8)),
        record("sparselu-8d-r0.5-n8-mesh", &halo, cfg(8)),
        record(
            "sparselu-8d-r0.5-n8-racktiers-topo-hier",
            &halo,
            cfg(8)
                .with_link(cluster_link().with_topology(Topology::RackTiers))
                .with_placement(PolicyKind::TopologyAware)
                .with_stealing(StealKind::Hierarchical),
        ),
        record(
            "imbalanced-4n-mostloaded",
            &skewed,
            cfg(4).with_stealing(StealKind::MostLoaded),
        ),
        {
            // The feedback scenario skews serial dependence chains onto node
            // 0 (36/6/1/1 chains of 16 links — stealing only ever sees the
            // eligible heads, so idle nodes must reclaim the blocked tails).
            // Tracks the full feedback stack: digests, live placement and
            // pool reclamation. Fixed size, like every tracked scenario.
            let chains = distributed::chained_imbalanced(4, 36, 16, 6.0, SimDuration::from_us(20));
            record(
                "feedback-imbalanced-n4",
                &chains,
                cfg(4)
                    .with_placement(PolicyKind::TopologyAware)
                    .with_stealing(StealKind::Hierarchical)
                    .with_feedback(FeedbackKind::Full),
            )
        },
        {
            // The service scenario is pinned to Poisson arrivals at depth 16 —
            // NOT the NEXUS_ARRIVAL / NEXUS_ADMIT_DEPTH knobs — so the
            // baseline stays comparable across runs.
            let name = "service-poisson-n4-depth16";
            let trace = distributed::sparselu(4, 0.3, 42, BASELINE_SCALE);
            let service = ServiceConfig::new(ArrivalConfig::new(
                ArrivalKind::Poisson,
                SimDuration::from_us(40),
                42,
            ))
            .with_admission(AdmissionConfig::new(16));
            let t0 = Instant::now();
            let out = simulate_service(&trace, &service, &cfg(4), |_| NexusSharp::paper(6));
            let mut rec = base_record(name, &out.stream.cluster, t0.elapsed());
            rec.p50_us = Some(out.p50().as_us_f64());
            rec.p99_us = Some(out.p99().as_us_f64());
            rec.p999_us = Some(out.p999().as_us_f64());
            rec.backpressure_events = Some(out.backpressure_events());
            rec
        },
    ];
    assert_eq!(
        scenarios
            .iter()
            .map(|s| s.name.as_str())
            .collect::<Vec<_>>(),
        TRACKED_SCENARIOS
            .iter()
            .map(|(n, _)| *n)
            .collect::<Vec<_>>(),
        "TRACKED_SCENARIOS is out of sync with run_baseline_scenarios"
    );
    Baseline {
        pr: BASELINE_PR,
        scale: BASELINE_SCALE,
        scenarios,
        runtime: Some(runtime_record()),
    }
}

/// Runs the live-runtime smoke workload: `nexus-rt` executing a skewed
/// imbalanced trace on real threads (`NEXUS_RT_NODES` manager threads ×
/// `NEXUS_RT_WORKERS` workers each) under most-loaded stealing. Every number
/// is wall clock, so the record is informational — recorded in the baseline
/// but never compared (unlike the simulated makespans).
fn runtime_record() -> RuntimeRecord {
    let nodes = rt_nodes();
    let workers = rt_workers();
    let stealing = StealKind::MostLoaded;
    let trace = distributed::imbalanced(nodes, 120, 4.0, SimDuration::from_us(30), 0.2, 42);
    let cfg = nexus_rt::RtConfig::new(nodes, workers).with_stealing(stealing);
    let mut rt = nexus_rt::ClusterRuntime::new(cfg);
    let handle = rt.start();
    let t0 = Instant::now();
    let run = handle
        .run_trace(&trace)
        .expect("live runtime shut down mid-replay");
    let wall = t0.elapsed();
    let stats = handle.node_stats();
    let report = rt.shutdown_timeout(std::time::Duration::from_secs(60));
    assert_eq!(report.pending, 0, "live runtime failed to drain");
    eprintln!(
        "  [runtime {}] {wall:?}, {} tasks on {nodes}x{workers} threads",
        trace.name, run.retired
    );
    RuntimeRecord {
        benchmark: trace.name.clone(),
        stealing: stealing.build().name().into(),
        nodes: nodes as u64,
        workers_per_node: workers as u64,
        tasks: run.retired,
        wall_ms: wall.as_secs_f64() * 1e3,
        tasks_per_sec: run.retired as f64 / wall.as_secs_f64().max(1e-9),
        steals: stats.iter().map(|s| s.stolen_in).sum(),
    }
}

fn report_tables() {
    let scale = bench_scale().min(0.05);
    println!(
        "quick-report: workload scale = {scale} (set NEXUS_BENCH_SCALE / NEXUS_FULL for more)\n"
    );
    let managers = ManagerKind::fig8_set();
    let mut table = Table::new(
        "Quick evaluation: max speedup (measured | paper Table IV)",
        &[
            "benchmark",
            "ideal",
            "Nanos",
            "Nanos(paper)",
            "Nexus++",
            "Nexus++(paper)",
            "Nexus# 6TG",
            "Nexus#(paper)",
        ],
    );

    for bench in Benchmark::table2_suite() {
        let t0 = Instant::now();
        let curves = curves_for(bench, &managers, scale, 42);
        let get = |label: &str| -> f64 {
            curves
                .iter()
                .find(|c| c.manager == label)
                .map(|c| c.max_speedup())
                .unwrap_or(f64::NAN)
        };
        let paper = table4_row(&bench.name());
        table.row(vec![
            bench.name(),
            fmt_speedup(get("ideal")),
            fmt_speedup(get("Nanos")),
            paper.map(|p| fmt_speedup(p.nanos_max)).unwrap_or_default(),
            fmt_speedup(get("Nexus++")),
            paper
                .map(|p| fmt_speedup(p.nexus_pp_max))
                .unwrap_or_default(),
            fmt_speedup(get("Nexus# 6TG")),
            paper
                .map(|p| fmt_speedup(p.nexus_sharp_max))
                .unwrap_or_default(),
        ]);
        eprintln!("  [{}] done in {:?}", bench.name(), t0.elapsed());
    }
    table.print();

    cluster_section();
    policy_section();
    topology_section();
    service_section();
    engine_profile_section();
    runtime_section();
}

/// Profiles the pluggable event engines on one 8-node run: per-event-kind
/// handler wall time plus queue pop/push/coalesce counters, calendar vs.
/// heap. This is the measurement behind the roadmap's claim that the
/// per-node manager model (the `master_step`/`pump` handlers), not the event
/// queue, dominates the 8-node hot path. Wall-clock numbers,
/// machine-dependent.
fn engine_profile_section() {
    let link = cluster_link();
    let trace = distributed::sparselu(8, 0.5, 42, 0.002);
    let mut table = Table::new(
        "Quick engine profile: dist-sparselu, 8 nodes, Nexus# 6TG per node",
        &[
            "engine",
            "events",
            "pops",
            "coalesced",
            "hottest event kinds (count, handler wall)",
        ],
    );
    for engine in [nexus_sim::EngineKind::Calendar, nexus_sim::EngineKind::Heap] {
        let cfg = ClusterConfig::new(8, 8).with_link(link).with_engine(engine);
        let driver = ClusterDriver::new(&cfg, |_| NexusSharp::paper(6));
        let (out, prof) = driver.run_profiled(&trace);
        // The three hottest handlers by accumulated wall time.
        let mut kinds: Vec<(String, u64, u64)> = prof
            .counters_with_prefix("engine.event.")
            .filter_map(|(key, wall)| {
                let kind = key.strip_suffix(".wall_ns")?.to_string();
                let count = prof.counter(&format!("{kind}.count"));
                Some((kind, count, wall))
            })
            .collect();
        kinds.sort_by_key(|&(_, _, wall)| std::cmp::Reverse(wall));
        let hottest = kinds
            .iter()
            .take(3)
            .map(|(kind, count, wall)| {
                let name = kind.strip_prefix("engine.event.").unwrap_or(kind);
                format!("{name} ({count}, {:.2} ms)", *wall as f64 / 1e6)
            })
            .collect::<Vec<_>>()
            .join("  ");
        table.row(vec![
            engine.name().into(),
            format!("{}", out.sim_events),
            format!("{}", prof.counter("engine.pops")),
            format!("{}", prof.counter("engine.inline_coalesced")),
            hottest,
        ]);
    }
    table.print();
}

/// The live-runtime smoke sample: the same placement/stealing policies, real
/// threads (see `nexus-rt`). Wall-clock numbers, machine-dependent.
fn runtime_section() {
    let r = runtime_record();
    let mut table = Table::new(
        "Quick runtime run: nexus-rt live threads (wall clock)",
        &[
            "trace",
            "stealing",
            "nodes",
            "workers",
            "tasks",
            "wall ms",
            "tasks/sec",
            "steals",
        ],
    );
    table.row(vec![
        r.benchmark.clone(),
        r.stealing.clone(),
        format!("{}", r.nodes),
        format!("{}", r.workers_per_node),
        format!("{}", r.tasks),
        format!("{:.1}", r.wall_ms),
        format!("{:.0}", r.tasks_per_sec),
        format!("{}", r.steals),
    ]);
    table.print();
}

/// A small cluster-scalability sample: a 4-domain partitioned sparselu under
/// Nexus# (6 TGs) per node, at low and full halo coupling.
fn cluster_section() {
    let link = cluster_link();
    let mut table = Table::new(
        "Quick cluster run: dist-sparselu, Nexus# 6TG per node, 8 workers/node",
        &["nodes", "coupling", "makespan", "speedup", "notifications"],
    );
    for &remote in &[0.05, 1.0] {
        let trace = distributed::sparselu(4, remote, 42, 0.002);
        for &nodes in &[1usize, 2, 4] {
            let cfg = ClusterConfig::new(nodes, 8).with_link(link);
            let out = simulate_cluster(&trace, &cfg, |_| NexusSharp::paper(6));
            table.row(vec![
                format!("{nodes}"),
                format!("{:.0}%", remote * 100.0),
                format!("{}", out.makespan),
                format!("{:.2}x", out.speedup()),
                format!("{}", out.notifications),
            ]);
        }
    }
    table.print();
}

/// A small policy comparison: work stealing on a skewed partition, and the
/// three placement policies on an un-hinted partition (see the
/// `policy_comparison` bench for the full sweep). `NEXUS_FEEDBACK` applies to
/// every row, so the same table doubles as a live-feedback smoke run.
fn policy_section() {
    let link = cluster_link();
    let feedback = cluster_feedback();
    let mut table = Table::new(
        format!(
            "Quick policy run: 4 nodes, Nexus# 6TG per node, 8 workers/node, feedback {feedback}"
        ),
        &[
            "trace",
            "placement",
            "stealing",
            "makespan",
            "steals",
            "reclaims",
            "link words",
        ],
    );
    // Skewed independent tasks: node 0 owns 6x the last node's work.
    let skewed = distributed::imbalanced(4, 160, 6.0, SimDuration::from_us(50), 0.0, 42);
    for stealing in StealKind::ALL {
        let cfg = ClusterConfig::new(4, 8)
            .with_link(link)
            .with_stealing(stealing)
            .with_feedback(feedback);
        let out = simulate_cluster(&skewed, &cfg, |_| NexusSharp::paper(6));
        table.row(vec![
            skewed.name.clone(),
            out.placement.clone(),
            out.stealing.clone(),
            format!("{}", out.makespan),
            format!("{}", out.steals),
            format!("{}", out.reclaims),
            format!("{}", out.link.words),
        ]);
    }
    // Un-hinted sparselu: placement policy decides everything.
    let unhinted = distributed::unhinted(&distributed::sparselu(4, 0.3, 42, 0.002));
    for placement in PolicyKind::ALL {
        let cfg = ClusterConfig::new(4, 8)
            .with_link(link)
            .with_placement(placement)
            .with_feedback(feedback);
        let out = simulate_cluster(&unhinted, &cfg, |_| NexusSharp::paper(6));
        table.row(vec![
            unhinted.name.clone(),
            out.placement.clone(),
            out.stealing.clone(),
            format!("{}", out.makespan),
            format!("{}", out.steals),
            format!("{}", out.reclaims),
            format!("{}", out.link.words),
        ]);
    }
    table.print();
}

/// A small topology sample: one rack-clustered trace over every fabric, plus
/// the flat vs topology-aware scheduling stacks on the rack-tiered fabric
/// (see the `topology_comparison` bench for the full sweep).
fn topology_section() {
    let link = cluster_link();
    let us = SimDuration::from_us;
    let matched = distributed::rack_clustered(2, 2, 8, 8, 1.0, 0.5, 0.0, us(30), 42);
    let mut table = Table::new(
        "Quick topology run: 4 nodes, Nexus# 6TG per node, 4 workers/node",
        &[
            "trace",
            "topology",
            "placement",
            "stealing",
            "makespan",
            "link words",
        ],
    );
    for topology in Topology::ALL {
        let cfg = ClusterConfig::new(4, 4).with_link(link.with_topology(topology));
        let out = simulate_cluster(&matched, &cfg, |_| NexusSharp::paper(6));
        table.row(vec![
            matched.name.clone(),
            out.topology.clone(),
            out.placement.clone(),
            out.stealing.clone(),
            format!("{}", out.makespan),
            format!("{}", out.link.words),
        ]);
    }
    // Flat vs aware stacks on the tiered fabric (un-hinted, rack heads 3x).
    let skewed = distributed::unhinted(&distributed::rack_clustered(
        2,
        2,
        8,
        8,
        3.0,
        0.6,
        0.0,
        us(30),
        11,
    ));
    for (placement, stealing) in [
        (PolicyKind::XorHash, StealKind::MostLoaded),
        (PolicyKind::TopologyAware, StealKind::Hierarchical),
    ] {
        let cfg = ClusterConfig::new(4, 4)
            .with_link(link.with_topology(Topology::RackTiers))
            .with_placement(placement)
            .with_stealing(stealing);
        let out = simulate_cluster(&skewed, &cfg, |_| NexusSharp::paper(6));
        table.row(vec![
            skewed.name.clone(),
            out.topology.clone(),
            out.placement.clone(),
            out.stealing.clone(),
            format!("{}", out.makespan),
            format!("{}", out.link.words),
        ]);
    }
    table.print();
}

/// A small open-loop service sample: a knee sweep of the arrival process
/// selected by `NEXUS_ARRIVAL` (depth from `NEXUS_ADMIT_DEPTH`) over a fixed
/// 4-node sparselu trace (see the `service_latency` bench for the full
/// sweep). Points above the knee show back-pressure and a climbing p99.
fn service_section() {
    let kind = service_arrival();
    if kind == ArrivalKind::ClosedLoop {
        println!("Quick service run: skipped (NEXUS_ARRIVAL=closed is not an open-loop process)\n");
        return;
    }
    let link = cluster_link();
    let trace = distributed::sparselu(4, 0.3, 42, 0.002);
    let base = ServiceConfig::new(ArrivalConfig::new(kind, SimDuration::from_us(40), 42))
        .with_admission(AdmissionConfig::new(admit_depth()));
    let cfg = ClusterConfig::new(4, 8).with_link(link);
    let report = nexus_flow::knee_sweep(&trace, &base, &cfg, &[0.25, 0.5, 1.0, 2.0, 8.0], |_| {
        NexusSharp::paper(6)
    });
    let mut table = Table::new(
        format!(
            "Quick service run: dist-sparselu, {kind} arrivals, depth {}, 4 nodes",
            base.admission.depth
        ),
        &[
            "load",
            "offered/s",
            "done/s",
            "p50",
            "p99",
            "p99.9",
            "backpressure",
        ],
    );
    for p in &report.points {
        table.row(vec![
            format!("{:.2}x", p.load_factor),
            format!("{:.0}", p.offered_per_sec),
            format!("{:.0}", p.completed_per_sec),
            format!("{}", p.p50),
            format!("{}", p.p99),
            format!("{}", p.p999),
            format!("{}", p.backpressure_events),
        ]);
    }
    table.print();
    match report.knee() {
        Some(k) => println!(
            "knee: {:.0} offered/s sustained without back-pressure\n",
            k.offered_per_sec
        ),
        None => println!("knee: below the lowest point of the ramp\n"),
    }
}
