//! `quick-report` — a fast end-to-end sanity run of the whole evaluation.
//!
//! Runs every Table II benchmark at a small scale under the four Fig. 8
//! managers on a few core counts and prints measured vs. paper maximum
//! speedups. Useful as a smoke test before launching the full `cargo bench`
//! reproduction, and as a quickstart demonstration of the library.
//!
//! ```text
//! cargo run --release -p nexus-bench --bin quick-report
//! NEXUS_BENCH_SCALE=0.3 cargo run --release -p nexus-bench --bin quick-report
//! ```

use nexus_bench::managers::ManagerKind;
use nexus_bench::paper::table4_row;
use nexus_bench::report::{fmt_speedup, Table};
use nexus_bench::runner::{bench_scale, cluster_link, curves_for};
use nexus_cluster::{simulate_cluster, ClusterConfig, PolicyKind, StealKind, Topology};
use nexus_core::NexusSharp;
use nexus_sim::SimDuration;
use nexus_trace::generators::distributed;
use nexus_trace::Benchmark;
use std::time::Instant;

fn main() {
    let scale = bench_scale().min(0.05);
    println!(
        "quick-report: workload scale = {scale} (set NEXUS_BENCH_SCALE / NEXUS_FULL for more)\n"
    );
    let managers = ManagerKind::fig8_set();
    let mut table = Table::new(
        "Quick evaluation: max speedup (measured | paper Table IV)",
        &[
            "benchmark",
            "ideal",
            "Nanos",
            "Nanos(paper)",
            "Nexus++",
            "Nexus++(paper)",
            "Nexus# 6TG",
            "Nexus#(paper)",
        ],
    );

    for bench in Benchmark::table2_suite() {
        let t0 = Instant::now();
        let curves = curves_for(bench, &managers, scale, 42);
        let get = |label: &str| -> f64 {
            curves
                .iter()
                .find(|c| c.manager == label)
                .map(|c| c.max_speedup())
                .unwrap_or(f64::NAN)
        };
        let paper = table4_row(&bench.name());
        table.row(vec![
            bench.name(),
            fmt_speedup(get("ideal")),
            fmt_speedup(get("Nanos")),
            paper.map(|p| fmt_speedup(p.nanos_max)).unwrap_or_default(),
            fmt_speedup(get("Nexus++")),
            paper
                .map(|p| fmt_speedup(p.nexus_pp_max))
                .unwrap_or_default(),
            fmt_speedup(get("Nexus# 6TG")),
            paper
                .map(|p| fmt_speedup(p.nexus_sharp_max))
                .unwrap_or_default(),
        ]);
        eprintln!("  [{}] done in {:?}", bench.name(), t0.elapsed());
    }
    table.print();

    cluster_section();
    policy_section();
    topology_section();
}

/// A small cluster-scalability sample: a 4-domain partitioned sparselu under
/// Nexus# (6 TGs) per node, at low and full halo coupling.
fn cluster_section() {
    let link = cluster_link();
    let mut table = Table::new(
        "Quick cluster run: dist-sparselu, Nexus# 6TG per node, 8 workers/node",
        &["nodes", "coupling", "makespan", "speedup", "notifications"],
    );
    for &remote in &[0.05, 1.0] {
        let trace = distributed::sparselu(4, remote, 42, 0.002);
        for &nodes in &[1usize, 2, 4] {
            let cfg = ClusterConfig::new(nodes, 8).with_link(link);
            let out = simulate_cluster(&trace, &cfg, |_| NexusSharp::paper(6));
            table.row(vec![
                format!("{nodes}"),
                format!("{:.0}%", remote * 100.0),
                format!("{}", out.makespan),
                format!("{:.2}x", out.speedup()),
                format!("{}", out.notifications),
            ]);
        }
    }
    table.print();
}

/// A small policy comparison: work stealing on a skewed partition, and the
/// three placement policies on an un-hinted partition (see the
/// `policy_comparison` bench for the full sweep).
fn policy_section() {
    let link = cluster_link();
    let mut table = Table::new(
        "Quick policy run: 4 nodes, Nexus# 6TG per node, 8 workers/node",
        &[
            "trace",
            "placement",
            "stealing",
            "makespan",
            "steals",
            "link words",
        ],
    );
    // Skewed independent tasks: node 0 owns 6x the last node's work.
    let skewed = distributed::imbalanced(4, 160, 6.0, SimDuration::from_us(50), 0.0, 42);
    for stealing in StealKind::ALL {
        let cfg = ClusterConfig::new(4, 8)
            .with_link(link)
            .with_stealing(stealing);
        let out = simulate_cluster(&skewed, &cfg, |_| NexusSharp::paper(6));
        table.row(vec![
            skewed.name.clone(),
            out.placement.clone(),
            out.stealing.clone(),
            format!("{}", out.makespan),
            format!("{}", out.steals),
            format!("{}", out.link.words),
        ]);
    }
    // Un-hinted sparselu: placement policy decides everything.
    let unhinted = distributed::unhinted(&distributed::sparselu(4, 0.3, 42, 0.002));
    for placement in PolicyKind::ALL {
        let cfg = ClusterConfig::new(4, 8)
            .with_link(link)
            .with_placement(placement);
        let out = simulate_cluster(&unhinted, &cfg, |_| NexusSharp::paper(6));
        table.row(vec![
            unhinted.name.clone(),
            out.placement.clone(),
            out.stealing.clone(),
            format!("{}", out.makespan),
            format!("{}", out.steals),
            format!("{}", out.link.words),
        ]);
    }
    table.print();
}

/// A small topology sample: one rack-clustered trace over every fabric, plus
/// the flat vs topology-aware scheduling stacks on the rack-tiered fabric
/// (see the `topology_comparison` bench for the full sweep).
fn topology_section() {
    let link = cluster_link();
    let us = SimDuration::from_us;
    let matched = distributed::rack_clustered(2, 2, 8, 8, 1.0, 0.5, 0.0, us(30), 42);
    let mut table = Table::new(
        "Quick topology run: 4 nodes, Nexus# 6TG per node, 4 workers/node",
        &[
            "trace",
            "topology",
            "placement",
            "stealing",
            "makespan",
            "link words",
        ],
    );
    for topology in Topology::ALL {
        let cfg = ClusterConfig::new(4, 4).with_link(link.with_topology(topology));
        let out = simulate_cluster(&matched, &cfg, |_| NexusSharp::paper(6));
        table.row(vec![
            matched.name.clone(),
            out.topology.clone(),
            out.placement.clone(),
            out.stealing.clone(),
            format!("{}", out.makespan),
            format!("{}", out.link.words),
        ]);
    }
    // Flat vs aware stacks on the tiered fabric (un-hinted, rack heads 3x).
    let skewed = distributed::unhinted(&distributed::rack_clustered(
        2,
        2,
        8,
        8,
        3.0,
        0.6,
        0.0,
        us(30),
        11,
    ));
    for (placement, stealing) in [
        (PolicyKind::XorHash, StealKind::MostLoaded),
        (PolicyKind::TopologyAware, StealKind::Hierarchical),
    ] {
        let cfg = ClusterConfig::new(4, 4)
            .with_link(link.with_topology(Topology::RackTiers))
            .with_placement(placement)
            .with_stealing(stealing);
        let out = simulate_cluster(&skewed, &cfg, |_| NexusSharp::paper(6));
        table.row(vec![
            skewed.name.clone(),
            out.topology.clone(),
            out.placement.clone(),
            out.stealing.clone(),
            format!("{}", out.makespan),
            format!("{}", out.link.words),
        ]);
    }
    table.print();
}
