//! Reference values reported in the paper, used to print paper-vs-measured
//! columns in the regenerated tables (EXPERIMENTS.md records the comparison).

/// One row of Table IV: maximum speedup per benchmark and task manager.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table4Row {
    /// Benchmark name (paper spelling).
    pub benchmark: &'static str,
    /// Maximum speedup measured with Nanos.
    pub nanos_max: f64,
    /// Maximum speedup measured with Nexus++.
    pub nexus_pp_max: f64,
    /// Maximum speedup measured with Nexus#.
    pub nexus_sharp_max: f64,
}

/// Table IV as printed in the paper.
pub const TABLE4: &[Table4Row] = &[
    Table4Row {
        benchmark: "c-ray",
        nanos_max: 31.4,
        nexus_pp_max: 60.4,
        nexus_sharp_max: 194.0,
    },
    Table4Row {
        benchmark: "rot-cc",
        nanos_max: 24.5,
        nexus_pp_max: 254.0,
        nexus_sharp_max: 254.0,
    },
    Table4Row {
        benchmark: "sparselu",
        nanos_max: 24.5,
        nexus_pp_max: 84.9,
        nexus_sharp_max: 94.4,
    },
    Table4Row {
        benchmark: "streamcluster",
        nanos_max: 4.9,
        nexus_pp_max: 7.9,
        nexus_sharp_max: 39.6,
    },
    Table4Row {
        benchmark: "h264dec-1x1-10f",
        nanos_max: 0.7,
        nexus_pp_max: 2.2,
        nexus_sharp_max: 6.9,
    },
    Table4Row {
        benchmark: "h264dec-2x2-10f",
        nanos_max: 1.4,
        nexus_pp_max: 2.7,
        nexus_sharp_max: 7.7,
    },
    Table4Row {
        benchmark: "h264dec-4x4-10f",
        nanos_max: 3.6,
        nexus_pp_max: 2.7,
        nexus_sharp_max: 6.8,
    },
    Table4Row {
        benchmark: "h264dec-8x8-10f",
        nanos_max: 3.9,
        nexus_pp_max: 2.5,
        nexus_sharp_max: 4.7,
    },
];

/// Looks up the Table IV row for a benchmark (prefix match).
pub fn table4_row(benchmark: &str) -> Option<&'static Table4Row> {
    TABLE4
        .iter()
        .find(|r| benchmark.starts_with(r.benchmark) || r.benchmark.starts_with(benchmark))
}

/// Table II as printed in the paper: (benchmark, #tasks, total work ms,
/// avg task size µs, deps column).
pub const TABLE2: &[(&str, u64, f64, f64, &str)] = &[
    ("c-ray", 1200, 7381.0, 6151.0, "1"),
    ("rot-cc", 16262, 8150.0, 501.0, "1"),
    ("sparselu", 54814, 38128.0, 696.0, "1-3"),
    ("streamcluster", 652776, 237908.0, 364.0, "1-3"),
    ("h264dec-1x1-10f", 139961, 640.0, 4.6, "2-6"),
    ("h264dec-2x2-10f", 35921, 550.0, 15.3, "2-6"),
    ("h264dec-4x4-10f", 9333, 519.0, 55.6, "2-6"),
    ("h264dec-8x8-10f", 2686, 510.0, 189.9, "2-6"),
];

/// Table III as printed in the paper: (matrix dimension, #tasks, avg FLOPs,
/// avg task µs).
pub const TABLE3: &[(u32, u64, u64, f64)] = &[
    (250, 31_374, 167, 0.084),
    (500, 125_249, 334, 0.167),
    (1000, 500_499, 667, 0.334),
    (3000, 4_501_499, 2012, 1.006),
];

/// §IV-E micro-benchmark: cycles to insert 5 independent 2-parameter tasks.
pub const MICRO_BENCH_NEXUS_SHARP_CYCLES: u64 = 78;
/// The same micro-benchmark on the task-superscalar prototype of \[19\].
pub const MICRO_BENCH_TASK_SUPERSCALAR_CYCLES: u64 = 172;

/// Fig. 9 headline: speedup of Nexus# (2 TG) on the 3000×3000 Gaussian
/// elimination at 64 cores.
pub const FIG9_GAUSSIAN_3000_SPEEDUP: f64 = 19.0;
/// Fig. 9: Nexus# (2 TG) improvement over Nexus++ for the 250×250 matrix.
pub const FIG9_IMPROVEMENT_250: f64 = 0.19;
/// Fig. 9: Nexus# (2 TG) improvement over Nexus++ for larger matrices.
pub const FIG9_IMPROVEMENT_LARGE: f64 = 0.10;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_lookup_by_prefix() {
        assert_eq!(table4_row("c-ray").unwrap().nexus_sharp_max, 194.0);
        assert_eq!(table4_row("h264dec-1x1-10f").unwrap().nanos_max, 0.7);
        assert!(table4_row("gaussian-250").is_none());
    }

    #[test]
    fn tables_have_the_papers_row_counts() {
        assert_eq!(TABLE4.len(), 8);
        assert_eq!(TABLE2.len(), 8);
        assert_eq!(TABLE3.len(), 4);
    }

    #[test]
    fn nexus_sharp_always_wins_or_ties_in_table4() {
        for row in TABLE4 {
            assert!(row.nexus_sharp_max >= row.nexus_pp_max);
            // Nanos beats Nexus++ only where grouping already removed the
            // pressure (h264dec-4x4/8x8) — the paper's observation.
            if !row.benchmark.starts_with("h264dec-4x4")
                && !row.benchmark.starts_with("h264dec-8x8")
            {
                assert!(row.nexus_pp_max >= row.nanos_max, "{}", row.benchmark);
            }
        }
    }
}
