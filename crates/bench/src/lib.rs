//! # nexus-bench — the evaluation harness
//!
//! One bench target per table/figure of the paper (see DESIGN.md §4 for the
//! full experiment index), plus Criterion micro-benchmarks of the core data
//! structures. This library holds the shared plumbing: manager construction,
//! curve sweeps, paper reference values, scaling of the workloads and table
//! formatting.
//!
//! ## Workload scaling
//!
//! The full-size traces (650 k tasks for streamcluster, 4.5 M tasks for the
//! 3000×3000 Gaussian elimination) are faithful to Table II but make a full
//! `cargo bench` run take tens of minutes. The harness therefore runs a scaled
//! configuration by default and prints the scale it used:
//!
//! * `NEXUS_BENCH_SCALE=<0..1>` — task-count scale factor (default 0.1),
//! * `NEXUS_FULL=1` — force full-size traces (scale 1.0).
//!
//! Scaling shrinks the *number* of tasks (fewer frames/lines/groups), not their
//! durations or dependency structure, so speedup curves keep their shape.

#![warn(missing_docs)]

pub mod baseline;
pub mod managers;
pub mod paper;
pub mod report;
pub mod runner;

pub use baseline::{compare, Baseline, CompareConfig, ScenarioRecord};
pub use managers::ManagerKind;
pub use report::Table;
pub use runner::{bench_scale, curves_for, event_engine, gaussian_core_counts, hw_core_counts};
