//! Regression tests for the environment knobs of the bench harness: every
//! unknown value must abort loudly (exit 2) listing the valid options, and
//! valid values must be accepted case-insensitively.
//!
//! The knobs are validated by `quick_report` before it does anything else, so
//! spawning it with `--list-scenarios` (which exits immediately after the
//! validation) keeps each probe fast.

use std::process::{Command, Output};

fn quick_report(envs: &[(&str, &str)], args: &[&str]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_quick_report"));
    // Isolate from the caller's environment so only the probed knob is set.
    for var in [
        "NEXUS_LINK",
        "NEXUS_POLICY",
        "NEXUS_STEAL",
        "NEXUS_FEEDBACK",
        "NEXUS_TOPO",
        "NEXUS_EVENT_ENGINE",
        "NEXUS_ARRIVAL",
        "NEXUS_ADMIT_DEPTH",
        "NEXUS_BENCH_SCALE",
        "NEXUS_FULL",
        "NEXUS_RT_WORKERS",
        "NEXUS_RT_NODES",
        "NEXUS_TRACE",
        "NEXUS_TRACE_OUT",
    ] {
        cmd.env_remove(var);
    }
    cmd.envs(envs.iter().copied()).args(args);
    cmd.output().expect("spawning quick_report must succeed")
}

/// Asserts that setting `var=value` aborts with exit code 2 and a message
/// naming the knob and listing `expected` as part of the valid options.
fn assert_aborts(var: &str, value: &str, expected: &str) {
    let out = quick_report(&[(var, value)], &["--list-scenarios"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{var}={value} must abort with exit 2 (stderr: {stderr})"
    );
    assert!(
        stderr.contains(var),
        "abort message must name the knob {var}: {stderr}"
    );
    assert!(
        stderr.contains(expected),
        "abort message must list the valid options ({expected}): {stderr}"
    );
}

#[test]
fn unknown_event_engine_aborts_listing_options() {
    assert_aborts("NEXUS_EVENT_ENGINE", "ringbuffer", "heap | calendar");
}

#[test]
fn unknown_arrival_kind_aborts_listing_options() {
    assert_aborts("NEXUS_ARRIVAL", "steady", "poisson|bursty|diurnal|closed");
}

#[test]
fn bad_admit_depth_aborts() {
    assert_aborts("NEXUS_ADMIT_DEPTH", "many", "positive integer");
    // Depth 0 parses but can never admit anything — equally fatal.
    assert_aborts("NEXUS_ADMIT_DEPTH", "0", "positive integer");
}

#[test]
fn bad_rt_workers_aborts() {
    assert_aborts("NEXUS_RT_WORKERS", "lots", "positive integer");
    // Zero workers can never execute anything — equally fatal.
    assert_aborts("NEXUS_RT_WORKERS", "0", "positive integer");
}

#[test]
fn bad_rt_nodes_aborts() {
    assert_aborts("NEXUS_RT_NODES", "4.5", "positive integer");
    assert_aborts("NEXUS_RT_NODES", "0", "positive integer");
}

#[test]
fn unknown_link_aborts_listing_options() {
    assert_aborts("NEXUS_LINK", "carrier-pigeon", "rdma|ethernet|ideal");
}

#[test]
fn unknown_policy_aborts_listing_options() {
    assert_aborts("NEXUS_POLICY", "roundrobin", "xorhash");
}

#[test]
fn unknown_steal_aborts_listing_options() {
    assert_aborts("NEXUS_STEAL", "sometimes", "steal");
}

#[test]
fn unknown_topology_aborts_listing_options() {
    assert_aborts("NEXUS_TOPO", "hypercube", "mesh");
}

#[test]
fn unknown_feedback_mode_aborts_listing_options() {
    assert_aborts("NEXUS_FEEDBACK", "adaptive", "off|place|reclaim|full");
}

#[test]
fn unknown_trace_mode_aborts_listing_options() {
    assert_aborts("NEXUS_TRACE", "perfetto", "off|chrome|text");
}

#[test]
fn empty_trace_out_aborts() {
    assert_aborts("NEXUS_TRACE_OUT", "   ", "writable file path");
}

#[test]
fn trace_mode_without_a_path_aborts() {
    let out = quick_report(&[("NEXUS_TRACE", "chrome")], &["--baseline-only"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "NEXUS_TRACE without a path must abort: {stderr}"
    );
    assert!(
        stderr.contains("NEXUS_TRACE_OUT"),
        "abort message must point at the path knob: {stderr}"
    );
}

#[test]
fn trace_out_writes_a_loadable_chrome_trace() {
    let dir = std::env::temp_dir().join(format!("nexus-env-knobs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("trace.json");
    let out = quick_report(
        &[("NEXUS_BENCH_SCALE", "0.002"), ("NEXUS_TRACE", "ChRoMe")],
        &["--baseline-only", "--trace-out", path.to_str().unwrap()],
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(0),
        "--trace-out run must succeed: {stderr}"
    );
    let body = std::fs::read_to_string(&path).expect("trace file written");
    // quick_report already validated the span census against the retired
    // count before exiting 0; here we just confirm the envelope survived the
    // round trip to disk.
    assert!(body.starts_with("{\"traceEvents\":["));
    assert!(body.contains("\"ph\":\"X\""), "no complete spans in trace");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("trace written to"),
        "missing trace summary line: {stdout}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn valid_knobs_are_case_insensitive() {
    let out = quick_report(
        &[
            ("NEXUS_EVENT_ENGINE", "HeAp"),
            ("NEXUS_ARRIVAL", "PoIsSoN"),
            ("NEXUS_ADMIT_DEPTH", "16"),
            ("NEXUS_LINK", "RDMA"),
            ("NEXUS_FEEDBACK", "FuLl"),
        ],
        &["--list-scenarios"],
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(0),
        "mixed-case valid knobs must be accepted: {stderr}"
    );
}

#[test]
fn list_scenarios_prints_names_and_seeds() {
    let out = quick_report(&[], &["--list-scenarios"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in [
        "sparselu-8d-r0.0-n1-mesh",
        "sparselu-8d-r0.0-n8-mesh",
        "sparselu-8d-r0.5-n8-mesh",
        "sparselu-8d-r0.5-n8-racktiers-topo-hier",
        "imbalanced-4n-mostloaded",
        "feedback-imbalanced-n4",
        "service-poisson-n4-depth16",
    ] {
        assert!(
            stdout.contains(name),
            "--list-scenarios must print {name}: {stdout}"
        );
    }
    assert!(
        stdout.contains("seed=42"),
        "--list-scenarios must print the trace seeds: {stdout}"
    );
}

#[test]
fn unknown_cli_flag_aborts_listing_flags() {
    let out = quick_report(&[], &["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--list-scenarios"),
        "usage message must list the new flag: {stderr}"
    );
}
