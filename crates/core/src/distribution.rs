//! The address → task-graph distribution function (§IV-B).
//!
//! "A key to enhanced utilization and scalability of Nexus# is the distribution
//! algorithm. It should have two essential properties; speed and fairness."
//!
//! The paper's function XORs the lowest 20 address bits in 5-bit blocks and
//! reduces the result modulo the number of task graphs:
//!
//! ```text
//! TaskGraphID = [addr(19..15) ⊕ addr(14..10) ⊕ addr(09..05) ⊕ addr(04..00)]
//!                mod num_task_graphs
//! ```
//!
//! It is computable in one cycle and distributes a typical application's
//! addresses (which differ only in their low 20 bits) evenly over up to 32 task
//! graphs. Alternative policies are provided for the Fig. 3 study and the
//! ablation benches; note that any policy must be *address-consistent* (the same
//! address always maps to the same task graph), otherwise insertions and
//! retirements would reach different graphs.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The paper's XOR distribution function over the low 20 address bits.
#[inline]
pub fn xor_hash_tg(addr: u64, num_task_graphs: usize) -> usize {
    debug_assert!(num_task_graphs > 0);
    let fold = ((addr >> 15) & 0x1f) ^ ((addr >> 10) & 0x1f) ^ ((addr >> 5) & 0x1f) ^ (addr & 0x1f);
    (fold as usize) % num_task_graphs
}

/// Selectable distribution policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DistributionPolicy {
    /// The paper's 1-cycle XOR folding of the low 20 address bits.
    XorHash,
    /// Straight modulo over the cache-line index (no folding): sensitive to
    /// power-of-two strides in the address stream.
    Modulo,
    /// First-seen round-robin: the first time an address is seen it is assigned
    /// to the next task graph in rotation (the idealized "best case" of
    /// Fig. 3(A)); requires a lookup table, which is why the paper prefers the
    /// stateless XOR hash.
    RoundRobin,
    /// Degenerate policy sending every address to task graph 0 — the
    /// "worst case" serialization of Fig. 3(B).
    SingleGraph,
}

/// A stateful distributor applying a [`DistributionPolicy`] consistently.
#[derive(Debug, Clone)]
pub struct Distributor {
    policy: DistributionPolicy,
    num_task_graphs: usize,
    /// Address assignments for the round-robin policy.
    assignments: HashMap<u64, usize>,
    next_rr: usize,
    /// Items sent to each task graph (fairness statistics — Fig. 3).
    per_tg: Vec<u64>,
}

impl Distributor {
    /// Creates a distributor for `num_task_graphs` task graphs.
    ///
    /// # Panics
    /// Panics if `num_task_graphs` is zero.
    pub fn new(policy: DistributionPolicy, num_task_graphs: usize) -> Self {
        assert!(num_task_graphs > 0, "need at least one task graph");
        Distributor {
            policy,
            num_task_graphs,
            assignments: HashMap::new(),
            next_rr: 0,
            per_tg: vec![0; num_task_graphs],
        }
    }

    /// The policy in use.
    pub fn policy(&self) -> DistributionPolicy {
        self.policy
    }

    /// Number of task graphs.
    pub fn num_task_graphs(&self) -> usize {
        self.num_task_graphs
    }

    /// Maps an address to its task graph and records the choice in the
    /// fairness statistics.
    pub fn pick(&mut self, addr: u64) -> usize {
        let tg = self.pick_readonly(addr);
        // Round-robin must remember first-seen assignments.
        if self.policy == DistributionPolicy::RoundRobin {
            self.assignments.entry(addr).or_insert_with(|| {
                let chosen = self.next_rr;
                self.next_rr = (self.next_rr + 1) % self.num_task_graphs;
                chosen
            });
        }
        self.per_tg[tg] += 1;
        tg
    }

    /// Maps an address to its task graph without recording statistics.
    pub fn pick_readonly(&self, addr: u64) -> usize {
        match self.policy {
            DistributionPolicy::XorHash => xor_hash_tg(addr, self.num_task_graphs),
            DistributionPolicy::Modulo => ((addr >> 6) as usize) % self.num_task_graphs,
            DistributionPolicy::RoundRobin => match self.assignments.get(&addr) {
                Some(&tg) => tg,
                None => self.next_rr,
            },
            DistributionPolicy::SingleGraph => 0,
        }
    }

    /// Items distributed to each task graph so far.
    pub fn load(&self) -> &[u64] {
        &self.per_tg
    }

    /// Load-balance summary over the task graphs.
    pub fn balance(&self) -> nexus_sim::stats::LoadBalance {
        nexus_sim::stats::LoadBalance::new(self.per_tg.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexus_trace::AddrRegion;

    #[test]
    fn xor_hash_is_stable_and_in_range() {
        for n in [1usize, 2, 4, 6, 8, 32] {
            for i in 0..1000u64 {
                let addr = 0x7f3a_0000_0000 + i * 64;
                let tg = xor_hash_tg(addr, n);
                assert!(tg < n);
                assert_eq!(tg, xor_hash_tg(addr, n), "must be deterministic");
            }
        }
    }

    #[test]
    fn xor_hash_covers_every_task_graph_on_uniform_keys() {
        // No task-graph unit may starve: a uniform cache-line-strided keyset
        // must hit all N task graphs for every supported N.
        for n in [2usize, 3, 4, 6, 8, 16, 32] {
            let region = AddrRegion::benchmark_array(0);
            let mut hits = vec![0usize; n];
            for i in 0..4096 {
                hits[xor_hash_tg(region.addr(i), n)] += 1;
            }
            assert!(
                hits.iter().all(|&h| h > 0),
                "{n} TGs: empty task graph in {hits:?}"
            );
        }
    }

    #[test]
    fn xor_hash_spreads_strided_addresses_evenly() {
        // The paper's observation: application addresses differ only in the low
        // 20 bits. A cache-line-strided array must spread well over 2..=8 TGs.
        for n in [2usize, 4, 6, 8] {
            let region = AddrRegion::benchmark_array(3);
            let mut d = Distributor::new(DistributionPolicy::XorHash, n);
            for i in 0..4096 {
                d.pick(region.addr(i));
            }
            let imbalance = d.balance().imbalance();
            assert!(
                imbalance < 1.5,
                "{n} TGs: imbalance {imbalance} for the XOR hash"
            );
        }
    }

    #[test]
    fn single_graph_policy_is_the_worst_case() {
        let mut d = Distributor::new(DistributionPolicy::SingleGraph, 4);
        for i in 0..100u64 {
            assert_eq!(d.pick(i * 64), 0);
        }
        assert!((d.balance().imbalance() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn round_robin_is_perfectly_fair_and_consistent() {
        let mut d = Distributor::new(DistributionPolicy::RoundRobin, 4);
        let region = AddrRegion::benchmark_array(1);
        let mut first: Vec<usize> = Vec::new();
        for i in 0..64 {
            first.push(d.pick(region.addr(i)));
        }
        // Revisiting the same addresses must give the same task graphs.
        for i in 0..64 {
            assert_eq!(d.pick(region.addr(i)), first[i as usize]);
        }
        assert!((d.balance().imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn modulo_policy_can_be_unfair_on_power_of_two_strides() {
        // A 256-byte stride over 4 TGs via plain modulo hits only one TG;
        // the XOR hash does better on the same stream.
        let mut modulo = Distributor::new(DistributionPolicy::Modulo, 4);
        let mut xor = Distributor::new(DistributionPolicy::XorHash, 4);
        for i in 0..1024u64 {
            let addr = 0x1000 + i * 256;
            modulo.pick(addr);
            xor.pick(addr);
        }
        assert!(modulo.balance().imbalance() > 3.9);
        assert!(xor.balance().imbalance() < 1.5);
    }

    #[test]
    #[should_panic(expected = "at least one task graph")]
    fn zero_task_graphs_rejected() {
        let _ = Distributor::new(DistributionPolicy::XorHash, 0);
    }
}
