//! # nexus-core — the Nexus# distributed hardware task manager
//!
//! This crate models the paper's primary contribution (§IV): a task-dependency
//! manager whose task graph is **distributed** over `N` independent task-graph
//! units so that the memory addresses of incoming tasks can be inserted in
//! parallel — both the addresses of a single task and those of different tasks.
//!
//! The block structure follows Fig. 2:
//!
//! * **Nexus IO / Input Parser** — receives task descriptors word by word and
//!   *immediately* forwards every incoming address to its task graph (chosen by
//!   the XOR [`distribution`] function), instead of waiting for the whole task;
//!   it finally stores the descriptor in the **Task Pool**,
//! * **Task graphs (×N)** — each owns a slice of the address space in a
//!   set-associative table with kick-off lists (`nexus-taskgraph`), fed through
//!   *New Args.* / *Finished Args.* buffers,
//! * **Dependence Counts Arbiter** — gathers the per-address outcomes, maintains
//!   the per-task dependence counts (Sim. Tasks Dep. Counts buffer + global Dep.
//!   Counts table, [`nexus_taskgraph::DepCountsTable`]), decrements counts when
//!   finished tasks kick off waiters, and forwards ready task ids,
//! * **Write Back** — returns ready task ids (via the Function Pointers table)
//!   to the Nexus IO unit.
//!
//! Unlike Nexus++, Nexus# supports the `taskwait on` pragma, and its task pool
//! recycles slots out of order.
//!
//! Two views are provided:
//!
//! * [`NexusSharp`] — the discrete-event model implementing
//!   [`nexus_host::TaskManager`], used for the paper's performance evaluation,
//! * [`pipeline`] — analytic cycle schedules reproducing the pipeline
//!   walk-throughs of Fig. 4 / Fig. 5 and the §IV-E micro-benchmark.

#![warn(missing_docs)]

pub mod config;
pub mod distribution;
pub mod manager;
pub mod pipeline;

pub use config::NexusSharpConfig;
pub use distribution::{DistributionPolicy, Distributor};
pub use manager::NexusSharp;
pub use pipeline::{sharp_pipeline_schedule, SharpStageSpan};
