//! Analytic Nexus# pipeline schedules (Fig. 4, Fig. 5 and the §IV-E
//! micro-benchmark).
//!
//! These schedules assume ideal conditions (empty task graphs, no structural
//! stalls) and an even assignment of parameters to task graphs, exactly like
//! the walk-throughs in the paper. The discrete-event model in
//! [`crate::manager`] is the general-purpose version; this module exists so the
//! benchmark harness can print the per-stage cycle layout and compare the two
//! pipelines stage by stage.

use crate::config::NexusSharpConfig;
use serde::{Deserialize, Serialize};

/// One stage occupancy interval, in cycles from the start of the schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharpStageSpan {
    /// Task index in the submitted stream.
    pub task: usize,
    /// Parameter index within the task (`None` for whole-task stages).
    pub param: Option<usize>,
    /// Stage name: "IPh", "IP", "IPf", "IN", "AR", "WB".
    pub stage: &'static str,
    /// First cycle (inclusive).
    pub start_cycle: u64,
    /// One past the last cycle.
    pub end_cycle: u64,
}

impl SharpStageSpan {
    /// Stage length in cycles.
    pub fn cycles(&self) -> u64 {
        self.end_cycle - self.start_cycle
    }
}

/// Whether the schedule models the average case (parameters stream in through
/// the Input Parser, Fig. 4) or the best case (parameters already wait in the
/// New Args. buffers, Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PipelineCase {
    /// Fig. 4: the Input Parser distributes parameters as they arrive.
    Average,
    /// Fig. 5: all parameters are already buffered at the task graphs.
    BestCase,
}

/// Computes the ideal schedule of `tasks` back-to-back independent tasks with
/// `params_per_task` parameters each, parameters assigned round-robin over the
/// configured number of task graphs. Returns the spans and the cycle at which
/// the last write-back completes.
pub fn sharp_pipeline_schedule(
    config: &NexusSharpConfig,
    tasks: usize,
    params_per_task: usize,
    case: PipelineCase,
) -> (Vec<SharpStageSpan>, u64) {
    let n_tg = config.task_graphs.max(1);
    let mut spans = Vec::new();
    let mut ip_free = 0u64;
    let mut tg_free = vec![0u64; n_tg];
    let mut arbiter_free = 0u64;
    let mut wb_free = 0u64;
    let mut total = 0u64;

    for t in 0..tasks {
        let mut last_gather = 0u64;

        // IPh: header reception (skipped in the best case, where the whole
        // descriptor is assumed buffered).
        let header_end = if case == PipelineCase::Average {
            let start = ip_free;
            let end = start + config.ip_header_cycles;
            spans.push(SharpStageSpan {
                task: t,
                param: None,
                stage: "IPh",
                start_cycle: start,
                end_cycle: end,
            });
            ip_free = end;
            end
        } else {
            ip_free
        };

        let mut ip_cursor = header_end;
        for p in 0..params_per_task {
            // IP: receive + distribute this parameter (average case only).
            let avail = if case == PipelineCase::Average {
                let start = ip_cursor;
                let end = start + config.ip_cycles_per_param;
                spans.push(SharpStageSpan {
                    task: t,
                    param: Some(p),
                    stage: "IP",
                    start_cycle: start,
                    end_cycle: end,
                });
                ip_cursor = end;
                ip_free = end;
                end + config.args_fifo_latency_cycles
            } else {
                // Already sitting at the output of the New Args. buffer.
                0
            };

            // IN: insertion at the parameter's task graph.
            let tg = p % n_tg;
            let start = avail.max(tg_free[tg]);
            let end = start + config.insert_cycles_per_param;
            tg_free[tg] = end;
            spans.push(SharpStageSpan {
                task: t,
                param: Some(p),
                stage: "IN",
                start_cycle: start,
                end_cycle: end,
            });

            // AR: the arbiter gathers this result.
            let ar_start = end.max(arbiter_free);
            let ar_end = ar_start + config.arbiter_cycles_per_result;
            arbiter_free = ar_end;
            spans.push(SharpStageSpan {
                task: t,
                param: Some(p),
                stage: "AR",
                start_cycle: ar_start,
                end_cycle: ar_end,
            });
            last_gather = last_gather.max(ar_end);
        }

        if case == PipelineCase::Average {
            // IPf: store the descriptor in the Task Pool.
            let start = ip_cursor;
            let end = start + config.ip_finalize_cycles;
            spans.push(SharpStageSpan {
                task: t,
                param: None,
                stage: "IPf",
                start_cycle: start,
                end_cycle: end,
            });
            ip_free = end;
        }

        // Final dependence-count decision, ready FIFO and write back.
        let decide_end = last_gather.max(arbiter_free) + config.arbiter_decide_cycles;
        arbiter_free = decide_end;
        let wb_start = (decide_end + config.ready_fifo_latency_cycles).max(wb_free);
        let wb_end = wb_start + config.writeback_cycles;
        wb_free = wb_end;
        spans.push(SharpStageSpan {
            task: t,
            param: None,
            stage: "WB",
            start_cycle: wb_start,
            end_cycle: wb_end,
        });
        total = total.max(wb_end);
    }
    (spans, total)
}

/// The cycle count of the §IV-E micro-benchmark: 5 independent tasks with two
/// parameters each, pushed through a single-task-graph Nexus# (the paper
/// reports 78 cycles, vs. 172 cycles for the task-superscalar prototype
/// of Yazdanpanah et al.).
pub fn micro_benchmark_cycles(config: &NexusSharpConfig) -> u64 {
    let mut cfg = *config;
    cfg.task_graphs = 1;
    sharp_pipeline_schedule(&cfg, 5, 2, PipelineCase::Average).1
}

/// Span (in cycles) of the insertion phase of a single task: the interval from
/// the first parameter starting insertion to the last finishing. The paper
/// quotes 11 cycles for the 4-parameter average case (vs. 18 cycles for the
/// monolithic Nexus++ insert stage) and 5 cycles for the best case.
pub fn insertion_span_cycles(config: &NexusSharpConfig, params: usize, case: PipelineCase) -> u64 {
    let (spans, _) = sharp_pipeline_schedule(config, 1, params, case);
    let ins: Vec<&SharpStageSpan> = spans.iter().filter(|s| s.stage == "IN").collect();
    let start = ins.iter().map(|s| s.start_cycle).min().unwrap_or(0);
    let end = ins.iter().map(|s| s.end_cycle).max().unwrap_or(0);
    end - start
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(tgs: usize) -> NexusSharpConfig {
        NexusSharpConfig::at_mhz(tgs, 100.0)
    }

    #[test]
    fn average_case_insertion_span_matches_fig4() {
        // "The Insertion stage in the new pipeline consumed 11 cycles,
        // compared to 18 cycles in the old pipeline."
        assert_eq!(insertion_span_cycles(&cfg(4), 4, PipelineCase::Average), 11);
    }

    #[test]
    fn best_case_insertion_span_matches_fig5() {
        // With all four parameters already buffered at four different task
        // graphs, insertion takes exactly one 5-cycle slot.
        assert_eq!(insertion_span_cycles(&cfg(4), 4, PipelineCase::BestCase), 5);
    }

    #[test]
    fn best_case_initiation_interval_is_five_cycles() {
        // "In this scenario, the Write Back stage will take place every other
        // 5 cycles."
        let (spans, _) = sharp_pipeline_schedule(&cfg(4), 6, 4, PipelineCase::BestCase);
        let wb: Vec<u64> = spans
            .iter()
            .filter(|s| s.stage == "WB")
            .map(|s| s.end_cycle)
            .collect();
        let deltas: Vec<u64> = wb.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(deltas.iter().skip(1).all(|&d| d == 5), "{deltas:?}");
    }

    #[test]
    fn average_case_initiation_interval_is_eleven_cycles() {
        // "this number decreased significantly to 11 cycles in the new
        // pipeline" — the steady-state write-back interval equals the Input
        // Parser occupancy per task (2 + 2*4 + 1 = 11 cycles).
        let (spans, _) = sharp_pipeline_schedule(&cfg(4), 8, 4, PipelineCase::Average);
        let wb: Vec<u64> = spans
            .iter()
            .filter(|s| s.stage == "WB")
            .map(|s| s.end_cycle)
            .collect();
        let deltas: Vec<u64> = wb.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(
            deltas.iter().skip(2).all(|&d| d == 11),
            "steady-state deltas {deltas:?}"
        );
    }

    #[test]
    fn micro_benchmark_is_well_under_the_task_superscalar_172_cycles() {
        let cycles = micro_benchmark_cycles(&cfg(1));
        // The paper reports 78 cycles for its VHDL prototype; our analytic
        // model lands in the same range and far below the 172 cycles of [19].
        assert!(cycles >= 50, "{cycles}");
        assert!(cycles <= 100, "{cycles}");
    }

    #[test]
    fn stages_never_overlap_on_their_resource() {
        let (spans, _) = sharp_pipeline_schedule(&cfg(3), 5, 4, PipelineCase::Average);
        // The input parser stages (IPh/IP/IPf) are serial.
        let mut last_end = 0;
        for s in spans
            .iter()
            .filter(|s| matches!(s.stage, "IPh" | "IP" | "IPf"))
        {
            assert!(s.start_cycle >= last_end);
            last_end = s.end_cycle;
        }
        // Each task graph's IN slots are serial.
        for tg in 0..3usize {
            let mut last_end = 0;
            for s in spans
                .iter()
                .filter(|s| s.stage == "IN" && s.param.map(|p| p % 3) == Some(tg))
            {
                assert!(s.start_cycle >= last_end, "TG {tg} overlaps");
                last_end = s.end_cycle;
            }
        }
    }
}
