//! Nexus# configuration: number of task graphs, clocking, pipeline cycle costs.

use crate::distribution::DistributionPolicy;
use nexus_resources::{ManagerConfig, ResourceModel};
use nexus_sim::ClockDomain;
use nexus_taskgraph::assoc::SetAssocConfig;
use nexus_taskgraph::taskpool::RetirementOrder;
use serde::{Deserialize, Serialize};

/// Cycle costs and structural parameters of the Nexus# model.
///
/// The defaults reproduce the pipeline of Fig. 4: the Input Parser spends 2
/// cycles on the header and 2 cycles per parameter (one 48-bit address = two
/// 32-bit PCIe words), distributes each parameter immediately, and finally
/// writes the descriptor to the Task Pool in one cycle; the New-Args FIFOs have
/// a 3-cycle forwarding latency; insertion takes 5 cycles per parameter at the
/// task graph; the arbiter gathers each result and the ready id passes a
/// 3-cycle FIFO and a 3-cycle Write Back.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NexusSharpConfig {
    /// Number of task-graph units (the paper synthesizes 1–8 and selects 6).
    pub task_graphs: usize,
    /// Management clock frequency in MHz.
    pub clock_mhz: f64,
    /// Address distribution policy (the paper's XOR hash by default).
    pub distribution: DistributionPolicy,
    /// Set-associative geometry of each task graph.
    pub table_per_tg: SetAssocConfig,
    /// Task-pool capacity (in-flight task window).
    pub task_pool_capacity: usize,
    /// Task-pool recycling discipline (free list — out-of-order — for Nexus#).
    pub retirement: RetirementOrder,

    /// Input Parser: header cycles per task (IPh).
    pub ip_header_cycles: u64,
    /// Input Parser: cycles per parameter (IP).
    pub ip_cycles_per_param: u64,
    /// Input Parser: cycles to store the descriptor in the Task Pool (IPf).
    pub ip_finalize_cycles: u64,
    /// New-Args / Finished-Args buffer forwarding latency (cycles).
    pub args_fifo_latency_cycles: u64,
    /// Task-graph insertion cycles per parameter (IN).
    pub insert_cycles_per_param: u64,
    /// Arbiter cycles to gather one parameter result (AR).
    pub arbiter_cycles_per_result: u64,
    /// Arbiter cycles to conclude a task's final dependence count.
    pub arbiter_decide_cycles: u64,
    /// Internal Ready Tasks buffer forwarding latency (cycles).
    pub ready_fifo_latency_cycles: u64,
    /// Write Back cycles per ready task.
    pub writeback_cycles: u64,

    /// Cycles to receive a finished-task notification.
    pub finish_receive_cycles: u64,
    /// Input Parser cycles per parameter when re-distributing a finished task's
    /// input/output list from the Task Pool.
    pub finish_distribute_cycles_per_param: u64,
    /// Task-graph cleanup cycles per parameter of a finished task.
    pub delete_cycles_per_param: u64,
    /// Arbiter cycles per waiting-task dependence-count decrement.
    pub waiter_decrement_cycles: u64,

    /// Extra cycles for reaching an entry in the overflow (dummy-entry) area.
    pub overflow_penalty_cycles: u64,
    /// Extra cycles per additional kick-off-list segment traversed.
    pub kickoff_segment_penalty_cycles: u64,
}

impl Default for NexusSharpConfig {
    fn default() -> Self {
        Self::paper(6)
    }
}

impl NexusSharpConfig {
    /// The paper's evaluation configuration for a given number of task graphs,
    /// clocked at the Table I *test* frequency of that configuration
    /// (e.g. 6 task graphs at 55.56 MHz — the configuration used in Fig. 8).
    pub fn paper(task_graphs: usize) -> Self {
        let model = ResourceModel::paper_calibrated();
        let freq = model
            .estimate(ManagerConfig::NexusSharp {
                task_graphs: task_graphs as u32,
            })
            .test_freq_mhz;
        Self::at_mhz(task_graphs, freq)
    }

    /// A configuration forced to a specific frequency regardless of the number
    /// of task graphs (Fig. 7(a) runs every configuration at 100 MHz).
    pub fn at_mhz(task_graphs: usize, clock_mhz: f64) -> Self {
        NexusSharpConfig {
            task_graphs,
            clock_mhz,
            distribution: DistributionPolicy::XorHash,
            table_per_tg: SetAssocConfig::default(),
            task_pool_capacity: 512,
            retirement: RetirementOrder::FreeList,
            ip_header_cycles: 2,
            ip_cycles_per_param: 2,
            ip_finalize_cycles: 1,
            args_fifo_latency_cycles: 3,
            insert_cycles_per_param: 5,
            arbiter_cycles_per_result: 1,
            arbiter_decide_cycles: 1,
            ready_fifo_latency_cycles: 3,
            writeback_cycles: 3,
            finish_receive_cycles: 2,
            finish_distribute_cycles_per_param: 2,
            delete_cycles_per_param: 5,
            waiter_decrement_cycles: 1,
            overflow_penalty_cycles: 4,
            kickoff_segment_penalty_cycles: 2,
        }
    }

    /// The clock domain of the manager.
    pub fn clock(&self) -> ClockDomain {
        ClockDomain::from_mhz(self.clock_mhz)
    }

    /// Input Parser occupancy for a whole task of `params` parameters
    /// (header + per-parameter words + Task Pool write): 11 cycles for the
    /// 4-parameter example of Fig. 4.
    pub fn ip_cycles(&self, params: usize) -> u64 {
        self.ip_header_cycles + self.ip_cycles_per_param * params as u64 + self.ip_finalize_cycles
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.task_graphs == 0 || self.task_graphs > 32 {
            return Err(format!(
                "task graph count must be in 1..=32 (5-bit id), got {}",
                self.task_graphs
            ));
        }
        if self.clock_mhz <= 0.0 {
            return Err("clock frequency must be positive".into());
        }
        if self.task_pool_capacity == 0 {
            return Err("task pool capacity must be non-zero".into());
        }
        self.table_per_tg.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_use_table1_test_frequencies() {
        assert!((NexusSharpConfig::paper(1).clock_mhz - 100.0).abs() < 0.05);
        assert!((NexusSharpConfig::paper(2).clock_mhz - 100.0).abs() < 0.05);
        assert!((NexusSharpConfig::paper(4).clock_mhz - 83.33).abs() < 0.05);
        assert!((NexusSharpConfig::paper(6).clock_mhz - 55.56).abs() < 0.05);
        assert!((NexusSharpConfig::paper(8).clock_mhz - 41.66).abs() < 0.05);
    }

    #[test]
    fn four_param_input_parsing_matches_fig4() {
        let c = NexusSharpConfig::at_mhz(6, 100.0);
        // IPh (2) + 4 x IP (2) + IPf (1) = 11 cycles.
        assert_eq!(c.ip_cycles(4), 11);
        assert!(c.validate().is_ok());
        assert_eq!(c.clock().period(), nexus_sim::SimDuration::from_ns(10));
    }

    #[test]
    fn default_is_the_six_task_graph_configuration() {
        let c = NexusSharpConfig::default();
        assert_eq!(c.task_graphs, 6);
        assert_eq!(c.retirement, RetirementOrder::FreeList);
        assert_eq!(c.distribution, DistributionPolicy::XorHash);
    }

    #[test]
    fn validation_rejects_out_of_range_configs() {
        let mut c = NexusSharpConfig::paper(6);
        c.task_graphs = 0;
        assert!(c.validate().is_err());
        c.task_graphs = 64;
        assert!(c.validate().is_err());
        let mut c = NexusSharpConfig::paper(6);
        c.clock_mhz = -1.0;
        assert!(c.validate().is_err());
    }
}
