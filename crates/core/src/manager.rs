//! The Nexus# discrete-event model (implements [`TaskManager`]).

use crate::config::NexusSharpConfig;
use crate::distribution::Distributor;
use nexus_host::manager::{ManagerEvent, TaskManager};
use nexus_sim::{ClockDomain, FxHashMap, SerialResource, SimDuration, SimTime};
use nexus_taskgraph::{DepCountsTable, DependencyTracker, TaskPool};
use nexus_trace::{TaskDescriptor, TaskId};

/// The distributed Nexus# hardware task manager.
pub struct NexusSharp {
    config: NexusSharpConfig,
    clock: ClockDomain,
    distributor: Distributor,

    /// Nexus IO + Input Parser front-end (serial): streams in new tasks,
    /// receives completion notifications, re-distributes finished tasks'
    /// parameter lists from the Task Pool.
    input_parser: SerialResource,
    /// Per-task-graph insert/cleanup engines.
    tg_engines: Vec<SerialResource>,
    /// The Dependence Counts Arbiter.
    arbiter: SerialResource,
    /// The Write Back port (reads the Function Pointers table and forwards
    /// ready ids to the Nexus IO unit).
    writeback: SerialResource,

    /// Functional dependency state, one tracker per task graph.
    trackers: Vec<DependencyTracker>,
    /// The arbiter's per-task gathering state and global dependence counts.
    dep_counts: DepCountsTable,
    /// Bounded in-flight task storage with free-list recycling.
    pool: TaskPool,
    /// Parameter lists of in-flight tasks (the Task Pool contents used when a
    /// finished task's addresses are re-distributed).
    params: FxHashMap<TaskId, Vec<nexus_trace::TaskParam>>,
    /// Retired parameter-list buffers, reused for the next submission (the
    /// managers churn through one list per task; recycling the allocations
    /// keeps the event hot path allocation-free in steady state).
    param_arena: Vec<Vec<nexus_trace::TaskParam>>,

    pending: Vec<ManagerEvent>,
    tasks_submitted: u64,
    tasks_retired: u64,
    ready_immediately: u64,
    last_activity: SimTime,
}

impl NexusSharp {
    /// Creates a Nexus# model with the given configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(config: NexusSharpConfig) -> Self {
        config.validate().expect("invalid Nexus# configuration");
        NexusSharp {
            clock: config.clock(),
            distributor: Distributor::new(config.distribution, config.task_graphs),
            input_parser: SerialResource::new(),
            tg_engines: (0..config.task_graphs)
                .map(|_| SerialResource::new())
                .collect(),
            arbiter: SerialResource::new(),
            writeback: SerialResource::new(),
            trackers: (0..config.task_graphs)
                .map(|_| DependencyTracker::new(config.table_per_tg))
                .collect(),
            dep_counts: DepCountsTable::new(),
            pool: TaskPool::new(config.task_pool_capacity, config.retirement),
            params: FxHashMap::default(),
            param_arena: Vec::new(),
            pending: Vec::new(),
            tasks_submitted: 0,
            tasks_retired: 0,
            ready_immediately: 0,
            last_activity: SimTime::ZERO,
            config,
        }
    }

    /// The paper's evaluation configuration: `task_graphs` task graphs clocked
    /// at their Table I test frequency.
    pub fn paper(task_graphs: usize) -> Self {
        Self::new(NexusSharpConfig::paper(task_graphs))
    }

    /// A configuration forced to a specific clock (Fig. 7(a) uses 100 MHz for
    /// every task-graph count).
    pub fn at_mhz(task_graphs: usize, mhz: f64) -> Self {
        Self::new(NexusSharpConfig::at_mhz(task_graphs, mhz))
    }

    /// The configuration in use.
    pub fn config(&self) -> &NexusSharpConfig {
        &self.config
    }

    /// The load-balance statistics of the distribution function so far.
    pub fn distribution_balance(&self) -> nexus_sim::stats::LoadBalance {
        self.distributor.balance()
    }

    fn cycles(&self, n: u64) -> SimDuration {
        self.clock.cycles(n)
    }

    fn args_fifo(&self) -> SimDuration {
        self.cycles(self.config.args_fifo_latency_cycles)
    }

    /// Ready id goes through the Internal Ready Tasks buffer and Write Back.
    fn write_back_ready(&mut self, task: TaskId, not_before: SimTime) {
        let res = self.writeback.acquire_after(
            not_before,
            not_before + self.cycles(self.config.ready_fifo_latency_cycles),
            self.cycles(self.config.writeback_cycles),
        );
        self.pending.push(ManagerEvent::Ready { task, at: res.end });
    }
}

impl TaskManager for NexusSharp {
    fn name(&self) -> String {
        format!("Nexus# ({} TGs)", self.config.task_graphs)
    }

    fn supports_taskwait_on(&self) -> bool {
        true
    }

    fn can_accept(&self, _now: SimTime) -> bool {
        self.pool.has_free_slot()
    }

    fn submit(&mut self, task: &TaskDescriptor, now: SimTime) -> SimTime {
        self.tasks_submitted += 1;
        self.last_activity = self.last_activity.max(now);
        let n_params = task.num_params();
        self.dep_counts.begin_task(task.id, n_params as u32);

        // IPh: receive the header word (function pointer + parameter count).
        let header = self
            .input_parser
            .acquire(now, self.cycles(self.config.ip_header_cycles));
        let mut ip_cursor = header.end;

        let mut any_blocked = false;
        let mut decision: Option<(bool, SimTime)> = None;

        for p in &task.params {
            // IP: receive the two words of this address and distribute it
            // immediately to its task graph's New Args. buffer.
            let ip = self
                .input_parser
                .acquire(ip_cursor, self.cycles(self.config.ip_cycles_per_param));
            ip_cursor = ip.end;

            let tg = self.distributor.pick(p.addr);
            let outcome = self.trackers[tg].insert_param(task.id, p.addr, p.dir);
            any_blocked |= outcome.blocked;

            // IN: the task graph inserts the address once it emerges from the
            // New Args. buffer and the engine is free.
            let mut insert_cycles = self.config.insert_cycles_per_param;
            if outcome.overflow {
                insert_cycles += self.config.overflow_penalty_cycles;
            }
            if outcome.kickoff_segment > 1 {
                // Appending to a chained (dummy-entry) segment costs one extra
                // pointer chase; the hardware keeps a tail pointer, so the cost
                // does not grow with the list length.
                insert_cycles += self.config.kickoff_segment_penalty_cycles;
            }
            let fifo = self.args_fifo();
            let insert_service = self.cycles(insert_cycles);
            let ins = self.tg_engines[tg].acquire_after(ip.end, ip.end + fifo, insert_service);

            // AR: the arbiter gathers this parameter's result (from the Rdy
            // Tasks or Dep. Counts buffer of that task graph).
            let ar = self.arbiter.acquire_after(
                ins.end,
                ins.end,
                self.cycles(self.config.arbiter_cycles_per_result),
            );

            if let Some(ready) = self.dep_counts.param_processed(task.id, outcome.blocked) {
                decision = Some((ready, ar.end));
            }
        }

        // IPf: store the descriptor in the Task Pool.
        let ipf = self
            .input_parser
            .acquire(ip_cursor, self.cycles(self.config.ip_finalize_cycles));
        self.pool
            .admit(task.clone())
            .expect("driver must check can_accept before submitting");
        let mut buf = self.param_arena.pop().unwrap_or_default();
        buf.clear();
        buf.extend_from_slice(&task.params);
        self.params.insert(task.id, buf);

        // The arbiter concludes the final dependence count once the last
        // parameter's result has been gathered.
        let (ready, gathered_at) = decision.expect("every task has at least one parameter");
        let decide = self.arbiter.acquire_after(
            gathered_at,
            gathered_at,
            self.cycles(self.config.arbiter_decide_cycles),
        );
        if ready {
            debug_assert!(!any_blocked);
            self.ready_immediately += 1;
            self.write_back_ready(task.id, decide.end);
        }

        // The master is released when the descriptor transfer completes.
        ipf.end
    }

    fn finish(&mut self, task: TaskId, now: SimTime) -> SimTime {
        self.last_activity = self.last_activity.max(now);

        // The completion notification is received by the Nexus IO / Input
        // Parser, which then reads the task's input/output list from the Task
        // Pool and re-distributes it to the Finished Args. buffers.
        let recv = self
            .input_parser
            .acquire(now, self.cycles(self.config.finish_receive_cycles));

        let params = self
            .params
            .remove(&task)
            .expect("finish() for a task that was never submitted");
        let mut ip_cursor = recv.end;
        let mut retire_at = recv.end;

        for p in &params {
            let dist = self.input_parser.acquire(
                ip_cursor,
                self.cycles(self.config.finish_distribute_cycles_per_param),
            );
            ip_cursor = dist.end;

            let tg = self.distributor.pick_readonly(p.addr);
            let out = self.trackers[tg].retire_param(task, p.addr, p.dir);

            // Task-graph cleanup: delete the entry and walk the kick-off list.
            let mut delete_cycles = self.config.delete_cycles_per_param;
            delete_cycles +=
                self.config.kickoff_segment_penalty_cycles * (out.waiters_scanned as u64 / 8);
            let fifo = self.args_fifo();
            let delete_service = self.cycles(delete_cycles);
            let del = self.tg_engines[tg].acquire_after(dist.end, dist.end + fifo, delete_service);
            retire_at = retire_at.max(del.end);

            // Waiting tasks found in the kick-off list are written to the Wait.
            // Tasks buffer; the arbiter decrements their dependence counts one
            // by one and decides whether they are ready.
            for released in out.released {
                let ar = self.arbiter.acquire_after(
                    del.end,
                    del.end,
                    self.cycles(self.config.waiter_decrement_cycles),
                );
                if self.dep_counts.release_one(released) {
                    self.write_back_ready(released, ar.end);
                }
                retire_at = retire_at.max(ar.end);
            }
        }

        self.pool.finish(task);
        self.param_arena.push(params);
        self.tasks_retired += 1;
        self.pending.push(ManagerEvent::Retired {
            task,
            at: retire_at,
        });

        // The worker is released once its notification has been accepted.
        recv.end
    }

    fn drain_events(&mut self) -> Vec<ManagerEvent> {
        std::mem::take(&mut self.pending)
    }

    fn drain_events_into(&mut self, out: &mut Vec<ManagerEvent>) {
        out.append(&mut self.pending);
    }

    fn stats_summary(&self) -> Vec<(String, f64)> {
        let horizon = self.last_activity;
        let tg_utils: Vec<f64> = self
            .tg_engines
            .iter()
            .map(|e| e.utilization(horizon))
            .collect();
        let max_tg_util = tg_utils.iter().copied().fold(0.0, f64::max);
        let avg_tg_util = if tg_utils.is_empty() {
            0.0
        } else {
            tg_utils.iter().sum::<f64>() / tg_utils.len() as f64
        };
        let max_kickoff = self
            .trackers
            .iter()
            .map(|t| t.stats().max_kickoff_len)
            .max()
            .unwrap_or(0);
        vec![
            ("tasks_submitted".into(), self.tasks_submitted as f64),
            ("tasks_retired".into(), self.tasks_retired as f64),
            ("ready_immediately".into(), self.ready_immediately as f64),
            (
                "input_parser_utilization".into(),
                self.input_parser.utilization(horizon),
            ),
            (
                "arbiter_utilization".into(),
                self.arbiter.utilization(horizon),
            ),
            (
                "writeback_utilization".into(),
                self.writeback.utilization(horizon),
            ),
            ("tg_utilization_avg".into(), avg_tg_util),
            ("tg_utilization_max".into(), max_tg_util),
            (
                "distribution_imbalance".into(),
                self.distributor.balance().imbalance(),
            ),
            (
                "pool_peak_occupancy".into(),
                self.pool.stats().peak_occupancy as f64,
            ),
            ("max_kickoff_list".into(), max_kickoff as f64),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexus_host::driver::{simulate, HostConfig};
    use nexus_host::IdealManager;
    use nexus_pp::NexusPP;
    use nexus_sim::SimDuration;
    use nexus_trace::generators::micro;

    #[test]
    fn single_task_latency_matches_the_fig4_walkthrough() {
        // One 4-parameter task through a 4-TG Nexus# at 100 MHz with empty
        // buffers: the last parameter is received at cycle 10, inserted by
        // cycle 10+3+5 = 18, gathered at 19, decided at 20, and written back
        // after the 3-cycle ready FIFO and 3-cycle WB at cycle 26.
        let mut m = NexusSharp::at_mhz(4, 100.0);
        let trace = micro::single_task(4, SimDuration::from_us(1));
        let task = trace.tasks().next().unwrap();
        let release = m.submit(task, SimTime::ZERO);
        // Master busy for IPh + 4*IP + IPf = 11 cycles = 110 ns.
        assert_eq!(release, SimTime::from_ps(110_000));
        let events = m.drain_events();
        assert_eq!(events.len(), 1);
        match events[0] {
            ManagerEvent::Ready { task: t, at } => {
                assert_eq!(t, task.id);
                // All four parameters map to distinct TGs only if the hash is
                // lucky; with the strided micro addresses at least the last
                // parameter's insert dominates. The ready time must be no
                // earlier than the analytic best case (26 cycles) and well
                // under the Nexus++ latency (39 cycles).
                assert!(at >= SimTime::from_ps(260_000), "{at}");
                assert!(at <= SimTime::from_ps(390_000), "{at}");
            }
            _ => panic!("expected a ready event"),
        }
    }

    #[test]
    fn ready_throughput_beats_nexus_pp_for_fine_tasks() {
        // "the write back stage ... took place every other 18 cycles in the old
        // pipeline ... this number decreased significantly to 11 cycles".
        // Measured end-to-end: a burst of independent fine tasks must drain
        // faster through Nexus# (6 TGs) than through Nexus++ at the same clock.
        let trace = micro::independent_tasks(200, 4, SimDuration::from_us(2));
        let cfg = HostConfig::with_workers(64);
        let sharp = simulate(&trace, &mut NexusSharp::at_mhz(6, 100.0), &cfg);
        let pp = simulate(&trace, &mut NexusPP::paper(), &cfg);
        assert!(
            sharp.makespan < pp.makespan,
            "Nexus# {} vs Nexus++ {}",
            sharp.makespan,
            pp.makespan
        );
    }

    #[test]
    fn dependent_chain_is_functionally_correct() {
        let trace = micro::chain(50, SimDuration::from_us(3));
        let out = simulate(
            &trace,
            &mut NexusSharp::paper(6),
            &HostConfig::with_workers(8),
        );
        assert_eq!(out.tasks, 50);
        // A chain cannot exceed speedup 1.
        assert!(out.speedup() <= 1.0 + 1e-9);
    }

    #[test]
    fn coarse_tasks_reach_ideal_speedup() {
        let trace = micro::independent_tasks(128, 2, SimDuration::from_us(6000));
        let cfg = HostConfig::with_workers(32);
        let ideal = simulate(&trace, &mut IdealManager::new(), &cfg);
        let sharp = simulate(&trace, &mut NexusSharp::paper(6), &cfg);
        assert!(
            sharp.speedup() > 0.97 * ideal.speedup(),
            "{} vs {}",
            sharp.speedup(),
            ideal.speedup()
        );
    }

    #[test]
    fn wavefront_works_with_every_task_graph_count() {
        let trace = micro::wavefront(10, 16, SimDuration::from_us(20));
        for tgs in [1usize, 2, 4, 6, 8] {
            let out = simulate(
                &trace,
                &mut NexusSharp::at_mhz(tgs, 100.0),
                &HostConfig::with_workers(16),
            );
            assert_eq!(out.tasks, 160, "{tgs} TGs");
            assert!(out.speedup() > 1.0, "{tgs} TGs: {}", out.speedup());
        }
    }

    #[test]
    fn pool_backpressure_is_reported() {
        let mut cfg = NexusSharpConfig::paper(2);
        cfg.task_pool_capacity = 4;
        let mut m = NexusSharp::new(cfg);
        let trace = micro::independent_tasks(16, 1, SimDuration::from_us(50));
        let out = simulate(&trace, &mut m, &HostConfig::with_workers(2));
        assert_eq!(out.tasks, 16);
        assert!(out.master_backpressure_time > SimDuration::ZERO);
    }

    #[test]
    fn stats_summary_reports_distribution_balance() {
        let trace = micro::independent_tasks(100, 3, SimDuration::from_us(5));
        let mut m = NexusSharp::paper(4);
        simulate(&trace, &mut m, &HostConfig::with_workers(8));
        let stats: std::collections::HashMap<String, f64> = m.stats_summary().into_iter().collect();
        assert_eq!(stats["tasks_submitted"], 100.0);
        assert_eq!(stats["tasks_retired"], 100.0);
        assert!(stats["distribution_imbalance"] >= 1.0);
        assert!(stats["input_parser_utilization"] > 0.0);
        assert!(stats["tg_utilization_avg"] > 0.0);
    }

    #[test]
    fn gaussian_pattern_exercises_long_kickoff_lists() {
        // The first pivot row is awaited by n-1 tasks: the kick-off list grows
        // unbounded and must still resolve correctly.
        let trace = nexus_trace::generators::gaussian::generate(60);
        let out = simulate(
            &trace,
            &mut NexusSharp::paper(2),
            &HostConfig::with_workers(16),
        );
        assert_eq!(out.tasks as usize, trace.task_count());
        let mut m = NexusSharp::paper(2);
        simulate(&trace, &mut m, &HostConfig::with_workers(16));
        let stats: std::collections::HashMap<String, f64> = m.stats_summary().into_iter().collect();
        assert!(
            stats["max_kickoff_list"] >= 50.0,
            "{}",
            stats["max_kickoff_list"]
        );
    }
}
