//! Cluster simulation outcomes: per-node [`SimOutcome`]s plus aggregate and
//! interconnect metrics.

use crate::routing::EdgeStats;
use nexus_host::SimOutcome;
use nexus_obs::Registry;
use nexus_sim::stats::LoadBalance;
use nexus_sim::SimDuration;
use nexus_trace::TaskId;
use serde::{Deserialize, Serialize};

/// Traffic aggregated over one fabric tier (e.g. all intra-rack links, or
/// all inter-rack trunks).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TierStats {
    /// Tier index (0 = most local).
    pub tier: usize,
    /// Tier name from the fabric (e.g. `"intra-rack"`, `"inter-rack"`,
    /// `"global"`, `"hop"`).
    pub name: String,
    /// Physical links in the tier.
    pub links: usize,
    /// Messages that entered a link of this tier (multi-hop messages count
    /// once per hop).
    pub messages: u64,
    /// Link-words that crossed this tier.
    pub words: u64,
    /// Aggregate wire-busy (serialization) time over the tier's links.
    pub busy_time: SimDuration,
    /// Aggregate time messages queued behind earlier traffic on this tier.
    pub wait_time: SimDuration,
}

/// Aggregate interconnect traffic of one cluster run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkStats {
    /// Messages that entered a link (multi-hop messages count once per hop).
    pub messages: u64,
    /// 32-bit link-words that crossed the network (multi-hop messages pay
    /// their words on every hop).
    pub words: u64,
    /// Aggregate wire-busy (serialization) time over all links.
    pub busy_time: SimDuration,
    /// Aggregate time messages queued behind earlier traffic.
    pub wait_time: SimDuration,
    /// Utilization of the busiest link over the makespan.
    pub peak_utilization: f64,
    /// Per-tier traffic, in tier order (tier 0 first). Uniform fabrics have
    /// exactly one tier.
    pub per_tier: Vec<TierStats>,
}

impl LinkStats {
    /// Link-words that crossed the tier called `name`, 0 if the fabric has no
    /// such tier (e.g. `tier_words("inter-rack")` on a full mesh).
    pub fn tier_words(&self, name: &str) -> u64 {
        self.per_tier
            .iter()
            .filter(|t| t.name == name)
            .map(|t| t.words)
            .sum()
    }
}

/// The result of one multi-node cluster simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterOutcome {
    /// Name of the benchmark trace.
    pub benchmark: String,
    /// Name of the per-node task manager.
    pub manager: String,
    /// Name of the placement policy that routed the tasks.
    pub placement: String,
    /// Name of the work-stealing policy (`"off"` when disabled).
    pub stealing: String,
    /// Name of the interconnect fabric the run was wired with (includes the
    /// derived shape, e.g. `"racktiers-r2"`).
    pub topology: String,
    /// Number of nodes simulated.
    pub nodes: usize,
    /// Worker cores per node.
    pub workers_per_node: usize,
    /// End-to-end cluster execution time.
    pub makespan: SimDuration,
    /// Sum of all task durations.
    pub total_work: SimDuration,
    /// Number of tasks executed (cluster-wide).
    pub tasks: u64,
    /// Time the master spent blocked on barriers.
    pub master_barrier_time: SimDuration,
    /// One [`SimOutcome`] per node (local makespan, work, idle time, manager
    /// diagnostics).
    pub per_node: Vec<SimOutcome>,
    /// Dependency-edge census under the cluster routing.
    pub edges: EdgeStats,
    /// Cross-node dependency notifications forwarded over the interconnect.
    pub notifications: u64,
    /// Descriptors stolen by idle nodes (re-forwarded over the interconnect).
    pub steals: u64,
    /// Steal requests that found no eligible descriptor at the victim.
    pub steal_failures: u64,
    /// Dependence-blocked descriptors reclaimed out of loaded pools by idle
    /// nodes (0 unless [`FeedbackKind`](nexus_sched::FeedbackKind) enables
    /// reclamation).
    #[serde(default)]
    pub reclaims: u64,
    /// Reclaim requests that found no blocked descriptor at the victim.
    #[serde(default)]
    pub reclaim_failures: u64,
    /// Discrete events processed by the cluster event loop (the simulator's
    /// unit of work — `sim_events / wall_seconds` is the engine's events/sec).
    pub sim_events: u64,
    /// Interconnect traffic summary.
    pub link: LinkStats,
    /// Deepest per-node backlog of tasks waiting for remote dependencies or
    /// manager capacity.
    pub max_pending_depth: usize,
    /// The master's final last-writer table — `(address, producer)` pairs in
    /// ascending address order at the end of the run. This is the semantic
    /// fingerprint of the dataflow execution: any runtime executing the same
    /// trace under the same routing must converge to the same table (the
    /// `nexus-rt` conformance suite checks exactly that).
    pub master_last_writer: Vec<(u64, TaskId)>,
    /// The metrics registry the scalar fields above are views over
    /// (`task.*`, `steal.*`, `notify.*`, `link.*`, `sim.*`; plus `stream.*`
    /// on open-loop streaming runs). Key names are shared with the live
    /// runtime's `ShutdownReport` so the conformance suite can compare both
    /// sides directly. Deterministic — the engine-equivalence grid compares
    /// it bit for bit.
    pub metrics: Registry,
}

impl ClusterOutcome {
    /// Speedup relative to the single-core ideal execution time (the paper's
    /// definition, extended cluster-wide).
    pub fn speedup(&self) -> f64 {
        if self.makespan.is_zero() {
            0.0
        } else {
            self.total_work.as_us_f64() / self.makespan.as_us_f64()
        }
    }

    /// Parallel efficiency over all worker cores in the cluster.
    pub fn efficiency(&self) -> f64 {
        let workers = self.nodes * self.workers_per_node;
        if workers == 0 {
            0.0
        } else {
            self.speedup() / workers as f64
        }
    }

    /// Fraction of dependency edges that crossed nodes.
    pub fn remote_edge_fraction(&self) -> f64 {
        self.edges.remote_fraction()
    }

    /// Tasks executed per node.
    pub fn node_tasks(&self) -> Vec<u64> {
        self.per_node.iter().map(|o| o.tasks).collect()
    }

    /// Load balance of task placement across the nodes.
    pub fn balance(&self) -> LoadBalance {
        LoadBalance::new(self.node_tasks())
    }

    /// A one-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<28} {:<18} {}x{:<3} cores  makespan {:>12}  speedup {:>7.2}x  remote {:>5.1}%  link peak {:>5.1}%",
            self.benchmark,
            self.manager,
            self.nodes,
            self.workers_per_node,
            format!("{}", self.makespan),
            self.speedup(),
            self.remote_edge_fraction() * 100.0,
            self.link.peak_utilization * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(makespan_us: u64, work_us: u64) -> ClusterOutcome {
        ClusterOutcome {
            benchmark: "unit".into(),
            manager: "test".into(),
            placement: "xorhash".into(),
            stealing: "off".into(),
            topology: "mesh".into(),
            nodes: 2,
            workers_per_node: 4,
            makespan: SimDuration::from_us(makespan_us),
            total_work: SimDuration::from_us(work_us),
            tasks: 10,
            master_barrier_time: SimDuration::ZERO,
            per_node: Vec::new(),
            edges: EdgeStats {
                total: 10,
                remote: 3,
            },
            notifications: 3,
            steals: 0,
            steal_failures: 0,
            reclaims: 0,
            reclaim_failures: 0,
            sim_events: 42,
            link: LinkStats {
                messages: 3,
                words: 6,
                busy_time: SimDuration::ZERO,
                wait_time: SimDuration::ZERO,
                peak_utilization: 0.0,
                per_tier: vec![
                    TierStats {
                        tier: 0,
                        name: "intra-rack".into(),
                        links: 4,
                        messages: 2,
                        words: 4,
                        busy_time: SimDuration::ZERO,
                        wait_time: SimDuration::ZERO,
                    },
                    TierStats {
                        tier: 1,
                        name: "inter-rack".into(),
                        links: 2,
                        messages: 1,
                        words: 2,
                        busy_time: SimDuration::ZERO,
                        wait_time: SimDuration::ZERO,
                    },
                ],
            },
            max_pending_depth: 1,
            master_last_writer: Vec::new(),
            metrics: Registry::new(),
        }
    }

    #[test]
    fn derived_metrics() {
        let o = outcome(250, 1000);
        assert!((o.speedup() - 4.0).abs() < 1e-12);
        assert!((o.efficiency() - 0.5).abs() < 1e-12);
        assert!((o.remote_edge_fraction() - 0.3).abs() < 1e-12);
        assert!(o.summary().contains("4.00x"));
    }

    #[test]
    fn zero_makespan_is_benign() {
        let o = outcome(0, 0);
        assert_eq!(o.speedup(), 0.0);
    }

    #[test]
    fn tier_words_sum_by_name_and_ignore_missing_tiers() {
        let o = outcome(10, 10);
        assert_eq!(o.link.tier_words("intra-rack"), 4);
        assert_eq!(o.link.tier_words("inter-rack"), 2);
        assert_eq!(o.link.tier_words("global"), 0);
    }
}
