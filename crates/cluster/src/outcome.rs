//! Cluster simulation outcomes: per-node [`SimOutcome`]s plus aggregate and
//! interconnect metrics.

use crate::routing::EdgeStats;
use nexus_host::SimOutcome;
use nexus_sim::stats::LoadBalance;
use nexus_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Aggregate interconnect traffic of one cluster run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkStats {
    /// Messages that crossed the network (descriptors + notifications).
    pub messages: u64,
    /// 32-bit words that crossed the network.
    pub words: u64,
    /// Aggregate wire-busy (serialization) time over all links.
    pub busy_time: SimDuration,
    /// Aggregate time messages queued behind earlier traffic.
    pub wait_time: SimDuration,
    /// Utilization of the busiest link over the makespan.
    pub peak_utilization: f64,
}

/// The result of one multi-node cluster simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterOutcome {
    /// Name of the benchmark trace.
    pub benchmark: String,
    /// Name of the per-node task manager.
    pub manager: String,
    /// Name of the placement policy that routed the tasks.
    pub placement: String,
    /// Name of the work-stealing policy (`"off"` when disabled).
    pub stealing: String,
    /// Number of nodes simulated.
    pub nodes: usize,
    /// Worker cores per node.
    pub workers_per_node: usize,
    /// End-to-end cluster execution time.
    pub makespan: SimDuration,
    /// Sum of all task durations.
    pub total_work: SimDuration,
    /// Number of tasks executed (cluster-wide).
    pub tasks: u64,
    /// Time the master spent blocked on barriers.
    pub master_barrier_time: SimDuration,
    /// One [`SimOutcome`] per node (local makespan, work, idle time, manager
    /// diagnostics).
    pub per_node: Vec<SimOutcome>,
    /// Dependency-edge census under the cluster routing.
    pub edges: EdgeStats,
    /// Cross-node dependency notifications forwarded over the interconnect.
    pub notifications: u64,
    /// Descriptors stolen by idle nodes (re-forwarded over the interconnect).
    pub steals: u64,
    /// Steal requests that found no eligible descriptor at the victim.
    pub steal_failures: u64,
    /// Interconnect traffic summary.
    pub link: LinkStats,
    /// Deepest per-node backlog of tasks waiting for remote dependencies or
    /// manager capacity.
    pub max_pending_depth: usize,
}

impl ClusterOutcome {
    /// Speedup relative to the single-core ideal execution time (the paper's
    /// definition, extended cluster-wide).
    pub fn speedup(&self) -> f64 {
        if self.makespan.is_zero() {
            0.0
        } else {
            self.total_work.as_us_f64() / self.makespan.as_us_f64()
        }
    }

    /// Parallel efficiency over all worker cores in the cluster.
    pub fn efficiency(&self) -> f64 {
        let workers = self.nodes * self.workers_per_node;
        if workers == 0 {
            0.0
        } else {
            self.speedup() / workers as f64
        }
    }

    /// Fraction of dependency edges that crossed nodes.
    pub fn remote_edge_fraction(&self) -> f64 {
        self.edges.remote_fraction()
    }

    /// Tasks executed per node.
    pub fn node_tasks(&self) -> Vec<u64> {
        self.per_node.iter().map(|o| o.tasks).collect()
    }

    /// Load balance of task placement across the nodes.
    pub fn balance(&self) -> LoadBalance {
        LoadBalance::new(self.node_tasks())
    }

    /// A one-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<28} {:<18} {}x{:<3} cores  makespan {:>12}  speedup {:>7.2}x  remote {:>5.1}%  link peak {:>5.1}%",
            self.benchmark,
            self.manager,
            self.nodes,
            self.workers_per_node,
            format!("{}", self.makespan),
            self.speedup(),
            self.remote_edge_fraction() * 100.0,
            self.link.peak_utilization * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(makespan_us: u64, work_us: u64) -> ClusterOutcome {
        ClusterOutcome {
            benchmark: "unit".into(),
            manager: "test".into(),
            placement: "xorhash".into(),
            stealing: "off".into(),
            nodes: 2,
            workers_per_node: 4,
            makespan: SimDuration::from_us(makespan_us),
            total_work: SimDuration::from_us(work_us),
            tasks: 10,
            master_barrier_time: SimDuration::ZERO,
            per_node: Vec::new(),
            edges: EdgeStats {
                total: 10,
                remote: 3,
            },
            notifications: 3,
            steals: 0,
            steal_failures: 0,
            link: LinkStats {
                messages: 3,
                words: 6,
                busy_time: SimDuration::ZERO,
                wait_time: SimDuration::ZERO,
                peak_utilization: 0.0,
            },
            max_pending_depth: 1,
        }
    }

    #[test]
    fn derived_metrics() {
        let o = outcome(250, 1000);
        assert!((o.speedup() - 4.0).abs() < 1e-12);
        assert!((o.efficiency() - 0.5).abs() < 1e-12);
        assert!((o.remote_edge_fraction() - 0.3).abs() < 1e-12);
        assert!(o.summary().contains("4.00x"));
    }

    #[test]
    fn zero_makespan_is_benign() {
        let o = outcome(0, 0);
        assert_eq!(o.speedup(), 0.0);
    }
}
