//! The cluster interconnect: one serializing [`LinkResource`] per link of the
//! configured [`Fabric`], with store-and-forward multi-hop routing.
//!
//! Every message follows its fabric route hop by hop: at each hop it queues
//! behind earlier traffic on that link, pays `words × per_word` serialization
//! and then the link's propagation latency before it may enter the next hop.
//! The sender is free again as soon as the *first* hop has been serialized
//! (downstream hops are the fabric's problem).
//!
//! Hops are driven individually through [`Interconnect::send_hop`]: the
//! cluster driver relays each message through its event queue, acquiring
//! every link at the message's *physical arrival time* at that link. Links
//! are therefore work-conserving FIFOs in arrival order — a message never
//! waits behind traffic that reaches the link after it does (no non-causal
//! future reservations). On the degenerate uniform fabrics (`SharedBus` /
//! `FullMesh`) every route is a single hop, which reproduces the original
//! uniform interconnect exactly; on tiered fabrics shared trunks contend
//! across all node pairs that route over them.

use crate::config::LinkConfig;
use crate::outcome::TierStats;
use nexus_sim::{LinkDelivery, LinkResource, SimDuration, SimTime};
use nexus_topo::{DistanceMatrix, Fabric};

/// The network connecting the cluster nodes.
#[derive(Debug, Clone)]
pub struct Interconnect {
    fabric: Fabric,
    /// One serializing wire per fabric link (same indices).
    links: Vec<LinkResource>,
    distances: DistanceMatrix,
}

impl Interconnect {
    /// Builds the interconnect for `nodes` nodes from the link configuration
    /// (the fabric is derived via [`LinkConfig::fabric`]).
    ///
    /// # Panics
    /// Panics if `nodes` is zero.
    pub fn new(nodes: usize, cfg: &LinkConfig) -> Self {
        assert!(nodes > 0, "need at least one node");
        Self::with_fabric(cfg.fabric(nodes))
    }

    /// Builds the interconnect over an explicit fabric (custom rack/group
    /// sizes, hand-built graphs, …).
    pub fn with_fabric(fabric: Fabric) -> Self {
        let links = fabric
            .links()
            .iter()
            .map(|spec| LinkResource::new(spec.latency, spec.per_word))
            .collect();
        let distances = fabric.distances();
        Interconnect {
            fabric,
            links,
            distances,
        }
    }

    /// The fabric this interconnect instantiates.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// The fabric's distance matrix (precomputed once at construction).
    pub fn distances(&self) -> &DistanceMatrix {
        &self.distances
    }

    /// Number of hops on the route from `from` to `to` (0 for `from == to`).
    #[inline]
    pub fn hops(&self, from: usize, to: usize) -> usize {
        self.fabric.route(from, to).len()
    }

    /// Serializes a `words`-word message onto hop `hop` of the `from → to`
    /// route at `now` — the message's physical arrival time at that link.
    /// Returns when the hop's sender side is free again and when the message
    /// reaches the far end of the hop (ready to enter hop `hop + 1`, or the
    /// destination node on the last hop).
    ///
    /// Callers must drive hops in arrival-time order (the cluster driver
    /// relays through its event queue), which keeps every link a causal,
    /// work-conserving FIFO.
    #[inline]
    pub fn send_hop(
        &mut self,
        from: usize,
        to: usize,
        hop: usize,
        words: u64,
        now: SimTime,
    ) -> LinkDelivery {
        debug_assert!(from < self.fabric.nodes() && to < self.fabric.nodes());
        let route = self.fabric.route(from, to);
        self.links[route[hop]].send(now, words)
    }

    /// Identifies hop `hop` of the `from → to` route as a `(link index,
    /// tier)` pair — the coordinates span tracing stamps onto
    /// `SpanEvent::LinkHop` events.
    #[inline]
    pub fn hop_link(&self, from: usize, to: usize, hop: usize) -> (usize, usize) {
        let link = self.fabric.route(from, to)[hop];
        (link, self.fabric.links()[link].tier)
    }

    /// Total messages that entered a link (multi-hop messages count once per
    /// hop).
    pub fn messages(&self) -> u64 {
        self.links.iter().map(|l| l.messages()).sum()
    }

    /// Total link-words that crossed the network (multi-hop messages pay
    /// their words on every hop).
    pub fn words(&self) -> u64 {
        self.links.iter().map(|l| l.words()).sum()
    }

    /// Aggregate wire-busy time over all links.
    pub fn busy_time(&self) -> SimDuration {
        self.links.iter().map(|l| l.busy_time()).sum()
    }

    /// Aggregate time messages spent queued behind earlier traffic.
    pub fn wait_time(&self) -> SimDuration {
        self.links.iter().map(|l| l.wait_time()).sum()
    }

    /// Utilization of the busiest link over `[0, horizon]`.
    pub fn peak_utilization(&self, horizon: SimTime) -> f64 {
        self.links
            .iter()
            .map(|l| l.utilization(horizon))
            .fold(0.0, f64::max)
    }

    /// Traffic aggregated per fabric tier, in tier order (tier 0 first).
    pub fn tier_stats(&self) -> Vec<TierStats> {
        (0..self.fabric.tier_count())
            .map(|tier| {
                let mut stats = TierStats {
                    tier,
                    name: self.fabric.tier_name(tier).to_string(),
                    links: 0,
                    messages: 0,
                    words: 0,
                    busy_time: SimDuration::ZERO,
                    wait_time: SimDuration::ZERO,
                };
                for (spec, link) in self.fabric.links().iter().zip(&self.links) {
                    if spec.tier == tier {
                        stats.links += 1;
                        stats.messages += link.messages();
                        stats.words += link.words();
                        stats.busy_time += link.busy_time();
                        stats.wait_time += link.wait_time();
                    }
                }
                stats
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Topology;
    use nexus_topo::{rack_tiers, RACK_TRUNK_LATENCY_X};

    fn us(v: u64) -> SimDuration {
        SimDuration::from_us(v)
    }

    /// Walks every hop of one message back to back (no interleaved traffic),
    /// as the driver's relay events would with an otherwise idle fabric.
    fn send_alone(
        net: &mut Interconnect,
        from: usize,
        to: usize,
        words: u64,
        now: SimTime,
    ) -> LinkDelivery {
        let hops = net.hops(from, to);
        let mut d = LinkDelivery {
            sender_free: now,
            delivered: now,
        };
        for hop in 0..hops {
            let h = net.send_hop(from, to, hop, words, d.delivered);
            if hop == 0 {
                d.sender_free = h.sender_free;
            }
            d.delivered = h.delivered;
        }
        d
    }

    #[test]
    fn local_routes_have_no_hops() {
        let net = Interconnect::new(2, &LinkConfig::ethernet());
        assert_eq!(net.hops(1, 1), 0);
        assert_eq!(net.hops(0, 1), 1);
        assert_eq!(net.messages(), 0);
    }

    #[test]
    fn bus_serializes_unrelated_pairs_but_mesh_does_not() {
        let cfg = LinkConfig {
            latency: us(10),
            per_word: us(1),
            topology: Topology::SharedBus,
        };
        let mut bus = Interconnect::new(4, &cfg);
        let a = bus.send_hop(0, 1, 0, 5, SimTime::ZERO);
        let b = bus.send_hop(2, 3, 0, 5, SimTime::ZERO);
        assert!(b.delivered > a.delivered, "bus traffic must contend");

        let mut mesh = Interconnect::new(4, &cfg.with_topology(Topology::FullMesh));
        let a = mesh.send_hop(0, 1, 0, 5, SimTime::ZERO);
        let b = mesh.send_hop(2, 3, 0, 5, SimTime::ZERO);
        assert_eq!(a.delivered, b.delivered, "mesh pairs are independent");
        assert_eq!(mesh.messages(), 2);
        assert_eq!(mesh.words(), 10);
    }

    #[test]
    fn peak_utilization_tracks_the_hot_link() {
        let cfg = LinkConfig {
            latency: SimDuration::ZERO,
            per_word: us(1),
            topology: Topology::FullMesh,
        };
        let mut net = Interconnect::new(2, &cfg);
        net.send_hop(0, 1, 0, 50, SimTime::ZERO);
        let horizon = SimTime::from_ps(us(100).as_ps());
        assert!((net.peak_utilization(horizon) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn multi_hop_routes_pay_every_hop_store_and_forward() {
        // Racks of 2 on 4 nodes; 1 us / 1 us-per-word base links, trunks at
        // 8 us latency and 4 us per word.
        let mut net = Interconnect::with_fabric(rack_tiers(4, 2, us(1), us(1)));
        assert_eq!(net.hops(1, 3), 3);
        let d = send_alone(&mut net, 1, 3, 2, SimTime::ZERO);
        // hop 1: serialize 2 us, +1 us latency -> at router 0 at 3 us;
        // trunk: serialize 2 × 4 = 8 us, + 8 us latency -> at router 2 at 19 us;
        // hop 3: serialize 2 us, + 1 us latency -> delivered 22 us.
        assert_eq!(d.sender_free, SimTime::from_ps(us(2).as_ps()));
        assert_eq!(d.delivered, SimTime::from_ps(us(22).as_ps()));
        // Three hops counted once each.
        assert_eq!(net.messages(), 3);
        assert_eq!(net.words(), 6);
    }

    #[test]
    fn shared_trunks_contend_in_arrival_order() {
        let mut net = Interconnect::with_fabric(rack_tiers(4, 2, SimDuration::ZERO, us(1)));
        // A (0 -> 2, router to router) takes the trunk at 0 and holds it for
        // 10 w × 4 us. B (1 -> 3) serializes its first hop 0..10 us and
        // reaches the trunk at 10 us — it must wait until 40 us, crosses it
        // by 80 us and lands at 90 us.
        let a = net.send_hop(0, 2, 0, 10, SimTime::ZERO);
        assert_eq!(a.delivered, SimTime::from_ps(us(40).as_ps()));
        let b0 = net.send_hop(1, 3, 0, 10, SimTime::ZERO);
        assert_eq!(b0.delivered, SimTime::from_ps(us(10).as_ps()));
        let b1 = net.send_hop(1, 3, 1, 10, b0.delivered);
        let b2 = net.send_hop(1, 3, 2, 10, b1.delivered);
        assert_eq!(b2.delivered, SimTime::from_ps(us(90).as_ps()));
        let tiers = net.tier_stats();
        assert_eq!(tiers.len(), 2);
        assert_eq!(tiers[0].name, "intra-rack");
        assert_eq!(tiers[1].name, "inter-rack");
        assert_eq!(tiers[1].words, 20, "both messages crossed the trunk tier");
        assert!(tiers[1].wait_time > SimDuration::ZERO);
    }

    #[test]
    fn arrival_order_wins_the_trunk_over_send_order() {
        // C is *sent* after A but physically reaches the trunk first (A is
        // still serializing its access hop): the hop-driven model lets C use
        // the idle trunk instead of queueing it behind A's future arrival.
        let mut net = Interconnect::with_fabric(rack_tiers(4, 2, SimDuration::ZERO, us(1)));
        // A: leaf 1 -> leaf 3, sent at 0; its access hop ends at 10 us.
        let a0 = net.send_hop(1, 3, 0, 10, SimTime::ZERO);
        // C: router 0 -> router 2 (trunk only), sent at 1 us — trunk idle.
        let c = net.send_hop(0, 2, 0, 1, SimTime::from_ps(us(1).as_ps()));
        assert_eq!(c.delivered, SimTime::from_ps(us(5).as_ps()));
        // A takes the trunk on arrival at 10 us and is not delayed by C.
        let a1 = net.send_hop(1, 3, 1, 10, a0.delivered);
        let a2 = net.send_hop(1, 3, 2, 10, a1.delivered);
        assert_eq!(a2.delivered, SimTime::from_ps(us(60).as_ps()));
    }

    #[test]
    fn tier_stats_split_local_and_trunk_traffic() {
        let mut net = Interconnect::with_fabric(rack_tiers(4, 2, us(1), us(1)));
        send_alone(&mut net, 0, 1, 7, SimTime::ZERO); // intra-rack only
        send_alone(&mut net, 0, 2, 5, SimTime::ZERO); // router to router: trunk only
        let tiers = net.tier_stats();
        assert_eq!(tiers[0].words, 7);
        assert_eq!(tiers[1].words, 5);
        assert_eq!(net.words(), 12);
        assert_eq!(
            net.distances().latency(0, 2),
            us(RACK_TRUNK_LATENCY_X),
            "distances come from the same fabric"
        );
    }
}
