//! The cluster interconnect: a set of [`LinkResource`]s wired per the
//! configured [`Topology`].

use crate::config::{LinkConfig, Topology};
use nexus_sim::{LinkDelivery, LinkResource, SimDuration, SimTime};

/// The network connecting the cluster nodes.
#[derive(Debug, Clone)]
pub struct Interconnect {
    topology: Topology,
    nodes: usize,
    /// `SharedBus`: one link. `FullMesh`: `nodes × nodes` links indexed
    /// `from * nodes + to` (the diagonal is never used).
    links: Vec<LinkResource>,
}

impl Interconnect {
    /// Builds the interconnect for `nodes` nodes.
    ///
    /// # Panics
    /// Panics if `nodes` is zero.
    pub fn new(nodes: usize, cfg: &LinkConfig) -> Self {
        assert!(nodes > 0, "need at least one node");
        let count = match cfg.topology {
            Topology::SharedBus => 1,
            Topology::FullMesh => nodes * nodes,
        };
        Interconnect {
            topology: cfg.topology,
            nodes,
            links: vec![LinkResource::new(cfg.latency, cfg.per_word); count],
        }
    }

    /// Sends a `words`-word message from node `from` to node `to` at `now`.
    /// Node-local messages (`from == to`) bypass the network entirely.
    pub fn send(&mut self, from: usize, to: usize, words: u64, now: SimTime) -> LinkDelivery {
        debug_assert!(from < self.nodes && to < self.nodes);
        if from == to {
            return LinkDelivery {
                sender_free: now,
                delivered: now,
            };
        }
        let idx = match self.topology {
            Topology::SharedBus => 0,
            Topology::FullMesh => from * self.nodes + to,
        };
        self.links[idx].send(now, words)
    }

    /// Total messages that crossed the network.
    pub fn messages(&self) -> u64 {
        self.links.iter().map(|l| l.messages()).sum()
    }

    /// Total words that crossed the network.
    pub fn words(&self) -> u64 {
        self.links.iter().map(|l| l.words()).sum()
    }

    /// Aggregate wire-busy time over all links.
    pub fn busy_time(&self) -> SimDuration {
        self.links.iter().map(|l| l.busy_time()).sum()
    }

    /// Aggregate time messages spent queued behind earlier traffic.
    pub fn wait_time(&self) -> SimDuration {
        self.links.iter().map(|l| l.wait_time()).sum()
    }

    /// Utilization of the busiest link over `[0, horizon]`.
    pub fn peak_utilization(&self, horizon: SimTime) -> f64 {
        self.links
            .iter()
            .map(|l| l.utilization(horizon))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_us(v)
    }

    #[test]
    fn local_messages_are_free() {
        let mut net = Interconnect::new(2, &LinkConfig::ethernet());
        let now = SimTime::from_ps(123);
        let d = net.send(1, 1, 1000, now);
        assert_eq!(d.delivered, now);
        assert_eq!(net.messages(), 0);
    }

    #[test]
    fn bus_serializes_unrelated_pairs_but_mesh_does_not() {
        let cfg = LinkConfig {
            latency: us(10),
            per_word: us(1),
            topology: Topology::SharedBus,
        };
        let mut bus = Interconnect::new(4, &cfg);
        let a = bus.send(0, 1, 5, SimTime::ZERO);
        let b = bus.send(2, 3, 5, SimTime::ZERO);
        assert!(b.delivered > a.delivered, "bus traffic must contend");

        let mut mesh = Interconnect::new(4, &cfg.with_topology(Topology::FullMesh));
        let a = mesh.send(0, 1, 5, SimTime::ZERO);
        let b = mesh.send(2, 3, 5, SimTime::ZERO);
        assert_eq!(a.delivered, b.delivered, "mesh pairs are independent");
        assert_eq!(mesh.messages(), 2);
        assert_eq!(mesh.words(), 10);
    }

    #[test]
    fn peak_utilization_tracks_the_hot_link() {
        let cfg = LinkConfig {
            latency: SimDuration::ZERO,
            per_word: us(1),
            topology: Topology::FullMesh,
        };
        let mut net = Interconnect::new(2, &cfg);
        net.send(0, 1, 50, SimTime::ZERO);
        let horizon = SimTime::from_ps(us(100).as_ps());
        assert!((net.peak_utilization(horizon) - 0.5).abs() < 1e-9);
    }
}
