//! Cluster and interconnect configuration.

use nexus_sched::{FeedbackKind, PolicyKind, StealKind};
use nexus_sim::{EngineKind, SimDuration};
use nexus_topo::Fabric;
use serde::{Deserialize, Serialize};

/// How the nodes are wired together — re-exported from `nexus-topo`, which
/// owns the fabric builders. `SharedBus` / `FullMesh` are the degenerate
/// uniform cases the cluster shipped with; `RackTiers`, `Torus2D` and
/// `Dragonfly` are genuinely non-uniform (multi-hop routes, locality tiers).
pub use nexus_topo::TopologyKind as Topology;

/// Timing parameters of the interconnect links.
///
/// `latency` / `per_word` describe a *base* (tier-0, most local) link; the
/// non-uniform topologies derive their higher tiers from it (e.g. an
/// inter-rack trunk is 8× the latency at ¼ the bandwidth — see
/// `nexus_topo::kinds`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Propagation latency added to every message after serialization.
    pub latency: SimDuration,
    /// Serialization cost per 32-bit word (the inverse of bandwidth).
    pub per_word: SimDuration,
    /// Wiring between the nodes.
    pub topology: Topology,
}

impl LinkConfig {
    /// An infinitely fast interconnect — the shared-memory limit, useful as a
    /// baseline to isolate pure interconnect effects.
    pub fn ideal() -> Self {
        LinkConfig {
            latency: SimDuration::ZERO,
            per_word: SimDuration::ZERO,
            topology: Topology::FullMesh,
        }
    }

    /// A low-latency RDMA-class fabric: 1.5 µs end-to-end latency, 10 GB/s per
    /// link (0.4 ns per 32-bit word), dedicated links per node pair.
    pub fn rdma() -> Self {
        LinkConfig {
            latency: SimDuration::from_ns(1500),
            per_word: SimDuration::from_ps(400),
            topology: Topology::FullMesh,
        }
    }

    /// A commodity-Ethernet-class network: 50 µs latency, ~1.25 GB/s
    /// (3.2 ns per 32-bit word), one shared medium.
    pub fn ethernet() -> Self {
        LinkConfig {
            latency: SimDuration::from_us(50),
            per_word: SimDuration::from_ps(3200),
            topology: Topology::SharedBus,
        }
    }

    /// Same parameters with a different topology.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Same parameters with a different propagation latency.
    pub fn with_latency(mut self, latency: SimDuration) -> Self {
        self.latency = latency;
        self
    }

    /// Builds the interconnect fabric for `nodes` nodes (see
    /// [`Topology::build`]).
    pub fn fabric(&self, nodes: usize) -> Fabric {
        self.topology.build(nodes, self.latency, self.per_word)
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self::rdma()
    }
}

/// Configuration of a multi-node cluster simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of Nexus# nodes. Node 0 additionally hosts the master thread
    /// that replays the trace.
    pub nodes: usize,
    /// Worker cores per node (each node also has its own task manager).
    pub workers_per_node: usize,
    /// Interconnect timing and topology.
    pub link: LinkConfig,
    /// Task-to-node placement policy applied by the routing pre-pass. The
    /// default, [`PolicyKind::XorHash`], is the affinity-then-XOR routing the
    /// cluster driver shipped with.
    pub placement: PolicyKind,
    /// Work-stealing policy for idle nodes. Disabled by default (stolen
    /// descriptors pay the re-forwarding cost over the interconnect).
    pub stealing: StealKind,
    /// Runtime feedback mode: live load digests piggybacked on retirement
    /// notifications, consumed by submit-time placement and/or task-pool
    /// reclamation. [`FeedbackKind::Off`] (the default) keeps the scheduling
    /// path bit-identical to the static pre-pass behaviour.
    #[serde(default)]
    pub feedback: FeedbackKind,
    /// Safety limit on simulation events (guards against model bugs producing
    /// infinite event loops). The default of 10¹⁰ is ~25× what the largest
    /// full-size paper workload generates cluster-wide.
    pub max_events: u64,
    /// Event-queue engine driving the simulation. Outcomes are bit-identical
    /// across engines (the equivalence suite asserts it); the calendar engine
    /// is the fast default, the heap engine the reference.
    pub engine: EngineKind,
}

impl ClusterConfig {
    /// Default event-count guard (see [`ClusterConfig::max_events`]).
    pub const DEFAULT_MAX_EVENTS: u64 = 10_000_000_000;

    /// A cluster of `nodes` nodes with `workers_per_node` worker cores each,
    /// connected by the default RDMA-class interconnect.
    pub fn new(nodes: usize, workers_per_node: usize) -> Self {
        ClusterConfig {
            nodes,
            workers_per_node,
            link: LinkConfig::default(),
            placement: PolicyKind::default(),
            stealing: StealKind::default(),
            feedback: FeedbackKind::default(),
            max_events: Self::DEFAULT_MAX_EVENTS,
            engine: EngineKind::default(),
        }
    }

    /// Same cluster with a different interconnect.
    pub fn with_link(mut self, link: LinkConfig) -> Self {
        self.link = link;
        self
    }

    /// Same cluster with a different placement policy.
    pub fn with_placement(mut self, placement: PolicyKind) -> Self {
        self.placement = placement;
        self
    }

    /// Same cluster with a different work-stealing policy.
    pub fn with_stealing(mut self, stealing: StealKind) -> Self {
        self.stealing = stealing;
        self
    }

    /// Same cluster with a different runtime-feedback mode (see
    /// [`ClusterConfig::feedback`]).
    pub fn with_feedback(mut self, feedback: FeedbackKind) -> Self {
        self.feedback = feedback;
        self
    }

    /// Same cluster with a different event-queue engine (outcomes are
    /// engine-independent; only wall-clock speed changes).
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Total worker cores across the cluster.
    pub fn total_workers(&self) -> usize {
        self.nodes * self.workers_per_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let cfg = ClusterConfig::new(4, 8).with_link(
            LinkConfig::ethernet()
                .with_topology(Topology::FullMesh)
                .with_latency(SimDuration::from_us(10)),
        );
        assert_eq!(cfg.total_workers(), 32);
        assert_eq!(cfg.link.topology, Topology::FullMesh);
        assert_eq!(cfg.link.latency, SimDuration::from_us(10));
        assert_eq!(LinkConfig::default(), LinkConfig::rdma());
        assert!(LinkConfig::ideal().latency.is_zero());
    }

    #[test]
    fn fabric_builder_honours_the_selected_topology() {
        let rack = LinkConfig::rdma().with_topology(Topology::RackTiers);
        let f = rack.fabric(4);
        assert_eq!(f.nodes(), 4);
        assert_eq!(f.tier_count(), 2, "4 nodes split into racks of 2");
        let mesh = LinkConfig::rdma().fabric(4);
        assert_eq!(mesh.tier_count(), 1);
        assert_eq!(mesh.links().len(), 16);
    }

    #[test]
    fn policy_defaults_reproduce_the_original_routing() {
        let cfg = ClusterConfig::new(2, 4);
        assert_eq!(cfg.placement, PolicyKind::XorHash);
        assert_eq!(cfg.stealing, StealKind::Disabled);
        assert_eq!(cfg.feedback, FeedbackKind::Off);
        let cfg = cfg
            .with_placement(PolicyKind::LocalityAware)
            .with_stealing(StealKind::MostLoaded)
            .with_feedback(FeedbackKind::Full);
        assert_eq!(cfg.placement, PolicyKind::LocalityAware);
        assert!(cfg.stealing.is_enabled());
        assert!(cfg.feedback.place_enabled() && cfg.feedback.reclaim_enabled());
    }
}
