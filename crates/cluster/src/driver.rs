//! The multi-node cluster simulation.
//!
//! [`ClusterDriver`] owns one task manager and one [`WorkerPool`] per node and
//! replays a trace on the whole cluster:
//!
//! * the **master** (on node 0) streams trace operations in program order
//!   (the [`MasterSm`] state machine shared with the single-node host driver);
//!   each submitted task is routed to its home node by the configured
//!   [`PlacementPolicy`] (affinity hint +
//!   XOR distribution function by default) and its descriptor is forwarded
//!   over the interconnect (`transfer_words()` words, as over PCIe in the
//!   single-chip design). Messages traverse the fabric hop by hop through
//!   the event loop (one relay event per intermediate hop), so every link is
//!   acquired at the message's physical arrival time and shared trunks of
//!   tiered fabrics contend causally, in arrival order;
//! * each node's **input processor** hands arrived descriptors to the local
//!   manager strictly in arrival order (the links are FIFO, so this is
//!   per-node program order — local dependency semantics are preserved by the
//!   manager exactly as in the single-node testbench);
//! * **cross-node dependencies** (a task whose last-writer producer lives on
//!   another node) are enforced by the driver: the consumer is held in its
//!   node's pending queue until the producer's retirement notification
//!   ([`NOTIFY_WORDS`] words) has crossed the interconnect;
//! * every retirement is also forwarded to the master, which implements
//!   `taskwait` / `taskwait on` over the cluster-wide retirement count;
//! * with a [`StealPolicy`] enabled, an **idle
//!   node** (free workers, empty ready queue, empty input queue) pulls
//!   pending descriptors from a loaded neighbour: a request message crosses
//!   the interconnect, the victim hands over its youngest *eligible*
//!   descriptors (all last-writer producers retired, so the task can run
//!   anywhere), and each stolen descriptor pays the full re-forwarding cost
//!   on the victim→thief link. Consumers that would have resolved the stolen
//!   task's dependence node-locally are re-subscribed to a cross-node
//!   retirement notification, so dependence enforcement is preserved. A
//!   stolen descriptor enters the thief's input queue at the *front*: it is
//!   fully resolved by construction, and parking it behind the thief's own
//!   blocked head would break the queues' topological order and can deadlock
//!   the cluster on dependence-heavy traces;
//! * with runtime **feedback** enabled ([`FeedbackKind`], `NEXUS_FEEDBACK`),
//!   every retirement notification to the master additionally carries the
//!   retiring node's live load digest ([`LoadView`]) — no new message types
//!   on the happy path. The master folds the digests into a `LoadTracker`
//!   consulted by submit-time re-placement (`place` mode, via
//!   [`FeedbackPlacement`]) and by
//!   pool-reclamation victim selection (`reclaim` mode): an idle node may
//!   pull the youngest dependence-*blocked* descriptors — work a steal can
//!   never reach — out of a loaded pool, paying the same full re-forwarding
//!   cost as a steal. A reclaimed descriptor is still blocked on arrival, so
//!   it is *parked* outside the thief's input queue and enters at the front
//!   only when its last producer notification lands (the stolen-descriptor
//!   rule); its dependences are re-homed by subscribing it to every
//!   still-unretired producer at grant time.
//!
//! Cross-node anti-dependencies (a remote writer overtaking a remote reader)
//! are intentionally *not* ordered: as in distributed task-based runtimes
//! (DuctTeip's versioned data, the distributed runtime of Bosch et al.), each
//! node works on its own copy of remote data, so write-after-read hazards are
//! resolved by renaming rather than by synchronization. (For the same reason
//! a stolen task that shares addresses with unrelated tasks at the thief may
//! pick up a conservative manager-level ordering there — never a lost
//! dependence.)

use crate::config::ClusterConfig;
use crate::interconnect::Interconnect;
use crate::outcome::{ClusterOutcome, LinkStats};
use crate::routing::DepScanner;
use crate::stream::{DepthSeries, StreamOutcome, StreamingSource};
use nexus_host::manager::{ManagerEvent, TaskManager};
use nexus_host::master::{MasterSm, MasterStep};
use nexus_host::metrics::SimOutcome;
use nexus_host::pool::WorkerPool;
use nexus_obs::{Recorder, Registry, SpanEvent};
use nexus_sched::{
    FeedbackKind, FeedbackPlacement, LiveLoad, LoadView, NodeLoad, PlacedLoad, PlacementCtx,
    PlacementPolicy, StealPolicy,
};
use nexus_sim::events::TimedEvent;
use nexus_sim::{EventQueue, FxHashMap, SimDuration, SimTime};
use nexus_topo::{DistanceMatrix, Fabric};
use nexus_trace::{TaskDescriptor, TaskId, Trace};
use std::collections::VecDeque;
use std::time::Instant;

/// Words on the wire for a retirement / dependency notification (message tag
/// plus task id).
pub const NOTIFY_WORDS: u64 = 2;

/// Words on the wire for a steal request or its empty-handed reply (message
/// tag plus node id).
pub const STEAL_WORDS: u64 = 2;

/// Words on the wire for a pool-reclamation request or its empty-handed
/// reply (message tag plus node id — same shape as a steal request).
pub const RECLAIM_WORDS: u64 = 2;

/// Decay half-life of a live load digest, in virtual picoseconds (200 µs —
/// a few task lengths at benchmark scale, so a digest that stops refreshing
/// fades from the placement decision within a handful of retirements).
const DIGEST_HALF_LIFE_PS: u64 = 200_000_000;

#[derive(Debug, Clone, Copy)]
enum Event {
    /// The master executes its next trace operation.
    MasterStep,
    /// A task descriptor reaches its home node's input queue.
    DescriptorArrive { node: usize, idx: usize },
    /// A remote-dependency notification reaches the consumer's node.
    NotifyArrive { idx: usize },
    /// A node's input processor retries handing pending tasks to its manager.
    Pump { node: usize },
    /// A node-local ready notification becomes visible.
    Ready { node: usize, task: TaskId },
    /// Worker core `worker` on `node` finished executing `task`.
    WorkerFinish {
        node: usize,
        task: TaskId,
        worker: usize,
    },
    /// Worker core `worker` on `node` becomes available again.
    WorkerFree { node: usize, worker: usize },
    /// A node's manager retired a task.
    Retired { node: usize, task: TaskId },
    /// A retirement notification reaches the master.
    MasterSawRetire {
        task: TaskId,
        /// The retiring node's load digest riding on the notification
        /// (attached only while runtime feedback is enabled).
        load: Option<(usize, LoadView)>,
    },
    /// An idle node's steal request reaches its victim.
    StealRequest { thief: usize, victim: usize },
    /// A stolen descriptor reaches the thief's input queue.
    StolenArrive { node: usize, idx: usize },
    /// The victim's empty-handed steal reply reaches the thief.
    StealFailed { thief: usize },
    /// An idle node's pool-reclamation request reaches its victim.
    ReclaimRequest { thief: usize, victim: usize },
    /// A reclaimed (still dependence-blocked) descriptor reaches the thief.
    ReclaimedArrive { node: usize, idx: usize },
    /// The victim's empty-handed reclaim reply reaches the thief.
    ReclaimFailed { thief: usize },
    /// A multi-hop message finished hop `hop - 1` of the `from → to` route
    /// and enters hop `hop` now (its physical arrival time at that link —
    /// links are acquired causally, in arrival order).
    Relay {
        /// Source node of the message.
        from: usize,
        /// Destination node of the message.
        to: usize,
        /// Index of the hop the message enters now.
        hop: usize,
        /// Message size in 32-bit words (paid on every hop).
        words: u64,
        /// What happens when the message leaves the last hop.
        then: Deliver,
    },
}

impl Event {
    /// Event-kind names for the profiling registry, indexed by
    /// [`Event::kind_index`].
    const KINDS: [&'static str; 16] = [
        "master_step",
        "descriptor_arrive",
        "notify_arrive",
        "pump",
        "ready",
        "worker_finish",
        "worker_free",
        "retired",
        "master_saw_retire",
        "steal_request",
        "stolen_arrive",
        "steal_failed",
        "reclaim_request",
        "reclaimed_arrive",
        "reclaim_failed",
        "relay",
    ];

    fn kind_index(&self) -> usize {
        match self {
            Event::MasterStep => 0,
            Event::DescriptorArrive { .. } => 1,
            Event::NotifyArrive { .. } => 2,
            Event::Pump { .. } => 3,
            Event::Ready { .. } => 4,
            Event::WorkerFinish { .. } => 5,
            Event::WorkerFree { .. } => 6,
            Event::Retired { .. } => 7,
            Event::MasterSawRetire { .. } => 8,
            Event::StealRequest { .. } => 9,
            Event::StolenArrive { .. } => 10,
            Event::StealFailed { .. } => 11,
            Event::ReclaimRequest { .. } => 12,
            Event::ReclaimedArrive { .. } => 13,
            Event::ReclaimFailed { .. } => 14,
            Event::Relay { .. } => 15,
        }
    }
}

/// Wall-clock profile of the event loop, filled by
/// [`ClusterDriver::run_profiled`]: per-event-kind handler time and queue
/// pop/push/coalesce counts. Kept *outside* [`ClusterOutcome`] because wall
/// times are nondeterministic and the outcome is compared bit-for-bit across
/// engines.
#[derive(Debug, Default)]
struct EngineProf {
    counts: [u64; Event::KINDS.len()],
    wall_ns: [u64; Event::KINDS.len()],
    pops: u64,
    pushes: u64,
    inline_coalesced: u64,
}

impl EngineProf {
    fn note(&mut self, kind: usize, elapsed_ns: u64) {
        self.counts[kind] += 1;
        self.wall_ns[kind] += elapsed_ns;
    }

    fn export(&self, reg: &mut Registry) {
        for (i, name) in Event::KINDS.iter().enumerate() {
            if self.counts[i] > 0 {
                reg.add(&format!("engine.event.{name}.count"), self.counts[i]);
                reg.add(&format!("engine.event.{name}.wall_ns"), self.wall_ns[i]);
            }
        }
        reg.add("engine.pops", self.pops);
        reg.add("engine.pushes", self.pushes);
        reg.add("engine.inline_coalesced", self.inline_coalesced);
    }
}

/// Terminal action of a message once it leaves the fabric — the payload a
/// multi-hop [`Event::Relay`] carries to its final hop.
#[derive(Debug, Clone, Copy)]
enum Deliver {
    /// Becomes [`Event::DescriptorArrive`].
    Descriptor { node: usize, idx: usize },
    /// Becomes [`Event::NotifyArrive`].
    Notify { idx: usize },
    /// Becomes [`Event::MasterSawRetire`].
    MasterRetire {
        task: TaskId,
        load: Option<(usize, LoadView)>,
    },
    /// Becomes [`Event::StealRequest`].
    StealRequest { thief: usize, victim: usize },
    /// Becomes [`Event::StolenArrive`].
    Stolen { node: usize, idx: usize },
    /// Becomes [`Event::StealFailed`].
    StealFailed { thief: usize },
    /// Becomes [`Event::ReclaimRequest`].
    ReclaimRequest { thief: usize, victim: usize },
    /// Becomes [`Event::ReclaimedArrive`].
    Reclaimed { node: usize, idx: usize },
    /// Becomes [`Event::ReclaimFailed`].
    ReclaimFailed { thief: usize },
}

/// Task-id → submission-index lookup. Traces built by the generators assign
/// dense ids in submission order, which a flat vector resolves in one indexed
/// load; arbitrary (sparse) ids fall back to a hash map.
enum IdMap {
    Dense(Vec<u32>),
    Sparse(FxHashMap<TaskId, usize>),
}

impl IdMap {
    fn build(tasks: &[&TaskDescriptor]) -> IdMap {
        let n = tasks.len();
        // Dense only when ids fit a table of bounded slack (≤2× + change), so
        // a stray huge id cannot blow up memory.
        let max_id = tasks.iter().map(|t| t.id.0).max().unwrap_or(0);
        if max_id < (2 * n + 64) as u64 {
            let mut map = vec![u32::MAX; max_id as usize + 1];
            for (i, t) in tasks.iter().enumerate() {
                map[t.id.0 as usize] = i as u32;
            }
            IdMap::Dense(map)
        } else {
            IdMap::Sparse(tasks.iter().enumerate().map(|(i, t)| (t.id, i)).collect())
        }
    }

    #[inline]
    fn idx(&self, id: TaskId) -> usize {
        match self {
            IdMap::Dense(v) => {
                let i = v[id.0 as usize];
                debug_assert!(i != u32::MAX, "unknown task {id}");
                i as usize
            }
            IdMap::Sparse(m) => m[&id],
        }
    }
}

impl Deliver {
    fn into_event(self) -> Event {
        match self {
            Deliver::Descriptor { node, idx } => Event::DescriptorArrive { node, idx },
            Deliver::Notify { idx } => Event::NotifyArrive { idx },
            Deliver::MasterRetire { task, load } => Event::MasterSawRetire { task, load },
            Deliver::StealRequest { thief, victim } => Event::StealRequest { thief, victim },
            Deliver::Stolen { node, idx } => Event::StolenArrive { node, idx },
            Deliver::StealFailed { thief } => Event::StealFailed { thief },
            Deliver::ReclaimRequest { thief, victim } => Event::ReclaimRequest { thief, victim },
            Deliver::Reclaimed { node, idx } => Event::ReclaimedArrive { node, idx },
            Deliver::ReclaimFailed { thief } => Event::ReclaimFailed { thief },
        }
    }
}

/// Per-task routing and cross-node dependency bookkeeping.
struct TaskMeta {
    /// The task's current home node (placement decision, updated on steal).
    home: usize,
    /// Indices (into submission order) of *all* distinct last-writer
    /// producers.
    producers: Vec<usize>,
    /// Indices (into submission order) of remote last-writer producers.
    remote_producers: Vec<usize>,
    /// Tasks (by index) that have this task as a last-writer producer.
    consumers: Vec<usize>,
    /// Producer retirement notifications this task still waits for.
    remaining_remote: usize,
    /// When the task retired (if it has).
    retired_at: Option<SimTime>,
    /// Consumers (by index) waiting for this producer's retirement.
    subscribers: Vec<usize>,
}

/// Open-loop bookkeeping threaded through the event loop by the streaming
/// entry point ([`ClusterDriver::run_streaming`]). With `gated == false`
/// (closed-loop source) it performs *no* gating or steal capping — only
/// latency/occupancy accounting on the side — so the event flow stays
/// bit-identical to [`ClusterDriver::run`]. With `gated == true` the master's
/// submissions are released at their overlay arrival times, shifted by the
/// accumulated back-pressure skew, and held while the home node's admission
/// domain (in-flight + pending descriptors) is at its bound.
struct FlowState {
    /// Open loop: enforce arrival times and the admission bound.
    gated: bool,
    /// Overlay arrival time per submission index (empty when closed-loop).
    arrivals: Vec<SimTime>,
    /// Accumulated source-clock shift from admission blocking.
    skew: SimDuration,
    /// Per-node admission bound.
    depth: usize,
    /// Admission-domain occupancy per node: descriptors the source has
    /// emitted toward the node (in flight or pending) not yet handed to the
    /// node's manager.
    admitted: Vec<usize>,
    max_admitted: usize,
    /// Node whose full admission domain currently blocks the master.
    blocked_on: Option<usize>,
    /// Start of the current blocking episode (folded into `skew` on release).
    blocked_since: Option<SimTime>,
    backpressure_events: u64,
    /// Effective arrival time per submission index (latency zero point).
    submitted_at: Vec<SimTime>,
    /// Submit→retire latency per submission index.
    latencies: Vec<SimDuration>,
    series: DepthSeries,
}

impl FlowState {
    fn open_loop(arrivals: Vec<SimTime>, depth: usize, tasks: usize, nodes: usize) -> FlowState {
        debug_assert_eq!(arrivals.len(), tasks);
        FlowState {
            gated: true,
            arrivals,
            ..FlowState::closed_loop_inner(depth, tasks, nodes)
        }
    }

    fn closed_loop(tasks: usize, nodes: usize) -> FlowState {
        FlowState::closed_loop_inner(usize::MAX, tasks, nodes)
    }

    fn closed_loop_inner(depth: usize, tasks: usize, nodes: usize) -> FlowState {
        FlowState {
            gated: false,
            arrivals: Vec::new(),
            skew: SimDuration::ZERO,
            depth,
            admitted: vec![0; nodes],
            max_admitted: 0,
            blocked_on: None,
            blocked_since: None,
            backpressure_events: 0,
            submitted_at: vec![SimTime::ZERO; tasks],
            latencies: vec![SimDuration::ZERO; tasks],
            series: DepthSeries::default(),
        }
    }

    /// Decides whether the submission at `idx` (home `home`) may proceed at
    /// `now`. Returns `true` when the submit is *deferred*: either the
    /// arrival time lies in the future (a retry is scheduled for then) or the
    /// home node's admission domain is full (the release pump wakes the
    /// master; the blocked span shifts the source clock).
    fn gate_submit(
        &mut self,
        home: usize,
        idx: usize,
        now: SimTime,
        queue: &mut EventQueue<Event>,
    ) -> bool {
        if !self.gated {
            return false;
        }
        let due = self.arrivals[idx] + self.skew;
        if now < due {
            queue.schedule(due, Event::MasterStep);
            return true;
        }
        if self.admitted[home] >= self.depth {
            if self.blocked_since.is_none() {
                self.blocked_since = Some(now);
                self.backpressure_events += 1;
            }
            self.blocked_on = Some(home);
            return true;
        }
        if let Some(since) = self.blocked_since.take() {
            self.skew += now.since(since);
        }
        false
    }

    /// Records a committed submission into `home`'s admission domain.
    fn note_submit(&mut self, home: usize, idx: usize, now: SimTime) {
        self.admitted[home] += 1;
        self.max_admitted = self.max_admitted.max(self.admitted[home]);
        self.series.push(now, self.admitted[home] as u64);
        self.submitted_at[idx] = if self.gated {
            self.arrivals[idx] + self.skew
        } else {
            now
        };
    }

    /// A descriptor left `node`'s admission domain (handed to the manager or
    /// stolen away); wakes the master if it was blocked on this node.
    fn on_slot_freed(&mut self, node: usize, now: SimTime, queue: &mut EventQueue<Event>) {
        self.admitted[node] -= 1;
        if self.blocked_on == Some(node) && self.admitted[node] < self.depth {
            self.blocked_on = None;
            queue.schedule(now, Event::MasterStep);
        }
    }

    /// A stolen descriptor entered the thief's admission domain. (No gating:
    /// the steal path sizes its batch against the bound before granting.)
    fn note_steal_in(&mut self, thief: usize) {
        self.admitted[thief] += 1;
        self.max_admitted = self.max_admitted.max(self.admitted[thief]);
    }
}

/// One simulated node: its manager, worker pool and input queue.
struct NodeState<M> {
    manager: M,
    pool: WorkerPool,
    /// Arrived tasks not yet handed to the manager, in arrival order.
    pending: VecDeque<usize>,
    /// The node's submission interface is busy until this time.
    input_free: SimTime,
    /// A [`Event::Pump`] retry is already queued for this node. Without the
    /// flag every event observing the busy interface schedules its own
    /// duplicate retry, which cascades into an event storm on loaded nodes
    /// (hundreds of no-op events per task at high backlog).
    pump_queued: bool,
    /// Tasks arrived at this node and not yet retired (for idle accounting).
    outstanding: u64,
    executed: u64,
    retired: u64,
    total_work: SimDuration,
    idle_area: SimDuration,
    last_accounting: SimTime,
    makespan: SimTime,
    max_pending: usize,
    /// A steal request is in flight from this node (unresolved at the victim).
    steal_inflight: bool,
    /// Stolen descriptors granted to this node and still crossing the link.
    /// The node does not issue further requests until the whole batch landed.
    incoming_steals: usize,
    /// Last time a steal attempt came back empty-handed (suppresses immediate
    /// same-timestamp retries, which would loop forever on ideal links).
    last_steal_fail: Option<SimTime>,
    /// Reclaimed descriptors parked at this node until their last producer
    /// notification arrives. They are dependence-blocked by construction and
    /// must *not* enter `pending`: a consumer queued ahead of its own
    /// reclaimed producer would deadlock the FIFO, and in-flight races make
    /// any grant-time ordering guarantee unsound. Unparked to the *front* of
    /// `pending` the moment they resolve (the stolen-descriptor rule).
    parked: Vec<usize>,
    /// A reclaim request is in flight from this node.
    reclaim_inflight: bool,
    /// Reclaimed descriptors granted to this node and still crossing the
    /// link. The node does not issue further requests until all landed.
    incoming_reclaims: usize,
    /// Last time a reclaim attempt came back empty-handed (same
    /// ideal-link-livelock guard as `last_steal_fail`).
    last_reclaim_fail: Option<SimTime>,
}

impl<M> NodeState<M> {
    /// Integrates idle-worker time up to `now` and advances the local clock.
    fn touch(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_accounting);
        if self.outstanding > 0 && self.pool.free() > 0 {
            self.idle_area += dt * self.pool.free().min(self.outstanding as usize) as u64;
        }
        self.last_accounting = now;
        self.makespan = self.makespan.max(now);
    }

    /// The node's live load digest at `now`. `pending` counts parked
    /// (reclaimed, still-blocked) descriptors too: they occupy the node
    /// exactly like queued ones as far as a remote placement is concerned.
    fn digest(&self, now: SimTime) -> LoadView {
        let held = (self.pending.len() + self.parked.len()) as u64;
        LoadView {
            pending: held,
            in_flight: self.outstanding.saturating_sub(held),
            retired: self.retired,
            updated_at: now.as_ps(),
        }
    }
}

/// The master's fold of the per-node load digests piggybacked on retirement
/// notifications — the live counterpart of the routing pre-pass's placed-load
/// board. Built only when `cfg.feedback` enables a consumer, so the off path
/// never touches it.
struct LoadTracker {
    views: Vec<LoadView>,
    /// Digests actually applied (reordered stale digests are dropped).
    updates: u64,
}

impl LoadTracker {
    fn new(nodes: usize) -> Self {
        LoadTracker {
            views: vec![LoadView::default(); nodes],
            updates: 0,
        }
    }

    fn observe(&mut self, node: usize, view: LoadView) {
        if self.views[node].observe(view) {
            self.updates += 1;
        }
    }

    fn live(&self, now_ps: u64) -> LiveLoad<'_> {
        LiveLoad {
            views: &self.views,
            now: now_ps,
            half_life: DIGEST_HALF_LIFE_PS,
        }
    }
}

/// A cluster of simulated Nexus# nodes connected by an interconnect.
pub struct ClusterDriver<M> {
    cfg: ClusterConfig,
    nodes: Vec<NodeState<M>>,
    net: Interconnect,
    steals: u64,
    steal_grants: u64,
    steal_failures: u64,
    reclaims: u64,
    reclaim_grants: u64,
    reclaim_failures: u64,
}

impl<M: TaskManager> ClusterDriver<M> {
    /// Builds a cluster per `cfg`; `make_manager(node)` constructs each node's
    /// task manager.
    ///
    /// # Panics
    /// Panics if `cfg.nodes` or `cfg.workers_per_node` is zero.
    pub fn new(cfg: &ClusterConfig, make_manager: impl FnMut(usize) -> M) -> Self {
        assert!(cfg.nodes > 0, "need at least one node");
        Self::with_fabric(cfg, cfg.link.fabric(cfg.nodes), make_manager)
    }

    /// Builds a cluster per `cfg` over an explicit interconnect fabric
    /// (custom rack/group sizes, hand-built graphs, …) instead of the one
    /// derived from `cfg.link.topology`.
    ///
    /// # Panics
    /// Panics if `cfg.nodes` or `cfg.workers_per_node` is zero, or if the
    /// fabric covers a different node count.
    pub fn with_fabric(
        cfg: &ClusterConfig,
        fabric: Fabric,
        mut make_manager: impl FnMut(usize) -> M,
    ) -> Self {
        assert!(cfg.nodes > 0, "need at least one node");
        assert!(
            cfg.workers_per_node > 0,
            "need at least one worker per node"
        );
        assert_eq!(
            fabric.nodes(),
            cfg.nodes,
            "fabric node count must match the cluster"
        );
        let nodes = (0..cfg.nodes)
            .map(|n| NodeState {
                manager: make_manager(n),
                pool: WorkerPool::new(cfg.workers_per_node),
                pending: VecDeque::new(),
                input_free: SimTime::ZERO,
                pump_queued: false,
                outstanding: 0,
                executed: 0,
                retired: 0,
                total_work: SimDuration::ZERO,
                idle_area: SimDuration::ZERO,
                last_accounting: SimTime::ZERO,
                makespan: SimTime::ZERO,
                max_pending: 0,
                steal_inflight: false,
                incoming_steals: 0,
                last_steal_fail: None,
                parked: Vec::new(),
                reclaim_inflight: false,
                incoming_reclaims: 0,
                last_reclaim_fail: None,
            })
            .collect();
        ClusterDriver {
            cfg: *cfg,
            nodes,
            net: Interconnect::with_fabric(fabric),
            steals: 0,
            steal_grants: 0,
            steal_failures: 0,
            reclaims: 0,
            reclaim_grants: 0,
            reclaim_failures: 0,
        }
    }

    /// Replaces every node's worker pool with one built from per-core speed
    /// factors (`1.0` = a standard core; see
    /// [`WorkerPool::with_speeds`](nexus_host::WorkerPool::with_speeds)).
    /// All nodes share the same core mix; steal policies see the aggregate
    /// capacity through the load board and normalize backlogs by it.
    ///
    /// # Panics
    /// Panics if `speeds.len()` differs from `workers_per_node`, or if any
    /// factor is not a positive finite number.
    pub fn with_worker_speeds(mut self, speeds: &[f64]) -> Self {
        assert_eq!(
            speeds.len(),
            self.cfg.workers_per_node,
            "need one speed factor per worker core"
        );
        for node in &mut self.nodes {
            node.pool = WorkerPool::with_speeds(speeds);
        }
        self
    }

    /// Runs `trace` to completion on the cluster. Panics if the simulation
    /// deadlocks (which would indicate a model bug).
    pub fn run(self, trace: &Trace) -> ClusterOutcome {
        self.run_inner(trace, None, None, None).0
    }

    /// Runs `trace` with a [`Recorder`] attached: the event loop emits
    /// task-lifecycle span events ([`SpanEvent`]) stamped in virtual
    /// picoseconds. The recorder is purely observational — the outcome is
    /// bit-identical to [`ClusterDriver::run`], asserted across the full
    /// determinism grid.
    pub fn run_recorded(self, trace: &Trace, rec: &mut dyn Recorder) -> ClusterOutcome {
        self.run_inner(trace, None, Some(rec), None).0
    }

    /// Runs `trace` with the event loop profiled: returns the outcome plus a
    /// [`Registry`] of per-event-kind handler wall time (`engine.event.*`)
    /// and queue pop/push/coalesce counters (`engine.pops`, `engine.pushes`,
    /// `engine.inline_coalesced`). The wall times are nondeterministic, which
    /// is why they ride outside the (bit-compared) [`ClusterOutcome`].
    pub fn run_profiled(self, trace: &Trace) -> (ClusterOutcome, Registry) {
        let mut prof = EngineProf::default();
        let outcome = self.run_inner(trace, None, None, Some(&mut prof)).0;
        let mut reg = Registry::new();
        prof.export(&mut reg);
        (outcome, reg)
    }

    /// Runs `trace` as a *service*: submissions are released by `source`
    /// (arrival times + bounded per-node admission queues) instead of
    /// self-clocked by the master, and per-task submit→retire latencies are
    /// recorded. A closed-loop source reproduces [`ClusterDriver::run`]
    /// exactly (bit-identical makespan and event count) with the service
    /// metrics recorded on the side.
    ///
    /// # Panics
    /// Panics if an open-loop source's overlay does not cover exactly the
    /// trace's submissions, or if the simulation deadlocks.
    pub fn run_streaming(self, trace: &Trace, source: &StreamingSource) -> StreamOutcome {
        self.run_streaming_inner(trace, source, None)
    }

    /// [`ClusterDriver::run_streaming`] with a [`Recorder`] attached (see
    /// [`ClusterDriver::run_recorded`]); open-loop runs additionally emit
    /// [`SpanEvent::Backpressure`] when admission blocks the source clock.
    pub fn run_streaming_recorded(
        self,
        trace: &Trace,
        source: &StreamingSource,
        rec: &mut dyn Recorder,
    ) -> StreamOutcome {
        self.run_streaming_inner(trace, source, Some(rec))
    }

    fn run_streaming_inner(
        self,
        trace: &Trace,
        source: &StreamingSource,
        rec: Option<&mut dyn Recorder>,
    ) -> StreamOutcome {
        let tasks = trace.task_count();
        let nodes = self.cfg.nodes;
        let flow = match &source.overlay {
            Some(overlay) => {
                if let Err(e) = overlay.matches(trace) {
                    panic!("streaming source does not match the trace: {e}");
                }
                FlowState::open_loop(
                    overlay.times().to_vec(),
                    source.admission.depth,
                    tasks,
                    nodes,
                )
            }
            None => FlowState::closed_loop(tasks, nodes),
        };
        let (cluster, flow) = self.run_inner(trace, Some(flow), rec, None);
        let fs = flow.expect("run_inner returns the flow state it was given");
        StreamOutcome {
            cluster,
            latencies: fs.latencies,
            backpressure_events: fs.backpressure_events,
            max_admission_depth: fs.max_admitted,
            depth_series: fs.series.into_samples(),
            source_lag: fs.skew,
        }
    }

    /// The event loop shared by [`ClusterDriver::run`] (`flow == None`) and
    /// [`ClusterDriver::run_streaming`]. With `flow == None` every flow hook
    /// compiles to a no-op check, keeping the closed-loop path untouched; the
    /// same holds for `rec` (span tracing) and `prof` (event-loop profiling),
    /// each a single `Option` branch when disabled.
    fn run_inner(
        mut self,
        trace: &Trace,
        mut flow: Option<FlowState>,
        mut rec: Option<&mut dyn Recorder>,
        mut prof: Option<&mut EngineProf>,
    ) -> (ClusterOutcome, Option<FlowState>) {
        let tasks: Vec<&TaskDescriptor> = trace.tasks().collect();
        let idx_of = IdMap::build(&tasks);
        let durations: Vec<SimDuration> = tasks.iter().map(|t| t.duration).collect();
        // The fabric's distance matrix is static; clone it out of the
        // interconnect so the steal path can consult it while sending.
        let distances = self.net.distances().clone();
        let (mut metas, edges) = self.analyze(&tasks, &distances);

        let mut queue: EventQueue<Event> = EventQueue::with_engine(self.cfg.engine);
        let mut scratch: Vec<ManagerEvent> = Vec::new();
        let mut master = MasterSm::new();
        let mut steal_policy: Box<dyn StealPolicy> = self.cfg.stealing.build();
        let steal_enabled = self.cfg.stealing.is_enabled();
        let feedback: FeedbackKind = self.cfg.feedback;
        let reclaim_enabled = feedback.reclaim_enabled();
        // The live-load tracker only exists while a feedback consumer is
        // active, so the off path computes no digests and stays bit-identical
        // to the static behaviour (same pattern as `flow`/`rec`/`prof`).
        let mut tracker: Option<LoadTracker> = feedback
            .is_enabled()
            .then(|| LoadTracker::new(self.cfg.nodes));
        // Submit-time re-placement state (`place` mode): the live policy plus
        // an incrementally maintained placed-load board. Unlike the pre-pass
        // board (charged at static homes during `analyze`), tasks are charged
        // to their *final* home at commit time.
        let mut place_live = FeedbackPlacement;
        let mut placed_loads: Vec<PlacedLoad> = vec![PlacedLoad::default(); self.cfg.nodes];
        let supports_taskwait_on = self.nodes[0].manager.supports_taskwait_on();
        let mut notifications: u64 = 0;
        let mut makespan = SimTime::ZERO;
        let mut events_processed: u64 = 0;

        queue.schedule(SimTime::ZERO, Event::MasterStep);

        // Back-to-back link-relay coalescing: when a relay's continuation is
        // provably the next event to pop (strictly smaller `(time, seq)` key
        // than the queue minimum, under a seq reserved at the exact position a
        // plain `schedule` would have used), it is handed to the next loop
        // iteration directly, skipping one queue round-trip per hop without
        // perturbing the deterministic event order.
        let mut inline_next: Option<TimedEvent<Event>> = None;
        let mut inline_coalesced: u64 = 0;
        loop {
            let ev = match inline_next.take() {
                Some(ev) => {
                    inline_coalesced += 1;
                    ev
                }
                None => match queue.pop() {
                    Some(ev) => ev,
                    None => break,
                },
            };
            let now = ev.time;
            makespan = makespan.max(now);
            events_processed += 1;
            // Profiling samples the wall clock only when a profile is
            // attached; the disabled path is one `Option` check per event.
            let prof_start = prof
                .as_ref()
                .map(|_| (Instant::now(), ev.payload.kind_index()));
            if events_processed > self.cfg.max_events {
                panic!(
                    "cluster simulation exceeded {} events on {}",
                    self.cfg.max_events, trace.name
                );
            }

            // Set by the Relay arm; resolved after the post-event steal scan
            // (which may schedule earlier events and veto the inline).
            let mut pending_inline: Option<TimedEvent<Event>> = None;

            match ev.payload {
                Event::MasterStep => {
                    match master.step(trace, now, supports_taskwait_on) {
                        MasterStep::Submit(task) => {
                            let idx = idx_of.idx(task.id);
                            if feedback.place_enabled() {
                                if let Some(tr) = tracker.as_ref() {
                                    // Live re-placement: the pre-pass home was
                                    // chosen before any runtime load existed;
                                    // re-decide against the decayed digests.
                                    // Producers may themselves have moved
                                    // (re-placed, stolen or reclaimed), so the
                                    // remote-producer set and the outstanding
                                    // notification count are recomputed from
                                    // the producers' *current* homes — a
                                    // producer that already subscribed this
                                    // task keeps exactly one subscription.
                                    let producer_homes: Vec<usize> = metas[idx]
                                        .producers
                                        .iter()
                                        .map(|&p| metas[p].home)
                                        .collect();
                                    let home = place_live.place(
                                        tasks[idx],
                                        &PlacementCtx {
                                            nodes: self.cfg.nodes,
                                            loads: &placed_loads,
                                            producer_homes: &producer_homes,
                                            distances: Some(&distances),
                                            live: Some(tr.live(now.as_ps())),
                                        },
                                    );
                                    metas[idx].home = home;
                                    let producers = std::mem::take(&mut metas[idx].producers);
                                    let mut remaining = 0;
                                    let mut remote = Vec::new();
                                    for &p in &producers {
                                        if metas[p].subscribers.contains(&idx) {
                                            remaining += 1;
                                        } else if metas[p].home != home {
                                            remote.push(p);
                                        }
                                    }
                                    remaining += remote.len();
                                    metas[idx].producers = producers;
                                    metas[idx].remote_producers = remote;
                                    metas[idx].remaining_remote = remaining;
                                }
                            }
                            let home = metas[idx].home;
                            // An open-loop source may defer the submission
                            // (future arrival time or full admission queue);
                            // the cursor stays put and the same submit is
                            // re-offered on the next master step.
                            let deferred = match flow.as_mut() {
                                None => false,
                                Some(fs) => {
                                    let bp_before = fs.backpressure_events;
                                    let d = fs.gate_submit(home, idx, now, &mut queue);
                                    if fs.backpressure_events > bp_before {
                                        if let Some(r) = rec.as_mut() {
                                            r.record(
                                                now.as_ps(),
                                                SpanEvent::Backpressure { node: home },
                                            );
                                        }
                                    }
                                    d
                                }
                            };
                            if !deferred {
                                master.commit_submit(task, now);
                                if feedback.place_enabled() {
                                    placed_loads[home].tasks += 1;
                                    placed_loads[home].work += tasks[idx].duration;
                                }
                                if let Some(fs) = flow.as_mut() {
                                    fs.note_submit(home, idx, now);
                                }
                                if let Some(r) = rec.as_mut() {
                                    r.record(now.as_ps(), SpanEvent::Submitted { task: idx });
                                    r.record(
                                        now.as_ps(),
                                        SpanEvent::Placed {
                                            task: idx,
                                            node: home,
                                        },
                                    );
                                }
                                // Forward the descriptor to its home node.
                                let sender_free = self.send_msg(
                                    0,
                                    home,
                                    task.transfer_words(),
                                    now,
                                    Deliver::Descriptor { node: home, idx },
                                    &mut queue,
                                    &mut rec,
                                );
                                // Subscribe to (or directly forward) the
                                // remote dependency notifications the task
                                // needs. The producer list is moved out and
                                // restored (a task is never its own producer)
                                // to keep the hot path free of per-submit
                                // clones.
                                let producers = std::mem::take(&mut metas[idx].remote_producers);
                                for &p in &producers {
                                    match metas[p].retired_at {
                                        Some(_) => {
                                            let ph = metas[p].home;
                                            self.send_msg(
                                                ph,
                                                home,
                                                NOTIFY_WORDS,
                                                now,
                                                Deliver::Notify { idx },
                                                &mut queue,
                                                &mut rec,
                                            );
                                            notifications += 1;
                                        }
                                        None => metas[p].subscribers.push(idx),
                                    }
                                }
                                metas[idx].remote_producers = producers;
                                queue.schedule(sender_free.max(now), Event::MasterStep);
                            }
                        }
                        MasterStep::Compute(d) => {
                            queue.schedule(now + d, Event::MasterStep);
                        }
                        MasterStep::Continue => {
                            queue.schedule(now, Event::MasterStep);
                        }
                        MasterStep::Waiting | MasterStep::Done => {}
                    }
                }

                Event::DescriptorArrive { node, idx } => {
                    let n = &mut self.nodes[node];
                    n.touch(now);
                    n.outstanding += 1;
                    n.pending.push_back(idx);
                    n.max_pending = n.max_pending.max(n.pending.len());
                    self.pump(
                        node,
                        now,
                        &metas,
                        &tasks,
                        &mut queue,
                        &mut scratch,
                        &mut flow,
                        &mut rec,
                    );
                }

                Event::NotifyArrive { idx } => {
                    let meta = &mut metas[idx];
                    meta.remaining_remote -= 1;
                    let home = meta.home;
                    let resolved = meta.remaining_remote == 0;
                    self.nodes[home].touch(now);
                    if resolved {
                        // A parked reclaimed descriptor resolves on its last
                        // producer notification: it enters the queue at the
                        // *front*, exactly like a stolen descriptor (fully
                        // resolved by construction). No-op unless reclamation
                        // actually parked something here.
                        let n = &mut self.nodes[home];
                        if let Some(pos) = n.parked.iter().position(|&i| i == idx) {
                            n.parked.swap_remove(pos);
                            debug_assert!(
                                Self::eligible(&metas, idx),
                                "unparked task {idx} still has unretired producers"
                            );
                            let n = &mut self.nodes[home];
                            n.pending.push_front(idx);
                            n.max_pending = n.max_pending.max(n.pending.len());
                        }
                    }
                    self.pump(
                        home,
                        now,
                        &metas,
                        &tasks,
                        &mut queue,
                        &mut scratch,
                        &mut flow,
                        &mut rec,
                    );
                }

                Event::Pump { node } => {
                    let n = &mut self.nodes[node];
                    n.pump_queued = false;
                    n.touch(now);
                    self.pump(
                        node,
                        now,
                        &metas,
                        &tasks,
                        &mut queue,
                        &mut scratch,
                        &mut flow,
                        &mut rec,
                    );
                }

                Event::Ready { node, task } => {
                    let n = &mut self.nodes[node];
                    n.touch(now);
                    n.pool.enqueue(task);
                    Self::dispatch(
                        n,
                        node,
                        now,
                        &idx_of,
                        &durations,
                        &mut queue,
                        &mut scratch,
                        &mut rec,
                    );
                }

                Event::WorkerFinish { node, task, worker } => {
                    let n = &mut self.nodes[node];
                    n.touch(now);
                    n.executed += 1;
                    let free_at = n.manager.finish(task, now);
                    Self::drain(n, node, now, &mut queue, &mut scratch);
                    queue.schedule(free_at.max(now), Event::WorkerFree { node, worker });
                }

                Event::WorkerFree { node, worker } => {
                    let n = &mut self.nodes[node];
                    n.touch(now);
                    n.pool.release(worker);
                    Self::dispatch(
                        n,
                        node,
                        now,
                        &idx_of,
                        &durations,
                        &mut queue,
                        &mut scratch,
                        &mut rec,
                    );
                }

                Event::Retired { node, task } => {
                    let n = &mut self.nodes[node];
                    n.touch(now);
                    n.retired += 1;
                    n.outstanding -= 1;
                    let idx = idx_of.idx(task);
                    n.total_work += durations[idx];
                    metas[idx].retired_at = Some(now);
                    if let Some(fs) = flow.as_mut() {
                        fs.latencies[idx] = now.since(fs.submitted_at[idx]);
                    }
                    if let Some(r) = rec.as_mut() {
                        r.record(now.as_ps(), SpanEvent::Retired { task: idx, node });
                    }
                    // Forward the retirement to every subscribed consumer…
                    for sub in std::mem::take(&mut metas[idx].subscribers) {
                        let home = metas[sub].home;
                        self.send_msg(
                            node,
                            home,
                            NOTIFY_WORDS,
                            now,
                            Deliver::Notify { idx: sub },
                            &mut queue,
                            &mut rec,
                        );
                        notifications += 1;
                    }
                    // …and to the master (free if the task retired on node 0).
                    // With feedback enabled the notification carries the
                    // retiring node's load digest — same message, same words,
                    // no extra traffic on the happy path.
                    let load = tracker
                        .as_ref()
                        .map(|_| (node, self.nodes[node].digest(now)));
                    self.send_msg(
                        node,
                        0,
                        NOTIFY_WORDS,
                        now,
                        Deliver::MasterRetire { task, load },
                        &mut queue,
                        &mut rec,
                    );
                    // A task-pool slot may have been freed.
                    self.pump(
                        node,
                        now,
                        &metas,
                        &tasks,
                        &mut queue,
                        &mut scratch,
                        &mut flow,
                        &mut rec,
                    );
                }

                Event::MasterSawRetire { task, load } => {
                    if let Some((node, view)) = load {
                        if let Some(tr) = tracker.as_mut() {
                            tr.observe(node, view);
                        }
                    }
                    if master.on_retired(task, now) {
                        queue.schedule(now, Event::MasterStep);
                    }
                }

                Event::StealRequest { thief, victim } => {
                    self.grant_steal(
                        thief,
                        victim,
                        now,
                        steal_policy.as_ref(),
                        &mut metas,
                        &tasks,
                        &mut queue,
                        &mut flow,
                        &mut rec,
                    );
                }

                Event::StolenArrive { node, idx } => {
                    let n = &mut self.nodes[node];
                    debug_assert!(
                        n.incoming_steals > 0,
                        "StolenArrive at node {node} without an outstanding steal grant"
                    );
                    n.incoming_steals = n
                        .incoming_steals
                        .checked_sub(1)
                        .expect("steal accounting underflow: StolenArrive without a grant");
                    n.touch(now);
                    n.outstanding += 1;
                    // Stolen descriptors enter at the FRONT: they are fully
                    // resolved by construction (eligibility) and the thief
                    // stole them to run *now*. Queueing them behind the
                    // thief's own blocked head would break the topological
                    // order of the per-node FIFO queues — an early-order
                    // stolen task stuck behind a later blocked head can close
                    // a cross-node head-of-line dependency cycle (deadlock).
                    n.pending.push_front(idx);
                    n.max_pending = n.max_pending.max(n.pending.len());
                    self.pump(
                        node,
                        now,
                        &metas,
                        &tasks,
                        &mut queue,
                        &mut scratch,
                        &mut flow,
                        &mut rec,
                    );
                }

                Event::StealFailed { thief } => {
                    let n = &mut self.nodes[thief];
                    n.steal_inflight = false;
                    n.last_steal_fail = Some(now);
                    n.touch(now);
                }

                Event::ReclaimRequest { thief, victim } => {
                    self.grant_reclaim(
                        thief,
                        victim,
                        now,
                        steal_policy.as_ref(),
                        &mut metas,
                        &tasks,
                        &mut queue,
                        &mut flow,
                        &mut rec,
                    );
                }

                Event::ReclaimedArrive { node, idx } => {
                    {
                        let n = &mut self.nodes[node];
                        debug_assert!(
                            n.incoming_reclaims > 0,
                            "ReclaimedArrive at node {node} without an outstanding grant"
                        );
                        n.incoming_reclaims = n
                            .incoming_reclaims
                            .checked_sub(1)
                            .expect("reclaim accounting underflow: arrival without a grant");
                        n.touch(now);
                        n.outstanding += 1;
                    }
                    if Self::eligible(&metas, idx) {
                        // Every blocker resolved while the descriptor crossed
                        // the link: it is fully resolved now and takes the
                        // stolen-descriptor fast path to the queue front.
                        let n = &mut self.nodes[node];
                        n.pending.push_front(idx);
                        n.max_pending = n.max_pending.max(n.pending.len());
                        self.pump(
                            node,
                            now,
                            &metas,
                            &tasks,
                            &mut queue,
                            &mut scratch,
                            &mut flow,
                            &mut rec,
                        );
                    } else {
                        // Still blocked: park it outside the FIFO until its
                        // last producer notification lands (`NotifyArrive`).
                        self.nodes[node].parked.push(idx);
                    }
                }

                Event::ReclaimFailed { thief } => {
                    let n = &mut self.nodes[thief];
                    n.reclaim_inflight = false;
                    n.last_reclaim_fail = Some(now);
                    n.touch(now);
                }

                Event::Relay {
                    from,
                    to,
                    hop,
                    words,
                    then,
                } => {
                    if let Some(r) = rec.as_mut() {
                        let (link, tier) = self.net.hop_link(from, to, hop);
                        r.record(now.as_ps(), SpanEvent::LinkHop { link, tier, words });
                    }
                    let d = self.net.send_hop(from, to, hop, words, now);
                    let payload = if hop + 1 == self.net.hops(from, to) {
                        then.into_event()
                    } else {
                        Event::Relay {
                            from,
                            to,
                            hop: hop + 1,
                            words,
                            then,
                        }
                    };
                    // Reserve the seq a plain `schedule` would assign, but
                    // defer the enqueue: if the continuation is still the
                    // queue minimum after the steal scan it short-circuits
                    // into the next iteration (see `inline_next`).
                    pending_inline = Some(TimedEvent {
                        time: d.delivered,
                        seq: queue.reserve_seq(),
                        payload,
                    });
                }
            }

            if steal_enabled {
                self.try_steals(
                    now,
                    &metas,
                    &distances,
                    steal_policy.as_mut(),
                    &mut queue,
                    &mut rec,
                );
            }
            if reclaim_enabled {
                // After the steal scan on purpose: a node that just issued a
                // steal request (eligible work, strictly cheaper to import)
                // sits out of the reclaim round.
                self.try_reclaims(
                    now,
                    &metas,
                    &distances,
                    tracker.as_ref(),
                    steal_policy.as_mut(),
                    &mut queue,
                    &mut rec,
                );
            }
            if let Some((t0, kind)) = prof_start {
                if let Some(p) = prof.as_mut() {
                    p.note(kind, t0.elapsed().as_nanos() as u64);
                }
            }
            if let Some(te) = pending_inline.take() {
                let beats_queue = queue.peek_key().is_none_or(|min| (te.time, te.seq) < min);
                if beats_queue {
                    inline_next = Some(te);
                } else {
                    queue.schedule_at_seq(te.time, te.seq, te.payload);
                }
            }
        }

        assert!(
            master.is_done(),
            "cluster master never finished the trace ({}; deadlock?)",
            trace.name
        );
        let master_last_writer = master.last_writer_table();
        let executed: u64 = self.nodes.iter().map(|n| n.executed).sum();
        assert_eq!(
            executed as usize,
            tasks.len(),
            "not all tasks executed on the cluster ({})",
            trace.name
        );
        let retired: u64 = self.nodes.iter().map(|n| n.retired).sum();
        assert_eq!(retired as usize, tasks.len());

        if let Some(p) = prof.as_mut() {
            p.pops = events_processed - inline_coalesced;
            p.pushes = queue.total_scheduled();
            p.inline_coalesced = inline_coalesced;
        }

        let link = LinkStats {
            messages: self.net.messages(),
            words: self.net.words(),
            busy_time: self.net.busy_time(),
            wait_time: self.net.wait_time(),
            peak_utilization: self.net.peak_utilization(makespan),
            per_tier: self.net.tier_stats(),
        };

        // The registry the outcome's scalar fields are views over. Populated
        // once here from the driver's deterministic tallies (no hot-path
        // registry operations), so the engine-equivalence grid can compare it
        // bit for bit.
        let mut metrics = Registry::new();
        metrics.add("task.executed", executed);
        metrics.add("task.retired", retired);
        metrics.add("notify.sent", notifications);
        metrics.add("steal.stolen", self.steals);
        metrics.add("steal.grants", self.steal_grants);
        metrics.add("steal.failures", self.steal_failures);
        metrics.add("reclaim.reclaimed", self.reclaims);
        metrics.add("reclaim.grants", self.reclaim_grants);
        metrics.add("reclaim.failures", self.reclaim_failures);
        metrics.add(
            "load.digest.updates",
            tracker.as_ref().map_or(0, |tr| tr.updates),
        );
        metrics.add("sim.events", events_processed);
        metrics.add("link.messages", link.messages);
        metrics.add("link.words", link.words);
        for tier in &link.per_tier {
            metrics.add(&format!("link.tier{}.messages", tier.tier), tier.messages);
            metrics.add(&format!("link.tier{}.words", tier.tier), tier.words);
        }
        for n in &self.nodes {
            metrics.sample("node.pending.max", n.max_pending as u64);
            metrics.sample("node.executed", n.executed);
        }
        if let Some(fs) = flow.as_ref() {
            if fs.gated {
                metrics.add("stream.backpressure", fs.backpressure_events);
                metrics.sample("stream.admission.max", fs.max_admitted as u64);
            }
        }
        let max_pending_depth = self.nodes.iter().map(|n| n.max_pending).max().unwrap_or(0);
        let per_node: Vec<SimOutcome> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| SimOutcome {
                benchmark: format!("{} [node {i}]", trace.name),
                manager: n.manager.name(),
                workers: self.cfg.workers_per_node,
                makespan: n.makespan.since(SimTime::ZERO),
                total_work: n.total_work,
                tasks: n.executed,
                master_barrier_time: SimDuration::ZERO,
                master_backpressure_time: SimDuration::ZERO,
                worker_idle_time: n.idle_area,
                manager_stats: n.manager.stats_summary(),
            })
            .collect();

        let outcome = ClusterOutcome {
            benchmark: trace.name.clone(),
            manager: self.nodes[0].manager.name(),
            placement: self.cfg.placement.name().to_string(),
            stealing: self.cfg.stealing.name().to_string(),
            topology: self.net.fabric().name().to_string(),
            nodes: self.cfg.nodes,
            workers_per_node: self.cfg.workers_per_node,
            makespan: makespan.since(SimTime::ZERO),
            total_work: trace.total_work(),
            tasks: executed,
            master_barrier_time: master.barrier_time(),
            per_node,
            edges,
            notifications: metrics.counter("notify.sent"),
            steals: metrics.counter("steal.stolen"),
            steal_failures: metrics.counter("steal.failures"),
            reclaims: metrics.counter("reclaim.reclaimed"),
            reclaim_failures: metrics.counter("reclaim.failures"),
            sim_events: metrics.counter("sim.events"),
            link,
            max_pending_depth,
            master_last_writer,
            metrics,
        };
        (outcome, flow)
    }

    /// Routes every task and finds its remote last-writer producers, in the
    /// same pass that accumulates the edge census (one [`DepScanner`] scan —
    /// the reported statistics and the enforced dependencies cannot diverge).
    /// The fabric's distance matrix is handed to the placement policy so
    /// distance-aware placements see the real tiers.
    fn analyze(
        &self,
        tasks: &[&TaskDescriptor],
        distances: &DistanceMatrix,
    ) -> (Vec<TaskMeta>, crate::routing::EdgeStats) {
        let mut scanner = DepScanner::with_policy(self.cfg.nodes, self.cfg.placement.build())
            .with_distances(distances.clone());
        let mut metas: Vec<TaskMeta> = Vec::with_capacity(tasks.len());
        for task in tasks {
            let i = metas.len();
            let r = scanner.scan_full(task);
            for &p in &r.producers {
                metas[p].consumers.push(i);
            }
            metas.push(TaskMeta {
                home: r.home,
                remaining_remote: r.remote_producers.len(),
                producers: r.producers,
                remote_producers: r.remote_producers,
                consumers: Vec::new(),
                retired_at: None,
                subscribers: Vec::new(),
            });
        }
        (metas, scanner.stats())
    }

    /// Hands a message to the fabric: serializes it onto the first hop now
    /// and schedules an [`Event::Relay`] per remaining hop, so every link is
    /// acquired at the message's physical arrival time (causal,
    /// work-conserving FIFO per link — see `Interconnect::send_hop`). The
    /// terminal [`Deliver`] fires when the message leaves the last hop.
    /// Node-local messages (`from == to`) bypass the network and deliver
    /// immediately. Returns when the sender's interface is free again.
    #[allow(clippy::too_many_arguments)]
    fn send_msg(
        &mut self,
        from: usize,
        to: usize,
        words: u64,
        now: SimTime,
        then: Deliver,
        queue: &mut EventQueue<Event>,
        rec: &mut Option<&mut dyn Recorder>,
    ) -> SimTime {
        if from == to {
            queue.schedule(now, then.into_event());
            return now;
        }
        if let Some(r) = rec.as_mut() {
            let (link, tier) = self.net.hop_link(from, to, 0);
            r.record(now.as_ps(), SpanEvent::LinkHop { link, tier, words });
        }
        let d = self.net.send_hop(from, to, 0, words, now);
        if self.net.hops(from, to) == 1 {
            queue.schedule(d.delivered, then.into_event());
        } else {
            queue.schedule(
                d.delivered,
                Event::Relay {
                    from,
                    to,
                    hop: 1,
                    words,
                    then,
                },
            );
        }
        d.sender_free
    }

    /// True if the descriptor at `idx` may be stolen: every last-writer
    /// producer has retired and no notification is still in flight, so the
    /// task can execute on any node without waiting on anything.
    fn eligible(metas: &[TaskMeta], idx: usize) -> bool {
        metas[idx].remaining_remote == 0
            && metas[idx]
                .producers
                .iter()
                .all(|&p| metas[p].retired_at.is_some())
    }

    /// True if `node` may initiate a steal right now: free workers, nothing
    /// ready, nothing pending, no request or granted batch still in flight,
    /// and no failed attempt at this very timestamp.
    fn may_steal(n: &NodeState<M>, now: SimTime) -> bool {
        !n.steal_inflight
            && n.incoming_steals == 0
            && n.last_steal_fail != Some(now)
            && n.pool.free() > 0
            && n.pool.queued() == 0
            && n.pending.is_empty()
    }

    /// True if `node` may initiate a pool reclamation right now: idle by the
    /// steal criteria, nothing parked, no reclaim of its own in flight, and —
    /// because the reclaim scan runs *after* the steal scan — no steal
    /// request or granted batch in flight either (imported eligible work is
    /// strictly cheaper than imported blocked work).
    fn may_reclaim(n: &NodeState<M>, now: SimTime) -> bool {
        !n.reclaim_inflight
            && n.incoming_reclaims == 0
            && n.last_reclaim_fail != Some(now)
            && !n.steal_inflight
            && n.incoming_steals == 0
            && n.pool.free() > 0
            && n.pool.queued() == 0
            && n.pending.is_empty()
            && n.parked.is_empty()
    }

    /// The per-node load board handed to steal and reclaim victim selection,
    /// built through the shared [`NodeLoad::snapshot`] constructor (the live
    /// runtime's manager loop builds its board through the same one).
    fn load_board(&self, metas: &[TaskMeta]) -> Vec<NodeLoad> {
        self.nodes
            .iter()
            .map(|n| {
                NodeLoad::snapshot(
                    n.pending.len(),
                    n.pending
                        .iter()
                        .filter(|&&i| Self::eligible(metas, i))
                        .count(),
                    n.pool.queued(),
                    n.pool.free(),
                    n.outstanding,
                    n.pool.total_speed_milli(),
                )
            })
            .collect()
    }

    /// Initiates steal requests from every idle node (see
    /// [`ClusterDriver::may_steal`]). Runs after each event while stealing is
    /// enabled; the load snapshot (with its per-descriptor eligibility scan)
    /// is only built when some node actually qualifies.
    fn try_steals(
        &mut self,
        now: SimTime,
        metas: &[TaskMeta],
        distances: &DistanceMatrix,
        policy: &mut dyn StealPolicy,
        queue: &mut EventQueue<Event>,
        rec: &mut Option<&mut dyn Recorder>,
    ) {
        if !self.nodes.iter().any(|n| Self::may_steal(n, now)) {
            return;
        }
        let loads = self.load_board(metas);
        for thief in 0..self.nodes.len() {
            if !Self::may_steal(&self.nodes[thief], now) {
                continue;
            }
            let Some(victim) = policy.choose_victim_tiered(thief, &loads, Some(distances)) else {
                continue;
            };
            assert!(
                victim != thief && victim < self.nodes.len(),
                "steal policy {} picked victim {victim} for thief {thief}",
                policy.name()
            );
            self.nodes[thief].steal_inflight = true;
            self.send_msg(
                thief,
                victim,
                STEAL_WORDS,
                now,
                Deliver::StealRequest { thief, victim },
                queue,
                rec,
            );
        }
    }

    /// Handles a steal request arriving at `victim`: hand over up to a batch
    /// of the youngest eligible pending descriptors (re-homing their
    /// dependence notifications), or send an empty-handed reply. The batch is
    /// sized by the policy from the thief's free workers *and* the victim's
    /// eligible backlog at grant time (adaptive policies steal half of it).
    #[allow(clippy::too_many_arguments)]
    fn grant_steal(
        &mut self,
        thief: usize,
        victim: usize,
        now: SimTime,
        policy: &dyn StealPolicy,
        metas: &mut [TaskMeta],
        tasks: &[&TaskDescriptor],
        queue: &mut EventQueue<Event>,
        flow: &mut Option<FlowState>,
        rec: &mut Option<&mut dyn Recorder>,
    ) {
        self.nodes[victim].touch(now);
        // Positions of the youngest eligible descriptors, collected from the
        // back of the queue (descending, so removal is position-stable).
        let mut positions: Vec<usize> = {
            let pending = &self.nodes[victim].pending;
            (0..pending.len())
                .rev()
                .filter(|&pos| Self::eligible(metas, pending[pos]))
                .collect()
        };
        let mut batch = policy.batch_for(self.nodes[thief].pool.free(), positions.len());
        if let Some(fs) = flow.as_ref() {
            if fs.gated {
                // An open-loop thief honours its own admission bound: stolen
                // descriptors enter its admission domain too.
                batch = batch.min(fs.depth.saturating_sub(fs.admitted[thief]));
            }
        }
        positions.truncate(batch);
        if positions.is_empty() {
            self.steal_failures += 1;
            self.send_msg(
                victim,
                thief,
                STEAL_WORDS,
                now,
                Deliver::StealFailed { thief },
                queue,
                rec,
            );
            return;
        }
        // The request is resolved; the thief stays quiet until every granted
        // descriptor has landed (it has no capacity for more anyway).
        self.steal_grants += 1;
        self.nodes[thief].steal_inflight = false;
        self.nodes[thief].incoming_steals += positions.len();
        for pos in positions {
            let idx = self.nodes[victim]
                .pending
                .remove(pos)
                .expect("steal position in range");
            self.nodes[victim].outstanding -= 1;
            if let Some(fs) = flow.as_mut() {
                // The descriptor moves between admission domains; the freed
                // victim slot may wake a back-pressured source.
                fs.on_slot_freed(victim, now, queue);
                fs.note_steal_in(thief);
            }
            debug_assert_eq!(metas[idx].home, victim, "stolen task must be at home");
            // Consumers that counted on resolving this dependence inside the
            // victim's manager now need a cross-node retirement notification.
            let consumers = std::mem::take(&mut metas[idx].consumers);
            for &c in &consumers {
                if metas[c].home == victim && !metas[idx].subscribers.contains(&c) {
                    metas[c].remaining_remote += 1;
                    metas[idx].subscribers.push(c);
                }
            }
            metas[idx].consumers = consumers;
            metas[idx].home = thief;
            self.steals += 1;
            if let Some(r) = rec.as_mut() {
                r.record(
                    now.as_ps(),
                    SpanEvent::Stolen {
                        task: idx,
                        from: victim,
                        to: thief,
                    },
                );
            }
            self.send_msg(
                victim,
                thief,
                tasks[idx].transfer_words(),
                now,
                Deliver::Stolen { node: thief, idx },
                queue,
                rec,
            );
        }
    }

    /// Initiates pool-reclamation requests from every idle node (see
    /// [`ClusterDriver::may_reclaim`]). Runs after the steal scan while
    /// reclamation is enabled: where a steal can only take *eligible*
    /// descriptors, a reclaim reaches past them to the dependence-blocked
    /// remainder of a loaded pool ([`NodeLoad::reclaimable`]), betting that
    /// the blockers resolve sooner next to spare capacity.
    #[allow(clippy::too_many_arguments)]
    fn try_reclaims(
        &mut self,
        now: SimTime,
        metas: &[TaskMeta],
        distances: &DistanceMatrix,
        tracker: Option<&LoadTracker>,
        policy: &mut dyn StealPolicy,
        queue: &mut EventQueue<Event>,
        rec: &mut Option<&mut dyn Recorder>,
    ) {
        if !self.nodes.iter().any(|n| Self::may_reclaim(n, now)) {
            return;
        }
        let loads = self.load_board(metas);
        for thief in 0..self.nodes.len() {
            if !Self::may_reclaim(&self.nodes[thief], now) {
                continue;
            }
            let live = tracker.map(|tr| tr.live(now.as_ps()));
            let Some(victim) = policy.choose_reclaim_victim(thief, &loads, live, Some(distances))
            else {
                continue;
            };
            assert!(
                victim != thief && victim < self.nodes.len(),
                "reclaim policy {} picked victim {victim} for thief {thief}",
                policy.name()
            );
            self.nodes[thief].reclaim_inflight = true;
            self.send_msg(
                thief,
                victim,
                RECLAIM_WORDS,
                now,
                Deliver::ReclaimRequest { thief, victim },
                queue,
                rec,
            );
        }
    }

    /// Handles a reclaim request arriving at `victim`: hand over up to a
    /// batch of the youngest *ineligible* (dependence-blocked) pending
    /// descriptors, or send an empty-handed reply. Where a steal grant
    /// re-homes only the *consumers'* notifications, a reclaim grant must
    /// additionally re-subscribe the moved task to its own still-unretired
    /// producers: the victim's manager would have enforced those dependences
    /// locally, and after the move they need cross-node retirement
    /// notifications. Each reclaimed descriptor pays the full re-forwarding
    /// cost on the victim→thief link, exactly like a stolen one.
    #[allow(clippy::too_many_arguments)]
    fn grant_reclaim(
        &mut self,
        thief: usize,
        victim: usize,
        now: SimTime,
        policy: &dyn StealPolicy,
        metas: &mut [TaskMeta],
        tasks: &[&TaskDescriptor],
        queue: &mut EventQueue<Event>,
        flow: &mut Option<FlowState>,
        rec: &mut Option<&mut dyn Recorder>,
    ) {
        self.nodes[victim].touch(now);
        // Positions of the youngest blocked descriptors, collected from the
        // back of the queue (descending, so removal is position-stable).
        let mut positions: Vec<usize> = {
            let pending = &self.nodes[victim].pending;
            (0..pending.len())
                .rev()
                .filter(|&pos| !Self::eligible(metas, pending[pos]))
                .collect()
        };
        let mut batch = policy.reclaim_batch(self.nodes[thief].pool.free(), positions.len());
        if let Some(fs) = flow.as_ref() {
            if fs.gated {
                // An open-loop thief honours its own admission bound.
                batch = batch.min(fs.depth.saturating_sub(fs.admitted[thief]));
            }
        }
        positions.truncate(batch);
        if positions.is_empty() {
            self.reclaim_failures += 1;
            self.send_msg(
                victim,
                thief,
                RECLAIM_WORDS,
                now,
                Deliver::ReclaimFailed { thief },
                queue,
                rec,
            );
            return;
        }
        self.reclaim_grants += 1;
        self.nodes[thief].reclaim_inflight = false;
        self.nodes[thief].incoming_reclaims += positions.len();
        for pos in positions {
            let idx = self.nodes[victim]
                .pending
                .remove(pos)
                .expect("reclaim position in range");
            self.nodes[victim].outstanding -= 1;
            if let Some(fs) = flow.as_mut() {
                fs.on_slot_freed(victim, now, queue);
                fs.note_steal_in(thief);
            }
            debug_assert_eq!(metas[idx].home, victim, "reclaimed task must be at home");
            // Consumers that counted on resolving this dependence inside the
            // victim's manager now need a cross-node notification.
            let consumers = std::mem::take(&mut metas[idx].consumers);
            for &c in &consumers {
                if metas[c].home == victim && !metas[idx].subscribers.contains(&c) {
                    metas[c].remaining_remote += 1;
                    metas[idx].subscribers.push(c);
                }
            }
            metas[idx].consumers = consumers;
            // The task's own unretired producers: the victim's manager would
            // have ordered them locally; subscribe the moved task to their
            // retirement notifications instead (already-subscribed producers
            // — the task was their remote consumer all along — keep exactly
            // one subscription).
            let producers = std::mem::take(&mut metas[idx].producers);
            for &p in &producers {
                if metas[p].retired_at.is_none() && !metas[p].subscribers.contains(&idx) {
                    metas[idx].remaining_remote += 1;
                    metas[p].subscribers.push(idx);
                }
            }
            metas[idx].producers = producers;
            metas[idx].home = thief;
            self.reclaims += 1;
            if let Some(r) = rec.as_mut() {
                r.record(
                    now.as_ps(),
                    SpanEvent::Reclaimed {
                        task: idx,
                        from: victim,
                        to: thief,
                    },
                );
            }
            self.send_msg(
                victim,
                thief,
                tasks[idx].transfer_words(),
                now,
                Deliver::Reclaimed { node: thief, idx },
                queue,
                rec,
            );
        }
    }

    /// Hands pending tasks at `node` to the local manager: strictly in arrival
    /// order, only once all remote dependencies have arrived, respecting the
    /// manager's back-pressure and the submission interface's busy time.
    /// Every hand-over frees a slot in the node's admission domain (streaming
    /// runs only), which may wake a back-pressured source.
    #[allow(clippy::too_many_arguments)]
    fn pump(
        &mut self,
        node: usize,
        now: SimTime,
        metas: &[TaskMeta],
        tasks: &[&TaskDescriptor],
        queue: &mut EventQueue<Event>,
        scratch: &mut Vec<ManagerEvent>,
        flow: &mut Option<FlowState>,
        rec: &mut Option<&mut dyn Recorder>,
    ) {
        let n = &mut self.nodes[node];
        while let Some(&idx) = n.pending.front() {
            if metas[idx].remaining_remote > 0 {
                break; // head-of-line: preserves per-node program order
            }
            if !n.manager.can_accept(now) {
                break; // re-pumped when a retirement frees a pool slot
            }
            if now < n.input_free {
                // A submittable head is blocked only by the busy submission
                // interface: retry exactly when it frees up. `input_free` only
                // moves forward, so one outstanding retry per node suffices —
                // the dedup flag collapses what used to be an O(queue-depth)
                // storm of no-op Pump events.
                if !n.pump_queued {
                    n.pump_queued = true;
                    queue.schedule(n.input_free, Event::Pump { node });
                }
                break;
            }
            n.pending.pop_front();
            if let Some(fs) = flow.as_mut() {
                fs.on_slot_freed(node, now, queue);
            }
            if let Some(r) = rec.as_mut() {
                r.record(now.as_ps(), SpanEvent::Dispatched { task: idx, node });
            }
            let release = n.manager.submit(tasks[idx], now);
            Self::drain(n, node, now, queue, scratch);
            n.input_free = release.max(now);
        }
    }

    /// Schedules manager notifications onto the global event queue.
    fn schedule_events(
        events: impl IntoIterator<Item = ManagerEvent>,
        node: usize,
        now: SimTime,
        queue: &mut EventQueue<Event>,
    ) {
        for ev in events {
            match ev {
                ManagerEvent::Ready { task, at } => {
                    queue.schedule(at.max(now), Event::Ready { node, task });
                }
                ManagerEvent::Retired { task, at } => {
                    queue.schedule(at.max(now), Event::Retired { node, task });
                }
            }
        }
    }

    /// Drains a node manager's notifications into the global event queue
    /// through a reused scratch buffer (no per-call allocation).
    fn drain(
        n: &mut NodeState<M>,
        node: usize,
        now: SimTime,
        queue: &mut EventQueue<Event>,
        scratch: &mut Vec<ManagerEvent>,
    ) {
        n.manager.drain_events_into(scratch);
        Self::schedule_events(scratch.drain(..), node, now, queue);
    }

    /// Hands queued ready tasks to free workers on `node`.
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        n: &mut NodeState<M>,
        node: usize,
        now: SimTime,
        idx_of: &IdMap,
        durations: &[SimDuration],
        queue: &mut EventQueue<Event>,
        scratch: &mut Vec<ManagerEvent>,
        rec: &mut Option<&mut dyn Recorder>,
    ) {
        let manager = &mut n.manager;
        let pool = &mut n.pool;
        pool.dispatch(|task, worker, speed| {
            let idx = idx_of.idx(task);
            let extra = manager.dispatch_cost(task, now);
            manager.drain_events_into(scratch);
            if let Some(r) = rec.as_mut() {
                // The body begins once the manager's dispatch cost is paid.
                r.record(
                    (now + extra).as_ps(),
                    SpanEvent::Started {
                        task: idx,
                        node,
                        worker,
                    },
                );
            }
            // A core of speed `speed/1000`× executes the task proportionally
            // faster (exact for the uniform default: `d * 1000 / 1000 == d`).
            let dur = durations[idx] * 1000 / speed;
            queue.schedule(
                now + extra + dur,
                Event::WorkerFinish { node, task, worker },
            );
        });
        Self::schedule_events(scratch.drain(..), node, now, queue);
    }
}

/// Runs `trace` on a cluster configured by `cfg`, constructing each node's
/// manager with `make_manager`. Convenience wrapper around [`ClusterDriver`].
pub fn simulate_cluster<M: TaskManager>(
    trace: &Trace,
    cfg: &ClusterConfig,
    make_manager: impl FnMut(usize) -> M,
) -> ClusterOutcome {
    ClusterDriver::new(cfg, make_manager).run(trace)
}

/// Runs `trace` on a cluster configured by `cfg` with a [`Recorder`]
/// attached: the event loop emits task-lifecycle span events stamped in
/// virtual picoseconds (see [`ClusterDriver::run_recorded`]). Convenience
/// wrapper around [`ClusterDriver`].
pub fn simulate_cluster_traced<M: TaskManager>(
    trace: &Trace,
    cfg: &ClusterConfig,
    make_manager: impl FnMut(usize) -> M,
    rec: &mut dyn Recorder,
) -> ClusterOutcome {
    ClusterDriver::new(cfg, make_manager).run_recorded(trace, rec)
}

/// Runs `trace` as a service on a cluster configured by `cfg`: submissions
/// released by `source` (open-loop arrival times + bounded admission queues,
/// or a closed-loop source reproducing [`simulate_cluster`] exactly) with
/// per-task latencies recorded. Convenience wrapper around
/// [`ClusterDriver::run_streaming`].
pub fn simulate_streaming<M: TaskManager>(
    trace: &Trace,
    source: &StreamingSource,
    cfg: &ClusterConfig,
    make_manager: impl FnMut(usize) -> M,
) -> StreamOutcome {
    ClusterDriver::new(cfg, make_manager).run_streaming(trace, source)
}

/// Runs `trace` on a cluster wired with an explicit fabric (custom rack or
/// group sizes, hand-built graphs) instead of the one `cfg.link.topology`
/// would derive. Convenience wrapper around [`ClusterDriver::with_fabric`].
pub fn simulate_cluster_on<M: TaskManager>(
    trace: &Trace,
    cfg: &ClusterConfig,
    fabric: Fabric,
    make_manager: impl FnMut(usize) -> M,
) -> ClusterOutcome {
    ClusterDriver::with_fabric(cfg, fabric, make_manager).run(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LinkConfig;
    use nexus_host::IdealManager;
    use nexus_sched::{PolicyKind, StealKind};
    use nexus_trace::generators::{distributed, micro};

    fn us(v: u64) -> SimDuration {
        SimDuration::from_us(v)
    }

    /// A Nexus# manager with a small task pool, so overloaded nodes actually
    /// back-pressure and build the pending backlog stealing feeds on.
    fn tight_sharp() -> nexus_core::NexusSharp {
        let mut cfg = nexus_core::NexusSharpConfig::paper(6);
        cfg.task_pool_capacity = 16;
        nexus_core::NexusSharp::new(cfg)
    }

    #[test]
    fn single_node_ideal_cluster_matches_the_host_driver() {
        // With one node and an ideal link, the cluster reduces to the
        // single-node testbench (modulo the asynchronous master, which cannot
        // matter for an ideal manager with zero submission cost).
        let trace = micro::wavefront(8, 8, us(10));
        let cfg = ClusterConfig::new(1, 16).with_link(LinkConfig::ideal());
        let out = simulate_cluster(&trace, &cfg, |_| IdealManager::new());
        let host = nexus_host::simulate(
            &trace,
            &mut IdealManager::new(),
            &nexus_host::HostConfig::with_workers(16),
        );
        assert_eq!(out.makespan, host.makespan);
        assert_eq!(out.tasks, host.tasks);
        assert_eq!(out.notifications, 0);
        assert_eq!(out.link.messages, 0);
    }

    #[test]
    fn independent_domains_scale_with_the_node_count() {
        let trace = distributed::wavefront(4, 0.0, 6, 6, us(50), 1);
        let cfg1 = ClusterConfig::new(1, 4).with_link(LinkConfig::rdma());
        let cfg4 = ClusterConfig::new(4, 4).with_link(LinkConfig::rdma());
        let one = simulate_cluster(&trace, &cfg1, |_| IdealManager::new());
        let four = simulate_cluster(&trace, &cfg4, |_| IdealManager::new());
        assert_eq!(one.tasks, four.tasks);
        assert!(
            four.makespan.as_us_f64() < 0.5 * one.makespan.as_us_f64(),
            "4 nodes {} vs 1 node {}",
            four.makespan,
            one.makespan
        );
        // Descriptor traffic crossed the network, but no dependency
        // notifications (the domains are independent).
        assert!(four.link.messages > 0);
        assert_eq!(four.notifications, 0);
        assert_eq!(four.edges.remote, 0);
    }

    #[test]
    fn remote_dependencies_pay_the_link_latency() {
        // Two tasks on different nodes, consumer reads producer's output.
        let mut b = nexus_trace::trace::TraceBuilder::new("remote-pair");
        b.submit_with(|id| {
            TaskDescriptor::builder(id.0)
                .output(0x100)
                .duration(us(10))
                .affinity(0)
                .build()
        });
        b.submit_with(|id| {
            TaskDescriptor::builder(id.0)
                .input(0x100)
                .inout(0x2000)
                .duration(us(10))
                .affinity(1)
                .build()
        });
        b.taskwait();
        let trace = b.finish();

        let slow = LinkConfig {
            latency: us(100),
            per_word: SimDuration::ZERO,
            topology: crate::config::Topology::FullMesh,
        };
        let fast = LinkConfig::ideal();
        let cfg_slow = ClusterConfig::new(2, 1).with_link(slow);
        let cfg_fast = ClusterConfig::new(2, 1).with_link(fast);
        let out_slow = simulate_cluster(&trace, &cfg_slow, |_| IdealManager::new());
        let out_fast = simulate_cluster(&trace, &cfg_fast, |_| IdealManager::new());
        assert_eq!(out_fast.makespan, us(20));
        // Producer retires at 10 us; its notification reaches node 1 at
        // 110 us (the consumer's descriptor arrived at 100 us); the consumer
        // runs until 120 us and its retirement notification reaches the
        // master at 220 us.
        assert_eq!(out_slow.makespan, us(220));
        assert_eq!(out_slow.notifications, 1);
        assert_eq!(out_slow.edges.remote, 1);
        assert!(out_slow.master_barrier_time > SimDuration::ZERO);
    }

    #[test]
    fn runs_are_bit_identical() {
        let trace = distributed::sparselu(4, 0.3, 9, 0.002);
        let cfg = ClusterConfig::new(4, 4);
        let a = simulate_cluster(&trace, &cfg, |_| IdealManager::new());
        let b = simulate_cluster(&trace, &cfg, |_| IdealManager::new());
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.notifications, b.notifications);
        assert_eq!(a.link.words, b.link.words);
        assert_eq!(a.node_tasks(), b.node_tasks());
    }

    #[test]
    fn stealing_drains_an_imbalanced_trace_onto_idle_nodes() {
        // Node 0 owns 6x the work of node 3; without stealing the makespan is
        // pinned to node 0's backlog.
        let trace = distributed::imbalanced(4, 48, 6.0, us(50), 0.0, 5);
        let cfg = ClusterConfig::new(4, 2).with_link(LinkConfig::rdma());
        let frozen = simulate_cluster(&trace, &cfg, |_| tight_sharp());
        let stolen = simulate_cluster(&trace, &cfg.with_stealing(StealKind::MostLoaded), |_| {
            tight_sharp()
        });
        assert_eq!(frozen.steals, 0);
        assert!(stolen.steals > 0, "stealing must actually happen");
        assert!(
            stolen.makespan < frozen.makespan,
            "stealing must improve the makespan: {} vs {}",
            stolen.makespan,
            frozen.makespan
        );
        assert_eq!(frozen.tasks, stolen.tasks);
        // Every stolen descriptor paid the wire.
        assert!(stolen.link.words > frozen.link.words);
    }

    #[test]
    fn stealing_preserves_cross_node_dependences() {
        // A producer chain on node 0 with consumers that must not run early:
        // steal-eligibility (all producers retired) plus re-subscription keep
        // the dependences intact. The chain forces sequential execution, so
        // the makespan lower bound is the chain length regardless of theft.
        let mut b = nexus_trace::trace::TraceBuilder::new("steal-chain");
        for i in 0..24u64 {
            b.submit_with(|id| {
                TaskDescriptor::builder(id.0)
                    .inout(0x100 + (i / 8) * 0x40) // three 8-long chains
                    .duration(us(20))
                    .affinity(0)
                    .build()
            });
        }
        b.taskwait();
        let trace = b.finish();
        let cfg = ClusterConfig::new(2, 1)
            .with_link(LinkConfig::rdma())
            .with_stealing(StealKind::MostLoaded);
        let out = simulate_cluster(&trace, &cfg, |_| tight_sharp());
        assert_eq!(out.tasks, 24);
        // Three independent chains of 8 tasks × 20 us: nothing may finish
        // before 160 us however the tasks are distributed.
        assert!(out.makespan >= us(160), "{}", out.makespan);
    }

    #[test]
    fn stolen_descriptors_jump_blocked_heads_so_chains_cannot_deadlock() {
        // Regression: a chain-heavy un-hinted trace scattered by XorHash
        // builds cross-node head-of-line dependency cycles if stolen
        // descriptors queue behind the thief's own blocked head. They must
        // enter at the front (they are fully resolved by construction).
        let trace = distributed::unhinted(&distributed::rack_clustered(
            2,
            2,
            4,
            8,
            2.0,
            0.5,
            0.2,
            us(20),
            3,
        ));
        for stealing in StealKind::ALL {
            let cfg = ClusterConfig::new(4, 2).with_stealing(stealing);
            let out = simulate_cluster(&trace, &cfg, |_| tight_sharp());
            assert_eq!(out.tasks, trace.task_count() as u64, "{stealing}");
        }
    }

    #[test]
    fn calendar_engine_is_bit_identical_to_heap_across_the_grid() {
        // The engine-equivalence suite for the pluggable event core: every
        // topology × placement × stealing combination of the determinism grid
        // must produce the same `ClusterOutcome` bit for bit whether the
        // driver pops its events from the reference `BinaryHeap` or from the
        // calendar queue. The debug rendering covers every field (makespan,
        // per-node outcomes, link tiers, steals, event counts, ...).
        let trace = distributed::unhinted(&distributed::sparselu(4, 0.4, 7, 0.002));
        for topology in crate::config::Topology::ALL {
            for placement in PolicyKind::ALL {
                for stealing in StealKind::ALL {
                    let cfg = ClusterConfig::new(4, 4)
                        .with_link(LinkConfig::rdma().with_topology(topology))
                        .with_placement(placement)
                        .with_stealing(stealing);
                    let heap = simulate_cluster(
                        &trace,
                        &cfg.with_engine(nexus_sim::EngineKind::Heap),
                        |_| tight_sharp(),
                    );
                    let calendar = simulate_cluster(
                        &trace,
                        &cfg.with_engine(nexus_sim::EngineKind::Calendar),
                        |_| tight_sharp(),
                    );
                    assert_eq!(
                        format!("{heap:?}"),
                        format!("{calendar:?}"),
                        "engines diverged on {topology:?}/{placement}/{stealing}"
                    );
                }
            }
        }
    }

    #[test]
    fn streaming_case_of_the_determinism_grid_is_bit_identical_across_engines() {
        // The streaming extension of the engine-equivalence grid: open-loop
        // arrivals through a tight admission bound (so back-pressure, wakes
        // and steal-capping all engage) must produce the same `StreamOutcome`
        // bit for bit on both engines. The debug rendering covers every field
        // (latencies, back-pressure count, depth series, source lag, ...).
        let trace = distributed::unhinted(&distributed::sparselu(4, 0.4, 7, 0.002));
        let arrivals: Vec<SimTime> = (0..trace.task_count())
            .map(|i| SimTime::ZERO + us(5) * i as u64)
            .collect();
        let overlay = nexus_trace::arrivals::ArrivalOverlay::new(arrivals).unwrap();
        let source = StreamingSource::open_loop(overlay, crate::stream::AdmissionConfig::new(4));
        let run = |engine: nexus_sim::EngineKind| {
            let cfg = ClusterConfig::new(4, 4)
                .with_link(LinkConfig::rdma())
                .with_stealing(StealKind::MostLoaded)
                .with_engine(engine);
            simulate_streaming(&trace, &source, &cfg, |_| tight_sharp())
        };
        let heap = run(nexus_sim::EngineKind::Heap);
        let calendar = run(nexus_sim::EngineKind::Calendar);
        assert_eq!(
            format!("{heap:?}"),
            format!("{calendar:?}"),
            "engines diverged on the streaming case"
        );
        // The tight bound was actually exercised, not vacuously satisfied.
        assert!(heap.max_admission_depth <= 4);
        assert_eq!(
            heap.latencies.len(),
            trace.task_count(),
            "every task must retire exactly once"
        );
    }

    #[test]
    fn streaming_recorder_is_observational_and_sees_backpressure() {
        // Open-loop streaming with a tight admission bound: the recorder must
        // not perturb the StreamOutcome, and the Backpressure span events
        // must agree with the outcome's counter.
        let trace = distributed::unhinted(&distributed::sparselu(4, 0.4, 7, 0.002));
        let arrivals: Vec<SimTime> = (0..trace.task_count())
            .map(|i| SimTime::ZERO + us(5) * i as u64)
            .collect();
        let overlay = nexus_trace::arrivals::ArrivalOverlay::new(arrivals).unwrap();
        let source = StreamingSource::open_loop(overlay, crate::stream::AdmissionConfig::new(4));
        let cfg = ClusterConfig::new(4, 4)
            .with_link(LinkConfig::rdma())
            .with_stealing(StealKind::MostLoaded);
        let plain = simulate_streaming(&trace, &source, &cfg, |_| tight_sharp());
        let mut rec = nexus_obs::MemRecorder::new(nexus_obs::TimeBase::VirtualPs);
        let traced = ClusterDriver::new(&cfg, |_| tight_sharp())
            .run_streaming_recorded(&trace, &source, &mut rec);
        assert_eq!(format!("{plain:?}"), format!("{traced:?}"));
        let bp = rec.count(|ev| matches!(ev, nexus_obs::SpanEvent::Backpressure { .. }));
        assert_eq!(bp as u64, traced.backpressure_events);
        assert!(bp > 0, "tight bound must actually back-pressure");
        assert_eq!(
            traced.cluster.metrics.counter("stream.backpressure"),
            traced.backpressure_events,
            "stream counters fold into the outcome registry"
        );
        nexus_obs::check_conservation(&rec.events)
            .expect("streaming trace must conserve the task lifecycle");
    }

    #[test]
    fn recorder_is_purely_observational_across_the_grid() {
        // The tentpole invariant of the observability layer: attaching a
        // recorder must not perturb the simulation. Every topology ×
        // placement × stealing combination of the determinism grid, on both
        // event engines, must produce a bit-identical `ClusterOutcome` with
        // tracing on vs. off.
        let trace = distributed::unhinted(&distributed::sparselu(4, 0.4, 7, 0.002));
        for engine in [nexus_sim::EngineKind::Heap, nexus_sim::EngineKind::Calendar] {
            for topology in crate::config::Topology::ALL {
                for placement in PolicyKind::ALL {
                    for stealing in StealKind::ALL {
                        let cfg = ClusterConfig::new(4, 4)
                            .with_link(LinkConfig::rdma().with_topology(topology))
                            .with_placement(placement)
                            .with_stealing(stealing)
                            .with_engine(engine);
                        let plain = simulate_cluster(&trace, &cfg, |_| tight_sharp());
                        let mut rec = nexus_obs::MemRecorder::new(nexus_obs::TimeBase::VirtualPs);
                        let traced =
                            simulate_cluster_traced(&trace, &cfg, |_| tight_sharp(), &mut rec);
                        assert_eq!(
                            format!("{plain:?}"),
                            format!("{traced:?}"),
                            "recorder perturbed {engine:?}/{topology:?}/{placement}/{stealing}"
                        );
                        assert!(!rec.is_empty(), "recorder saw no events");
                    }
                }
            }
        }
    }

    #[test]
    fn recorded_spans_conserve_the_task_lifecycle() {
        // Every submitted task retires exactly once and its lifecycle
        // timestamps are monotone; steals and link hops show up in the log.
        let trace = distributed::imbalanced(4, 48, 6.0, us(50), 0.0, 5);
        let cfg = ClusterConfig::new(4, 2)
            .with_link(LinkConfig::rdma())
            .with_stealing(StealKind::MostLoaded);
        let mut rec = nexus_obs::MemRecorder::new(nexus_obs::TimeBase::VirtualPs);
        let out = simulate_cluster_traced(&trace, &cfg, |_| tight_sharp(), &mut rec);
        let report = nexus_obs::check_conservation(&rec.events)
            .expect("cluster trace must conserve the task lifecycle");
        assert_eq!(report.submitted as u64, out.tasks);
        assert_eq!(report.retired as u64, out.tasks);
        assert_eq!(report.started as u64, out.tasks);
        assert_eq!(report.stolen as u64, out.steals);
        assert!(out.steals > 0, "scenario must actually steal");
        let hops = rec.count(|ev| matches!(ev, nexus_obs::SpanEvent::LinkHop { .. }));
        assert_eq!(hops as u64, out.link.messages, "one LinkHop per link entry");
    }

    #[test]
    fn outcome_metrics_mirror_the_scalar_fields() {
        let trace = distributed::imbalanced(4, 48, 6.0, us(50), 0.0, 5);
        let cfg = ClusterConfig::new(4, 2)
            .with_link(LinkConfig::rdma())
            .with_stealing(StealKind::MostLoaded);
        let out = simulate_cluster(&trace, &cfg, |_| tight_sharp());
        assert_eq!(out.metrics.counter("task.executed"), out.tasks);
        assert_eq!(out.metrics.counter("steal.stolen"), out.steals);
        assert_eq!(out.metrics.counter("steal.failures"), out.steal_failures);
        assert!(out.metrics.counter("steal.grants") > 0);
        assert_eq!(out.metrics.counter("reclaim.reclaimed"), out.reclaims);
        assert_eq!(
            out.metrics.counter("reclaim.failures"),
            out.reclaim_failures
        );
        assert_eq!(out.reclaims, 0, "feedback is off in this scenario");
        assert_eq!(out.metrics.counter("load.digest.updates"), 0);
        assert_eq!(out.metrics.counter("notify.sent"), out.notifications);
        assert_eq!(out.metrics.counter("sim.events"), out.sim_events);
        assert_eq!(out.metrics.counter("link.words"), out.link.words);
        assert_eq!(
            out.metrics.counter("link.tier0.words"),
            out.link.per_tier[0].words
        );
        let pending = out.metrics.gauge("node.pending.max").unwrap();
        assert_eq!(pending.max, out.max_pending_depth as u64);
    }

    #[test]
    fn profiled_run_reports_engine_activity_without_touching_the_outcome() {
        let trace = distributed::sparselu(4, 0.3, 9, 0.002);
        let cfg = ClusterConfig::new(4, 4);
        let plain = simulate_cluster(&trace, &cfg, |_| IdealManager::new());
        let (profiled, prof) =
            ClusterDriver::new(&cfg, |_| IdealManager::new()).run_profiled(&trace);
        assert_eq!(format!("{plain:?}"), format!("{profiled:?}"));
        // Per-kind counts add up to the loop's event total, and the queue
        // accounting is consistent: every processed event was either popped
        // from the queue or coalesced inline.
        let per_kind: u64 = prof
            .counters_with_prefix("engine.event.")
            .filter(|(k, _)| k.ends_with(".count"))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(per_kind, profiled.sim_events);
        assert_eq!(
            prof.counter("engine.pops") + prof.counter("engine.inline_coalesced"),
            profiled.sim_events
        );
        assert!(prof.counter("engine.pushes") >= prof.counter("engine.pops"));
        assert!(prof.counter("engine.event.master_step.count") > 0);
    }

    #[test]
    fn failed_steals_on_ideal_links_cannot_livelock_a_timestamp() {
        // Regression for the `last_steal_fail == Some(now)` guard: on an
        // ideal (zero-latency) link a failed steal's empty-handed reply
        // returns at the *same* timestamp it was issued. Without the guard
        // the idle thief re-issues the request inside the same event cascade
        // and the loop never advances time. The victim here is a serial
        // chain pinned to node 0, so node 1 stays idle (and stealing stays
        // useless) for the whole run.
        let mut b = nexus_trace::trace::TraceBuilder::new("ideal-empty-victim");
        for _ in 0..32u64 {
            b.submit_with(|id| {
                TaskDescriptor::builder(id.0)
                    .inout(0x40)
                    .duration(us(10))
                    .affinity(0)
                    .build()
            });
        }
        b.taskwait();
        let trace = b.finish();
        for stealing in StealKind::ALL {
            if !stealing.is_enabled() {
                continue;
            }
            let cfg = ClusterConfig::new(2, 2)
                .with_link(LinkConfig::ideal())
                .with_stealing(stealing);
            let out = simulate_cluster(&trace, &cfg, |_| tight_sharp());
            assert_eq!(out.tasks, 32, "{stealing}");
            // The chain serializes execution whatever the thief does.
            assert!(out.makespan >= us(320), "{stealing}: {}", out.makespan);
            // Failed attempts are bounded (at most one per thief per distinct
            // timestamp), not a same-time livelock.
            assert!(
                out.steal_failures <= out.sim_events,
                "{stealing}: {} failures in {} events",
                out.steal_failures,
                out.sim_events
            );
        }
    }

    #[test]
    fn policies_and_stealing_stay_deterministic() {
        let trace = distributed::unhinted(&distributed::sparselu(4, 0.4, 7, 0.002));
        for placement in PolicyKind::ALL {
            for stealing in StealKind::ALL {
                let cfg = ClusterConfig::new(4, 4)
                    .with_placement(placement)
                    .with_stealing(stealing);
                let a = simulate_cluster(&trace, &cfg, |_| tight_sharp());
                let b = simulate_cluster(&trace, &cfg, |_| tight_sharp());
                assert_eq!(a.makespan, b.makespan, "{placement}/{stealing}");
                assert_eq!(a.steals, b.steals, "{placement}/{stealing}");
                assert_eq!(a.link.words, b.link.words, "{placement}/{stealing}");
                assert_eq!(a.node_tasks(), b.node_tasks(), "{placement}/{stealing}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = ClusterDriver::new(&ClusterConfig::new(0, 4), |_| IdealManager::new());
    }

    use nexus_sched::FeedbackKind;

    /// Six interleaved 8-long chains pinned to node 0: at any instant only
    /// the chain fronts are steal-eligible — everything behind them is
    /// dependence-blocked, work that only reclamation can move.
    fn chain_block_trace() -> Trace {
        let mut b = nexus_trace::trace::TraceBuilder::new("reclaim-chains");
        for i in 0..48u64 {
            b.submit_with(|id| {
                TaskDescriptor::builder(id.0)
                    .inout(0x100 + (i % 6) * 0x40)
                    .duration(us(20))
                    .affinity(0)
                    .build()
            });
        }
        b.taskwait();
        b.finish()
    }

    #[test]
    fn reclamation_moves_blocked_backlogs_stealing_cannot_reach() {
        // With stealing disabled entirely, only the reclaim protocol can get
        // work off node 0 — and because each chain serializes on itself, the
        // blocked tail is exactly what is worth moving.
        let cfg = ClusterConfig::new(2, 2).with_link(LinkConfig::rdma());
        let frozen = simulate_cluster(&chain_block_trace(), &cfg, |_| tight_sharp());
        let reclaimed = simulate_cluster(
            &chain_block_trace(),
            &cfg.with_feedback(FeedbackKind::Reclaim),
            |_| tight_sharp(),
        );
        assert_eq!(frozen.reclaims, 0);
        assert_eq!(frozen.tasks, reclaimed.tasks);
        assert!(reclaimed.reclaims > 0, "reclamation must actually happen");
        assert!(
            reclaimed.makespan < frozen.makespan,
            "reclaim must improve the makespan: {} vs {}",
            reclaimed.makespan,
            frozen.makespan
        );
        // Every reclaimed descriptor paid the wire.
        assert!(reclaimed.link.words > frozen.link.words);
        assert_eq!(
            reclaimed.metrics.counter("reclaim.reclaimed"),
            reclaimed.reclaims
        );
        assert!(reclaimed.metrics.counter("reclaim.grants") > 0);
        assert!(
            reclaimed.metrics.counter("load.digest.updates") > 0,
            "digests must ride the retirement notifications"
        );
    }

    #[test]
    fn reclaimed_descriptors_keep_dependences_and_conserve_the_lifecycle() {
        // Recorded reclaim run: every task retires exactly once (the
        // conservation checker treats a Reclaimed task like a Stolen one),
        // and the span census agrees with the outcome counters.
        let cfg = ClusterConfig::new(2, 2)
            .with_link(LinkConfig::rdma())
            .with_feedback(FeedbackKind::Reclaim);
        let mut rec = nexus_obs::MemRecorder::new(nexus_obs::TimeBase::VirtualPs);
        let out = simulate_cluster_traced(&chain_block_trace(), &cfg, |_| tight_sharp(), &mut rec);
        let report = nexus_obs::check_conservation(&rec.events)
            .expect("reclaim trace must conserve the task lifecycle");
        assert_eq!(report.retired as u64, out.tasks);
        assert_eq!(report.reclaimed as u64, out.reclaims);
        assert!(out.reclaims > 0, "scenario must actually reclaim");
        // The chains force sequential execution per chain: 8 × 20 µs is a
        // hard lower bound however the descriptors move.
        assert!(out.makespan >= us(160), "{}", out.makespan);
    }

    #[test]
    fn reclaimed_descriptors_park_until_resolved_so_chains_cannot_deadlock() {
        // The reclaim counterpart of the stolen-front-of-queue regression: a
        // chain-heavy un-hinted trace must complete under every stealing
        // policy with reclamation (and full feedback) on. A reclaimed
        // descriptor entering the thief's FIFO while still blocked — ahead of
        // or behind the wrong neighbours — would deadlock exactly like the
        // stolen case did.
        let trace = distributed::unhinted(&distributed::rack_clustered(
            2,
            2,
            4,
            8,
            2.0,
            0.5,
            0.2,
            us(20),
            3,
        ));
        for stealing in StealKind::ALL {
            for feedback in [FeedbackKind::Reclaim, FeedbackKind::Full] {
                let cfg = ClusterConfig::new(4, 2)
                    .with_stealing(stealing)
                    .with_feedback(feedback);
                let out = simulate_cluster(&trace, &cfg, |_| tight_sharp());
                assert_eq!(
                    out.tasks,
                    trace.task_count() as u64,
                    "{stealing}/{feedback}"
                );
            }
        }
    }

    #[test]
    fn feedback_grid_is_bit_identical_across_engines_and_reruns() {
        // The feedback × reclaim extension of the determinism grid: every
        // feedback mode must be bit-identical across event engines and across
        // reruns, with stealing active so all three balancing mechanisms
        // (placement, stealing, reclamation) interleave.
        let trace = distributed::unhinted(&distributed::sparselu(4, 0.4, 7, 0.002));
        for feedback in FeedbackKind::ALL {
            let cfg = ClusterConfig::new(4, 4)
                .with_link(LinkConfig::rdma())
                .with_stealing(StealKind::Hierarchical)
                .with_feedback(feedback);
            let heap = simulate_cluster(
                &trace,
                &cfg.with_engine(nexus_sim::EngineKind::Heap),
                |_| tight_sharp(),
            );
            let calendar = simulate_cluster(
                &trace,
                &cfg.with_engine(nexus_sim::EngineKind::Calendar),
                |_| tight_sharp(),
            );
            let rerun = simulate_cluster(
                &trace,
                &cfg.with_engine(nexus_sim::EngineKind::Heap),
                |_| tight_sharp(),
            );
            assert_eq!(
                format!("{heap:?}"),
                format!("{calendar:?}"),
                "engines diverged on feedback {feedback}"
            );
            assert_eq!(
                format!("{heap:?}"),
                format!("{rerun:?}"),
                "rerun diverged on feedback {feedback}"
            );
            // The recorder stays observational with feedback on, too.
            let mut rec = nexus_obs::MemRecorder::new(nexus_obs::TimeBase::VirtualPs);
            let traced = simulate_cluster_traced(&trace, &cfg, |_| tight_sharp(), &mut rec);
            assert_eq!(
                format!("{heap:?}"),
                format!("{traced:?}"),
                "recorder perturbed feedback {feedback}"
            );
        }
    }

    #[test]
    fn feedback_placement_follows_the_live_digests() {
        // `place` mode on an un-hinted imbalanced trace: the digests steer
        // un-hinted tasks away from the hot node, so placement spreads
        // strictly better than the static pre-pass decision.
        let trace = distributed::unhinted(&distributed::imbalanced(4, 96, 8.0, us(50), 0.1, 5));
        let cfg = ClusterConfig::new(4, 2).with_link(LinkConfig::rdma());
        let static_run = simulate_cluster(&trace, &cfg, |_| tight_sharp());
        let live = simulate_cluster(&trace, &cfg.with_feedback(FeedbackKind::Place), |_| {
            tight_sharp()
        });
        assert_eq!(static_run.tasks, live.tasks);
        assert!(live.metrics.counter("load.digest.updates") > 0);
        assert_eq!(live.reclaims, 0, "place mode must not reclaim");
        let spread = |o: &ClusterOutcome| {
            let t = o.node_tasks();
            t.iter().max().copied().unwrap_or(0) - t.iter().min().copied().unwrap_or(0)
        };
        assert!(
            spread(&live) <= spread(&static_run),
            "live placement must not be more skewed: {:?} vs {:?}",
            live.node_tasks(),
            static_run.node_tasks()
        );
    }
}
