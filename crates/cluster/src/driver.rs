//! The multi-node cluster simulation.
//!
//! [`ClusterDriver`] owns one task manager and one [`WorkerPool`] per node and
//! replays a trace on the whole cluster:
//!
//! * the **master** (on node 0) streams trace operations in program order;
//!   each submitted task is routed to its home node (affinity hint, falling
//!   back to the XOR distribution function at cluster scope) and its
//!   descriptor is forwarded over the interconnect (`transfer_words()` words,
//!   as over PCIe in the single-chip design);
//! * each node's **input processor** hands arrived descriptors to the local
//!   manager strictly in arrival order (the links are FIFO, so this is
//!   per-node program order — local dependency semantics are preserved by the
//!   manager exactly as in the single-node testbench);
//! * **cross-node dependencies** (a task whose last-writer producer lives on
//!   another node) are enforced by the driver: the consumer is held in its
//!   node's pending queue until the producer's retirement notification
//!   ([`NOTIFY_WORDS`] words) has crossed the interconnect;
//! * every retirement is also forwarded to the master, which implements
//!   `taskwait` / `taskwait on` over the cluster-wide retirement count.
//!
//! Cross-node anti-dependencies (a remote writer overtaking a remote reader)
//! are intentionally *not* ordered: as in distributed task-based runtimes
//! (DuctTeip's versioned data, the distributed runtime of Bosch et al.), each
//! node works on its own copy of remote data, so write-after-read hazards are
//! resolved by renaming rather than by synchronization.

use crate::config::ClusterConfig;
use crate::interconnect::Interconnect;
use crate::outcome::{ClusterOutcome, LinkStats};
use crate::routing::DepScanner;
use nexus_host::manager::{ManagerEvent, TaskManager};
use nexus_host::metrics::SimOutcome;
use nexus_host::pool::WorkerPool;
use nexus_sim::{EventQueue, SimDuration, SimTime};
use nexus_trace::{TaskDescriptor, TaskId, Trace, TraceOp};
use std::collections::{HashMap, HashSet, VecDeque};

/// Words on the wire for a retirement / dependency notification (message tag
/// plus task id).
pub const NOTIFY_WORDS: u64 = 2;

/// What the cluster master is currently doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MasterState {
    Running,
    /// Waiting for all tasks (`None`) or one task (`Some`) to retire,
    /// as seen from the master.
    WaitingBarrier(Option<TaskId>),
    Done,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// The master executes its next trace operation.
    MasterStep,
    /// A task descriptor reaches its home node's input queue.
    DescriptorArrive { node: usize, idx: usize },
    /// A remote-dependency notification reaches the consumer's node.
    NotifyArrive { idx: usize },
    /// A node's input processor retries handing pending tasks to its manager.
    Pump { node: usize },
    /// A node-local ready notification becomes visible.
    Ready { node: usize, task: TaskId },
    /// A worker on `node` finished executing `task`.
    WorkerFinish { node: usize, task: TaskId },
    /// A worker on `node` becomes available again.
    WorkerFree { node: usize },
    /// A node's manager retired a task.
    Retired { node: usize, task: TaskId },
    /// A retirement notification reaches the master.
    MasterSawRetire { task: TaskId },
}

/// Per-task routing and cross-node dependency bookkeeping.
struct TaskMeta {
    home: usize,
    /// Indices (into submission order) of remote last-writer producers.
    remote_producers: Vec<usize>,
    /// Remote producers whose retirement notification has not yet arrived.
    remaining_remote: usize,
    /// When the task retired on its home node (if it has).
    retired_at_home: Option<SimTime>,
    /// Consumers (by index) waiting for this producer's retirement.
    subscribers: Vec<usize>,
}

/// One simulated node: its manager, worker pool and input queue.
struct NodeState<M> {
    manager: M,
    pool: WorkerPool,
    /// Arrived tasks not yet handed to the manager, in arrival order.
    pending: VecDeque<usize>,
    /// The node's submission interface is busy until this time.
    input_free: SimTime,
    /// Tasks arrived at this node and not yet retired (for idle accounting).
    outstanding: u64,
    executed: u64,
    retired: u64,
    total_work: SimDuration,
    idle_area: SimDuration,
    last_accounting: SimTime,
    makespan: SimTime,
    max_pending: usize,
}

impl<M> NodeState<M> {
    /// Integrates idle-worker time up to `now` and advances the local clock.
    fn touch(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_accounting);
        if self.outstanding > 0 && self.pool.free() > 0 {
            self.idle_area += dt * self.pool.free().min(self.outstanding as usize) as u64;
        }
        self.last_accounting = now;
        self.makespan = self.makespan.max(now);
    }
}

/// A cluster of simulated Nexus# nodes connected by an interconnect.
pub struct ClusterDriver<M> {
    cfg: ClusterConfig,
    nodes: Vec<NodeState<M>>,
    net: Interconnect,
}

impl<M: TaskManager> ClusterDriver<M> {
    /// Builds a cluster per `cfg`; `make_manager(node)` constructs each node's
    /// task manager.
    ///
    /// # Panics
    /// Panics if `cfg.nodes` or `cfg.workers_per_node` is zero.
    pub fn new(cfg: &ClusterConfig, mut make_manager: impl FnMut(usize) -> M) -> Self {
        assert!(cfg.nodes > 0, "need at least one node");
        assert!(
            cfg.workers_per_node > 0,
            "need at least one worker per node"
        );
        let nodes = (0..cfg.nodes)
            .map(|n| NodeState {
                manager: make_manager(n),
                pool: WorkerPool::new(cfg.workers_per_node),
                pending: VecDeque::new(),
                input_free: SimTime::ZERO,
                outstanding: 0,
                executed: 0,
                retired: 0,
                total_work: SimDuration::ZERO,
                idle_area: SimDuration::ZERO,
                last_accounting: SimTime::ZERO,
                makespan: SimTime::ZERO,
                max_pending: 0,
            })
            .collect();
        ClusterDriver {
            cfg: *cfg,
            nodes,
            net: Interconnect::new(cfg.nodes, &cfg.link),
        }
    }

    /// Runs `trace` to completion on the cluster. Panics if the simulation
    /// deadlocks (which would indicate a model bug).
    pub fn run(mut self, trace: &Trace) -> ClusterOutcome {
        let tasks: Vec<&TaskDescriptor> = trace.tasks().collect();
        let idx_of: HashMap<TaskId, usize> =
            tasks.iter().enumerate().map(|(i, t)| (t.id, i)).collect();
        let durations: HashMap<TaskId, SimDuration> =
            tasks.iter().map(|t| (t.id, t.duration)).collect();
        let (mut metas, edges) = self.analyze(&tasks);
        for (i, t) in tasks.iter().enumerate() {
            self.nodes[metas[i].home].total_work += t.duration;
        }

        let mut queue: EventQueue<Event> = EventQueue::new();
        let mut master = MasterState::Running;
        let mut op_idx = 0usize;
        let mut submitted: u64 = 0;
        let mut master_retired: HashSet<TaskId> = HashSet::new();
        let mut master_last_writer: HashMap<u64, TaskId> = HashMap::new();
        let mut master_barrier_since: Option<SimTime> = None;
        let mut master_barrier_time = SimDuration::ZERO;
        let mut notifications: u64 = 0;
        let mut makespan = SimTime::ZERO;
        let mut events_processed: u64 = 0;

        queue.schedule(SimTime::ZERO, Event::MasterStep);

        while let Some(ev) = queue.pop() {
            let now = ev.time;
            makespan = makespan.max(now);
            events_processed += 1;
            if events_processed > self.cfg.max_events {
                panic!(
                    "cluster simulation exceeded {} events on {}",
                    self.cfg.max_events, trace.name
                );
            }

            match ev.payload {
                Event::MasterStep => {
                    if master == MasterState::Done {
                        continue;
                    }
                    master = MasterState::Running;
                    match trace.ops.get(op_idx) {
                        None => {
                            master = MasterState::Done;
                        }
                        Some(TraceOp::Submit(task)) => {
                            let idx = idx_of[&task.id];
                            let home = metas[idx].home;
                            submitted += 1;
                            for p in task.outputs() {
                                master_last_writer.insert(p.addr, task.id);
                            }
                            // Forward the descriptor to its home node.
                            let d = self.net.send(0, home, task.transfer_words(), now);
                            queue
                                .schedule(d.delivered, Event::DescriptorArrive { node: home, idx });
                            // Subscribe to (or directly forward) the remote
                            // dependency notifications the task needs.
                            let producers = metas[idx].remote_producers.clone();
                            for p in producers {
                                match metas[p].retired_at_home {
                                    Some(_) => {
                                        let ph = metas[p].home;
                                        let d = self.net.send(ph, home, NOTIFY_WORDS, now);
                                        notifications += 1;
                                        queue.schedule(d.delivered, Event::NotifyArrive { idx });
                                    }
                                    None => metas[p].subscribers.push(idx),
                                }
                            }
                            op_idx += 1;
                            queue.schedule(d.sender_free.max(now), Event::MasterStep);
                        }
                        Some(TraceOp::Taskwait) => {
                            if master_retired.len() as u64 == submitted {
                                op_idx += 1;
                                queue.schedule(now, Event::MasterStep);
                            } else {
                                master = MasterState::WaitingBarrier(None);
                                master_barrier_since.get_or_insert(now);
                            }
                        }
                        Some(TraceOp::TaskwaitOn(addr)) => {
                            let supported = self.nodes[0].manager.supports_taskwait_on();
                            let target = if supported {
                                master_last_writer.get(addr).copied()
                            } else {
                                None // escalate to a full taskwait
                            };
                            let satisfied = match target {
                                Some(t) => master_retired.contains(&t),
                                None => supported || master_retired.len() as u64 == submitted,
                            };
                            if satisfied {
                                op_idx += 1;
                                queue.schedule(now, Event::MasterStep);
                            } else {
                                master = MasterState::WaitingBarrier(target);
                                master_barrier_since.get_or_insert(now);
                            }
                        }
                        Some(TraceOp::MasterCompute(d)) => {
                            op_idx += 1;
                            queue.schedule(now + *d, Event::MasterStep);
                        }
                    }
                }

                Event::DescriptorArrive { node, idx } => {
                    let n = &mut self.nodes[node];
                    n.touch(now);
                    n.outstanding += 1;
                    n.pending.push_back(idx);
                    n.max_pending = n.max_pending.max(n.pending.len());
                    self.pump(node, now, &metas, &tasks, &mut queue);
                }

                Event::NotifyArrive { idx } => {
                    let meta = &mut metas[idx];
                    meta.remaining_remote -= 1;
                    let home = meta.home;
                    self.nodes[home].touch(now);
                    self.pump(home, now, &metas, &tasks, &mut queue);
                }

                Event::Pump { node } => {
                    self.nodes[node].touch(now);
                    self.pump(node, now, &metas, &tasks, &mut queue);
                }

                Event::Ready { node, task } => {
                    let n = &mut self.nodes[node];
                    n.touch(now);
                    n.pool.enqueue(task);
                    Self::dispatch(n, node, now, &durations, &mut queue);
                }

                Event::WorkerFinish { node, task } => {
                    let n = &mut self.nodes[node];
                    n.touch(now);
                    n.executed += 1;
                    let free_at = n.manager.finish(task, now);
                    Self::drain(n, node, now, &mut queue);
                    queue.schedule(free_at.max(now), Event::WorkerFree { node });
                }

                Event::WorkerFree { node } => {
                    let n = &mut self.nodes[node];
                    n.touch(now);
                    n.pool.release();
                    Self::dispatch(n, node, now, &durations, &mut queue);
                }

                Event::Retired { node, task } => {
                    let n = &mut self.nodes[node];
                    n.touch(now);
                    n.retired += 1;
                    n.outstanding -= 1;
                    let idx = idx_of[&task];
                    metas[idx].retired_at_home = Some(now);
                    // Forward the retirement to every subscribed consumer…
                    for sub in std::mem::take(&mut metas[idx].subscribers) {
                        let d = self.net.send(node, metas[sub].home, NOTIFY_WORDS, now);
                        notifications += 1;
                        queue.schedule(d.delivered, Event::NotifyArrive { idx: sub });
                    }
                    // …and to the master (free if the task retired on node 0).
                    let d = self.net.send(node, 0, NOTIFY_WORDS, now);
                    queue.schedule(d.delivered, Event::MasterSawRetire { task });
                    // A task-pool slot may have been freed.
                    self.pump(node, now, &metas, &tasks, &mut queue);
                }

                Event::MasterSawRetire { task } => {
                    master_retired.insert(task);
                    if let MasterState::WaitingBarrier(target) = master {
                        let satisfied = match target {
                            Some(t) => master_retired.contains(&t),
                            None => master_retired.len() as u64 == submitted,
                        };
                        if satisfied {
                            if let Some(since) = master_barrier_since.take() {
                                master_barrier_time += now.since(since);
                            }
                            master = MasterState::Running;
                            queue.schedule(now, Event::MasterStep);
                        }
                    }
                }
            }
        }

        assert_eq!(
            master,
            MasterState::Done,
            "cluster master never finished the trace ({}; deadlock?)",
            trace.name
        );
        let executed: u64 = self.nodes.iter().map(|n| n.executed).sum();
        assert_eq!(
            executed as usize,
            tasks.len(),
            "not all tasks executed on the cluster ({})",
            trace.name
        );
        let retired: u64 = self.nodes.iter().map(|n| n.retired).sum();
        assert_eq!(retired as usize, tasks.len());

        let link = LinkStats {
            messages: self.net.messages(),
            words: self.net.words(),
            busy_time: self.net.busy_time(),
            wait_time: self.net.wait_time(),
            peak_utilization: self.net.peak_utilization(makespan),
        };
        let max_pending_depth = self.nodes.iter().map(|n| n.max_pending).max().unwrap_or(0);
        let per_node: Vec<SimOutcome> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| SimOutcome {
                benchmark: format!("{} [node {i}]", trace.name),
                manager: n.manager.name(),
                workers: self.cfg.workers_per_node,
                makespan: n.makespan.since(SimTime::ZERO),
                total_work: n.total_work,
                tasks: n.executed,
                master_barrier_time: SimDuration::ZERO,
                master_backpressure_time: SimDuration::ZERO,
                worker_idle_time: n.idle_area,
                manager_stats: n.manager.stats_summary(),
            })
            .collect();

        ClusterOutcome {
            benchmark: trace.name.clone(),
            manager: self.nodes[0].manager.name(),
            nodes: self.cfg.nodes,
            workers_per_node: self.cfg.workers_per_node,
            makespan: makespan.since(SimTime::ZERO),
            total_work: trace.total_work(),
            tasks: executed,
            master_barrier_time,
            per_node,
            edges,
            notifications,
            link,
            max_pending_depth,
        }
    }

    /// Routes every task and finds its remote last-writer producers, in the
    /// same pass that accumulates the edge census (one [`DepScanner`] scan —
    /// the reported statistics and the enforced dependencies cannot diverge).
    fn analyze(&self, tasks: &[&TaskDescriptor]) -> (Vec<TaskMeta>, crate::routing::EdgeStats) {
        let mut scanner = DepScanner::new(self.cfg.nodes);
        let mut metas: Vec<TaskMeta> = Vec::with_capacity(tasks.len());
        for task in tasks {
            let (home, remote_producers) = scanner.scan(task);
            metas.push(TaskMeta {
                home,
                remaining_remote: remote_producers.len(),
                remote_producers,
                retired_at_home: None,
                subscribers: Vec::new(),
            });
        }
        (metas, scanner.stats())
    }

    /// Hands pending tasks at `node` to the local manager: strictly in arrival
    /// order, only once all remote dependencies have arrived, respecting the
    /// manager's back-pressure and the submission interface's busy time.
    fn pump(
        &mut self,
        node: usize,
        now: SimTime,
        metas: &[TaskMeta],
        tasks: &[&TaskDescriptor],
        queue: &mut EventQueue<Event>,
    ) {
        let n = &mut self.nodes[node];
        while let Some(&idx) = n.pending.front() {
            if metas[idx].remaining_remote > 0 {
                break; // head-of-line: preserves per-node program order
            }
            if !n.manager.can_accept(now) {
                break; // re-pumped when a retirement frees a pool slot
            }
            if now < n.input_free {
                // A submittable head is blocked only by the busy submission
                // interface: retry exactly when it frees up.
                queue.schedule(n.input_free, Event::Pump { node });
                break;
            }
            n.pending.pop_front();
            let release = n.manager.submit(tasks[idx], now);
            Self::drain(n, node, now, queue);
            n.input_free = release.max(now);
        }
    }

    /// Schedules manager notifications onto the global event queue.
    fn schedule_events(
        events: impl IntoIterator<Item = ManagerEvent>,
        node: usize,
        now: SimTime,
        queue: &mut EventQueue<Event>,
    ) {
        for ev in events {
            match ev {
                ManagerEvent::Ready { task, at } => {
                    queue.schedule(at.max(now), Event::Ready { node, task });
                }
                ManagerEvent::Retired { task, at } => {
                    queue.schedule(at.max(now), Event::Retired { node, task });
                }
            }
        }
    }

    /// Drains a node manager's notifications into the global event queue.
    fn drain(n: &mut NodeState<M>, node: usize, now: SimTime, queue: &mut EventQueue<Event>) {
        let events = n.manager.drain_events();
        Self::schedule_events(events, node, now, queue);
    }

    /// Hands queued ready tasks to free workers on `node`.
    fn dispatch(
        n: &mut NodeState<M>,
        node: usize,
        now: SimTime,
        durations: &HashMap<TaskId, SimDuration>,
        queue: &mut EventQueue<Event>,
    ) {
        let manager = &mut n.manager;
        let pool = &mut n.pool;
        let mut drained = Vec::new();
        pool.dispatch(|task| {
            let extra = manager.dispatch_cost(task, now);
            drained.extend(manager.drain_events());
            queue.schedule(
                now + extra + durations[&task],
                Event::WorkerFinish { node, task },
            );
        });
        Self::schedule_events(drained, node, now, queue);
    }
}

/// Runs `trace` on a cluster configured by `cfg`, constructing each node's
/// manager with `make_manager`. Convenience wrapper around [`ClusterDriver`].
pub fn simulate_cluster<M: TaskManager>(
    trace: &Trace,
    cfg: &ClusterConfig,
    make_manager: impl FnMut(usize) -> M,
) -> ClusterOutcome {
    ClusterDriver::new(cfg, make_manager).run(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LinkConfig;
    use nexus_host::IdealManager;
    use nexus_trace::generators::{distributed, micro};

    fn us(v: u64) -> SimDuration {
        SimDuration::from_us(v)
    }

    #[test]
    fn single_node_ideal_cluster_matches_the_host_driver() {
        // With one node and an ideal link, the cluster reduces to the
        // single-node testbench (modulo the asynchronous master, which cannot
        // matter for an ideal manager with zero submission cost).
        let trace = micro::wavefront(8, 8, us(10));
        let cfg = ClusterConfig::new(1, 16).with_link(LinkConfig::ideal());
        let out = simulate_cluster(&trace, &cfg, |_| IdealManager::new());
        let host = nexus_host::simulate(
            &trace,
            &mut IdealManager::new(),
            &nexus_host::HostConfig::with_workers(16),
        );
        assert_eq!(out.makespan, host.makespan);
        assert_eq!(out.tasks, host.tasks);
        assert_eq!(out.notifications, 0);
        assert_eq!(out.link.messages, 0);
    }

    #[test]
    fn independent_domains_scale_with_the_node_count() {
        let trace = distributed::wavefront(4, 0.0, 6, 6, us(50), 1);
        let cfg1 = ClusterConfig::new(1, 4).with_link(LinkConfig::rdma());
        let cfg4 = ClusterConfig::new(4, 4).with_link(LinkConfig::rdma());
        let one = simulate_cluster(&trace, &cfg1, |_| IdealManager::new());
        let four = simulate_cluster(&trace, &cfg4, |_| IdealManager::new());
        assert_eq!(one.tasks, four.tasks);
        assert!(
            four.makespan.as_us_f64() < 0.5 * one.makespan.as_us_f64(),
            "4 nodes {} vs 1 node {}",
            four.makespan,
            one.makespan
        );
        // Descriptor traffic crossed the network, but no dependency
        // notifications (the domains are independent).
        assert!(four.link.messages > 0);
        assert_eq!(four.notifications, 0);
        assert_eq!(four.edges.remote, 0);
    }

    #[test]
    fn remote_dependencies_pay_the_link_latency() {
        // Two tasks on different nodes, consumer reads producer's output.
        let mut b = nexus_trace::trace::TraceBuilder::new("remote-pair");
        b.submit_with(|id| {
            TaskDescriptor::builder(id.0)
                .output(0x100)
                .duration(us(10))
                .affinity(0)
                .build()
        });
        b.submit_with(|id| {
            TaskDescriptor::builder(id.0)
                .input(0x100)
                .inout(0x2000)
                .duration(us(10))
                .affinity(1)
                .build()
        });
        b.taskwait();
        let trace = b.finish();

        let slow = LinkConfig {
            latency: us(100),
            per_word: SimDuration::ZERO,
            topology: crate::config::Topology::FullMesh,
        };
        let fast = LinkConfig::ideal();
        let cfg_slow = ClusterConfig::new(2, 1).with_link(slow);
        let cfg_fast = ClusterConfig::new(2, 1).with_link(fast);
        let out_slow = simulate_cluster(&trace, &cfg_slow, |_| IdealManager::new());
        let out_fast = simulate_cluster(&trace, &cfg_fast, |_| IdealManager::new());
        assert_eq!(out_fast.makespan, us(20));
        // Producer retires at 10 us; its notification reaches node 1 at
        // 110 us (the consumer's descriptor arrived at 100 us); the consumer
        // runs until 120 us and its retirement notification reaches the
        // master at 220 us.
        assert_eq!(out_slow.makespan, us(220));
        assert_eq!(out_slow.notifications, 1);
        assert_eq!(out_slow.edges.remote, 1);
        assert!(out_slow.master_barrier_time > SimDuration::ZERO);
    }

    #[test]
    fn runs_are_bit_identical() {
        let trace = distributed::sparselu(4, 0.3, 9, 0.002);
        let cfg = ClusterConfig::new(4, 4);
        let a = simulate_cluster(&trace, &cfg, |_| IdealManager::new());
        let b = simulate_cluster(&trace, &cfg, |_| IdealManager::new());
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.notifications, b.notifications);
        assert_eq!(a.link.words, b.link.words);
        assert_eq!(a.node_tasks(), b.node_tasks());
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = ClusterDriver::new(&ClusterConfig::new(0, 4), |_| IdealManager::new());
    }
}
