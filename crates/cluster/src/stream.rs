//! Streaming (open-loop) ingestion into the cluster driver.
//!
//! The closed-loop [`run`](crate::ClusterDriver::run) path submits as fast as
//! the pipeline allows and reports a makespan — a batch job. Service traffic
//! instead *arrives*: a [`StreamingSource`] layers an [`ArrivalOverlay`]
//! (one timestamp per
//! submission, built by `nexus-flow`'s arrival processes) over a trace and
//! feeds descriptors into the cluster as sim-time reaches each arrival,
//! through bounded per-node admission queues ([`AdmissionConfig`]).
//!
//! Admission counts everything the source has emitted toward a node and the
//! node has not yet handed to its manager: descriptors in flight on the wire
//! plus the node's pending input queue. An arrival that finds its home node's
//! admission domain full **blocks the source clock** — it is never dropped;
//! the whole arrival process shifts by the blocked duration (the accumulated
//! shift is reported as [`StreamOutcome::source_lag`]) and the episode is
//! counted in [`StreamOutcome::backpressure_events`].
//!
//! [`StreamOutcome`] carries the raw per-task submit→retire latencies (in
//! submission order) and a coarsened admission-depth time series;
//! `nexus-flow` folds them into log-bucket histograms, percentiles and knee
//! sweeps.

use nexus_sim::{SimDuration, SimTime};
use nexus_trace::ArrivalOverlay;
use serde::{Deserialize, Serialize};

use crate::outcome::ClusterOutcome;

/// Bounded per-node admission: how many descriptors the source may have
/// outstanding toward one node (in flight + in the node's pending input
/// queue) before further arrivals to that node block the source clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Admission-domain bound per node. Must be at least 1.
    pub depth: usize,
}

impl AdmissionConfig {
    /// Default per-node admission depth.
    pub const DEFAULT_DEPTH: usize = 64;

    /// An admission queue bounded at `depth` descriptors per node.
    ///
    /// # Panics
    /// Panics if `depth` is zero (a zero-depth queue can never admit).
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "admission depth must be at least 1");
        AdmissionConfig { depth }
    }
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            depth: Self::DEFAULT_DEPTH,
        }
    }
}

/// The source feeding a streaming run: an optional arrival overlay (open
/// loop) plus the admission bound. Without an overlay the source is
/// *closed-loop*: the master self-clocks exactly as in
/// [`run`](crate::ClusterDriver::run) (bit-identical outcomes), admission is
/// not enforced, and only the service metrics are recorded on top.
#[derive(Debug, Clone)]
pub struct StreamingSource {
    pub(crate) overlay: Option<ArrivalOverlay>,
    pub(crate) admission: AdmissionConfig,
}

impl StreamingSource {
    /// An open-loop source: submissions become visible at the overlay's
    /// arrival times, gated by the admission bound.
    pub fn open_loop(overlay: ArrivalOverlay, admission: AdmissionConfig) -> Self {
        StreamingSource {
            overlay: Some(overlay),
            admission,
        }
    }

    /// A closed-loop source: today's self-clocked master, plus latency
    /// recording. Reproduces [`run`](crate::ClusterDriver::run) exactly.
    pub fn closed_loop() -> Self {
        StreamingSource {
            overlay: None,
            admission: AdmissionConfig::default(),
        }
    }

    /// The admission bound of the source.
    pub fn admission(&self) -> AdmissionConfig {
        self.admission
    }

    /// True for an open-loop (arrival-driven) source.
    pub fn is_open_loop(&self) -> bool {
        self.overlay.is_some()
    }
}

/// A coarsened time series of admission-queue depth samples: every push is
/// kept until the buffer reaches twice its cap, then every other retained
/// sample is dropped and the stride doubles — deterministic, bounded memory,
/// and the retained samples are a uniform subsample of the pushes.
#[derive(Debug, Clone)]
pub struct DepthSeries {
    samples: Vec<(SimTime, u64)>,
    cap: usize,
    stride: u64,
    pushes: u64,
}

impl DepthSeries {
    /// Default retained-sample cap.
    pub const DEFAULT_CAP: usize = 512;

    /// A series retaining at most `2 * cap` samples at any point.
    pub fn new(cap: usize) -> Self {
        DepthSeries {
            samples: Vec::new(),
            cap: cap.max(2),
            stride: 1,
            pushes: 0,
        }
    }

    /// Offers one sample; retained if it falls on the current stride.
    pub fn push(&mut self, at: SimTime, depth: u64) {
        if self.pushes.is_multiple_of(self.stride) {
            if self.samples.len() >= 2 * self.cap {
                // Halve the resolution: keep every other retained sample.
                let mut keep = 0;
                self.samples.retain(|_| {
                    keep += 1;
                    (keep - 1) % 2 == 0
                });
                self.stride *= 2;
            }
            if self.pushes.is_multiple_of(self.stride) {
                self.samples.push((at, depth));
            }
        }
        self.pushes += 1;
    }

    /// The retained samples, in time order.
    pub fn samples(&self) -> &[(SimTime, u64)] {
        &self.samples
    }

    /// Consumes the series into its retained samples.
    pub fn into_samples(self) -> Vec<(SimTime, u64)> {
        self.samples
    }

    /// Total samples offered (before coarsening).
    pub fn pushes(&self) -> u64 {
        self.pushes
    }
}

impl Default for DepthSeries {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAP)
    }
}

/// The result of a streaming run: the usual [`ClusterOutcome`] plus the
/// service-side raw measurements (latencies, back-pressure, depth series).
#[derive(Debug, Clone)]
pub struct StreamOutcome {
    /// The closed-loop outcome fields (makespan, traffic, per-node stats).
    pub cluster: ClusterOutcome,
    /// Per-task submit→retire latency, in submission order. For open-loop
    /// runs "submit" is the task's effective arrival time (its overlay time
    /// shifted by the accumulated source lag), so queueing at a busy source
    /// interface counts toward latency while blocked-clock time does not —
    /// the latter is reported as back-pressure instead.
    pub latencies: Vec<SimDuration>,
    /// Arrivals that found their home node's admission domain full and
    /// blocked the source clock (one per blocking episode; never a drop).
    pub backpressure_events: u64,
    /// Largest admission-domain occupancy observed on any node. Never
    /// exceeds the configured depth on open-loop runs.
    pub max_admission_depth: usize,
    /// Coarsened time series of the admission depth seen by each arrival at
    /// its home node.
    pub depth_series: Vec<(SimTime, u64)>,
    /// Total time the source clock spent blocked on full admission queues
    /// (the shift applied to the tail of the arrival process).
    pub source_lag: SimDuration,
}

impl StreamOutcome {
    /// Completed tasks per second of simulated time (throughput actually
    /// served, as opposed to offered load).
    pub fn completed_per_sec(&self) -> f64 {
        let secs = self.cluster.makespan.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.cluster.tasks as f64 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_us(us)
    }

    #[test]
    fn admission_config_validates_and_defaults() {
        assert_eq!(AdmissionConfig::default().depth, 64);
        assert_eq!(AdmissionConfig::new(4).depth, 4);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_depth_rejected() {
        let _ = AdmissionConfig::new(0);
    }

    #[test]
    fn depth_series_coarsens_deterministically() {
        let mut s = DepthSeries::new(8);
        for i in 0..1000u64 {
            s.push(t(i), i);
        }
        assert_eq!(s.pushes(), 1000);
        assert!(s.samples().len() <= 16, "{}", s.samples().len());
        // Still spans the whole run: first sample kept, last region sampled.
        assert_eq!(s.samples()[0], (t(0), 0));
        assert!(s.samples().last().unwrap().1 >= 896);
        // Deterministic: a second identical series retains identical samples.
        let mut s2 = DepthSeries::new(8);
        for i in 0..1000u64 {
            s2.push(t(i), i);
        }
        assert_eq!(s.samples(), s2.samples());
    }

    #[test]
    fn source_kinds() {
        assert!(!StreamingSource::closed_loop().is_open_loop());
        let overlay = ArrivalOverlay::new(vec![t(1), t(2)]).unwrap();
        let src = StreamingSource::open_loop(overlay, AdmissionConfig::new(2));
        assert!(src.is_open_loop());
        assert_eq!(src.admission().depth, 2);
    }
}
