//! Analytic pipeline schedules (Fig. 1 reproduction).
//!
//! Independent of the full discrete-event model, this module computes the
//! per-stage cycle schedule of inserting a stream of tasks through the Nexus++
//! pipeline under ideal conditions (no stalls, empty task graph). The benchmark
//! harness uses it to regenerate the pipeline walk-throughs of Fig. 1 and to
//! compare against the Nexus# schedules of Fig. 4 / Fig. 5.

use crate::config::NexusPPConfig;
use serde::{Deserialize, Serialize};

/// One pipeline-stage occupancy interval, in cycles relative to the start of
/// the schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageSpan {
    /// Task index within the submitted stream.
    pub task: usize,
    /// Stage name ("IP", "Insert", "WB").
    pub stage: &'static str,
    /// First cycle of the stage (inclusive).
    pub start_cycle: u64,
    /// One past the last cycle of the stage.
    pub end_cycle: u64,
}

impl StageSpan {
    /// Stage length in cycles.
    pub fn cycles(&self) -> u64 {
        self.end_cycle - self.start_cycle
    }
}

/// Computes the ideal-case schedule of pushing `tasks` back-to-back tasks with
/// `params_per_task` parameters each through the Nexus++ pipeline, assuming all
/// tasks are independent (every one reaches Write Back).
///
/// Returns the stage spans plus the total cycle count (the cycle at which the
/// last write-back completes).
pub fn pipeline_schedule(
    config: &NexusPPConfig,
    tasks: usize,
    params_per_task: usize,
) -> (Vec<StageSpan>, u64) {
    let mut spans = Vec::with_capacity(tasks * 3);
    let mut ip_free = 0u64;
    let mut insert_free = 0u64;
    let mut wb_free = 0u64;
    let mut total = 0u64;

    for t in 0..tasks {
        // Stage 1: Input Parser (serial per task, a whole task at a time).
        let ip_start = ip_free;
        let ip_end = ip_start + config.ip_cycles(params_per_task);
        ip_free = ip_end;
        spans.push(StageSpan {
            task: t,
            stage: "IP",
            start_cycle: ip_start,
            end_cycle: ip_end,
        });

        // Stage 2: Insert — data must be fully buffered (FIFO latency) and the
        // stage must be free.
        let ins_start = (ip_end + config.fifo_latency_cycles).max(insert_free);
        let ins_end = ins_start + config.insert_cycles(params_per_task);
        insert_free = ins_end;
        spans.push(StageSpan {
            task: t,
            stage: "Insert",
            start_cycle: ins_start,
            end_cycle: ins_end,
        });

        // Stage 3: Write Back (only for ready tasks; all tasks are independent
        // here).
        let wb_start = (ins_end + config.fifo_latency_cycles).max(wb_free);
        let wb_end = wb_start + config.writeback_cycles;
        wb_free = wb_end;
        spans.push(StageSpan {
            task: t,
            stage: "WB",
            start_cycle: wb_start,
            end_cycle: wb_end,
        });
        total = total.max(wb_end);
    }
    (spans, total)
}

/// The steady-state initiation interval of the pipeline (cycles between
/// consecutive write-backs) for tasks of a given parameter count: dominated by
/// the longest stage, which for Nexus++ is the Insert stage (18 cycles for the
/// 4-parameter example — "the write back stage … took place every other 18
/// cycles in the old pipeline").
pub fn initiation_interval(config: &NexusPPConfig, params_per_task: usize) -> u64 {
    config
        .ip_cycles(params_per_task)
        .max(config.insert_cycles(params_per_task))
        .max(config.writeback_cycles)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_parameter_example_matches_fig1() {
        let c = NexusPPConfig::default();
        let (spans, total) = pipeline_schedule(&c, 1, 4);
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].cycles(), 12);
        assert_eq!(spans[1].cycles(), 18);
        assert_eq!(spans[2].cycles(), 3);
        // 12 (IP) + 3 (fifo) + 18 (Insert) + 3 (fifo) + 3 (WB) = 39 cycles.
        assert_eq!(total, 39);
    }

    #[test]
    fn steady_state_is_limited_by_the_insert_stage() {
        let c = NexusPPConfig::default();
        assert_eq!(initiation_interval(&c, 4), 18);
        let (spans, _) = pipeline_schedule(&c, 4, 4);
        // Write-backs of consecutive tasks are 18 cycles apart in steady state.
        let wb: Vec<&StageSpan> = spans.iter().filter(|s| s.stage == "WB").collect();
        let deltas: Vec<u64> = wb
            .windows(2)
            .map(|w| w[1].end_cycle - w[0].end_cycle)
            .collect();
        assert!(deltas.iter().skip(1).all(|&d| d == 18), "{deltas:?}");
    }

    #[test]
    fn stages_never_overlap_on_the_same_resource() {
        let c = NexusPPConfig::default();
        let (spans, _) = pipeline_schedule(&c, 6, 3);
        for stage in ["IP", "Insert", "WB"] {
            let mut last_end = 0;
            for s in spans.iter().filter(|s| s.stage == stage) {
                assert!(s.start_cycle >= last_end, "{stage} overlaps");
                last_end = s.end_cycle;
            }
        }
    }
}
