//! Nexus++ configuration: pipeline cycle costs, table geometry, clocking.

use nexus_sim::ClockDomain;
use nexus_taskgraph::assoc::SetAssocConfig;
use nexus_taskgraph::taskpool::RetirementOrder;
use serde::{Deserialize, Serialize};

/// Cycle costs and structural parameters of the Nexus++ model.
///
/// The defaults reproduce the numbers given in §III for the running 4-parameter
/// example: Input Parser 12 cycles (4 header/sync + 2 per parameter), Insert 18
/// cycles (2 + 4 per parameter), Write Back 3 cycles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NexusPPConfig {
    /// Management clock frequency in MHz (Table I: 100 MHz test frequency).
    pub clock_mhz: f64,
    /// Set-associative table geometry of the single task graph.
    pub table: SetAssocConfig,
    /// Task-pool capacity (in-flight task window).
    pub task_pool_capacity: usize,
    /// Task-pool slot recycling discipline (Nexus++ uses a circular buffer).
    pub retirement: RetirementOrder,

    /// Input Parser: header + synchronization cycles per task.
    pub ip_header_cycles: u64,
    /// Input Parser: cycles per parameter (two 32-bit PCIe words per address).
    pub ip_cycles_per_param: u64,
    /// FIFO forwarding latency between pipeline stages (cycles).
    pub fifo_latency_cycles: u64,
    /// Insert stage: fixed cycles per task.
    pub insert_base_cycles: u64,
    /// Insert stage: cycles per parameter.
    pub insert_cycles_per_param: u64,
    /// Write Back stage: cycles per ready task.
    pub writeback_cycles: u64,

    /// Finished-task pipeline: cycles to receive a completion notification.
    pub finish_receive_cycles: u64,
    /// Finished-task pipeline: cleanup cycles per parameter.
    pub delete_cycles_per_param: u64,
    /// Finished-task pipeline: cycles per kicked-off waiting task.
    pub kickoff_cycles_per_waiter: u64,

    /// Extra cycles for reaching an entry in the overflow (dummy-entry) area.
    pub overflow_penalty_cycles: u64,
    /// Extra cycles per additional kick-off-list segment traversed.
    pub kickoff_segment_penalty_cycles: u64,
}

impl Default for NexusPPConfig {
    fn default() -> Self {
        NexusPPConfig {
            clock_mhz: 100.0,
            table: SetAssocConfig::default(),
            task_pool_capacity: 256,
            retirement: RetirementOrder::InOrder,
            ip_header_cycles: 4,
            ip_cycles_per_param: 2,
            fifo_latency_cycles: 3,
            insert_base_cycles: 2,
            insert_cycles_per_param: 4,
            writeback_cycles: 3,
            finish_receive_cycles: 4,
            delete_cycles_per_param: 4,
            kickoff_cycles_per_waiter: 2,
            overflow_penalty_cycles: 4,
            kickoff_segment_penalty_cycles: 2,
        }
    }
}

impl NexusPPConfig {
    /// The paper's evaluation configuration (100 MHz, Table I).
    pub fn paper() -> Self {
        Self::default()
    }

    /// The clock domain of the manager.
    pub fn clock(&self) -> ClockDomain {
        ClockDomain::from_mhz(self.clock_mhz)
    }

    /// Input Parser cycles for a task with `params` parameters
    /// (12 for the 4-parameter example of Fig. 1).
    pub fn ip_cycles(&self, params: usize) -> u64 {
        self.ip_header_cycles + self.ip_cycles_per_param * params as u64
    }

    /// Insert-stage cycles for a task with `params` parameters
    /// (18 for the 4-parameter example of Fig. 1).
    pub fn insert_cycles(&self, params: usize) -> u64 {
        self.insert_base_cycles + self.insert_cycles_per_param * params as u64
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.clock_mhz <= 0.0 {
            return Err("clock frequency must be positive".into());
        }
        if self.task_pool_capacity == 0 {
            return Err("task pool capacity must be non-zero".into());
        }
        self.table.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_reproduce_the_papers_stage_lengths() {
        let c = NexusPPConfig::default();
        assert_eq!(c.ip_cycles(4), 12, "Fig. 1: 12 cycles of input parsing");
        assert_eq!(c.insert_cycles(4), 18, "Fig. 1: 18-cycle insert stage");
        assert_eq!(c.writeback_cycles, 3, "Fig. 1: 3-cycle write back");
        assert_eq!(c.clock().period(), nexus_sim::SimDuration::from_ns(10));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_configs() {
        let c = NexusPPConfig {
            clock_mhz: 0.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = NexusPPConfig {
            task_pool_capacity: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }
}
