//! The Nexus++ discrete-event model (implements [`TaskManager`]).

use crate::config::NexusPPConfig;
use nexus_host::manager::{ManagerEvent, TaskManager};
use nexus_sim::{ClockDomain, SerialResource, SimDuration, SimTime};
use nexus_taskgraph::{DependencyTracker, TaskPool};
use nexus_trace::{TaskDescriptor, TaskId};
use std::collections::HashMap;

/// The centralized Nexus++ hardware task manager.
pub struct NexusPP {
    config: NexusPPConfig,
    clock: ClockDomain,

    /// The Nexus IO / Input Parser front-end: receives task submissions and
    /// finished-task notifications from the host (serial).
    io_front_end: SerialResource,
    /// The single task-graph engine: executes the Insert stage and the
    /// finished-task cleanup, which contend with each other.
    graph_engine: SerialResource,
    /// The Write Back port returning ready task ids to the host.
    writeback: SerialResource,

    /// Functional dependency state of the single task graph.
    tracker: DependencyTracker,
    /// Bounded in-flight task storage (circular-buffer recycling by default).
    pool: TaskPool,
    /// Outstanding dependence count per waiting task.
    dep_counts: HashMap<TaskId, u32>,
    /// Parameter lists of in-flight tasks (needed at cleanup time).
    params: HashMap<TaskId, Vec<nexus_trace::TaskParam>>,

    pending: Vec<ManagerEvent>,
    /// Counters for `stats_summary`.
    tasks_submitted: u64,
    tasks_retired: u64,
    ready_immediately: u64,
    last_activity: SimTime,
}

impl NexusPP {
    /// Creates a Nexus++ model with the given configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(config: NexusPPConfig) -> Self {
        config.validate().expect("invalid Nexus++ configuration");
        NexusPP {
            clock: config.clock(),
            tracker: DependencyTracker::new(config.table),
            pool: TaskPool::new(config.task_pool_capacity, config.retirement),
            config,
            io_front_end: SerialResource::new(),
            graph_engine: SerialResource::new(),
            writeback: SerialResource::new(),
            dep_counts: HashMap::new(),
            params: HashMap::new(),
            pending: Vec::new(),
            tasks_submitted: 0,
            tasks_retired: 0,
            ready_immediately: 0,
            last_activity: SimTime::ZERO,
        }
    }

    /// Creates the paper's evaluation configuration (100 MHz).
    pub fn paper() -> Self {
        Self::new(NexusPPConfig::paper())
    }

    /// The configuration in use.
    pub fn config(&self) -> &NexusPPConfig {
        &self.config
    }

    fn cycles(&self, n: u64) -> SimDuration {
        self.clock.cycles(n)
    }

    fn fifo_delay(&self) -> SimDuration {
        self.cycles(self.config.fifo_latency_cycles)
    }

    /// Emits a ready notification through the Write Back stage.
    fn write_back_ready(&mut self, task: TaskId, not_before: SimTime) {
        let res = self.writeback.acquire_after(
            not_before,
            not_before + self.fifo_delay(),
            self.cycles(self.config.writeback_cycles),
        );
        self.pending.push(ManagerEvent::Ready { task, at: res.end });
    }
}

impl TaskManager for NexusPP {
    fn name(&self) -> String {
        "Nexus++".to_string()
    }

    fn supports_taskwait_on(&self) -> bool {
        // §III: "it doesn't support the barrier pragma taskwait on".
        false
    }

    fn can_accept(&self, _now: SimTime) -> bool {
        self.pool.has_free_slot()
    }

    fn submit(&mut self, task: &TaskDescriptor, now: SimTime) -> SimTime {
        self.tasks_submitted += 1;
        self.last_activity = self.last_activity.max(now);

        // Stage 1: Input Parser — the master streams the whole descriptor over
        // the Nexus IO; the master is busy for the duration of the transfer.
        let ip_cycles = self.config.ip_cycles(task.num_params());
        let ip = self.io_front_end.acquire(now, self.cycles(ip_cycles));

        // Stage 2: Insert — the whole parameter list is inserted into the single
        // task graph once the descriptor has passed through the inter-stage FIFO.
        let mut insert_cycles = self.config.insert_cycles(task.num_params());
        let mut blocked_params = 0u32;
        for p in &task.params {
            let outcome = self.tracker.insert_param(task.id, p.addr, p.dir);
            if outcome.blocked {
                blocked_params += 1;
            }
            if outcome.overflow {
                insert_cycles += self.config.overflow_penalty_cycles;
            }
            if outcome.kickoff_segment > 1 {
                // Appending to a chained (dummy-entry) segment costs one extra
                // pointer chase (the design keeps a tail pointer).
                insert_cycles += self.config.kickoff_segment_penalty_cycles;
            }
        }
        let insert = self.graph_engine.acquire_after(
            ip.end,
            ip.end + self.fifo_delay(),
            self.cycles(insert_cycles),
        );

        // Bookkeeping for the finished-task pipeline.
        self.pool
            .admit(task.clone())
            .expect("driver must check can_accept before submitting");
        self.params.insert(task.id, task.params.clone());

        // Stage 3: Write Back for tasks with no unresolved dependencies.
        if blocked_params == 0 {
            self.ready_immediately += 1;
            self.write_back_ready(task.id, insert.end);
        } else {
            self.dep_counts.insert(task.id, blocked_params);
        }

        // The master is released once the transfer into the Nexus IO completes.
        ip.end
    }

    fn finish(&mut self, task: TaskId, now: SimTime) -> SimTime {
        self.last_activity = self.last_activity.max(now);
        // The worker writes a completion notification to the Nexus IO unit.
        let recv = self
            .io_front_end
            .acquire(now, self.cycles(self.config.finish_receive_cycles));

        // The finished-task pipeline walks the task's parameter list, kicks off
        // waiting tasks and cleans up table entries; it contends with the Insert
        // stage for the single task graph.
        let params = self
            .params
            .remove(&task)
            .expect("finish() for a task that was never submitted");
        let mut cleanup_cycles = self.config.delete_cycles_per_param * params.len() as u64;
        let mut released: Vec<TaskId> = Vec::new();
        for p in &params {
            let out = self.tracker.retire_param(task, p.addr, p.dir);
            cleanup_cycles += self.config.kickoff_cycles_per_waiter * out.waiters_scanned as u64;
            released.extend(out.released);
        }
        let cleanup = self.graph_engine.acquire_after(
            recv.end,
            recv.end + self.fifo_delay(),
            self.cycles(cleanup_cycles),
        );

        // Kicked-off tasks whose dependence count reaches zero go through the
        // Write Back stage.
        for dep in released {
            let count = self
                .dep_counts
                .get_mut(&dep)
                .expect("released task must have a dependence count");
            *count -= 1;
            if *count == 0 {
                self.dep_counts.remove(&dep);
                self.write_back_ready(dep, cleanup.end);
            }
        }

        // Retirement (as observed by `taskwait`) happens when cleanup completes.
        self.pool.finish(task);
        self.tasks_retired += 1;
        self.pending.push(ManagerEvent::Retired {
            task,
            at: cleanup.end,
        });

        // The worker is released as soon as its notification has been accepted.
        recv.end
    }

    fn drain_events(&mut self) -> Vec<ManagerEvent> {
        std::mem::take(&mut self.pending)
    }

    fn stats_summary(&self) -> Vec<(String, f64)> {
        let horizon = self.last_activity;
        vec![
            ("tasks_submitted".into(), self.tasks_submitted as f64),
            ("tasks_retired".into(), self.tasks_retired as f64),
            ("ready_immediately".into(), self.ready_immediately as f64),
            (
                "io_utilization".into(),
                self.io_front_end.utilization(horizon),
            ),
            (
                "graph_engine_utilization".into(),
                self.graph_engine.utilization(horizon),
            ),
            (
                "writeback_utilization".into(),
                self.writeback.utilization(horizon),
            ),
            (
                "pool_peak_occupancy".into(),
                self.pool.stats().peak_occupancy as f64,
            ),
            (
                "table_peak_addresses".into(),
                self.tracker.table_stats().peak_live as f64,
            ),
            (
                "max_kickoff_list".into(),
                self.tracker.stats().max_kickoff_len as f64,
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexus_host::driver::{simulate, HostConfig};
    use nexus_host::IdealManager;
    use nexus_sim::SimDuration;
    use nexus_trace::generators::micro;

    #[test]
    fn single_independent_task_latency_matches_the_pipeline() {
        // One 4-parameter task: ready after IP (12) + fifo (3) + Insert (18)
        // + fifo (3) + WB (3) = 39 cycles = 390 ns at 100 MHz.
        let mut m = NexusPP::paper();
        let trace = micro::single_task(4, SimDuration::from_us(1));
        let task = trace.tasks().next().unwrap();
        let release = m.submit(task, SimTime::ZERO);
        assert_eq!(
            release,
            SimTime::from_ps(120_000),
            "master busy for 12 cycles"
        );
        let events = m.drain_events();
        assert_eq!(events.len(), 1);
        match events[0] {
            ManagerEvent::Ready { task: t, at } => {
                assert_eq!(t, task.id);
                assert_eq!(at, SimTime::from_ps(390_000));
            }
            _ => panic!("expected a ready event"),
        }
    }

    #[test]
    fn dependent_task_is_only_ready_after_the_producer_retires() {
        let mut m = NexusPP::paper();
        let trace = micro::chain(2, SimDuration::from_us(5));
        let tasks: Vec<_> = trace.tasks().cloned().collect();
        m.submit(&tasks[0], SimTime::ZERO);
        m.submit(&tasks[1], SimTime::ZERO);
        let readies = m
            .drain_events()
            .iter()
            .filter(|e| matches!(e, ManagerEvent::Ready { .. }))
            .count();
        assert_eq!(readies, 1, "only the first task is ready");
        // Finish the first task; the second becomes ready afterwards.
        let t_fin = SimTime::from_ps(10_000_000);
        m.finish(tasks[0].id, t_fin);
        let events = m.drain_events();
        let ready_second = events.iter().any(
            |e| matches!(e, ManagerEvent::Ready { task, at } if *task == tasks[1].id && *at > t_fin),
        );
        assert!(ready_second, "{events:?}");
        let retired_first = events
            .iter()
            .any(|e| matches!(e, ManagerEvent::Retired { task, .. } if *task == tasks[0].id));
        assert!(retired_first);
    }

    #[test]
    fn back_pressure_when_the_pool_fills() {
        let cfg = NexusPPConfig {
            task_pool_capacity: 2,
            ..Default::default()
        };
        let mut m = NexusPP::new(cfg);
        let trace = micro::independent_tasks(3, 1, SimDuration::from_us(1));
        let tasks: Vec<_> = trace.tasks().cloned().collect();
        assert!(m.can_accept(SimTime::ZERO));
        m.submit(&tasks[0], SimTime::ZERO);
        m.submit(&tasks[1], SimTime::ZERO);
        assert!(!m.can_accept(SimTime::ZERO), "pool of 2 is full");
        m.finish(tasks[0].id, SimTime::from_ps(1_000_000));
        assert!(m.can_accept(SimTime::ZERO));
    }

    #[test]
    fn full_simulation_matches_ideal_for_coarse_independent_tasks() {
        // With 6 ms tasks (c-ray-like) the manager overhead is negligible:
        // Nexus++ should be within a few percent of the ideal manager.
        let trace = micro::independent_tasks(64, 1, SimDuration::from_us(6000));
        let cfg = HostConfig::with_workers(16);
        let ideal = simulate(&trace, &mut IdealManager::new(), &cfg);
        let pp = simulate(&trace, &mut NexusPP::paper(), &cfg);
        assert!(
            pp.speedup() > 0.97 * ideal.speedup(),
            "{} vs {}",
            pp.speedup(),
            ideal.speedup()
        );
        assert_eq!(pp.tasks, 64);
    }

    #[test]
    fn fine_grained_chains_expose_the_serial_pipeline_cost() {
        // A serial chain of 1 us tasks: every task pays the full submit+finish
        // round trip, so Nexus++ must be slower than ideal but still correct.
        let trace = micro::chain(100, SimDuration::from_us(1));
        let cfg = HostConfig::with_workers(4);
        let ideal = simulate(&trace, &mut IdealManager::new(), &cfg);
        let pp = simulate(&trace, &mut NexusPP::paper(), &cfg);
        assert_eq!(pp.tasks, 100);
        assert!(pp.makespan > ideal.makespan);
        assert!(pp.speedup() < 1.0);
        assert!(pp.speedup() > 0.3, "{}", pp.speedup());
    }

    #[test]
    fn stats_summary_reports_utilizations() {
        let trace = micro::independent_tasks(10, 2, SimDuration::from_us(10));
        let mut m = NexusPP::paper();
        simulate(&trace, &mut m, &HostConfig::with_workers(4));
        let stats: std::collections::HashMap<String, f64> = m.stats_summary().into_iter().collect();
        assert_eq!(stats["tasks_submitted"], 10.0);
        assert_eq!(stats["tasks_retired"], 10.0);
        assert!(stats["io_utilization"] > 0.0);
        assert!(stats["graph_engine_utilization"] > 0.0);
    }
}
