//! # nexus-pp — the Nexus++ baseline task manager
//!
//! Nexus++ (§III of the paper) is the centralized predecessor of Nexus#: a
//! single task graph fed by a 3-stage pipeline:
//!
//! 1. **Input Parser** — receives a whole task from the host (2 cycles per
//!    32-bit PCIe word, two words per 48-bit address, plus header and
//!    synchronization: 12 cycles for the 4-parameter example of Fig. 1),
//! 2. **Insert** — inserts all of the task's parameters into the single
//!    set-associative task graph (18 cycles for the 4-parameter example),
//! 3. **Write Back** — returns ready task ids to the Nexus IO unit (3 cycles).
//!
//! A second pipeline handles finished tasks: kicking off waiting tasks and
//! cleaning up the tables; it shares the single task-graph storage with the
//! Insert stage, so the two streams serialize on the central graph engine.
//!
//! Nexus++ does **not** support the `taskwait on` pragma (§III / §VI) — the
//! host driver escalates such barriers to full `taskwait`s, which is what makes
//! the fine-grained h264dec benchmark scale poorly on it. Its task pool also
//! recycles slots in submission order (a circular buffer), so a long-running
//! early task delays slot reuse.

#![warn(missing_docs)]

pub mod config;
pub mod manager;
pub mod pipeline;

pub use config::NexusPPConfig;
pub use manager::NexusPP;
pub use pipeline::{pipeline_schedule, StageSpan};
