//! Nanos cost-model configuration.

use serde::{Deserialize, Serialize};

/// Cost parameters of the software runtime model (all in microseconds unless
/// stated otherwise). Defaults are in the range reported for dependency-aware
/// task runtimes of the period (Vandierendonck et al. quote 400 cycles ≈ 0.2 µs
/// per task as the *best* case for a heavily optimized tracker; Nanos with the
/// Mercurium-generated glue is one to two orders of magnitude heavier).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NanosConfig {
    /// Number of worker threads (used to model lock contention growth).
    pub workers: usize,
    /// Global multiplier applied to every overhead term (per-benchmark
    /// calibration; see [`crate::calibration`]).
    pub overhead_scale: f64,

    /// Master-side task-creation cost (allocation, closure capture, bookkeeping).
    pub create_us: f64,
    /// Master-side cost per dependency (address) inserted.
    pub create_per_dep_us: f64,
    /// Worker-side scheduling cost per dispatched task (ready-queue pop,
    /// thread wake-up).
    pub dispatch_us: f64,
    /// Worker-side completion cost per finished task (dependency release walk).
    pub release_us: f64,
    /// Worker-side cost per dependency released.
    pub release_per_dep_us: f64,

    /// Runtime-lock critical-section base length per operation.
    pub lock_base_us: f64,
    /// Runtime-lock extra hold time per active worker (cache-line transfer /
    /// contention growth).
    pub lock_per_worker_us: f64,
}

impl NanosConfig {
    /// Default cost constants for a given worker count (no per-benchmark
    /// scaling).
    pub fn with_workers(workers: usize) -> Self {
        NanosConfig {
            workers,
            overhead_scale: 1.0,
            create_us: 3.0,
            create_per_dep_us: 0.7,
            dispatch_us: 1.2,
            release_us: 1.8,
            release_per_dep_us: 0.5,
            lock_base_us: 0.6,
            lock_per_worker_us: 0.055,
        }
    }

    /// Applies a per-benchmark overhead scale factor.
    pub fn scaled(mut self, scale: f64) -> Self {
        self.overhead_scale = scale;
        self
    }

    /// The runtime-lock hold time per operation at this worker count.
    pub fn lock_hold_us(&self) -> f64 {
        (self.lock_base_us + self.lock_per_worker_us * self.workers as f64) * self.overhead_scale
    }

    /// Master-side creation cost for a task with `deps` dependencies.
    pub fn creation_us(&self, deps: usize) -> f64 {
        (self.create_us + self.create_per_dep_us * deps as f64) * self.overhead_scale
    }

    /// Worker-side dispatch cost.
    pub fn dispatch_cost_us(&self) -> f64 {
        self.dispatch_us * self.overhead_scale
    }

    /// Worker-side release cost for a task with `deps` dependencies.
    pub fn release_cost_us(&self, deps: usize) -> f64 {
        (self.release_us + self.release_per_dep_us * deps as f64) * self.overhead_scale
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("worker count must be non-zero".into());
        }
        if self.overhead_scale <= 0.0 {
            return Err("overhead scale must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_hold_grows_with_workers() {
        let c1 = NanosConfig::with_workers(1);
        let c32 = NanosConfig::with_workers(32);
        assert!(c32.lock_hold_us() > c1.lock_hold_us());
        assert!(c32.lock_hold_us() > 2.0 * c1.lock_hold_us());
    }

    #[test]
    fn scaling_multiplies_every_term() {
        let base = NanosConfig::with_workers(8);
        let scaled = base.scaled(3.0);
        assert!((scaled.creation_us(2) - 3.0 * base.creation_us(2)).abs() < 1e-12);
        assert!((scaled.dispatch_cost_us() - 3.0 * base.dispatch_cost_us()).abs() < 1e-12);
        assert!((scaled.release_cost_us(1) - 3.0 * base.release_cost_us(1)).abs() < 1e-12);
        assert!((scaled.lock_hold_us() - 3.0 * base.lock_hold_us()).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(NanosConfig::with_workers(4).validate().is_ok());
        assert!(NanosConfig::with_workers(0).validate().is_err());
        assert!(NanosConfig::with_workers(4).scaled(0.0).validate().is_err());
    }
}
