//! # nexus-nanos — the software runtime-system (Nanos) cost model
//!
//! Nanos is the official OmpSs runtime and the software baseline of the paper's
//! evaluation (§V-B, §VI). The paper measured it on the real 32-core machine;
//! we substitute a cost model executed on the simulated host (see DESIGN.md):
//!
//! * task creation and dependency insertion run on the **master** core,
//! * scheduling (ready-queue pop) and dependency release run on the **worker**
//!   that dispatches/finishes the task,
//! * every graph/scheduler operation additionally serializes on a central
//!   **runtime lock** whose hold time grows with the number of active threads
//!   (cache-line bouncing), which is what caps the scalability of fine-grained
//!   workloads and makes the curves *drop* at high core counts — the behaviour
//!   visible in Fig. 8 for Nanos.
//!
//! Absolute per-benchmark overheads are not given in the paper, so
//! [`calibration`] holds per-benchmark scale factors chosen to land the
//! 32-core caps near Table IV; the model structure (what is serialized where)
//! is the load-bearing part.

#![warn(missing_docs)]

pub mod calibration;
pub mod config;
pub mod manager;

pub use calibration::benchmark_overhead_scale;
pub use config::NanosConfig;
pub use manager::NanosRuntime;
