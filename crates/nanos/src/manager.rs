//! The Nanos runtime model (implements [`TaskManager`]).

use crate::calibration::benchmark_overhead_scale;
use crate::config::NanosConfig;
use nexus_host::manager::{ManagerEvent, TaskManager};
use nexus_sim::{SerialResource, SimDuration, SimTime};
use nexus_taskgraph::ReferenceGraph;
use nexus_trace::{TaskDescriptor, TaskId};
use std::collections::HashMap;

/// The software OmpSs runtime (Nanos) cost model.
pub struct NanosRuntime {
    config: NanosConfig,
    /// Exact software dependency graph (hash-map based, like the real runtime).
    graph: ReferenceGraph,
    /// The central runtime lock every graph/scheduler operation serializes on.
    runtime_lock: SerialResource,
    /// Dependency count of each in-flight task (for release cost accounting).
    dep_degree: HashMap<TaskId, usize>,
    pending: Vec<ManagerEvent>,
    tasks_submitted: u64,
    tasks_retired: u64,
    last_activity: SimTime,
}

impl NanosRuntime {
    /// Creates a Nanos model with explicit cost parameters.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(config: NanosConfig) -> Self {
        config.validate().expect("invalid Nanos configuration");
        NanosRuntime {
            config,
            graph: ReferenceGraph::new(),
            runtime_lock: SerialResource::new(),
            dep_degree: HashMap::new(),
            pending: Vec::new(),
            tasks_submitted: 0,
            tasks_retired: 0,
            last_activity: SimTime::ZERO,
        }
    }

    /// Creates a Nanos model for a given worker count with the calibrated
    /// overhead scale of the named benchmark (see [`crate::calibration`]).
    pub fn for_benchmark(benchmark: &str, workers: usize) -> Self {
        let scale = benchmark_overhead_scale(benchmark);
        Self::new(NanosConfig::with_workers(workers).scaled(scale))
    }

    /// The configuration in use.
    pub fn config(&self) -> &NanosConfig {
        &self.config
    }

    /// Serializes one runtime-lock critical section starting no earlier than
    /// `not_before`; returns the time the lock is released.
    fn lock_section(&mut self, not_before: SimTime) -> SimTime {
        let hold = SimDuration::from_us_f64(self.config.lock_hold_us());
        self.runtime_lock.acquire(not_before, hold).end
    }
}

impl TaskManager for NanosRuntime {
    fn name(&self) -> String {
        "Nanos".to_string()
    }

    fn can_accept(&self, _now: SimTime) -> bool {
        true // the software runtime has no hard in-flight window
    }

    fn supports_taskwait_on(&self) -> bool {
        true // OmpSs/Nanos implements taskwait on in software
    }

    fn submit(&mut self, task: &TaskDescriptor, now: SimTime) -> SimTime {
        self.tasks_submitted += 1;
        self.last_activity = self.last_activity.max(now);
        let deps = task.num_params();
        self.dep_degree.insert(task.id, deps);

        // Local (uncontended) part of task creation on the master.
        let local_done = now + SimDuration::from_us_f64(self.config.creation_us(deps));
        // Dependency insertion under the runtime lock.
        let lock_released = self.lock_section(local_done);

        if self.graph.insert(task) {
            self.pending.push(ManagerEvent::Ready {
                task: task.id,
                at: lock_released,
            });
        }
        lock_released
    }

    fn dispatch_cost(&mut self, _task: TaskId, now: SimTime) -> SimDuration {
        // Ready-queue pop on the worker: local wake-up plus a lock section.
        let local_done = now + SimDuration::from_us_f64(self.config.dispatch_cost_us());
        let lock_released = self.lock_section(local_done);
        lock_released.since(now)
    }

    fn finish(&mut self, task: TaskId, now: SimTime) -> SimTime {
        self.last_activity = self.last_activity.max(now);
        let deps = self.dep_degree.remove(&task).unwrap_or(1);
        // Local completion handling on the worker, then the dependency-release
        // walk under the runtime lock.
        let local_done = now + SimDuration::from_us_f64(self.config.release_cost_us(deps));
        let lock_released = self.lock_section(local_done);

        for ready in self.graph.retire(task) {
            self.pending.push(ManagerEvent::Ready {
                task: ready,
                at: lock_released,
            });
        }
        self.tasks_retired += 1;
        self.pending.push(ManagerEvent::Retired {
            task,
            at: lock_released,
        });
        lock_released
    }

    fn drain_events(&mut self) -> Vec<ManagerEvent> {
        std::mem::take(&mut self.pending)
    }

    fn stats_summary(&self) -> Vec<(String, f64)> {
        vec![
            ("tasks_submitted".into(), self.tasks_submitted as f64),
            ("tasks_retired".into(), self.tasks_retired as f64),
            (
                "runtime_lock_utilization".into(),
                self.runtime_lock.utilization(self.last_activity),
            ),
            (
                "runtime_lock_wait_us".into(),
                self.runtime_lock.wait_time().as_us_f64(),
            ),
            ("overhead_scale".into(), self.config.overhead_scale),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexus_host::driver::{simulate, HostConfig};
    use nexus_host::IdealManager;
    use nexus_trace::generators::micro;

    #[test]
    fn coarse_tasks_scale_well() {
        // 6 ms tasks: Nanos overhead (a few us) is negligible.
        let trace = micro::independent_tasks(64, 1, SimDuration::from_us(6000));
        let cfg = HostConfig::with_workers(16);
        let out = simulate(
            &trace,
            &mut NanosRuntime::new(NanosConfig::with_workers(16)),
            &cfg,
        );
        let ideal = simulate(&trace, &mut IdealManager::new(), &cfg);
        assert!(out.speedup() > 0.9 * ideal.speedup(), "{}", out.speedup());
    }

    #[test]
    fn fine_tasks_are_overhead_dominated() {
        // 5 us tasks: per-task overheads of a few us crush the speedup.
        let trace = micro::independent_tasks(500, 2, SimDuration::from_us(5));
        let out32 = simulate(
            &trace,
            &mut NanosRuntime::new(NanosConfig::with_workers(32)),
            &HostConfig::with_workers(32),
        );
        assert!(out32.speedup() < 3.0, "{}", out32.speedup());
        // And the curve degrades (or at best stagnates) as contention grows.
        let out8 = simulate(
            &trace,
            &mut NanosRuntime::new(NanosConfig::with_workers(8)),
            &HostConfig::with_workers(8),
        );
        assert!(
            out8.speedup() >= out32.speedup() * 0.8,
            "8c {} vs 32c {}",
            out8.speedup(),
            out32.speedup()
        );
    }

    #[test]
    fn lock_contention_grows_with_worker_count() {
        let trace = micro::independent_tasks(400, 2, SimDuration::from_us(20));
        let mut m8 = NanosRuntime::new(NanosConfig::with_workers(8));
        let mut m32 = NanosRuntime::new(NanosConfig::with_workers(32));
        simulate(&trace, &mut m8, &HostConfig::with_workers(8));
        simulate(&trace, &mut m32, &HostConfig::with_workers(32));
        let wait8: f64 = m8
            .stats_summary()
            .into_iter()
            .find(|(k, _)| k == "runtime_lock_wait_us")
            .unwrap()
            .1;
        let wait32: f64 = m32
            .stats_summary()
            .into_iter()
            .find(|(k, _)| k == "runtime_lock_wait_us")
            .unwrap()
            .1;
        assert!(wait32 > wait8, "lock wait {wait32} !> {wait8}");
    }

    #[test]
    fn calibrated_constructor_picks_the_benchmark_scale() {
        let m = NanosRuntime::for_benchmark("streamcluster", 16);
        assert!((m.config().overhead_scale - 9.5).abs() < 1e-12);
        let m = NanosRuntime::for_benchmark("c-ray", 16);
        assert!((m.config().overhead_scale - 1.0).abs() < 1e-12);
        assert_eq!(m.name(), "Nanos");
        assert!(m.supports_taskwait_on());
    }

    #[test]
    fn dependency_chains_are_correct() {
        let trace = micro::chain(30, SimDuration::from_us(10));
        let out = simulate(
            &trace,
            &mut NanosRuntime::new(NanosConfig::with_workers(4)),
            &HostConfig::with_workers(4),
        );
        assert_eq!(out.tasks, 30);
        assert!(out.speedup() < 1.0);
    }
}
