//! Per-benchmark overhead calibration.
//!
//! The paper does not report Nanos' absolute per-task overheads; it reports the
//! resulting speedup curves (Fig. 8) and their maxima (Table IV). The cost
//! *structure* of the model lives in [`crate::config`]; this module holds one
//! scalar per benchmark that scales those costs so the model's 32-core cap
//! lands near the paper's measurement. The scale factors absorb real-world
//! effects the structural model does not capture explicitly (allocator
//! pressure, NUMA traffic, Mercurium-generated glue code, taskwait
//! implementation details), and they are deliberately transparent: every entry
//! is listed here with the Table IV value it targets.

/// `(benchmark-name prefix, overhead scale, paper's Table IV max speedup)`.
pub const CALIBRATION: &[(&str, f64, f64)] = &[
    // Long independent tasks: overhead barely matters.
    ("c-ray", 1.0, 31.4),
    // Half-millisecond pipelined pairs: mild overhead sensitivity.
    ("rot-cc", 1.6, 24.5),
    // Blocked LU with 0.7 ms tasks, designed to match Nanos overheads.
    ("sparselu", 1.8, 24.5),
    // Fork-join with many short tasks and frequent taskwaits: Nanos collapses.
    ("streamcluster", 9.5, 4.9),
    // Macroblock-granularity decoding: tasks of a few microseconds; the
    // runtime is slower than serial execution at the finest granularity.
    ("h264dec-1x1", 1.3, 0.7),
    ("h264dec-2x2", 1.3, 1.4),
    ("h264dec-4x4", 1.3, 3.6),
    ("h264dec-8x8", 1.3, 3.9),
    // Sub-microsecond Gaussian elimination tasks (Fig. 9 does not include
    // Nanos; kept for completeness).
    ("gaussian", 1.0, f64::NAN),
];

/// Returns the calibrated overhead scale for a benchmark trace name
/// (prefix match; unknown benchmarks use 1.0).
pub fn benchmark_overhead_scale(benchmark: &str) -> f64 {
    // Longest-prefix match so "h264dec-1x1-10f" hits the 1x1 entry.
    CALIBRATION
        .iter()
        .filter(|(prefix, _, _)| benchmark.starts_with(prefix))
        .max_by_key(|(prefix, _, _)| prefix.len())
        .map(|(_, scale, _)| *scale)
        .unwrap_or(1.0)
}

/// The paper's Table IV maximum speedup for a benchmark, if listed.
pub fn paper_max_speedup(benchmark: &str) -> Option<f64> {
    CALIBRATION
        .iter()
        .filter(|(prefix, _, _)| benchmark.starts_with(prefix))
        .max_by_key(|(prefix, _, _)| prefix.len())
        .map(|(_, _, max)| *max)
        .filter(|v| v.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_matching_picks_the_most_specific_entry() {
        assert_eq!(benchmark_overhead_scale("h264dec-1x1-10f"), 1.3);
        assert_eq!(benchmark_overhead_scale("streamcluster"), 9.5);
        assert_eq!(benchmark_overhead_scale("c-ray"), 1.0);
        assert_eq!(benchmark_overhead_scale("unknown-benchmark"), 1.0);
    }

    #[test]
    fn paper_values_are_exposed() {
        assert_eq!(paper_max_speedup("streamcluster"), Some(4.9));
        assert_eq!(paper_max_speedup("h264dec-8x8-10f"), Some(3.9));
        assert_eq!(paper_max_speedup("gaussian-250"), None);
        assert_eq!(paper_max_speedup("unheard-of"), None);
    }

    #[test]
    fn every_calibration_entry_is_positive() {
        for (name, scale, _) in CALIBRATION {
            assert!(*scale > 0.0, "{name}");
        }
    }
}
