//! Work-stealing policies for idle cluster nodes.
//!
//! Static placement — however good — cannot anticipate runtime imbalance: a
//! node whose domain finished early sits idle while a loaded neighbour's
//! input queue backs up behind its task-pool capacity. [`StealPolicy`] is the
//! pluggable decision of *whether* and *from whom* an idle node pulls pending
//! task descriptors. The mechanics (re-forwarding the descriptor over the
//! interconnect, re-homing its dependence notifications) live in the cluster
//! driver; the policy only picks the victim and sizes the batch.
//!
//! A steal is only attempted for descriptors that are *eligible*: still queued
//! at the victim's input processor (not yet handed to its manager) with every
//! last-writer producer already retired, so the stolen task can execute
//! anywhere without waiting on further notifications.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Runtime load snapshot of one node, as seen by a [`StealPolicy`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeLoad {
    /// Descriptors queued at the node's input processor (not yet submitted to
    /// its manager).
    pub pending: usize,
    /// Subset of `pending` that is eligible for stealing (all last-writer
    /// producers retired, no notification in flight).
    pub stealable: usize,
    /// Ready tasks queued for the node's workers.
    pub ready: usize,
    /// Idle worker cores on the node.
    pub free_workers: usize,
    /// Tasks arrived at the node and not yet retired.
    pub outstanding: u64,
}

/// A victim-selection policy for work stealing (see the [module docs](self)).
///
/// Driven by the cluster driver whenever a node goes idle (free workers, empty
/// ready queue, empty input queue). Determinism is required.
///
/// # Example
///
/// ```
/// use nexus_sched::{NodeLoad, StealMostLoaded, StealPolicy};
///
/// let mut loads = vec![NodeLoad::default(); 4];
/// loads[2].pending = 40;
/// loads[2].stealable = 25;
///
/// let mut policy = StealMostLoaded;
/// // Node 0 is idle: steal from node 2, the only node with eligible backlog.
/// assert_eq!(policy.choose_victim(0, &loads), Some(2));
/// // Node 2 never steals from itself.
/// assert_eq!(policy.choose_victim(2, &loads), None);
/// ```
pub trait StealPolicy {
    /// Short human-readable policy name (stable; used in reports and tables).
    fn name(&self) -> &'static str;

    /// Chooses a victim for idle node `thief` given the cluster-wide load
    /// snapshot, or `None` to stay idle. Victims must have `stealable > 0`.
    fn choose_victim(&mut self, thief: usize, loads: &[NodeLoad]) -> Option<usize>;

    /// Maximum number of descriptors to request in one steal, given the
    /// thief's free worker count. Defaults to one per free worker.
    fn batch(&self, free_workers: usize) -> usize {
        free_workers.max(1)
    }
}

/// Never steal — the behaviour the cluster driver shipped with.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoStealing;

impl StealPolicy for NoStealing {
    fn name(&self) -> &'static str {
        "none"
    }

    fn choose_victim(&mut self, _thief: usize, _loads: &[NodeLoad]) -> Option<usize> {
        None
    }

    fn batch(&self, _free_workers: usize) -> usize {
        0
    }
}

/// Steal from the neighbour with the largest eligible backlog, breaking ties
/// toward the lowest node index.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StealMostLoaded;

impl StealPolicy for StealMostLoaded {
    fn name(&self) -> &'static str {
        "most-loaded"
    }

    fn choose_victim(&mut self, thief: usize, loads: &[NodeLoad]) -> Option<usize> {
        loads
            .iter()
            .enumerate()
            .filter(|&(n, l)| n != thief && l.stealable > 0)
            .max_by_key(|&(n, l)| (l.stealable, usize::MAX - n))
            .map(|(n, _)| n)
    }
}

/// Selectable steal policies (the `ClusterConfig` / env handle for the
/// built-in [`StealPolicy`] implementations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum StealKind {
    /// [`NoStealing`].
    #[default]
    Disabled,
    /// [`StealMostLoaded`].
    MostLoaded,
}

impl StealKind {
    /// Every selectable steal policy, in display order.
    pub const ALL: [StealKind; 2] = [StealKind::Disabled, StealKind::MostLoaded];

    /// The accepted (lower-case canonical) spellings, for error messages.
    pub const VALID: &'static str = "off|steal";

    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn StealPolicy> {
        match self {
            StealKind::Disabled => Box::new(NoStealing),
            StealKind::MostLoaded => Box::new(StealMostLoaded),
        }
    }

    /// True when stealing is enabled at all (lets the driver skip the idle
    /// scan entirely).
    pub fn is_enabled(self) -> bool {
        self != StealKind::Disabled
    }

    /// The canonical name.
    pub fn name(self) -> &'static str {
        match self {
            StealKind::Disabled => "off",
            StealKind::MostLoaded => "steal",
        }
    }
}

impl fmt::Display for StealKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for StealKind {
    type Err = String;

    /// Case-insensitive; accepts a few natural spellings.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "disabled" | "0" => Ok(StealKind::Disabled),
            "steal" | "on" | "mostloaded" | "most-loaded" | "1" => Ok(StealKind::MostLoaded),
            other => Err(format!(
                "unknown steal policy {other:?} (expected {})",
                Self::VALID
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn most_loaded_picks_the_biggest_eligible_backlog() {
        let mut loads = vec![NodeLoad::default(); 4];
        loads[1].pending = 10; // pending but nothing eligible
        loads[2] = NodeLoad {
            pending: 8,
            stealable: 5,
            ..NodeLoad::default()
        };
        loads[3] = NodeLoad {
            pending: 9,
            stealable: 5,
            ..NodeLoad::default()
        };
        let mut p = StealMostLoaded;
        // Ties on `stealable` break toward the lowest index.
        assert_eq!(p.choose_victim(0, &loads), Some(2));
        loads[3].stealable = 6;
        assert_eq!(p.choose_victim(0, &loads), Some(3));
        assert_eq!(p.choose_victim(3, &loads), Some(2));
        assert!(p.batch(4) == 4 && p.batch(0) == 1);
    }

    #[test]
    fn no_stealing_never_picks_anyone() {
        let loads = vec![
            NodeLoad {
                pending: 100,
                stealable: 100,
                ..NodeLoad::default()
            };
            2
        ];
        let mut p = NoStealing;
        assert_eq!(p.choose_victim(0, &loads), None);
        assert_eq!(p.batch(8), 0);
    }

    #[test]
    fn empty_cluster_yields_no_victim() {
        let loads = vec![NodeLoad::default(); 3];
        assert_eq!(StealMostLoaded.choose_victim(1, &loads), None);
    }

    #[test]
    fn kind_parsing_is_case_insensitive_with_clear_errors() {
        assert_eq!("OFF".parse::<StealKind>().unwrap(), StealKind::Disabled);
        assert_eq!("Steal".parse::<StealKind>().unwrap(), StealKind::MostLoaded);
        assert_eq!(
            "Most-Loaded".parse::<StealKind>().unwrap(),
            StealKind::MostLoaded
        );
        let err = "stea1".parse::<StealKind>().unwrap_err();
        assert!(err.contains("off|steal"), "{err}");
        for kind in StealKind::ALL {
            assert_eq!(kind.name().parse::<StealKind>().unwrap(), kind);
        }
        assert_eq!(StealKind::default(), StealKind::Disabled);
        assert!(!StealKind::Disabled.is_enabled());
        assert!(StealKind::MostLoaded.is_enabled());
        assert_eq!(StealKind::MostLoaded.build().name(), "most-loaded");
        assert_eq!(StealKind::Disabled.build().name(), "none");
    }
}
