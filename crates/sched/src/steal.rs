//! Work-stealing policies for idle cluster nodes.
//!
//! Static placement — however good — cannot anticipate runtime imbalance: a
//! node whose domain finished early sits idle while a loaded neighbour's
//! input queue backs up behind its task-pool capacity. [`StealPolicy`] is the
//! pluggable decision of *whether* and *from whom* an idle node pulls pending
//! task descriptors. The mechanics (re-forwarding the descriptor over the
//! interconnect, re-homing its dependence notifications) live in the cluster
//! driver; the policy only picks the victim and sizes the batch.
//!
//! A steal is only attempted for descriptors that are *eligible*: still queued
//! at the victim's input processor (not yet handed to its manager) with every
//! last-writer producer already retired, so the stolen task can execute
//! anywhere without waiting on further notifications.
//!
//! On a non-uniform fabric (`nexus-topo`), victim choice and batch size both
//! matter more: a cross-rack steal pays the trunk's latency and bandwidth per
//! stolen descriptor. [`HierarchicalSteal`] therefore escalates victims
//! bucket by bucket in `(tier, hops)` distance order — same-rack victims
//! first, the far tier only when nothing near has eligible backlog — and both
//! it and [`StealHalf`] size the batch from the *victim's* backlog (steal
//! half of it) instead of the thief's free-worker count, amortizing the
//! per-steal transfer cost.

use crate::feedback::LiveLoad;
use nexus_topo::DistanceMatrix;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Runtime load snapshot of one node, as seen by a [`StealPolicy`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeLoad {
    /// Descriptors queued at the node's input processor (not yet submitted to
    /// its manager).
    pub pending: usize,
    /// Subset of `pending` that is eligible for stealing (all last-writer
    /// producers retired, no notification in flight).
    pub stealable: usize,
    /// Ready tasks queued for the node's workers.
    pub ready: usize,
    /// Idle worker cores on the node.
    pub free_workers: usize,
    /// Tasks arrived at the node and not yet retired.
    pub outstanding: u64,
    /// Aggregate service capacity of the node's worker pool, in milli-units
    /// (a standard core contributes 1000; a 2×-fast core 2000). `0` means
    /// "unreported" and is treated as one standard core per comparison, so
    /// uniform snapshots that never set the field keep their old ordering.
    pub speed_milli: u64,
}

impl NodeLoad {
    /// Assembles a snapshot from the raw queue readings. This is the single
    /// constructor shared by the cluster driver and the live runtime's
    /// manager loop, so a new field cannot silently drift between the
    /// simulated and the live snapshot (both would fail to compile).
    pub fn snapshot(
        pending: usize,
        stealable: usize,
        ready: usize,
        free_workers: usize,
        outstanding: u64,
        speed_milli: u64,
    ) -> Self {
        NodeLoad {
            pending,
            stealable,
            ready,
            free_workers,
            outstanding,
            speed_milli,
        }
    }

    /// Descriptors a reclaim could reach: pending at the node but *not*
    /// steal-eligible (dependence-blocked behind unretired producers), so
    /// stealing alone can never move them.
    pub fn reclaimable(&self) -> usize {
        self.pending.saturating_sub(self.stealable)
    }

    /// Time-to-drain estimate of the node's eligible backlog: `stealable`
    /// normalized by the node's reported service capacity (in fixed-point
    /// backlog-per-capacity units). A fast node with a deep queue can be a
    /// worse victim than a slow node with a shallower one.
    pub fn drain_estimate(&self) -> u64 {
        let capacity = if self.speed_milli == 0 {
            1000
        } else {
            self.speed_milli
        };
        (self.stealable as u64).saturating_mul(1_000_000) / capacity
    }
}

/// A victim-selection policy for work stealing (see the [module docs](self)).
///
/// Driven by the cluster driver whenever a node goes idle (free workers, empty
/// ready queue, empty input queue). Determinism is required.
///
/// # Example
///
/// ```
/// use nexus_sched::{NodeLoad, StealMostLoaded, StealPolicy};
///
/// let mut loads = vec![NodeLoad::default(); 4];
/// loads[2].pending = 40;
/// loads[2].stealable = 25;
///
/// let mut policy = StealMostLoaded;
/// // Node 0 is idle: steal from node 2, the only node with eligible backlog.
/// assert_eq!(policy.choose_victim(0, &loads), Some(2));
/// // Node 2 never steals from itself.
/// assert_eq!(policy.choose_victim(2, &loads), None);
/// ```
pub trait StealPolicy: Send + Sync {
    /// Short human-readable policy name (stable; used in reports and tables).
    fn name(&self) -> &'static str;

    /// Chooses a victim for idle node `thief` given the cluster-wide load
    /// snapshot, or `None` to stay idle. Victims must have `stealable > 0`.
    fn choose_victim(&mut self, thief: usize, loads: &[NodeLoad]) -> Option<usize>;

    /// Chooses a victim with the interconnect's distance matrix in hand.
    /// Drivers with a configured fabric call this entry point; the default
    /// ignores the distances and defers to [`choose_victim`](Self::choose_victim)
    /// (flat victim selection).
    fn choose_victim_tiered(
        &mut self,
        thief: usize,
        loads: &[NodeLoad],
        distances: Option<&DistanceMatrix>,
    ) -> Option<usize> {
        let _ = distances;
        self.choose_victim(thief, loads)
    }

    /// Maximum number of descriptors to request in one steal, given the
    /// thief's free worker count. Defaults to one per free worker.
    fn batch(&self, free_workers: usize) -> usize {
        free_workers.max(1)
    }

    /// Maximum number of descriptors to hand over in one steal, given the
    /// thief's free worker count and the victim's eligible backlog at grant
    /// time. The default ignores the backlog and defers to
    /// [`batch`](Self::batch); adaptive policies override it to scale with
    /// the victim's backlog instead.
    fn batch_for(&self, free_workers: usize, victim_stealable: usize) -> usize {
        let _ = victim_stealable;
        self.batch(free_workers)
    }

    /// Chooses a victim for *pool reclamation*: an idle node pulling
    /// dependence-blocked descriptors ([`NodeLoad::reclaimable`]) out of a
    /// loaded node's pool — work a steal can never reach. The default picks
    /// the largest blocked backlog, breaking ties toward the higher decayed
    /// live load ([`LiveLoad`], when digests are flowing) and then the lowest
    /// node index. Reclamation is gated by the driver's feedback mode, not by
    /// the steal policy, so every policy (including [`NoStealing`]) inherits
    /// a sensible victim choice.
    fn choose_reclaim_victim(
        &mut self,
        thief: usize,
        loads: &[NodeLoad],
        live: Option<LiveLoad<'_>>,
        distances: Option<&DistanceMatrix>,
    ) -> Option<usize> {
        let _ = distances;
        loads
            .iter()
            .enumerate()
            .filter(|&(n, l)| n != thief && l.reclaimable() > 0)
            .max_by_key(|&(n, l)| {
                let decayed = live.map_or(0, |lv| lv.decayed(n));
                (l.reclaimable(), decayed, usize::MAX - n)
            })
            .map(|(n, _)| n)
    }

    /// Maximum number of blocked descriptors to hand back in one reclaim,
    /// given the victim's blocked backlog at grant time. Defaults to the
    /// steal-half rule (reclaims pay full link cost; amortize them).
    fn reclaim_batch(&self, free_workers: usize, victim_reclaimable: usize) -> usize {
        let _ = free_workers;
        half_backlog(victim_reclaimable)
    }
}

/// Never steal — the behaviour the cluster driver shipped with.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoStealing;

impl StealPolicy for NoStealing {
    fn name(&self) -> &'static str {
        "none"
    }

    fn choose_victim(&mut self, _thief: usize, _loads: &[NodeLoad]) -> Option<usize> {
        None
    }

    fn batch(&self, _free_workers: usize) -> usize {
        0
    }
}

/// Steal from the neighbour with the largest eligible backlog *per unit of
/// service capacity* (see [`NodeLoad::drain_estimate`]), breaking ties toward
/// the larger raw backlog, then the lowest node index. On uniform-speed
/// clusters this reduces to raw most-loaded selection; with heterogeneous
/// worker pools it prefers the victim that will take longest to drain its own
/// queue.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StealMostLoaded;

impl StealPolicy for StealMostLoaded {
    fn name(&self) -> &'static str {
        "most-loaded"
    }

    fn choose_victim(&mut self, thief: usize, loads: &[NodeLoad]) -> Option<usize> {
        loads
            .iter()
            .enumerate()
            .filter(|&(n, l)| n != thief && l.stealable > 0)
            .max_by_key(|&(n, l)| (l.drain_estimate(), l.stealable, usize::MAX - n))
            .map(|(n, _)| n)
    }
}

/// Steal-half with most-loaded victim selection: the victim hands over half
/// of its eligible backlog (⌈stealable/2⌉) instead of one descriptor per free
/// thief worker.
///
/// The classic steal-half rule: with a fixed free-worker batch a thief with 2
/// free cores nibbles 2 descriptors off a 40-deep backlog and immediately
/// goes idle again, paying a full request/transfer round-trip per nibble.
/// Halving the backlog moves the imbalance in O(log n) steals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StealHalf;

/// ⌈`stealable` / 2⌉, at least one — the shared adaptive batch rule.
fn half_backlog(stealable: usize) -> usize {
    stealable.div_ceil(2).max(1)
}

impl StealPolicy for StealHalf {
    fn name(&self) -> &'static str {
        "steal-half"
    }

    fn choose_victim(&mut self, thief: usize, loads: &[NodeLoad]) -> Option<usize> {
        StealMostLoaded.choose_victim(thief, loads)
    }

    fn batch_for(&self, _free_workers: usize, victim_stealable: usize) -> usize {
        half_backlog(victim_stealable)
    }
}

/// Hierarchical victim selection for tiered fabrics: victims are bucketed by
/// their `(tier, hops)` victim→thief distance (the fabric's
/// [`DistanceMatrix`], measured in the direction the stolen descriptors will
/// travel) and the nearest non-empty bucket wins — steal from the
/// same rack while it has eligible backlog, escalate to the next tier only
/// when everything nearer is drained. Within a bucket the largest eligible
/// backlog wins, ties toward the lowest node index. Batches use the
/// steal-half rule (cross-tier steals are expensive; amortize them).
///
/// Without a distance matrix (uniform wiring) the policy is exactly
/// [`StealMostLoaded`] with steal-half batching.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchicalSteal;

impl StealPolicy for HierarchicalSteal {
    fn name(&self) -> &'static str {
        "hier"
    }

    fn choose_victim(&mut self, thief: usize, loads: &[NodeLoad]) -> Option<usize> {
        StealMostLoaded.choose_victim(thief, loads)
    }

    fn choose_victim_tiered(
        &mut self,
        thief: usize,
        loads: &[NodeLoad],
        distances: Option<&DistanceMatrix>,
    ) -> Option<usize> {
        let Some(d) = distances else {
            return self.choose_victim(thief, loads);
        };
        // Distance is measured victim → thief: that is the direction the
        // expensive payload (the stolen descriptors) actually travels. On
        // every built-in fabric routes are symmetric, but hand-built fabrics
        // may not be.
        loads
            .iter()
            .enumerate()
            .filter(|&(n, l)| n != thief && l.stealable > 0)
            .min_by_key(|&(n, l)| {
                (
                    d.tier(n, thief),
                    d.hops(n, thief),
                    u64::MAX - l.stealable as u64,
                    n,
                )
            })
            .map(|(n, _)| n)
    }

    fn batch_for(&self, _free_workers: usize, victim_stealable: usize) -> usize {
        half_backlog(victim_stealable)
    }
}

/// Selectable steal policies (the `ClusterConfig` / env handle for the
/// built-in [`StealPolicy`] implementations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum StealKind {
    /// [`NoStealing`].
    #[default]
    Disabled,
    /// [`StealMostLoaded`].
    MostLoaded,
    /// [`StealHalf`].
    Half,
    /// [`HierarchicalSteal`].
    Hierarchical,
}

impl StealKind {
    /// Every selectable steal policy, in display order.
    pub const ALL: [StealKind; 4] = [
        StealKind::Disabled,
        StealKind::MostLoaded,
        StealKind::Half,
        StealKind::Hierarchical,
    ];

    /// The accepted (lower-case canonical) spellings, for error messages.
    pub const VALID: &'static str = "off|steal|steal-half|hier";

    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn StealPolicy> {
        match self {
            StealKind::Disabled => Box::new(NoStealing),
            StealKind::MostLoaded => Box::new(StealMostLoaded),
            StealKind::Half => Box::new(StealHalf),
            StealKind::Hierarchical => Box::new(HierarchicalSteal),
        }
    }

    /// True when stealing is enabled at all (lets the driver skip the idle
    /// scan entirely).
    pub fn is_enabled(self) -> bool {
        self != StealKind::Disabled
    }

    /// The canonical name.
    pub fn name(self) -> &'static str {
        match self {
            StealKind::Disabled => "off",
            StealKind::MostLoaded => "steal",
            StealKind::Half => "steal-half",
            StealKind::Hierarchical => "hier",
        }
    }
}

impl fmt::Display for StealKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for StealKind {
    type Err = String;

    /// Case-insensitive; accepts a few natural spellings.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "disabled" | "0" => Ok(StealKind::Disabled),
            "steal" | "on" | "mostloaded" | "most-loaded" | "1" => Ok(StealKind::MostLoaded),
            "steal-half" | "stealhalf" | "half" => Ok(StealKind::Half),
            "hier" | "hierarchical" | "hierarchy" => Ok(StealKind::Hierarchical),
            other => Err(format!(
                "unknown steal policy {other:?} (expected {})",
                Self::VALID
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn most_loaded_picks_the_biggest_eligible_backlog() {
        let mut loads = vec![NodeLoad::default(); 4];
        loads[1].pending = 10; // pending but nothing eligible
        loads[2] = NodeLoad {
            pending: 8,
            stealable: 5,
            ..NodeLoad::default()
        };
        loads[3] = NodeLoad {
            pending: 9,
            stealable: 5,
            ..NodeLoad::default()
        };
        let mut p = StealMostLoaded;
        // Ties on `stealable` break toward the lowest index.
        assert_eq!(p.choose_victim(0, &loads), Some(2));
        loads[3].stealable = 6;
        assert_eq!(p.choose_victim(0, &loads), Some(3));
        assert_eq!(p.choose_victim(3, &loads), Some(2));
        assert!(p.batch(4) == 4 && p.batch(0) == 1);
    }

    #[test]
    fn most_loaded_normalizes_the_backlog_by_worker_speed() {
        let mut loads = vec![NodeLoad::default(); 3];
        // Node 1: deeper backlog, but a 4×-capacity pool drains it quickly.
        loads[1] = NodeLoad {
            stealable: 8,
            speed_milli: 4000,
            ..NodeLoad::default()
        };
        // Node 2: shallower backlog on one standard core — slower to drain.
        loads[2] = NodeLoad {
            stealable: 6,
            speed_milli: 1000,
            ..NodeLoad::default()
        };
        let mut p = StealMostLoaded;
        assert_eq!(p.choose_victim(0, &loads), Some(2));
        // Unreported speeds (0) fall back to the raw backlog ordering.
        loads[1].speed_milli = 0;
        loads[2].speed_milli = 0;
        assert_eq!(p.choose_victim(0, &loads), Some(1));
    }

    #[test]
    fn no_stealing_never_picks_anyone() {
        let loads = vec![
            NodeLoad {
                pending: 100,
                stealable: 100,
                ..NodeLoad::default()
            };
            2
        ];
        let mut p = NoStealing;
        assert_eq!(p.choose_victim(0, &loads), None);
        assert_eq!(p.batch(8), 0);
    }

    #[test]
    fn empty_cluster_yields_no_victim() {
        let loads = vec![NodeLoad::default(); 3];
        assert_eq!(StealMostLoaded.choose_victim(1, &loads), None);
    }

    #[test]
    fn steal_half_scales_the_batch_with_the_victim_backlog() {
        let p = StealHalf;
        assert_eq!(p.batch_for(2, 40), 20);
        assert_eq!(p.batch_for(8, 3), 2);
        assert_eq!(p.batch_for(8, 1), 1);
        assert_eq!(p.batch_for(8, 0), 1, "grant paths clamp to the backlog");
        // Victim choice is most-loaded.
        let mut loads = vec![NodeLoad::default(); 3];
        loads[2].stealable = 7;
        assert_eq!(StealHalf.choose_victim(0, &loads), Some(2));
        // The flat default batch (no backlog info) stays worker-sized.
        assert_eq!(p.batch(3), 3);
    }

    #[test]
    fn hierarchical_prefers_the_near_tier_and_escalates_when_it_drains() {
        // Racks of 2 on 4 nodes: {0,1} and {2,3}.
        let d = nexus_topo::rack_tiers(
            4,
            2,
            nexus_sim::SimDuration::from_us(1),
            nexus_sim::SimDuration::from_ns(10),
        )
        .distances();
        let mut p = HierarchicalSteal;
        let mut loads = vec![NodeLoad::default(); 4];
        loads[1].stealable = 2;
        loads[3].stealable = 50;
        // Node 0 steals from its rack peer even though node 3 is far fuller.
        assert_eq!(p.choose_victim_tiered(0, &loads, Some(&d)), Some(1));
        // Once the near tier is drained, escalate across the trunk.
        loads[1].stealable = 0;
        assert_eq!(p.choose_victim_tiered(0, &loads, Some(&d)), Some(3));
        // Without distances the policy is flat most-loaded.
        loads[2].stealable = 10;
        assert_eq!(p.choose_victim_tiered(0, &loads, None), Some(3));
        assert_eq!(p.batch_for(1, 9), 5, "steal-half batching");

        // Within one distance bucket the bigger backlog wins: on 8 nodes in
        // racks of 2, the foreign rack routers 2, 4 and 6 are all one trunk
        // hop from node 0.
        let d8 = nexus_topo::rack_tiers(
            8,
            2,
            nexus_sim::SimDuration::from_us(1),
            nexus_sim::SimDuration::from_ns(10),
        )
        .distances();
        let mut loads = vec![NodeLoad::default(); 8];
        loads[2].stealable = 10;
        loads[4].stealable = 50;
        assert_eq!(p.choose_victim_tiered(0, &loads, Some(&d8)), Some(4));
        loads[2].stealable = 50; // tie on backlog: lowest index
        assert_eq!(p.choose_victim_tiered(0, &loads, Some(&d8)), Some(2));
    }

    #[test]
    fn flat_policies_ignore_the_distance_matrix() {
        let d = nexus_topo::rack_tiers(
            4,
            2,
            nexus_sim::SimDuration::from_us(1),
            nexus_sim::SimDuration::from_ns(10),
        )
        .distances();
        let mut loads = vec![NodeLoad::default(); 4];
        loads[1].stealable = 2;
        loads[3].stealable = 50;
        // StealMostLoaded crosses the trunk for the bigger backlog.
        assert_eq!(
            StealMostLoaded.choose_victim_tiered(0, &loads, Some(&d)),
            Some(3)
        );
        assert_eq!(NoStealing.choose_victim_tiered(0, &loads, Some(&d)), None);
    }

    #[test]
    fn snapshot_constructor_fills_every_field() {
        let l = NodeLoad::snapshot(9, 4, 3, 2, 11, 2000);
        assert_eq!(
            l,
            NodeLoad {
                pending: 9,
                stealable: 4,
                ready: 3,
                free_workers: 2,
                outstanding: 11,
                speed_milli: 2000,
            }
        );
        assert_eq!(l.reclaimable(), 5, "pending minus steal-eligible");
        assert_eq!(NodeLoad::snapshot(2, 7, 0, 0, 0, 0).reclaimable(), 0);
    }

    #[test]
    fn default_reclaim_victim_targets_the_blocked_backlog() {
        use crate::feedback::{LiveLoad, LoadView};
        let mut loads = vec![NodeLoad::default(); 4];
        // Node 1: deep backlog but all of it steal-eligible — not a reclaim
        // target, a plain steal reaches it.
        loads[1] = NodeLoad {
            pending: 30,
            stealable: 30,
            ..NodeLoad::default()
        };
        loads[2] = NodeLoad {
            pending: 10,
            stealable: 2,
            ..NodeLoad::default()
        };
        loads[3] = NodeLoad {
            pending: 9,
            stealable: 1,
            ..NodeLoad::default()
        };
        let mut p = StealMostLoaded;
        assert_eq!(p.choose_reclaim_victim(0, &loads, None, None), Some(2));
        assert_eq!(p.choose_reclaim_victim(2, &loads, None, None), Some(3));
        // A tie on blocked backlog breaks toward the hotter live digest.
        loads[3] = NodeLoad {
            pending: 10,
            stealable: 2,
            ..NodeLoad::default()
        };
        let views = [
            LoadView::default(),
            LoadView::default(),
            LoadView::default(),
            LoadView {
                pending: 50,
                updated_at: 0,
                ..LoadView::default()
            },
        ];
        let live = LiveLoad {
            views: &views,
            now: 0,
            half_life: 0,
        };
        assert_eq!(
            p.choose_reclaim_victim(0, &loads, Some(live), None),
            Some(3)
        );
        // Without digests the same tie falls to the lowest index.
        assert_eq!(p.choose_reclaim_victim(0, &loads, None, None), Some(2));
        // NoStealing still names victims: reclamation is gated by the
        // feedback mode, not the steal policy.
        assert_eq!(
            NoStealing.choose_reclaim_victim(0, &loads, Some(live), None),
            Some(3)
        );
        // Nothing blocked anywhere -> no victim.
        let idle = vec![loads[1]; 2];
        assert_eq!(p.choose_reclaim_victim(0, &idle, None, None), None);
    }

    #[test]
    fn reclaim_batches_use_the_half_backlog_rule() {
        assert_eq!(StealMostLoaded.reclaim_batch(2, 9), 5);
        assert_eq!(HierarchicalSteal.reclaim_batch(8, 1), 1);
        assert_eq!(NoStealing.reclaim_batch(0, 0), 1, "grant paths clamp");
    }

    #[test]
    fn kind_parsing_is_case_insensitive_with_clear_errors() {
        assert_eq!("OFF".parse::<StealKind>().unwrap(), StealKind::Disabled);
        assert_eq!("Steal".parse::<StealKind>().unwrap(), StealKind::MostLoaded);
        assert_eq!(
            "Most-Loaded".parse::<StealKind>().unwrap(),
            StealKind::MostLoaded
        );
        assert_eq!("Steal-Half".parse::<StealKind>().unwrap(), StealKind::Half);
        assert_eq!(
            "Hierarchical".parse::<StealKind>().unwrap(),
            StealKind::Hierarchical
        );
        let err = "stea1".parse::<StealKind>().unwrap_err();
        assert!(err.contains("off|steal|steal-half|hier"), "{err}");
        for kind in StealKind::ALL {
            assert_eq!(kind.name().parse::<StealKind>().unwrap(), kind);
        }
        assert_eq!(StealKind::default(), StealKind::Disabled);
        assert!(!StealKind::Disabled.is_enabled());
        assert!(StealKind::MostLoaded.is_enabled());
        assert!(StealKind::Half.is_enabled());
        assert!(StealKind::Hierarchical.is_enabled());
        assert_eq!(StealKind::MostLoaded.build().name(), "most-loaded");
        assert_eq!(StealKind::Disabled.build().name(), "none");
        assert_eq!(StealKind::Half.build().name(), "steal-half");
        assert_eq!(StealKind::Hierarchical.build().name(), "hier");
    }
}
