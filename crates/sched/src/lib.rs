//! # nexus-sched — pluggable placement and work-stealing policies
//!
//! The paper distributes task management *within* a chip with a fixed XOR
//! hash; the cluster driver (`nexus-cluster`) initially lifted exactly that
//! function to whole-node scope. But at cluster scale the placement decision
//! and dynamic load balancing — not the hash — determine makespan and link
//! traffic (compare DuctTeip's data-locality-driven placement and the
//! distributed runtime of Bosch et al.). This crate makes both decisions
//! pluggable:
//!
//! * [`PlacementPolicy`] — which node a submitted task calls home. Built-ins:
//!   [`XorHash`] (affinity hint, then the paper's XOR distribution function —
//!   the original cluster routing), [`AffinityFirst`] (hint, then least
//!   loaded), [`LocalityAware`] (hint, then greedy remote-edge minimization
//!   over the dependence census) and [`TopologyAware`] (hint, then
//!   distance-weighted edge-cost minimization over the fabric's
//!   `nexus-topo` [`DistanceMatrix`](nexus_topo::DistanceMatrix)).
//! * [`StealPolicy`] — whether an idle node pulls pending descriptors from a
//!   loaded neighbour, paying the descriptor re-forwarding cost over the
//!   interconnect. Built-ins: [`NoStealing`], [`StealMostLoaded`],
//!   [`StealHalf`] (adaptive half-backlog batches) and [`HierarchicalSteal`]
//!   (nearest-tier victims first, escalating only when the near tier has
//!   nothing eligible).
//!
//! * **Runtime feedback** — [`LoadView`] live load digests (pending,
//!   in-flight, retire-rate, staleness age) with integer exponential decay,
//!   consumed by [`FeedbackPlacement`] (hint, then decayed-load ×
//!   distance-weight minimization) and by the `choose_reclaim_victim` /
//!   `reclaim_batch` hooks on [`StealPolicy`], which let an idle node pull
//!   dependence-*blocked* descriptors ([`NodeLoad::reclaimable`]) out of a
//!   loaded pool — work a steal can never reach. [`FeedbackKind`] selects
//!   which consumers are active; everything is off (and bit-identical to the
//!   static path) by default.
//!
//! Both are selected through `ClusterConfig` (see `nexus-cluster`) via the
//! serializable [`PolicyKind`] / [`StealKind`] / [`FeedbackKind`] handles,
//! whose `FromStr` implementations are case-insensitive and list the valid
//! spellings on a typo — the benches hook them up to `NEXUS_POLICY`,
//! `NEXUS_STEAL` and `NEXUS_FEEDBACK`.
//!
//! ## Example
//!
//! ```
//! use nexus_sched::{PlacementCtx, PlacementPolicy, PlacedLoad, PolicyKind};
//! use nexus_trace::TaskDescriptor;
//!
//! let mut policy = "Locality".parse::<PolicyKind>().unwrap().build();
//! let loads = vec![PlacedLoad::default(); 2];
//! let consumer = TaskDescriptor::builder(7).input(0x100).output(0x200).build();
//! let ctx = PlacementCtx {
//!     nodes: 2,
//!     loads: &loads,
//!     producer_homes: &[1],
//!     distances: None,
//!     live: None,
//! };
//! // The consumer's only producer lives on node 1: keep the edge local.
//! assert_eq!(policy.place(&consumer, &ctx), 1);
//! ```

#![warn(missing_docs)]

pub mod feedback;
pub mod place;
pub mod steal;

pub use feedback::{FeedbackKind, LiveLoad, LoadView};
pub use place::{
    primary_addr, xor_home, AffinityFirst, FeedbackPlacement, LocalityAware, PlacedLoad,
    PlacementCtx, PlacementPolicy, PolicyKind, TopologyAware, XorHash,
};
pub use steal::{
    HierarchicalSteal, NoStealing, NodeLoad, StealHalf, StealKind, StealMostLoaded, StealPolicy,
};

/// Convenience prelude.
pub mod prelude {
    pub use crate::feedback::{FeedbackKind, LiveLoad, LoadView};
    pub use crate::place::{PlacedLoad, PlacementCtx, PlacementPolicy, PolicyKind};
    pub use crate::steal::{NodeLoad, StealKind, StealPolicy};
}
