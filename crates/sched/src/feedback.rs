//! Live load telemetry for feedback-driven scheduling.
//!
//! The routing pre-pass sees only the load it has placed itself; it cannot
//! know that one node's manager pool has backed up at runtime. [`LoadView`]
//! is the per-node *live* digest closing that loop: piggybacked on existing
//! retirement notifications by the cluster driver's load tracker (and on the
//! live runtime's notification channel messages), aged by its staleness and
//! exponentially decayed so an old digest stops repelling placements.
//! [`FeedbackKind`] is the `ClusterConfig` / `NEXUS_FEEDBACK` handle that
//! selects which consumers act on it: live placement
//! ([`crate::FeedbackPlacement`]), task-pool reclamation (the
//! `choose_reclaim_victim` hook on [`crate::StealPolicy`]), or both.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// One node's live load digest, as piggybacked on retirement notifications.
///
/// All fields are raw integers in the producer's units so that digests from
/// the virtual-time simulator and the wall-clock runtime flow through the
/// same type; consumers only ever compare digests from one producer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadView {
    /// Descriptors held at the node's input processor (queued plus parked),
    /// not yet handed to its manager.
    pub pending: u64,
    /// Tasks that arrived at the node and have not retired yet.
    pub in_flight: u64,
    /// Total tasks the node has retired so far (the retire-rate numerator).
    pub retired: u64,
    /// Producer timestamp of the digest, in the observation clock's units
    /// (virtual picoseconds in the simulator, wall nanoseconds live).
    pub updated_at: u64,
}

impl LoadView {
    /// Folds a fresher digest in, returning whether it was applied. Digests
    /// ride multi-hop links and can arrive reordered; an older-timestamped
    /// digest never rolls the view backwards.
    pub fn observe(&mut self, view: LoadView) -> bool {
        if view.updated_at >= self.updated_at {
            *self = view;
            true
        } else {
            false
        }
    }

    /// Staleness age of the digest at `now` (0 for same-instant digests).
    pub fn age(&self, now: u64) -> u64 {
        now.saturating_sub(self.updated_at)
    }

    /// Raw load: everything at the node that has not retired yet.
    pub fn raw_load(&self) -> u64 {
        self.pending + self.in_flight
    }

    /// Exponentially decayed load: the raw load halved once per elapsed
    /// `half_life` of staleness (`half_life == 0` disables decay). Integer
    /// shifts keep the decay bit-exact across reruns and engines.
    pub fn decayed_load(&self, now: u64, half_life: u64) -> u64 {
        if half_life == 0 {
            return self.raw_load();
        }
        let halvings = (self.age(now) / half_life).min(63);
        self.raw_load() >> halvings
    }

    /// Mean retire throughput since the producer's epoch, in milli-tasks per
    /// clock unit (0 when no time has passed).
    pub fn retire_rate_milli(&self, now: u64) -> u64 {
        self.retired
            .saturating_mul(1000)
            .checked_div(now)
            .unwrap_or(0)
    }
}

/// A cluster-wide set of live digests plus the consumer's observation clock —
/// the borrowed bundle placement and reclaim policies consume.
#[derive(Debug, Clone, Copy)]
pub struct LiveLoad<'a> {
    /// Per-node digests (`views.len()` == node count).
    pub views: &'a [LoadView],
    /// The consumer's current clock, in the digests' units.
    pub now: u64,
    /// Decay half-life in clock units (0 = no decay).
    pub half_life: u64,
}

impl LiveLoad<'_> {
    /// Decayed load of `node` (0 for out-of-range nodes).
    pub fn decayed(&self, node: usize) -> u64 {
        self.views
            .get(node)
            .map_or(0, |v| v.decayed_load(self.now, self.half_life))
    }
}

/// Which feedback consumers are active (the `ClusterConfig` / `NEXUS_FEEDBACK`
/// handle). Off by default: the scheduling path is bit-identical to the
/// static pre-pass behaviour unless explicitly enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FeedbackKind {
    /// No feedback: static pre-pass placement, steal-only balancing.
    #[default]
    Off,
    /// Live placement only ([`crate::FeedbackPlacement`] re-homes un-hinted
    /// tasks at submit time using the decayed digests).
    Place,
    /// Task-pool reclamation only (idle nodes pull dependence-blocked
    /// descriptors out of a loaded node's pool).
    Reclaim,
    /// Both live placement and reclamation.
    Full,
}

impl FeedbackKind {
    /// Every selectable feedback mode, in display order.
    pub const ALL: [FeedbackKind; 4] = [
        FeedbackKind::Off,
        FeedbackKind::Place,
        FeedbackKind::Reclaim,
        FeedbackKind::Full,
    ];

    /// The accepted (lower-case canonical) spellings, for error messages.
    pub const VALID: &'static str = "off|place|reclaim|full";

    /// True when any feedback consumer is active (lets drivers skip the load
    /// tracker entirely, keeping the off path bit-identical).
    pub fn is_enabled(self) -> bool {
        self != FeedbackKind::Off
    }

    /// True when submit-time placement consumes the live digests.
    pub fn place_enabled(self) -> bool {
        matches!(self, FeedbackKind::Place | FeedbackKind::Full)
    }

    /// True when the pool-reclamation protocol is active.
    pub fn reclaim_enabled(self) -> bool {
        matches!(self, FeedbackKind::Reclaim | FeedbackKind::Full)
    }

    /// The canonical name.
    pub fn name(self) -> &'static str {
        match self {
            FeedbackKind::Off => "off",
            FeedbackKind::Place => "place",
            FeedbackKind::Reclaim => "reclaim",
            FeedbackKind::Full => "full",
        }
    }
}

impl fmt::Display for FeedbackKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for FeedbackKind {
    type Err = String;

    /// Case-insensitive; accepts a few natural spellings.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "disabled" | "0" => Ok(FeedbackKind::Off),
            "place" | "placement" => Ok(FeedbackKind::Place),
            "reclaim" | "reclamation" => Ok(FeedbackKind::Reclaim),
            "full" | "on" | "both" | "1" => Ok(FeedbackKind::Full),
            other => Err(format!(
                "unknown feedback mode {other:?} (expected {})",
                Self::VALID
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_never_roll_backwards() {
        let mut view = LoadView::default();
        assert!(view.observe(LoadView {
            pending: 4,
            in_flight: 2,
            retired: 1,
            updated_at: 100,
        }));
        // A reordered older digest is dropped …
        assert!(!view.observe(LoadView {
            pending: 9,
            updated_at: 50,
            ..LoadView::default()
        }));
        assert_eq!(view.pending, 4);
        // … a same-instant or newer one wins.
        assert!(view.observe(LoadView {
            pending: 7,
            updated_at: 100,
            ..LoadView::default()
        }));
        assert_eq!(view.pending, 7);
    }

    #[test]
    fn decay_halves_per_half_life_and_ages_out() {
        let view = LoadView {
            pending: 10,
            in_flight: 6,
            retired: 0,
            updated_at: 1000,
        };
        assert_eq!(view.raw_load(), 16);
        assert_eq!(view.age(1500), 500);
        assert_eq!(view.age(900), 0, "future digests have zero age");
        assert_eq!(view.decayed_load(1000, 200), 16);
        assert_eq!(view.decayed_load(1200, 200), 8);
        assert_eq!(view.decayed_load(1400, 200), 4);
        assert_eq!(view.decayed_load(1000 + 200 * 64, 200), 0);
        assert_eq!(view.decayed_load(u64::MAX, 200), 0, "shift count clamps");
        assert_eq!(view.decayed_load(5000, 0), 16, "half-life 0 disables decay");
    }

    #[test]
    fn retire_rate_is_mean_throughput() {
        let view = LoadView {
            retired: 6,
            ..LoadView::default()
        };
        assert_eq!(view.retire_rate_milli(0), 0);
        assert_eq!(view.retire_rate_milli(3), 2000);
        assert_eq!(view.retire_rate_milli(12), 500);
    }

    #[test]
    fn live_load_reads_per_node_with_range_safety() {
        let views = [
            LoadView {
                pending: 8,
                updated_at: 0,
                ..LoadView::default()
            },
            LoadView {
                pending: 8,
                updated_at: 90,
                ..LoadView::default()
            },
        ];
        let live = LiveLoad {
            views: &views,
            now: 100,
            half_life: 50,
        };
        assert_eq!(live.decayed(0), 2, "stale digest decayed twice");
        assert_eq!(live.decayed(1), 8, "fresh digest at full weight");
        assert_eq!(live.decayed(7), 0, "out of range reads as empty");
    }

    #[test]
    fn kind_parsing_is_case_insensitive_with_clear_errors() {
        assert_eq!("OFF".parse::<FeedbackKind>().unwrap(), FeedbackKind::Off);
        assert_eq!(
            "Place".parse::<FeedbackKind>().unwrap(),
            FeedbackKind::Place
        );
        assert_eq!(
            "RECLAIM".parse::<FeedbackKind>().unwrap(),
            FeedbackKind::Reclaim
        );
        assert_eq!(
            " Full ".parse::<FeedbackKind>().unwrap(),
            FeedbackKind::Full
        );
        let err = "ful".parse::<FeedbackKind>().unwrap_err();
        assert!(err.contains("off|place|reclaim|full"), "{err}");
        for kind in FeedbackKind::ALL {
            assert_eq!(kind.name().parse::<FeedbackKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(FeedbackKind::default(), FeedbackKind::Off);
        assert!(!FeedbackKind::Off.is_enabled());
        assert!(FeedbackKind::Place.place_enabled());
        assert!(!FeedbackKind::Place.reclaim_enabled());
        assert!(FeedbackKind::Reclaim.reclaim_enabled());
        assert!(!FeedbackKind::Reclaim.place_enabled());
        assert!(FeedbackKind::Full.place_enabled() && FeedbackKind::Full.reclaim_enabled());
    }
}
