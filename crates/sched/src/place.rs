//! Task → node placement policies.
//!
//! The cluster driver routes every submitted task to a *home node* before the
//! simulation starts (the routing pre-pass). [`PlacementPolicy`] is the
//! pluggable interface of that decision: it sees the task descriptor, the
//! homes of the task's last-writer producers (the dependence census
//! accumulated so far) and a snapshot of the load already placed on every
//! node, and returns the home node.
//!
//! Three built-in policies span the design space:
//!
//! * [`XorHash`] — the behaviour the cluster driver shipped with: honour the
//!   affinity hint, otherwise fold the primary output address through the
//!   paper's XOR distribution function (§IV-B) at cluster scope,
//! * [`AffinityFirst`] — honour the affinity hint, otherwise balance: send
//!   un-hinted tasks to the node with the least placed work,
//! * [`LocalityAware`] — honour the affinity hint, otherwise greedily place
//!   each task with the majority of its last-writer producers (minimizing the
//!   remote-edge fraction of un-hinted traces), breaking ties toward the
//!   least-loaded node,
//! * [`TopologyAware`] — honour the affinity hint, otherwise minimize the
//!   *distance-weighted* cost of the task's producer edges over the fabric's
//!   [`DistanceMatrix`] (`nexus-topo`): a producer one rack over weighs more
//!   than one next door, so the placement prefers keeping dependence chains
//!   not merely node-local but *near* — same rack, adjacent torus column —
//!   when they cannot stay local.
//!
//! All policies honour explicit affinity hints: a hint is the programmer's
//! (or trace generator's) domain decomposition, and overriding it would break
//! the workload's locality story. Policies only differ on *un-hinted* tasks.

use crate::feedback::LiveLoad;
use nexus_core::distribution::xor_hash_tg;
use nexus_sim::SimDuration;
use nexus_topo::DistanceMatrix;
use nexus_trace::TaskDescriptor;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Load already placed on one node by the routing pre-pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlacedLoad {
    /// Tasks placed on the node so far.
    pub tasks: u64,
    /// Total execution time of the tasks placed on the node so far.
    pub work: SimDuration,
}

/// Everything a placement policy may consult for one task.
#[derive(Debug)]
pub struct PlacementCtx<'a> {
    /// Number of nodes in the cluster (≥ 1).
    pub nodes: usize,
    /// Per-node load placed so far (`loads.len() == nodes`).
    pub loads: &'a [PlacedLoad],
    /// Home nodes of the task's distinct last-writer producers, in producer
    /// submission order (the dependence census for this task).
    pub producer_homes: &'a [usize],
    /// Distance matrix of the interconnect fabric, when one is configured.
    /// `None` means uniform wiring — distance-aware policies fall back to
    /// counting remote edges.
    pub distances: Option<&'a DistanceMatrix>,
    /// Live per-node load digests ([`LiveLoad`]), when runtime feedback is
    /// flowing. `None` during the static routing pre-pass — feedback-aware
    /// policies fall back to the placed-load census.
    pub live: Option<LiveLoad<'a>>,
}

impl PlacementCtx<'_> {
    /// The node with the least placed work, breaking ties toward the lowest
    /// index (deterministic).
    pub fn least_loaded(&self) -> usize {
        self.loads
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| (l.work, l.tasks))
            .map(|(n, _)| n)
            .unwrap_or(0)
    }
}

/// A task-to-node placement policy (see the [module docs](self)).
///
/// Policies are stateful: they are driven once per task, in submission order,
/// by the routing pre-pass. Determinism is required — the same trace and node
/// count must always produce the same placement.
///
/// # Example
///
/// ```
/// use nexus_sched::{PlacementCtx, PlacementPolicy, PlacedLoad, XorHash, LocalityAware};
/// use nexus_trace::TaskDescriptor;
///
/// let producer = TaskDescriptor::builder(0).output(0x1000).build();
/// let consumer = TaskDescriptor::builder(1).input(0x1000).output(0x2000).build();
///
/// let loads = vec![PlacedLoad::default(); 4];
/// let ctx = |homes: &'static [usize]| PlacementCtx {
///     nodes: 4,
///     loads: &loads,
///     producer_homes: homes,
///     distances: None,
///     live: None,
/// };
///
/// // XorHash ignores the census entirely …
/// let mut xor = XorHash;
/// let home = xor.place(&producer, &ctx(&[]));
/// assert!(home < 4);
///
/// // … while LocalityAware follows the producer.
/// let mut loc = LocalityAware::default();
/// assert_eq!(loc.place(&consumer, &ctx(&[2])), 2);
/// ```
pub trait PlacementPolicy: Send + Sync {
    /// Short human-readable policy name (stable; used in reports and tables).
    fn name(&self) -> &'static str;

    /// Chooses the home node of `task`. Must return a value `< ctx.nodes`.
    fn place(&mut self, task: &TaskDescriptor, ctx: &PlacementCtx<'_>) -> usize;
}

/// The address used to route a task: its first written parameter, falling back
/// to its first parameter (tasks always have at least one in a valid trace).
pub fn primary_addr(task: &TaskDescriptor) -> u64 {
    task.outputs()
        .next()
        .or_else(|| task.params.first())
        .map(|p| p.addr)
        .unwrap_or(0)
}

/// The home node `task` gets under [`XorHash`] in a cluster of `nodes` nodes:
/// the affinity hint if present (wrapped), otherwise the paper's XOR
/// distribution function over the primary address.
pub fn xor_home(task: &TaskDescriptor, nodes: usize) -> usize {
    task.home_node(nodes)
        .unwrap_or_else(|| xor_hash_tg(primary_addr(task), nodes))
}

/// Affinity hint first, XOR distribution function otherwise — the routing the
/// cluster driver shipped with, extracted verbatim.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct XorHash;

impl PlacementPolicy for XorHash {
    fn name(&self) -> &'static str {
        "xorhash"
    }

    fn place(&mut self, task: &TaskDescriptor, ctx: &PlacementCtx<'_>) -> usize {
        xor_home(task, ctx.nodes)
    }
}

/// Affinity hint first, least-loaded node otherwise.
///
/// Un-hinted tasks are balanced by placed work rather than hashed, trading
/// locality for an even split — useful as the load-balance end of the design
/// space and as the fallback when traces carry partial hints.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AffinityFirst;

impl PlacementPolicy for AffinityFirst {
    fn name(&self) -> &'static str {
        "affinity"
    }

    fn place(&mut self, task: &TaskDescriptor, ctx: &PlacementCtx<'_>) -> usize {
        task.home_node(ctx.nodes)
            .unwrap_or_else(|| ctx.least_loaded())
    }
}

/// Affinity hint first; otherwise minimize distance-weighted producer cost.
///
/// An un-hinted task is placed on the node `n` minimizing
/// `Σ_h weight(h, n)` over its last-writer producer homes `h`, where the
/// weight is the fabric's [`DistanceMatrix::weight`] (route latency plus hop
/// count). Keeping an edge node-local costs nothing; keeping it within the
/// rack costs little; sending it over an inter-rack trunk costs a lot — so
/// chains that cannot stay on one node stay *near*. Ties (including the
/// no-producer case — root tasks) fall to the least-loaded node, which keeps
/// the placement from collapsing onto one node.
///
/// Without a configured fabric (`ctx.distances == None`) every remote node is
/// equidistant and the policy decays to exactly [`LocalityAware`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TopologyAware;

impl PlacementPolicy for TopologyAware {
    fn name(&self) -> &'static str {
        "topo"
    }

    fn place(&mut self, task: &TaskDescriptor, ctx: &PlacementCtx<'_>) -> usize {
        if let Some(hint) = task.home_node(ctx.nodes) {
            return hint;
        }
        if ctx.producer_homes.is_empty() {
            return ctx.least_loaded();
        }
        let Some(d) = ctx.distances else {
            // Uniform wiring: distance-weighting degenerates to remote-edge
            // counting, which is LocalityAware verbatim.
            return LocalityAware.place(task, ctx);
        };
        (0..ctx.nodes)
            .min_by_key(|&n| {
                let cost: u128 = ctx
                    .producer_homes
                    .iter()
                    .map(|&h| d.weight(h, n) as u128)
                    .sum();
                (cost, ctx.loads[n].work, ctx.loads[n].tasks, n)
            })
            .unwrap_or(0)
    }
}

/// Affinity hint first; otherwise greedy remote-edge minimization.
///
/// An un-hinted task is placed on the node where the most of its last-writer
/// producers live, so the dependence edge to each of them stays node-local and
/// no retirement notification has to cross the interconnect. Ties (including
/// the no-producer case — root tasks) are broken toward the node with the
/// least placed work, which keeps the placement from collapsing onto one node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LocalityAware;

impl PlacementPolicy for LocalityAware {
    fn name(&self) -> &'static str {
        "locality"
    }

    fn place(&mut self, task: &TaskDescriptor, ctx: &PlacementCtx<'_>) -> usize {
        if let Some(hint) = task.home_node(ctx.nodes) {
            return hint;
        }
        let mut votes = vec![0u64; ctx.nodes];
        for &h in ctx.producer_homes {
            votes[h] += 1;
        }
        let best = votes.iter().copied().max().unwrap_or(0);
        if best == 0 {
            return ctx.least_loaded();
        }
        // Among the most-voted nodes, prefer the least loaded (deterministic:
        // ties fall to the lowest index).
        (0..ctx.nodes)
            .filter(|&n| votes[n] == best)
            .min_by_key(|&n| (ctx.loads[n].work, ctx.loads[n].tasks, n))
            .unwrap_or(0)
    }
}

/// Affinity hint first; otherwise minimize decayed *live* load combined with
/// distance-weighted producer cost — the first placement policy to consume
/// runtime feedback instead of the pre-pass census.
///
/// An un-hinted task goes to the node `n` minimizing
/// `(1 + decayed_load(n)) · (1 + Σ_h weight(h, n))` over its last-writer
/// producer homes `h`: an idle node next to the producers wins outright, a
/// backed-up node must be *much* closer to beat an idle one further away, and
/// with no producers the product degenerates to pure live load balancing.
/// The decayed load is [`LiveLoad::decayed`] — digests age out, so a node
/// that stopped reporting (and has presumably drained) becomes attractive
/// again instead of being repelled forever. Without a distance matrix each
/// remote producer edge costs 1; ties fall back to decayed load, then the
/// placed-work census, then the lowest index (deterministic).
///
/// Without live digests (`ctx.live == None`, e.g. inside the static routing
/// pre-pass) the policy is exactly [`TopologyAware`].
///
/// Not part of [`PolicyKind`]: it is engaged by the feedback mode
/// (`FeedbackKind`, see the cluster crate's config) on top of whatever static
/// policy seeds the pre-pass, because it only makes sense where live digests
/// flow.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FeedbackPlacement;

impl PlacementPolicy for FeedbackPlacement {
    fn name(&self) -> &'static str {
        "feedback"
    }

    fn place(&mut self, task: &TaskDescriptor, ctx: &PlacementCtx<'_>) -> usize {
        if let Some(hint) = task.home_node(ctx.nodes) {
            return hint;
        }
        let Some(live) = ctx.live else {
            return TopologyAware.place(task, ctx);
        };
        (0..ctx.nodes)
            .min_by_key(|&n| {
                let edge: u128 = match ctx.distances {
                    Some(d) => ctx
                        .producer_homes
                        .iter()
                        .map(|&h| d.weight(h, n) as u128)
                        .sum(),
                    None => ctx.producer_homes.iter().filter(|&&h| h != n).count() as u128,
                };
                let load = live.decayed(n) as u128;
                (
                    (1 + load) * (1 + edge),
                    load,
                    ctx.loads[n].work,
                    ctx.loads[n].tasks,
                    n,
                )
            })
            .unwrap_or(0)
    }
}

/// Selectable placement policies (the `ClusterConfig` / `NEXUS_POLICY` handle
/// for the built-in [`PlacementPolicy`] implementations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PolicyKind {
    /// [`XorHash`].
    #[default]
    XorHash,
    /// [`AffinityFirst`].
    AffinityFirst,
    /// [`LocalityAware`].
    LocalityAware,
    /// [`TopologyAware`].
    TopologyAware,
}

impl PolicyKind {
    /// Every selectable policy, in display order.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::XorHash,
        PolicyKind::AffinityFirst,
        PolicyKind::LocalityAware,
        PolicyKind::TopologyAware,
    ];

    /// The accepted (lower-case canonical) spellings, for error messages.
    pub const VALID: &'static str = "xorhash|affinity|locality|topo";

    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn PlacementPolicy> {
        match self {
            PolicyKind::XorHash => Box::new(XorHash),
            PolicyKind::AffinityFirst => Box::new(AffinityFirst),
            PolicyKind::LocalityAware => Box::new(LocalityAware),
            PolicyKind::TopologyAware => Box::new(TopologyAware),
        }
    }

    /// The canonical name (matches [`PlacementPolicy::name`]).
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::XorHash => "xorhash",
            PolicyKind::AffinityFirst => "affinity",
            PolicyKind::LocalityAware => "locality",
            PolicyKind::TopologyAware => "topo",
        }
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for PolicyKind {
    type Err = String;

    /// Case-insensitive; also accepts the long type names
    /// (`"LocalityAware"`, `"affinity-first"`, …).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "xorhash" | "xor" | "xor-hash" => Ok(PolicyKind::XorHash),
            "affinity" | "affinityfirst" | "affinity-first" => Ok(PolicyKind::AffinityFirst),
            "locality" | "localityaware" | "locality-aware" => Ok(PolicyKind::LocalityAware),
            "topo" | "topology" | "topologyaware" | "topology-aware" => {
                Ok(PolicyKind::TopologyAware)
            }
            other => Err(format!(
                "unknown placement policy {other:?} (expected {})",
                Self::VALID
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(loads: &'a [PlacedLoad], homes: &'a [usize]) -> PlacementCtx<'a> {
        PlacementCtx {
            nodes: loads.len(),
            loads,
            producer_homes: homes,
            distances: None,
            live: None,
        }
    }

    fn task(id: u64, addr: u64) -> TaskDescriptor {
        TaskDescriptor::builder(id)
            .inout(addr)
            .duration(SimDuration::from_us(10))
            .build()
    }

    #[test]
    fn xorhash_matches_the_distribution_function() {
        let loads = vec![PlacedLoad::default(); 4];
        let t = task(0, 0x12345);
        assert_eq!(
            XorHash.place(&t, &ctx(&loads, &[])),
            xor_hash_tg(0x12345, 4)
        );
        let hinted = TaskDescriptor::builder(1)
            .inout(0x12345)
            .affinity(3)
            .build();
        assert_eq!(XorHash.place(&hinted, &ctx(&loads, &[])), 3);
        assert_eq!(xor_home(&hinted, 2), 1, "hints wrap modulo the node count");
    }

    #[test]
    fn affinity_first_balances_unhinted_tasks_by_work() {
        let mut loads = vec![PlacedLoad::default(); 3];
        loads[0].work = SimDuration::from_us(100);
        loads[0].tasks = 1;
        let mut p = AffinityFirst;
        // Node 1 and 2 are empty; the lowest index wins the tie.
        assert_eq!(p.place(&task(0, 0xAAAA), &ctx(&loads, &[])), 1);
        loads[1].work = SimDuration::from_us(50);
        loads[1].tasks = 1;
        assert_eq!(p.place(&task(1, 0xAAAA), &ctx(&loads, &[])), 2);
    }

    #[test]
    fn locality_follows_the_producer_majority() {
        let loads = vec![PlacedLoad::default(); 4];
        let mut p = LocalityAware;
        assert_eq!(p.place(&task(0, 0x10), &ctx(&loads, &[2, 2, 1])), 2);
        // A tie falls to the less-loaded node.
        let mut l2 = loads.clone();
        l2[1].work = SimDuration::from_us(5);
        l2[1].tasks = 1;
        assert_eq!(p.place(&task(1, 0x10), &ctx(&l2, &[1, 3])), 3);
        // Roots spread to the least-loaded node.
        assert_eq!(p.place(&task(2, 0x10), &ctx(&l2, &[])), 0);
    }

    #[test]
    fn topology_aware_without_a_fabric_matches_locality() {
        let loads = vec![PlacedLoad::default(); 4];
        let mut topo = TopologyAware;
        let mut loc = LocalityAware;
        for id in 0..32 {
            let t = task(id, id * 0x51D3);
            let homes = [(id as usize) % 4, (id as usize / 2) % 4];
            assert_eq!(
                topo.place(&t, &ctx(&loads, &homes)),
                loc.place(&t, &ctx(&loads, &homes)),
                "{id}"
            );
        }
    }

    #[test]
    fn topology_aware_prefers_the_near_tier() {
        // Racks of 2 on 4 nodes: {0,1} and {2,3}. Producers on 0 and 2: a
        // uniform-distance policy sees a tie; the rack fabric makes node 0 (or
        // 2) strictly cheaper than the cross-rack leaves 1 and 3.
        let fabric =
            nexus_topo::rack_tiers(4, 2, SimDuration::from_us(1), SimDuration::from_ns(10));
        let d = fabric.distances();
        let loads = vec![PlacedLoad::default(); 4];
        let mut p = TopologyAware;
        let mut c = ctx(&loads, &[0, 0, 2]);
        c.distances = Some(&d);
        // Two producers on node 0, one on node 2: node 0 wins outright.
        assert_eq!(p.place(&task(0, 0x10), &c), 0);
        // Producers split 0/2: nodes 0 and 2 tie on cost (one trunk edge
        // each); leaves 1 and 3 pay an extra intra-rack hop. Tie falls to the
        // lower index.
        let mut c = ctx(&loads, &[0, 2]);
        c.distances = Some(&d);
        assert_eq!(p.place(&task(1, 0x10), &c), 0);
        // Load breaks the tie toward the emptier rack peer.
        let mut l2 = loads.clone();
        l2[0].work = SimDuration::from_us(50);
        l2[0].tasks = 1;
        let mut c = ctx(&l2, &[0, 2]);
        c.distances = Some(&d);
        assert_eq!(p.place(&task(2, 0x10), &c), 2);
    }

    #[test]
    fn hints_override_every_policy() {
        let loads = vec![PlacedLoad::default(); 4];
        let hinted = TaskDescriptor::builder(0).inout(0x40).affinity(2).build();
        for kind in PolicyKind::ALL {
            let mut p = kind.build();
            assert_eq!(p.place(&hinted, &ctx(&loads, &[1, 1, 1])), 2, "{kind}");
        }
        // FeedbackPlacement sits outside PolicyKind but honours hints too,
        // even when the live digests scream that the hinted node is loaded.
        let views = [
            crate::LoadView::default(),
            crate::LoadView::default(),
            crate::LoadView {
                pending: 1000,
                ..crate::LoadView::default()
            },
            crate::LoadView::default(),
        ];
        let mut c = ctx(&loads, &[1, 1, 1]);
        c.live = Some(crate::LiveLoad {
            views: &views,
            now: 0,
            half_life: 0,
        });
        assert_eq!(FeedbackPlacement.place(&hinted, &c), 2);
    }

    #[test]
    fn feedback_without_digests_matches_topology_aware() {
        let loads = vec![PlacedLoad::default(); 4];
        let mut fb = FeedbackPlacement;
        let mut topo = TopologyAware;
        for id in 0..32 {
            let t = task(id, id * 0x51D3);
            let homes = [(id as usize) % 4, (id as usize / 2) % 4];
            assert_eq!(
                fb.place(&t, &ctx(&loads, &homes)),
                topo.place(&t, &ctx(&loads, &homes)),
                "{id}"
            );
        }
    }

    #[test]
    fn feedback_flees_the_loaded_node_and_follows_decay() {
        use crate::{LiveLoad, LoadView};
        let loads = vec![PlacedLoad::default(); 3];
        // Node 0 holds the only producer but is drowning; nodes 1 and 2 are
        // idle. One remote edge (cost 1+1=2) beats the hot node's load.
        let views = [
            LoadView {
                pending: 20,
                in_flight: 4,
                updated_at: 1000,
                ..LoadView::default()
            },
            LoadView {
                updated_at: 1000,
                ..LoadView::default()
            },
            LoadView {
                updated_at: 1000,
                ..LoadView::default()
            },
        ];
        let mut c = ctx(&loads, &[0]);
        c.live = Some(LiveLoad {
            views: &views,
            now: 1000,
            half_life: 500,
        });
        let mut p = FeedbackPlacement;
        assert_eq!(p.place(&task(0, 0x10), &c), 1, "flee to the idle node");
        // Long after the digest went stale it has decayed to nothing: the
        // producer edge dominates again and the task stays local.
        let mut c = ctx(&loads, &[0]);
        c.live = Some(LiveLoad {
            views: &views,
            now: 1000 + 500 * 10,
            half_life: 500,
        });
        assert_eq!(p.place(&task(1, 0x10), &c), 0, "stale digest aged out");
        // With no producers the policy is pure live load balancing.
        let views = [
            LoadView {
                pending: 5,
                updated_at: 0,
                ..LoadView::default()
            },
            LoadView {
                pending: 2,
                updated_at: 0,
                ..LoadView::default()
            },
            LoadView {
                pending: 9,
                updated_at: 0,
                ..LoadView::default()
            },
        ];
        let mut c = ctx(&loads, &[]);
        c.live = Some(LiveLoad {
            views: &views,
            now: 0,
            half_life: 0,
        });
        assert_eq!(p.place(&task(2, 0x10), &c), 1, "least live load wins");
    }

    #[test]
    fn kind_parsing_is_case_insensitive_with_clear_errors() {
        assert_eq!(
            "XorHash".parse::<PolicyKind>().unwrap(),
            PolicyKind::XorHash
        );
        assert_eq!("XOR".parse::<PolicyKind>().unwrap(), PolicyKind::XorHash);
        assert_eq!(
            " Affinity-First ".parse::<PolicyKind>().unwrap(),
            PolicyKind::AffinityFirst
        );
        assert_eq!(
            "LOCALITY".parse::<PolicyKind>().unwrap(),
            PolicyKind::LocalityAware
        );
        let err = "locallity".parse::<PolicyKind>().unwrap_err();
        assert!(err.contains("xorhash|affinity|locality"), "{err}");
        for kind in PolicyKind::ALL {
            assert_eq!(kind.name().parse::<PolicyKind>().unwrap(), kind);
            assert_eq!(kind.build().name(), kind.name());
        }
        assert_eq!(PolicyKind::default(), PolicyKind::XorHash);
        assert_eq!(PolicyKind::LocalityAware.to_string(), "locality");
    }

    #[test]
    fn placement_stays_in_range_on_every_policy() {
        let loads = vec![PlacedLoad::default(); 5];
        for kind in PolicyKind::ALL {
            let mut p = kind.build();
            for id in 0..64 {
                let t = task(id, id * 0x9E37);
                let homes = [(id as usize) % 5];
                let h = p.place(&t, &ctx(&loads, &homes));
                assert!(h < 5, "{kind}: {h}");
            }
        }
    }
}
