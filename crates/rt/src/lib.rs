//! # nexus-rt — a real threaded cluster runtime for the simulator's policies
//!
//! Everything else in this workspace *simulates* the Nexus# cluster design:
//! discrete events stand in for threads, and simulated clocks stand in for
//! contention. This crate closes the loop — it **executes** tasks on real OS
//! threads, with real channels standing in for the interconnect, while
//! consuming the *same* policy objects as the simulator:
//!
//! - placement and dependence edges come from the one shared
//!   `DepScanner` (`nexus-cluster`), so a task's home node is identical
//!   under simulation and execution;
//! - work stealing calls the same [`StealPolicy`](nexus_sched::StealPolicy)
//!   trait objects (`nexus-sched`), fed from live lock-free load boards;
//! - trace replay drives the same `MasterSm` master state machine
//!   (`nexus-host`), so program order, `taskwait`, and `taskwait on` mean
//!   exactly what they mean in the simulators.
//!
//! That sharing is what the conformance suite leans on: a live run and a
//! simulated run of the same trace under the same config must admit the same
//! tasks at the same homes, retire in *some* legal topological order of the
//! same dependence graph, and converge to the same final last-writer table.
//!
//! Observability mirrors the simulator's: attach a
//! [`SharedRecorder`] via [`RtConfig::with_recorder`] and every thread
//! stamps the same `nexus-obs` span schema (`Submitted` → `Placed` →
//! `Dispatched` → `Started` → `Retired`, plus `Stolen`) in monotonic
//! wall-clock nanoseconds, ready for the shared Chrome-trace exporter; the
//! [`ShutdownReport`] carries a metrics [`Registry`]
//! whose counter names match `ClusterOutcome::metrics`.
//!
//! The lifecycle is tokio-style, split across two types: a non-cloneable
//! owner ([`ClusterRuntime`]) whose `new` spawns nothing, whose `start`
//! spawns the threads exactly once, and whose `shutdown_timeout` /
//! `shutdown_background` stop them — and a cheap cloneable
//! [`RuntimeHandle`] that submits tasks and waits on barriers from any
//! thread.
//!
//! ```
//! use nexus_rt::{ClusterRuntime, RtConfig, RtTask};
//! use nexus_trace::TaskDescriptor;
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! let mut rt = ClusterRuntime::new(RtConfig::new(2, 2));
//! let handle = rt.start();
//!
//! let counter = Arc::new(AtomicU64::new(0));
//! for i in 0..16u64 {
//!     let counter = Arc::clone(&counter);
//!     // Four inout chains interleaved over two nodes.
//!     let desc = TaskDescriptor::builder(i).inout(0x100 + i % 4).build();
//!     handle
//!         .submit(RtTask::new(desc).with_body(move || {
//!             counter.fetch_add(1, Ordering::Relaxed);
//!         }))
//!         .unwrap();
//! }
//! handle.taskwait();
//! assert_eq!(counter.load(Ordering::Relaxed), 16);
//!
//! let report = rt.shutdown_timeout(Duration::from_secs(5));
//! assert_eq!(report.pending, 0);
//! assert_eq!(report.retired, 16);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod runtime;
pub mod task;

pub use config::RtConfig;
pub use nexus_obs::{MemRecorder, Registry, SharedRecorder, SpanEvent, TimeBase};
pub use runtime::{
    ClusterRuntime, NodeStatsSnapshot, RuntimeHandle, ShutdownReport, TraceRunReport,
};
pub use task::{RtTask, SubmitError};
