//! Tasks submitted to the runtime, and the submission error type.

use nexus_trace::TaskDescriptor;
use std::fmt;

/// A task body executed on a worker thread.
pub(crate) type TaskBody = Box<dyn FnOnce() + Send + 'static>;

/// A task handed to [`RuntimeHandle::submit`](crate::RuntimeHandle::submit):
/// a [`TaskDescriptor`] declaring the data footprint (the `in/out/inout`
/// clauses the dependence tracking trusts, exactly as OmpSs trusts its
/// pragmas) plus an optional closure to run on the worker.
///
/// Trace replay ([`RuntimeHandle::run_trace`](crate::RuntimeHandle::run_trace))
/// submits body-less tasks: the descriptor's simulated duration can still be
/// mapped to a real sleep via
/// [`RtConfig::with_time_scale`](crate::RtConfig::with_time_scale).
pub struct RtTask {
    pub(crate) descriptor: TaskDescriptor,
    pub(crate) body: Option<TaskBody>,
}

impl RtTask {
    /// A task with the given footprint and no body.
    pub fn new(descriptor: TaskDescriptor) -> Self {
        RtTask {
            descriptor,
            body: None,
        }
    }

    /// Attaches a closure to run on the executing worker. The closure must
    /// only touch data it declared in the descriptor — an undeclared access
    /// is a data race the runtime cannot see.
    pub fn with_body(mut self, body: impl FnOnce() + Send + 'static) -> Self {
        self.body = Some(Box::new(body));
        self
    }

    /// The declared footprint.
    pub fn descriptor(&self) -> &TaskDescriptor {
        &self.descriptor
    }
}

impl fmt::Debug for RtTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RtTask")
            .field("descriptor", &self.descriptor)
            .field("body", &self.body.as_ref().map(|_| "FnOnce"))
            .finish()
    }
}

/// Why a submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The runtime has been shut down (or shut down mid-wait): no further
    /// tasks are accepted.
    ShutDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::ShutDown => f.write_str("the cluster runtime has been shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_debug_and_error_display() {
        let t = RtTask::new(TaskDescriptor::builder(3).inout(0x40).build()).with_body(|| {});
        assert!(format!("{t:?}").contains("FnOnce"));
        assert_eq!(t.descriptor().id.0, 3);
        let bare = RtTask::new(TaskDescriptor::builder(4).build());
        assert!(format!("{bare:?}").contains("None"));
        assert!(SubmitError::ShutDown.to_string().contains("shut down"));
    }
}
