//! Runtime configuration.

use nexus_cluster::{ClusterConfig, LinkConfig};
use nexus_obs::SharedRecorder;
use nexus_sched::{FeedbackKind, PolicyKind, StealKind};

/// Configuration of a [`ClusterRuntime`](crate::ClusterRuntime).
///
/// The shape mirrors `nexus_cluster::ClusterConfig` on purpose: a runtime
/// built from the same node count, placement policy, stealing policy and link
/// topology routes every task to the *same* home node as the event simulator
/// (both feed the one `DepScanner` definition of placement and dependence
/// edges), which is what makes the conformance suite's cross-checks exact.
#[derive(Debug, Clone)]
pub struct RtConfig {
    /// Number of runtime nodes (one manager thread each).
    pub nodes: usize,
    /// Worker threads per node.
    pub workers_per_node: usize,
    /// Task-to-node placement policy (applied at submission time).
    pub placement: PolicyKind,
    /// Work-stealing policy driven by idle manager threads.
    pub stealing: StealKind,
    /// Runtime feedback mode, mirroring `ClusterConfig::feedback`: managers
    /// piggyback live load digests on their cross-node retirement `Notify`
    /// messages, submit-time placement consumes them (`Place`/`Full`), and
    /// idle managers reclaim dependence-blocked descriptors out of loaded
    /// pools (`Reclaim`/`Full`). Off by default — the protocol then carries
    /// no digests and the reclaim path is never entered.
    pub feedback: FeedbackKind,
    /// Interconnect description. The runtime's channels are real and carry no
    /// simulated latency; the link config only supplies the fabric's distance
    /// matrix to distance-aware placement and tiered steal policies, exactly
    /// as the cluster driver wires them.
    pub link: LinkConfig,
    /// Per-worker speed factors (`1.0` = a standard core), shared by every
    /// node. `None` means a uniform pool.
    pub worker_speeds: Option<Vec<f64>>,
    /// Real nanoseconds a standard-speed worker sleeps per simulated
    /// microsecond of task duration (a worker with speed factor `s` sleeps
    /// `1/s` of that). `0` — the default — skips the sleep entirely: task
    /// bodies still run, which is what the conformance grid wants.
    pub time_scale_ns_per_us: u64,
    /// Optional span recorder the runtime threads stamp task-lifecycle
    /// events into (wall-clock nanoseconds since the recorder's epoch). The
    /// schema matches the event simulator's, so one exporter serves both.
    /// Keep a clone to snapshot after the run; `None` — the default — makes
    /// every emission site a branch on a cold `Option`.
    pub recorder: Option<SharedRecorder>,
}

impl RtConfig {
    /// A runtime of `nodes` nodes with `workers_per_node` workers each and
    /// the same policy defaults as `ClusterConfig` (XOR-hash placement, no
    /// stealing, RDMA-class full-mesh fabric).
    pub fn new(nodes: usize, workers_per_node: usize) -> Self {
        RtConfig {
            nodes,
            workers_per_node,
            placement: PolicyKind::default(),
            stealing: StealKind::default(),
            feedback: FeedbackKind::default(),
            link: LinkConfig::default(),
            worker_speeds: None,
            time_scale_ns_per_us: 0,
            recorder: None,
        }
    }

    /// A runtime matching `cfg`'s shape and policies — the configuration the
    /// conformance suite uses to compare a live run against
    /// `nexus_cluster::simulate_cluster` on the same trace.
    pub fn from_cluster(cfg: &ClusterConfig) -> Self {
        RtConfig {
            nodes: cfg.nodes,
            workers_per_node: cfg.workers_per_node,
            placement: cfg.placement,
            stealing: cfg.stealing,
            feedback: cfg.feedback,
            link: cfg.link,
            worker_speeds: None,
            time_scale_ns_per_us: 0,
            recorder: None,
        }
    }

    /// Same runtime with a different placement policy.
    pub fn with_placement(mut self, placement: PolicyKind) -> Self {
        self.placement = placement;
        self
    }

    /// Same runtime with a different work-stealing policy.
    pub fn with_stealing(mut self, stealing: StealKind) -> Self {
        self.stealing = stealing;
        self
    }

    /// Same runtime with a different feedback mode (see [`RtConfig::feedback`]).
    pub fn with_feedback(mut self, feedback: FeedbackKind) -> Self {
        self.feedback = feedback;
        self
    }

    /// Same runtime with a different link/fabric description (see
    /// [`RtConfig::link`] for what the runtime uses it for).
    pub fn with_link(mut self, link: LinkConfig) -> Self {
        self.link = link;
        self
    }

    /// Same runtime with per-worker speed factors (`1.0` = standard). Every
    /// node gets the same mix; `speeds.len()` must equal `workers_per_node`
    /// (checked when the runtime is built).
    pub fn with_worker_speeds(mut self, speeds: &[f64]) -> Self {
        self.worker_speeds = Some(speeds.to_vec());
        self
    }

    /// Same runtime with simulated task durations mapped to real sleeps at
    /// `ns_per_us` nanoseconds per simulated microsecond (see
    /// [`RtConfig::time_scale_ns_per_us`]).
    pub fn with_time_scale(mut self, ns_per_us: u64) -> Self {
        self.time_scale_ns_per_us = ns_per_us;
        self
    }

    /// Same runtime with a span recorder attached (see
    /// [`RtConfig::recorder`]). Pass a clone and keep the original to
    /// [`snapshot`](SharedRecorder::snapshot) the log after the run.
    pub fn with_recorder(mut self, recorder: SharedRecorder) -> Self {
        self.recorder = Some(recorder);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose_and_mirror_the_cluster_config() {
        let cfg = RtConfig::new(4, 2)
            .with_stealing(StealKind::MostLoaded)
            .with_worker_speeds(&[2.0, 1.0])
            .with_time_scale(500);
        assert_eq!(cfg.nodes, 4);
        assert_eq!(cfg.workers_per_node, 2);
        assert_eq!(cfg.stealing, StealKind::MostLoaded);
        assert_eq!(cfg.worker_speeds.as_deref(), Some(&[2.0, 1.0][..]));
        assert_eq!(cfg.time_scale_ns_per_us, 500);

        let sim = ClusterConfig::new(3, 8)
            .with_stealing(StealKind::Half)
            .with_feedback(FeedbackKind::Reclaim);
        let rt = RtConfig::from_cluster(&sim);
        assert_eq!(rt.nodes, 3);
        assert_eq!(rt.workers_per_node, 8);
        assert_eq!(rt.placement, sim.placement);
        assert_eq!(rt.stealing, StealKind::Half);
        assert_eq!(rt.feedback, FeedbackKind::Reclaim);
        assert_eq!(
            RtConfig::new(1, 1).feedback,
            FeedbackKind::Off,
            "feedback defaults off"
        );
        assert_eq!(
            RtConfig::new(1, 1)
                .with_feedback(FeedbackKind::Full)
                .feedback,
            FeedbackKind::Full
        );
        assert_eq!(rt.link, sim.link);
        assert_eq!(rt.time_scale_ns_per_us, 0);
        assert!(rt.recorder.is_none());
    }

    #[test]
    fn with_recorder_shares_one_log_with_the_caller_clone() {
        let rec = SharedRecorder::new();
        let cfg = RtConfig::new(1, 1).with_recorder(rec.clone());
        let attached = cfg.recorder.expect("recorder attached");
        attached.record_now(nexus_obs::SpanEvent::Submitted { task: 0 });
        assert_eq!(rec.len(), 1);
    }
}
