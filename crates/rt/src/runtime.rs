//! The threaded cluster runtime: the owner/handle pair, the per-node manager
//! and worker threads, and trace replay through the shared [`MasterSm`].
//!
//! # Protocol
//!
//! One **manager thread** per node owns the node's dependence state and talks
//! to everyone over channels; `workers_per_node` **worker threads** per node
//! compete on the node's task channel and execute bodies. The master side
//! (any thread holding a [`RuntimeHandle`]) routes each submission through
//! the shared `DepScanner` — the same placement + dependence-edge definition
//! the event simulator uses — and then:
//!
//! 1. sends `Subscribe { producer, to: home }` to each *remote* producer's
//!    home node (the producer's **directory**), and
//! 2. sends `Submit { idx, producers, … }` to the task's home node.
//!
//! A manager marks a producer retired either by executing it, by receiving a
//! cross-node `Notify`, or — for descriptors it granted to a thief — by the
//! thief's `StolenRetired` report. The home node remains the directory for a
//! descriptor no matter where it ends up executing, so subscriptions never
//! chase stolen work around the cluster. Every retirement is appended to one
//! global retire log (the topological-order witness the conformance suite
//! checks, and the wait mechanism behind `taskwait`).
//!
//! Work stealing reuses the simulator's [`StealPolicy`] objects verbatim: an
//! idle manager snapshots the per-node load boards (lock-free atomics),
//! lets the policy pick a victim, and sends a `StealRequest`; the victim
//! answers with up to `batch_for(free, backlog)` of its *youngest* ready
//! descriptors (they have the fewest local consumers waiting).
//!
//! With runtime feedback enabled (`RtConfig::feedback`), the protocol grows
//! the same two consumers the event simulator has:
//!
//! * **Load digests** — every cross-node `Notify` piggybacks the sender's
//!   live [`LoadView`] (wall-nanosecond clock); each manager folds incoming
//!   digests into its per-node view table for reclaim victim selection, and
//!   retirements additionally publish to a shared digest board the master
//!   reads for submit-time [`FeedbackPlacement`] (`Place`/`Full`).
//! * **Pool reclamation** (`Reclaim`/`Full`) — an idle manager that cannot
//!   steal (no eligible descriptor anywhere) may `ReclaimRequest` a
//!   dependence-*blocked* descriptor out of a loaded victim's pending pool.
//!   The victim hands back its youngest blocked descriptors with their
//!   unresolved producer lists and registers a forwarding entry per missing
//!   producer, so the retirement `Notify` it eventually receives is relayed
//!   to the thief; the descriptor keeps its original home as directory,
//!   exactly like stolen work.

use crate::config::RtConfig;
use crate::task::{RtTask, SubmitError, TaskBody};
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use nexus_cluster::routing::DepScanner;
use nexus_host::{MasterSm, MasterStep};
use nexus_obs::{Registry, SharedRecorder, SpanEvent};
use nexus_sched::{FeedbackKind, FeedbackPlacement, LiveLoad, LoadView, NodeLoad, StealPolicy};
use nexus_sim::{FxHashMap, FxHashSet, SimDuration, SimTime};
use nexus_topo::DistanceMatrix;
use nexus_trace::{TaskId, Trace};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

/// How long an idle manager blocks on its mailbox before scanning the load
/// boards for a steal opportunity.
const IDLE_TICK: Duration = Duration::from_millis(1);

/// Decay half-life of live load digests in wall nanoseconds (the runtime's
/// observation clock) — the live counterpart of the simulator's 200 µs
/// virtual half-life, stretched to the millisecond scale real threads
/// schedule at.
const DIGEST_HALF_LIFE_NS: u64 = 1_000_000;

/// A ready-to-run descriptor: dependence-free, waiting for a worker. This is
/// also the unit a steal grant transfers; `home` pins the directory node, so
/// a descriptor stolen (even repeatedly) still reports its retirement back to
/// the one node holding its subscriptions.
struct ReadyTask {
    idx: usize,
    id: TaskId,
    home: usize,
    duration: SimDuration,
    body: Option<TaskBody>,
}

/// A submitted descriptor still missing producer retirements. `home` is the
/// directory node (differs from the holder once the descriptor has been
/// reclaimed); `missing` lists the producers still unretired as far as the
/// holding manager knows.
struct PendingTask {
    id: TaskId,
    home: usize,
    duration: SimDuration,
    body: Option<TaskBody>,
    missing: Vec<usize>,
}

/// A dependence-blocked descriptor in flight from a reclaim victim to the
/// thief: a [`PendingTask`] plus its submission index, with the unresolved
/// producer list riding along so the thief can wire up its own waiting
/// entries.
struct ReclaimedTask {
    idx: usize,
    id: TaskId,
    home: usize,
    duration: SimDuration,
    body: Option<TaskBody>,
    missing: Vec<usize>,
}

/// Messages exchanged with (and between) the manager threads.
enum MgrMsg {
    /// Master → home node: a new descriptor (producers by submission index).
    Submit {
        idx: usize,
        id: TaskId,
        duration: SimDuration,
        producers: Vec<usize>,
        body: Option<TaskBody>,
    },
    /// Master → a producer's home: node `to` consumes `producer`; notify it
    /// on retirement (immediately if already retired).
    Subscribe { producer: usize, to: usize },
    /// Directory → subscriber: `producer` has retired. With feedback enabled
    /// the sender piggybacks its live load digest (`(node, view)`), the same
    /// digest-on-retirement channel the event simulator uses.
    Notify {
        producer: usize,
        load: Option<(usize, LoadView)>,
    },
    /// Worker → own manager: the task finished executing.
    WorkerDone { idx: usize, id: TaskId, home: usize },
    /// Idle thief → victim: request up to a policy-sized batch.
    StealRequest { thief: usize, free: usize },
    /// Victim → thief: the granted batch (possibly empty-handed).
    StealGrant { tasks: Vec<ReadyTask> },
    /// Thief → a stolen descriptor's home: it retired at the thief.
    StolenRetired { idx: usize },
    /// Idle thief → victim: request dependence-blocked descriptors a steal
    /// cannot reach (feedback `Reclaim`/`Full` only).
    ReclaimRequest { thief: usize, free: usize },
    /// Victim → thief: the reclaimed batch (possibly empty-handed).
    ReclaimGrant { tasks: Vec<ReclaimedTask> },
    /// Owner → manager: stop the node's workers and exit.
    Shutdown,
}

/// Messages from a manager to its node's worker pool.
enum WorkerMsg {
    /// Execute one task (body, then the scaled duration sleep).
    Run {
        idx: usize,
        id: TaskId,
        home: usize,
        duration: SimDuration,
        body: Option<TaskBody>,
    },
    /// Exit the worker loop.
    Stop,
}

/// Per-node load board: lock-free counters the owning manager publishes and
/// idle thieves snapshot into [`NodeLoad`]s for the steal policy.
struct Board {
    pending: AtomicUsize,
    stealable: AtomicUsize,
    free: AtomicUsize,
    outstanding: AtomicU64,
    speed_milli: u64,
}

/// Mutable per-node statistics, updated by the owning manager.
#[derive(Default)]
struct NodeStats {
    admitted: Vec<TaskId>,
    executed: u64,
    stolen_in: u64,
    stolen_out: u64,
    steal_requests: u64,
    steal_grants: u64,
    steal_failures: u64,
    reclaimed_in: u64,
    reclaimed_out: u64,
    reclaim_requests: u64,
    reclaim_grants: u64,
    reclaim_failures: u64,
    digest_updates: u64,
}

/// Everything shared about one node.
struct NodeShared {
    stats: Mutex<NodeStats>,
    per_worker_done: Vec<AtomicU64>,
    board: Board,
}

/// The global retirement record: `order` is the append-only log (one entry
/// per executed task, in real wall-clock retirement order — the topological
/// witness), `set` the membership index behind `taskwait on`.
#[derive(Default)]
struct RetireLog {
    order: Vec<TaskId>,
    set: FxHashSet<TaskId>,
}

/// Master-side submission state, serialized under one lock so placement and
/// dependence scanning see every submission in program order.
struct SubmitState {
    scanner: DepScanner,
    /// Home node per submission index (the scanner does not expose these).
    homes: Vec<usize>,
    /// Last writing task per address — the `taskwait on` target map.
    last_writer: FxHashMap<u64, TaskId>,
    /// `(producer, node)` pairs already subscribed (dedup: one `Notify` per
    /// consuming node is enough, readiness counting is per missing producer).
    subscribed: FxHashSet<(usize, usize)>,
    closed: bool,
}

/// State shared between the runtime owner, every handle, and every thread.
struct Inner {
    mgr_tx: Vec<Sender<MgrMsg>>,
    nodes: Vec<NodeShared>,
    sub: Mutex<SubmitState>,
    submitted: AtomicU64,
    shutdown: AtomicBool,
    log: Mutex<RetireLog>,
    log_cv: Condvar,
    /// Span recorder shared by master, manager and worker threads (`None`
    /// when tracing is off — the emission sites skip even the clock read).
    rec: Option<SharedRecorder>,
    /// Feedback mode the runtime was built with (drives digest piggybacking,
    /// the shared digest board and the reclaim path).
    feedback: FeedbackKind,
    /// Epoch of the digest observation clock — one `Instant` shared by every
    /// thread so all `LoadView::updated_at` stamps are comparable.
    epoch: Instant,
    /// Shared digest board: the freshest per-node `LoadView` each manager
    /// published at retirement, read by the master for submit-time feedback
    /// placement. Only written when placement feedback is on.
    digests: Mutex<Vec<LoadView>>,
}

impl Inner {
    fn lock_log(&self) -> MutexGuard<'_, RetireLog> {
        self.log.lock().expect("retire log poisoned")
    }
}

/// Snapshot of one node's runtime statistics (see
/// [`RuntimeHandle::node_stats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeStatsSnapshot {
    /// Node index.
    pub node: usize,
    /// Tasks admitted at this node (as their home), in admission order.
    pub admitted: Vec<TaskId>,
    /// Tasks that finished executing on this node's workers (includes stolen
    /// work executed here, excludes work stolen away).
    pub executed: u64,
    /// Descriptors this node stole from victims.
    pub stolen_in: u64,
    /// Descriptors granted away to thieves.
    pub stolen_out: u64,
    /// Steal requests this node issued while idle.
    pub steal_requests: u64,
    /// Steal requests this node answered with a non-empty batch (as the
    /// victim) — the live counterpart of the simulator's grant count.
    pub steal_grants: u64,
    /// Steal requests this node answered empty-handed (as the victim).
    pub steal_failures: u64,
    /// Dependence-blocked descriptors this node reclaimed from victims
    /// (0 unless the feedback mode enables reclamation).
    pub reclaimed_in: u64,
    /// Blocked descriptors handed away to reclaiming thieves.
    pub reclaimed_out: u64,
    /// Reclaim requests this node issued while idle.
    pub reclaim_requests: u64,
    /// Reclaim requests this node answered with a non-empty batch (as the
    /// victim).
    pub reclaim_grants: u64,
    /// Reclaim requests this node answered empty-handed (as the victim).
    pub reclaim_failures: u64,
    /// Piggybacked load digests this node's manager folded into its live
    /// view table (0 with feedback off — no digest ever rides a `Notify`).
    pub digest_updates: u64,
    /// Tasks completed per worker thread of this node.
    pub per_worker_done: Vec<u64>,
}

/// What a shutdown found (see [`ClusterRuntime::shutdown_timeout`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Tasks submitted over the runtime's lifetime.
    pub submitted: u64,
    /// Tasks retired before the runtime stopped.
    pub retired: u64,
    /// Tasks submitted but never retired (`submitted - retired`); zero after
    /// a drained run.
    pub pending: u64,
    /// Final per-node statistics.
    pub per_node: Vec<NodeStatsSnapshot>,
    /// Metrics registry folded associatively over the per-node statistics.
    /// Counter names match the event simulator's `ClusterOutcome::metrics`
    /// (`task.executed`, `task.retired`, `steal.stolen`, `steal.grants`,
    /// `steal.failures`, `reclaim.reclaimed`, `reclaim.grants`,
    /// `reclaim.failures`, `load.digest.updates`), so the conformance suite
    /// can compare the live and simulated censuses key by key.
    pub metrics: Registry,
}

/// Result of replaying a whole trace (see [`RuntimeHandle::run_trace`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRunReport {
    /// Tasks the master submitted.
    pub submitted: u64,
    /// Retirements the master observed (equals `submitted` after the final
    /// barrier).
    pub retired: u64,
    /// The master's final last-writer table, directly comparable with
    /// `ClusterOutcome::master_last_writer` from the event simulator.
    pub last_writer: Vec<(u64, TaskId)>,
}

/// Lifecycle state of the owner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    New,
    Running,
    Stopped,
}

/// The owning half of the runtime, tokio-style: [`ClusterRuntime::new`]
/// spawns nothing, [`ClusterRuntime::start`] spawns the manager and worker
/// threads exactly once, and [`ClusterRuntime::shutdown_timeout`] /
/// [`ClusterRuntime::shutdown_background`] stop them. Not cloneable — thread
/// ownership has one owner; cheap cloneable [`RuntimeHandle`]s do the
/// submitting.
///
/// Dropping a running `ClusterRuntime` signals shutdown without joining
/// (the threads unwind in the background).
pub struct ClusterRuntime {
    cfg: RtConfig,
    state: State,
    inner: Option<Arc<Inner>>,
    threads: Vec<thread::JoinHandle<()>>,
}

impl ClusterRuntime {
    /// Prepares a runtime for `cfg` without spawning any thread.
    ///
    /// # Panics
    /// Panics if `cfg.nodes` or `cfg.workers_per_node` is zero, or if
    /// `cfg.worker_speeds` has the wrong length or a non-positive/non-finite
    /// factor.
    pub fn new(cfg: RtConfig) -> Self {
        assert!(cfg.nodes > 0, "need at least one node");
        assert!(
            cfg.workers_per_node > 0,
            "need at least one worker per node"
        );
        if let Some(speeds) = &cfg.worker_speeds {
            assert_eq!(
                speeds.len(),
                cfg.workers_per_node,
                "need one speed factor per worker"
            );
            for &s in speeds {
                assert!(
                    s.is_finite() && s > 0.0,
                    "worker speed factor must be a positive finite number (got {s})"
                );
            }
        }
        ClusterRuntime {
            cfg,
            state: State::New,
            inner: None,
            threads: Vec::new(),
        }
    }

    /// Spawns the `nodes` manager threads and `nodes × workers_per_node`
    /// worker threads and returns a handle for submitting work. Spawning
    /// happens exactly once per runtime.
    ///
    /// # Panics
    /// Panics if called a second time (`start` spawns exactly once — create
    /// a new runtime instead).
    pub fn start(&mut self) -> RuntimeHandle {
        assert!(
            self.state == State::New,
            "ClusterRuntime::start called twice (the runtime spawns exactly once)"
        );
        let cfg = &self.cfg;
        let speeds_milli: Vec<u64> = match &cfg.worker_speeds {
            Some(speeds) => speeds
                .iter()
                .map(|&s| ((s * 1000.0).round() as u64).max(1))
                .collect(),
            None => vec![1000; cfg.workers_per_node],
        };
        let total_speed: u64 = speeds_milli.iter().sum();

        let fabric = cfg.link.fabric(cfg.nodes);
        // With placement feedback on, the scanner routes through the live
        // digest-driven policy (exactly what the simulator's submit-time
        // re-placement runs); the scanner keeps owning the homes table so
        // dependence subscriptions always match the placement actually used.
        let scan_policy = if cfg.feedback.place_enabled() {
            Box::new(FeedbackPlacement)
        } else {
            cfg.placement.build()
        };
        let scanner =
            DepScanner::with_policy(cfg.nodes, scan_policy).with_distances(fabric.distances());
        let distances = Arc::new(fabric.distances());

        let mut mgr_tx = Vec::with_capacity(cfg.nodes);
        let mut mgr_rx = Vec::with_capacity(cfg.nodes);
        for _ in 0..cfg.nodes {
            let (tx, rx) = unbounded::<MgrMsg>();
            mgr_tx.push(tx);
            mgr_rx.push(rx);
        }
        let nodes = (0..cfg.nodes)
            .map(|_| NodeShared {
                stats: Mutex::new(NodeStats::default()),
                per_worker_done: (0..cfg.workers_per_node)
                    .map(|_| AtomicU64::new(0))
                    .collect(),
                board: Board {
                    pending: AtomicUsize::new(0),
                    stealable: AtomicUsize::new(0),
                    free: AtomicUsize::new(cfg.workers_per_node),
                    outstanding: AtomicU64::new(0),
                    speed_milli: total_speed,
                },
            })
            .collect();
        let inner = Arc::new(Inner {
            mgr_tx,
            nodes,
            sub: Mutex::new(SubmitState {
                scanner,
                homes: Vec::new(),
                last_writer: FxHashMap::default(),
                subscribed: FxHashSet::default(),
                closed: false,
            }),
            submitted: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            log: Mutex::new(RetireLog::default()),
            log_cv: Condvar::new(),
            rec: cfg.recorder.clone(),
            feedback: cfg.feedback,
            epoch: Instant::now(),
            digests: Mutex::new(vec![LoadView::default(); cfg.nodes]),
        });

        for (node, rx) in mgr_rx.into_iter().enumerate() {
            // Room for one in-flight Run per worker plus the Stop flood at
            // shutdown, so the manager never blocks on its own pool.
            let (worker_tx, worker_rx) = bounded::<WorkerMsg>(2 * cfg.workers_per_node);
            for (w, &speed) in speeds_milli.iter().enumerate() {
                let rx = worker_rx.clone();
                let done = inner.mgr_tx[node].clone();
                let shared = Arc::clone(&inner);
                let scale = cfg.time_scale_ns_per_us;
                let t = thread::Builder::new()
                    .name(format!("nexus-rt-w{node}.{w}"))
                    .spawn(move || worker_loop(node, w, speed, scale, rx, done, shared))
                    .expect("failed to spawn worker thread");
                self.threads.push(t);
            }
            let mgr = Mgr {
                node,
                workers: cfg.workers_per_node,
                inner: Arc::clone(&inner),
                worker_tx,
                policy: cfg.stealing.build(),
                steal_enabled: cfg.stealing.is_enabled(),
                feedback: cfg.feedback,
                distances: Arc::clone(&distances),
                retired: FxHashSet::default(),
                subs: FxHashMap::default(),
                waiting: FxHashMap::default(),
                pending: FxHashMap::default(),
                reclaimed_away: FxHashMap::default(),
                views: vec![LoadView::default(); cfg.nodes],
                ready: VecDeque::new(),
                free: cfg.workers_per_node,
                done: 0,
                steal_inflight: false,
                reclaim_inflight: false,
            };
            let t = thread::Builder::new()
                .name(format!("nexus-rt-mgr-{node}"))
                .spawn(move || mgr.run(rx))
                .expect("failed to spawn manager thread");
            self.threads.push(t);
        }

        self.state = State::Running;
        self.inner = Some(Arc::clone(&inner));
        RuntimeHandle { inner }
    }

    /// Waits up to `timeout` for every submitted task to retire, then stops
    /// and joins all threads and reports what was (and was not) finished.
    /// After a fully drained run the report's `pending` is zero. Submissions
    /// through surviving handles fail with [`SubmitError::ShutDown`] from
    /// this point on.
    pub fn shutdown_timeout(mut self, timeout: Duration) -> ShutdownReport {
        self.stop(Some(timeout))
    }

    /// Signals shutdown and returns immediately without joining; the threads
    /// finish their in-flight tasks and unwind in the background.
    pub fn shutdown_background(mut self) {
        self.stop(None);
    }

    fn stop(&mut self, wait: Option<Duration>) -> ShutdownReport {
        if self.state != State::Running {
            self.state = State::Stopped;
            return ShutdownReport {
                submitted: 0,
                retired: 0,
                pending: 0,
                per_node: Vec::new(),
                metrics: Registry::new(),
            };
        }
        self.state = State::Stopped;
        let inner = self.inner.take().expect("running runtime has inner state");
        if let Some(timeout) = wait {
            let deadline = Instant::now() + timeout;
            let mut log = inner.lock_log();
            loop {
                if log.order.len() as u64 >= inner.submitted.load(Ordering::Acquire) {
                    break;
                }
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    break;
                }
                log = inner
                    .log_cv
                    .wait_timeout(log, left)
                    .expect("retire log poisoned")
                    .0;
            }
        }
        inner.shutdown.store(true, Ordering::Release);
        inner.sub.lock().expect("submit state poisoned").closed = true;
        for tx in &inner.mgr_tx {
            let _ = tx.send(MgrMsg::Shutdown);
        }
        // Wake anyone parked in taskwait/run_trace so they observe the
        // shutdown instead of sleeping forever.
        inner.log_cv.notify_all();
        let threads = std::mem::take(&mut self.threads);
        if wait.is_some() {
            for t in threads {
                let _ = t.join();
            }
        }
        let handle = RuntimeHandle {
            inner: Arc::clone(&inner),
        };
        let submitted = inner.submitted.load(Ordering::Acquire);
        let retired = inner.lock_log().order.len() as u64;
        let per_node = handle.node_stats();
        // One registry per node, folded with the associative merge — the
        // same shape the simulator builds its outcome registry in.
        let mut metrics = Registry::new();
        for s in &per_node {
            let mut node = Registry::new();
            node.add("task.executed", s.executed);
            node.add("steal.stolen", s.stolen_in);
            node.add("steal.grants", s.steal_grants);
            node.add("steal.failures", s.steal_failures);
            node.add("steal.requests", s.steal_requests);
            node.add("reclaim.reclaimed", s.reclaimed_in);
            node.add("reclaim.grants", s.reclaim_grants);
            node.add("reclaim.failures", s.reclaim_failures);
            node.add("load.digest.updates", s.digest_updates);
            node.sample("node.executed", s.executed);
            metrics.merge(&node);
        }
        metrics.add("task.retired", retired);
        ShutdownReport {
            submitted,
            retired,
            pending: submitted.saturating_sub(retired),
            per_node,
            metrics,
        }
    }
}

impl Drop for ClusterRuntime {
    fn drop(&mut self) {
        if self.state == State::Running {
            self.stop(None);
        }
    }
}

/// Cheap cloneable submission handle (see [`ClusterRuntime::start`]): submit
/// tasks, wait on barriers, replay traces, snapshot statistics. Clones share
/// one runtime; all of it is usable from any thread.
#[derive(Clone)]
pub struct RuntimeHandle {
    inner: Arc<Inner>,
}

impl RuntimeHandle {
    /// Routes `task` to its home node and returns its id. The placement and
    /// dependence edges are decided by the same scanner the event simulator
    /// uses, under one lock, so submissions are dependence-scanned in
    /// program order.
    ///
    /// # Errors
    /// [`SubmitError::ShutDown`] once the runtime owner has shut down.
    pub fn submit(&self, task: RtTask) -> Result<TaskId, SubmitError> {
        let RtTask { descriptor, body } = task;
        let id = descriptor.id;
        let mut sub = self.inner.sub.lock().expect("submit state poisoned");
        if sub.closed {
            return Err(SubmitError::ShutDown);
        }
        let rec = if self.inner.feedback.place_enabled() {
            // Feed the freshest published digests into the scanner's
            // feedback placement — the live analogue of the simulator's
            // submit-time re-placement off the load tracker.
            let views = self
                .inner
                .digests
                .lock()
                .expect("digest board poisoned")
                .clone();
            let live = LiveLoad {
                views: &views,
                now: self.inner.epoch.elapsed().as_nanos() as u64,
                half_life: DIGEST_HALF_LIFE_NS,
            };
            sub.scanner.scan_full_live(&descriptor, Some(live))
        } else {
            sub.scanner.scan_full(&descriptor)
        };
        let idx = sub.homes.len();
        sub.homes.push(rec.home);
        for p in descriptor.outputs() {
            sub.last_writer.insert(p.addr, id);
        }
        for &rp in &rec.remote_producers {
            let producer_home = sub.homes[rp];
            if sub.subscribed.insert((rp, rec.home)) {
                let _ = self.inner.mgr_tx[producer_home].send(MgrMsg::Subscribe {
                    producer: rp,
                    to: rec.home,
                });
            }
        }
        self.inner.submitted.fetch_add(1, Ordering::AcqRel);
        if let Some(r) = &self.inner.rec {
            r.record_now(SpanEvent::Submitted { task: idx });
            r.record_now(SpanEvent::Placed {
                task: idx,
                node: rec.home,
            });
        }
        self.inner.mgr_tx[rec.home]
            .send(MgrMsg::Submit {
                idx,
                id,
                duration: descriptor.duration,
                producers: rec.producers,
                body,
            })
            .map_err(|_| SubmitError::ShutDown)?;
        Ok(id)
    }

    /// Blocks until every task submitted before the call has retired (or the
    /// runtime shuts down, whichever comes first).
    pub fn taskwait(&self) {
        let target = self.inner.submitted.load(Ordering::Acquire);
        let mut log = self.inner.lock_log();
        while (log.order.len() as u64) < target && !self.inner.shutdown.load(Ordering::Acquire) {
            log = self.inner.log_cv.wait(log).expect("retire log poisoned");
        }
    }

    /// Blocks until the last task that wrote `addr` has retired — a no-op if
    /// nothing submitted so far writes `addr`. Returns early if the runtime
    /// shuts down.
    pub fn taskwait_on(&self, addr: u64) {
        let target = {
            let sub = self.inner.sub.lock().expect("submit state poisoned");
            sub.last_writer.get(&addr).copied()
        };
        let Some(target) = target else { return };
        let mut log = self.inner.lock_log();
        while !log.set.contains(&target) && !self.inner.shutdown.load(Ordering::Acquire) {
            log = self.inner.log_cv.wait(log).expect("retire log poisoned");
        }
    }

    /// Tasks submitted so far.
    pub fn submitted(&self) -> u64 {
        self.inner.submitted.load(Ordering::Acquire)
    }

    /// Tasks retired so far.
    pub fn retired(&self) -> u64 {
        self.inner.lock_log().order.len() as u64
    }

    /// The global retirement log so far, in real retirement order. Every
    /// consumer appears after all of its producers — the runtime's execution
    /// is a legal topological order of the dependence graph, and this log is
    /// the witness the conformance suite checks.
    pub fn retire_log(&self) -> Vec<TaskId> {
        self.inner.lock_log().order.clone()
    }

    /// Per-node statistics snapshots (admission order, executed/stolen
    /// counts, per-worker completions).
    pub fn node_stats(&self) -> Vec<NodeStatsSnapshot> {
        self.inner
            .nodes
            .iter()
            .enumerate()
            .map(|(node, shared)| {
                let stats = shared.stats.lock().expect("node stats poisoned");
                NodeStatsSnapshot {
                    node,
                    admitted: stats.admitted.clone(),
                    executed: stats.executed,
                    stolen_in: stats.stolen_in,
                    stolen_out: stats.stolen_out,
                    steal_requests: stats.steal_requests,
                    steal_grants: stats.steal_grants,
                    steal_failures: stats.steal_failures,
                    reclaimed_in: stats.reclaimed_in,
                    reclaimed_out: stats.reclaimed_out,
                    reclaim_requests: stats.reclaim_requests,
                    reclaim_grants: stats.reclaim_grants,
                    reclaim_failures: stats.reclaim_failures,
                    digest_updates: stats.digest_updates,
                    per_worker_done: shared
                        .per_worker_done
                        .iter()
                        .map(|c| c.load(Ordering::Relaxed))
                        .collect(),
                }
            })
            .collect()
    }

    /// Replays `trace` through the shared [`MasterSm`] — the exact master
    /// semantics of the simulators (program order, `taskwait`,
    /// `taskwait on`), with retirement visibility coming from the live
    /// retire log instead of simulated events. Master compute segments are
    /// not slept: the replay is gated purely by the dataflow.
    ///
    /// Assumes this handle's submissions are the runtime's only traffic
    /// while the replay runs (the barrier census counts every retirement).
    ///
    /// # Errors
    /// [`SubmitError::ShutDown`] if the runtime shuts down mid-replay.
    pub fn run_trace(&self, trace: &Trace) -> Result<TraceRunReport, SubmitError> {
        let mut sm = MasterSm::new();
        let mut fed = 0usize;
        loop {
            {
                let log = self.inner.lock_log();
                while fed < log.order.len() {
                    sm.on_retired(log.order[fed], SimTime::ZERO);
                    fed += 1;
                }
            }
            match sm.step(trace, SimTime::ZERO, true) {
                MasterStep::Submit(task) => {
                    let task = task.clone();
                    self.submit(RtTask::new(task.clone()))?;
                    sm.commit_submit(&task, SimTime::ZERO);
                }
                MasterStep::Compute(_) | MasterStep::Continue => {}
                MasterStep::Waiting => {
                    let mut log = self.inner.lock_log();
                    while log.order.len() == fed {
                        if self.inner.shutdown.load(Ordering::Acquire) {
                            return Err(SubmitError::ShutDown);
                        }
                        log = self.inner.log_cv.wait(log).expect("retire log poisoned");
                    }
                }
                MasterStep::Done => break,
            }
        }
        Ok(TraceRunReport {
            submitted: sm.submitted(),
            retired: sm.retired_count(),
            last_writer: sm.last_writer_table(),
        })
    }
}

/// One manager thread's state (see the [module docs](self) for the
/// protocol).
struct Mgr {
    node: usize,
    workers: usize,
    inner: Arc<Inner>,
    worker_tx: Sender<WorkerMsg>,
    policy: Box<dyn StealPolicy>,
    steal_enabled: bool,
    feedback: FeedbackKind,
    distances: Arc<DistanceMatrix>,
    /// Producers known retired at this node (from local execution, `Notify`,
    /// or `StolenRetired`).
    retired: FxHashSet<usize>,
    /// Directory: producer → nodes to `Notify` when it retires.
    subs: FxHashMap<usize, Vec<usize>>,
    /// Producer → local pending tasks waiting on it.
    waiting: FxHashMap<usize, Vec<usize>>,
    /// Pending tasks by submission index.
    pending: FxHashMap<usize, PendingTask>,
    /// Forwarding entries for descriptors reclaimed away while still blocked:
    /// producer → thief nodes to relay the retirement `Notify` to, so the
    /// thief's copy of the dependence eventually resolves.
    reclaimed_away: FxHashMap<usize, Vec<usize>>,
    /// Live per-node load digests folded from piggybacked `Notify` loads
    /// (reclaim victim selection reads them; all-default with feedback off).
    views: Vec<LoadView>,
    /// Dependence-free descriptors waiting for a worker (the stealable
    /// backlog; thieves take from the back).
    ready: VecDeque<ReadyTask>,
    free: usize,
    /// Tasks this node's workers completed (the digest's retire counter —
    /// tracked locally so digest emission never takes the stats lock).
    done: u64,
    steal_inflight: bool,
    reclaim_inflight: bool,
}

impl Mgr {
    fn run(mut self, rx: Receiver<MgrMsg>) {
        loop {
            let idle = match rx.recv_timeout(IDLE_TICK) {
                Ok(MgrMsg::Shutdown) => {
                    for _ in 0..self.workers {
                        let _ = self.worker_tx.send(WorkerMsg::Stop);
                    }
                    return;
                }
                Ok(msg) => {
                    self.on_msg(msg);
                    false
                }
                Err(RecvTimeoutError::Timeout) => true,
                Err(RecvTimeoutError::Disconnected) => return,
            };
            self.dispatch();
            if idle {
                self.try_steal();
                self.try_reclaim();
            }
            self.sync_board();
        }
    }

    fn on_msg(&mut self, msg: MgrMsg) {
        match msg {
            MgrMsg::Submit {
                idx,
                id,
                duration,
                producers,
                body,
            } => {
                self.stats().admitted.push(id);
                let missing: Vec<usize> = producers
                    .into_iter()
                    .filter(|p| !self.retired.contains(p))
                    .collect();
                if missing.is_empty() {
                    self.ready.push_back(ReadyTask {
                        idx,
                        id,
                        home: self.node,
                        duration,
                        body,
                    });
                } else {
                    for &p in &missing {
                        self.waiting.entry(p).or_default().push(idx);
                    }
                    self.pending.insert(
                        idx,
                        PendingTask {
                            id,
                            home: self.node,
                            duration,
                            body,
                            missing,
                        },
                    );
                }
            }
            MgrMsg::Subscribe { producer, to } => {
                if self.retired.contains(&producer) {
                    let load = self.digest_pair();
                    let _ = self.inner.mgr_tx[to].send(MgrMsg::Notify { producer, load });
                } else {
                    self.subs.entry(producer).or_default().push(to);
                }
            }
            MgrMsg::Notify { producer, load } => {
                self.observe(load);
                self.producer_retired(producer);
            }
            MgrMsg::WorkerDone { idx, id, home } => {
                self.free += 1;
                self.done += 1;
                self.stats().executed += 1;
                self.publish_digest();
                {
                    let mut log = self.inner.lock_log();
                    log.order.push(id);
                    log.set.insert(id);
                }
                if let Some(r) = &self.inner.rec {
                    r.record_now(SpanEvent::Retired {
                        task: idx,
                        node: self.node,
                    });
                }
                self.inner.log_cv.notify_all();
                self.producer_retired(idx);
                if home == self.node {
                    self.flush_subs(idx);
                } else {
                    let _ = self.inner.mgr_tx[home].send(MgrMsg::StolenRetired { idx });
                }
            }
            MgrMsg::StolenRetired { idx } => {
                self.producer_retired(idx);
                self.flush_subs(idx);
            }
            MgrMsg::StealRequest { thief, free } => {
                let n = self
                    .policy
                    .batch_for(free, self.ready.len())
                    .min(self.ready.len());
                let mut tasks = Vec::with_capacity(n);
                for _ in 0..n {
                    // The youngest ready descriptors leave first: the oldest
                    // are the ones local consumers have waited on longest.
                    tasks.push(self.ready.pop_back().expect("batch clamped to backlog"));
                }
                if n > 0 {
                    let mut stats = self.stats();
                    stats.stolen_out += n as u64;
                    stats.steal_grants += 1;
                } else {
                    self.stats().steal_failures += 1;
                }
                if let Some(r) = &self.inner.rec {
                    for t in &tasks {
                        r.record_now(SpanEvent::Stolen {
                            task: t.idx,
                            from: self.node,
                            to: thief,
                        });
                    }
                }
                let _ = self.inner.mgr_tx[thief].send(MgrMsg::StealGrant { tasks });
            }
            MgrMsg::StealGrant { tasks } => {
                self.steal_inflight = false;
                if !tasks.is_empty() {
                    self.stats().stolen_in += tasks.len() as u64;
                    for t in tasks {
                        self.ready.push_back(t);
                    }
                }
            }
            MgrMsg::ReclaimRequest { thief, free } => self.grant_reclaim(thief, free),
            MgrMsg::ReclaimGrant { tasks } => {
                self.reclaim_inflight = false;
                if !tasks.is_empty() {
                    self.stats().reclaimed_in += tasks.len() as u64;
                }
                for t in tasks {
                    // Producers the thief already knows retired (it executed
                    // them, or their Notify raced ahead) resolve on arrival;
                    // the rest wait for the victim's forwarded Notifies.
                    let missing: Vec<usize> = t
                        .missing
                        .into_iter()
                        .filter(|p| !self.retired.contains(p))
                        .collect();
                    if missing.is_empty() {
                        self.ready.push_back(ReadyTask {
                            idx: t.idx,
                            id: t.id,
                            home: t.home,
                            duration: t.duration,
                            body: t.body,
                        });
                    } else {
                        for &p in &missing {
                            self.waiting.entry(p).or_default().push(t.idx);
                        }
                        self.pending.insert(
                            t.idx,
                            PendingTask {
                                id: t.id,
                                home: t.home,
                                duration: t.duration,
                                body: t.body,
                                missing,
                            },
                        );
                    }
                }
            }
            MgrMsg::Shutdown => unreachable!("handled in the receive loop"),
        }
    }

    /// Records that producer `p` retired (idempotent), relays the news to any
    /// thief holding a descriptor reclaimed away while waiting on `p`, and
    /// promotes any local tasks whose last missing producer it was.
    fn producer_retired(&mut self, p: usize) {
        if !self.retired.insert(p) {
            return;
        }
        if let Some(thieves) = self.reclaimed_away.remove(&p) {
            let load = self.digest_pair();
            for to in thieves {
                let _ = self.inner.mgr_tx[to].send(MgrMsg::Notify { producer: p, load });
            }
        }
        let Some(waiters) = self.waiting.remove(&p) else {
            return;
        };
        for idx in waiters {
            let now_ready = {
                let t = self
                    .pending
                    .get_mut(&idx)
                    .expect("waiter without a pending record");
                t.missing.retain(|&m| m != p);
                t.missing.is_empty()
            };
            if now_ready {
                let t = self.pending.remove(&idx).expect("checked above");
                self.ready.push_back(ReadyTask {
                    idx,
                    id: t.id,
                    home: t.home,
                    duration: t.duration,
                    body: t.body,
                });
            }
        }
    }

    /// Notifies every node subscribed to producer `p` (directory duty of the
    /// home node), piggybacking this node's digest when feedback is on.
    fn flush_subs(&mut self, p: usize) {
        if let Some(subs) = self.subs.remove(&p) {
            let load = self.digest_pair();
            for to in subs {
                let _ = self.inner.mgr_tx[to].send(MgrMsg::Notify { producer: p, load });
            }
        }
    }

    /// This node's live digest, `None` with feedback off (no clock read, no
    /// payload on the wire — the off path carries exactly the old protocol).
    fn digest_pair(&self) -> Option<(usize, LoadView)> {
        if !self.feedback.is_enabled() {
            return None;
        }
        Some((
            self.node,
            LoadView {
                pending: (self.pending.len() + self.ready.len()) as u64,
                in_flight: (self.workers - self.free) as u64,
                retired: self.done,
                updated_at: self.inner.epoch.elapsed().as_nanos() as u64,
            },
        ))
    }

    /// Folds a piggybacked digest into the per-node view table.
    fn observe(&mut self, load: Option<(usize, LoadView)>) {
        if let Some((node, view)) = load {
            if self.views[node].observe(view) {
                self.stats().digest_updates += 1;
            }
        }
    }

    /// Publishes this node's digest to the shared board the master's
    /// feedback placement reads (a retirement is the publish trigger, the
    /// same cadence the simulator's load tracker observes digests at).
    fn publish_digest(&self) {
        if !self.feedback.place_enabled() {
            return;
        }
        if let Some((node, view)) = self.digest_pair() {
            let mut board = self.inner.digests.lock().expect("digest board poisoned");
            board[node].observe(view);
        }
    }

    /// Hands ready descriptors to free workers (the workers compete on the
    /// node's task channel, fastest-finisher-first by construction).
    fn dispatch(&mut self) {
        while self.free > 0 {
            let Some(t) = self.ready.pop_front() else {
                break;
            };
            self.free -= 1;
            if let Some(r) = &self.inner.rec {
                r.record_now(SpanEvent::Dispatched {
                    task: t.idx,
                    node: self.node,
                });
            }
            let _ = self.worker_tx.send(WorkerMsg::Run {
                idx: t.idx,
                id: t.id,
                home: t.home,
                duration: t.duration,
                body: t.body,
            });
        }
    }

    /// On an idle tick with free workers and no backlog, snapshots the load
    /// boards and lets the policy pick a victim — at most one request in
    /// flight per thief.
    fn try_steal(&mut self) {
        if !self.steal_enabled || self.steal_inflight || self.free == 0 || !self.ready.is_empty() {
            return;
        }
        let loads = self.load_board();
        let Some(victim) =
            self.policy
                .choose_victim_tiered(self.node, &loads, Some(&self.distances))
        else {
            return;
        };
        self.stats().steal_requests += 1;
        self.steal_inflight = true;
        let _ = self.inner.mgr_tx[victim].send(MgrMsg::StealRequest {
            thief: self.node,
            free: self.free,
        });
    }

    /// On an idle tick where stealing found nothing to take (or is disabled),
    /// asks the reclaim victim choice for a node with dependence-*blocked*
    /// descriptors and requests a batch — at most one request in flight, and
    /// only while this node is completely drained (eligible work is always
    /// the cheaper import).
    fn try_reclaim(&mut self) {
        if !self.feedback.reclaim_enabled()
            || self.reclaim_inflight
            || self.steal_inflight
            || self.free == 0
            || !self.ready.is_empty()
            || !self.pending.is_empty()
        {
            return;
        }
        let loads = self.load_board();
        let live = LiveLoad {
            views: &self.views,
            now: self.inner.epoch.elapsed().as_nanos() as u64,
            half_life: DIGEST_HALF_LIFE_NS,
        };
        let Some(victim) =
            self.policy
                .choose_reclaim_victim(self.node, &loads, Some(live), Some(&self.distances))
        else {
            return;
        };
        self.stats().reclaim_requests += 1;
        self.reclaim_inflight = true;
        let _ = self.inner.mgr_tx[victim].send(MgrMsg::ReclaimRequest {
            thief: self.node,
            free: self.free,
        });
    }

    /// Victim side of reclamation: hands the thief up to a policy-sized batch
    /// of the *youngest* blocked descriptors (highest submission index — the
    /// oldest are closest to resolving locally), each with its unresolved
    /// producer list, and registers forwarding entries so every later
    /// producer retirement this node learns of is relayed to the thief.
    fn grant_reclaim(&mut self, thief: usize, free: usize) {
        let mut blocked: Vec<usize> = self.pending.keys().copied().collect();
        blocked.sort_unstable_by(|a, b| b.cmp(a));
        let n = self
            .policy
            .reclaim_batch(free, blocked.len())
            .min(blocked.len());
        let mut tasks = Vec::with_capacity(n);
        for &idx in blocked.iter().take(n) {
            let t = self
                .pending
                .remove(&idx)
                .expect("blocked index came from the pending map");
            for &p in &t.missing {
                if let Some(w) = self.waiting.get_mut(&p) {
                    w.retain(|&i| i != idx);
                    if w.is_empty() {
                        self.waiting.remove(&p);
                    }
                }
                let thieves = self.reclaimed_away.entry(p).or_default();
                if !thieves.contains(&thief) {
                    thieves.push(thief);
                }
            }
            tasks.push(ReclaimedTask {
                idx,
                id: t.id,
                home: t.home,
                duration: t.duration,
                body: t.body,
                missing: t.missing,
            });
        }
        if tasks.is_empty() {
            self.stats().reclaim_failures += 1;
        } else {
            {
                let mut stats = self.stats();
                stats.reclaimed_out += tasks.len() as u64;
                stats.reclaim_grants += 1;
            }
            if let Some(r) = &self.inner.rec {
                for t in &tasks {
                    r.record_now(SpanEvent::Reclaimed {
                        task: t.idx,
                        from: self.node,
                        to: thief,
                    });
                }
            }
        }
        let _ = self.inner.mgr_tx[thief].send(MgrMsg::ReclaimGrant { tasks });
    }

    /// Snapshots every node's published board into the policy-facing
    /// [`NodeLoad`]s through the shared constructor (the same one the
    /// simulator's driver uses, so the two snapshots cannot drift).
    fn load_board(&self) -> Vec<NodeLoad> {
        self.inner
            .nodes
            .iter()
            .map(|n| {
                let stealable = n.board.stealable.load(Ordering::Relaxed);
                NodeLoad::snapshot(
                    n.board.pending.load(Ordering::Relaxed),
                    stealable,
                    stealable,
                    n.board.free.load(Ordering::Relaxed),
                    n.board.outstanding.load(Ordering::Relaxed),
                    n.board.speed_milli,
                )
            })
            .collect()
    }

    fn sync_board(&self) {
        let board = &self.inner.nodes[self.node].board;
        // `pending` counts everything held at the node (blocked + ready),
        // matching the simulator's input-queue semantics, so that
        // `NodeLoad::reclaimable` = blocked count on both sides.
        board
            .pending
            .store(self.pending.len() + self.ready.len(), Ordering::Relaxed);
        board.stealable.store(self.ready.len(), Ordering::Relaxed);
        board.free.store(self.free, Ordering::Relaxed);
        board.outstanding.store(
            (self.pending.len() + self.ready.len() + (self.workers - self.free)) as u64,
            Ordering::Relaxed,
        );
    }

    fn stats(&self) -> MutexGuard<'_, NodeStats> {
        self.inner.nodes[self.node]
            .stats
            .lock()
            .expect("node stats poisoned")
    }
}

/// One worker thread: run the body, sleep the scaled duration, report back.
fn worker_loop(
    node: usize,
    worker: usize,
    speed_milli: u64,
    time_scale_ns_per_us: u64,
    rx: Receiver<WorkerMsg>,
    done: Sender<MgrMsg>,
    shared: Arc<Inner>,
) {
    while let Ok(msg) = rx.recv() {
        match msg {
            WorkerMsg::Run {
                idx,
                id,
                home,
                duration,
                body,
            } => {
                if let Some(r) = &shared.rec {
                    r.record_now(SpanEvent::Started {
                        task: idx,
                        node,
                        worker,
                    });
                }
                if let Some(body) = body {
                    body();
                }
                if time_scale_ns_per_us > 0 {
                    let ns = duration.as_us_f64() * time_scale_ns_per_us as f64 * 1000.0
                        / speed_milli as f64;
                    thread::sleep(Duration::from_nanos(ns as u64));
                }
                shared.nodes[node].per_worker_done[worker].fetch_add(1, Ordering::Relaxed);
                if done.send(MgrMsg::WorkerDone { idx, id, home }).is_err() {
                    return;
                }
            }
            WorkerMsg::Stop => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexus_trace::TaskDescriptor;
    use std::sync::atomic::AtomicU64;

    fn chain_task(id: u64, addr: u64) -> TaskDescriptor {
        TaskDescriptor::builder(id).inout(addr).build()
    }

    #[test]
    fn dependent_bodies_run_in_submission_order() {
        let mut rt = ClusterRuntime::new(RtConfig::new(2, 2));
        let h = rt.start();
        let seen = Arc::new(Mutex::new(Vec::new()));
        for id in 0..20u64 {
            let seen = Arc::clone(&seen);
            // One shared inout address: a single chain across both nodes.
            h.submit(RtTask::new(chain_task(id, 0xBEEF)).with_body(move || {
                seen.lock().unwrap().push(id);
            }))
            .unwrap();
        }
        h.taskwait();
        assert_eq!(*seen.lock().unwrap(), (0..20).collect::<Vec<_>>());
        let report = rt.shutdown_timeout(Duration::from_secs(10));
        assert_eq!(report.pending, 0);
        assert_eq!(report.retired, 20);
    }

    #[test]
    fn independent_tasks_spread_over_nodes_and_workers() {
        let mut rt = ClusterRuntime::new(RtConfig::new(2, 2));
        let h = rt.start();
        let hits = Arc::new(AtomicU64::new(0));
        for id in 0..64u64 {
            let hits = Arc::clone(&hits);
            h.submit(RtTask::new(chain_task(id, 0x1000 + id)).with_body(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            }))
            .unwrap();
        }
        h.taskwait();
        assert_eq!(hits.load(Ordering::Relaxed), 64);
        assert_eq!(h.retired(), 64);
        let stats = h.node_stats();
        assert_eq!(stats.iter().map(|s| s.executed).sum::<u64>(), 64);
        assert_eq!(
            stats
                .iter()
                .flat_map(|s| s.per_worker_done.iter())
                .sum::<u64>(),
            64
        );
        // XOR-hash over 64 distinct addresses lands work on both nodes.
        assert!(stats.iter().all(|s| !s.admitted.is_empty()));
        rt.shutdown_background();
    }

    #[test]
    fn taskwait_on_waits_for_the_last_writer_only() {
        let mut rt = ClusterRuntime::new(RtConfig::new(1, 1));
        let h = rt.start();
        let flag = Arc::new(AtomicU64::new(0));
        let f1 = Arc::clone(&flag);
        h.submit(RtTask::new(chain_task(0, 0xA)).with_body(move || {
            f1.store(1, Ordering::SeqCst);
        }))
        .unwrap();
        h.taskwait_on(0xA);
        assert_eq!(flag.load(Ordering::SeqCst), 1);
        // An address nothing wrote is a no-op wait.
        h.taskwait_on(0xDEAD);
        let report = rt.shutdown_timeout(Duration::from_secs(10));
        assert_eq!(report.pending, 0);
    }

    #[test]
    fn recorder_sees_a_conserved_task_lifecycle() {
        let rec = SharedRecorder::new();
        let mut rt = ClusterRuntime::new(RtConfig::new(2, 2).with_recorder(rec.clone()));
        let h = rt.start();
        for id in 0..32u64 {
            h.submit(RtTask::new(chain_task(id, 0x2000 + id % 8)))
                .unwrap();
        }
        h.taskwait();
        let report = rt.shutdown_timeout(Duration::from_secs(10));
        assert_eq!(report.pending, 0);

        let snap = rec.snapshot();
        let conserved = nexus_obs::check_conservation(&snap.events)
            .expect("live span log violates lifecycle conservation");
        assert_eq!(conserved.submitted, 32);
        assert_eq!(conserved.started, 32);
        assert_eq!(conserved.retired, 32);
        // Every lifecycle stage was stamped for every task.
        assert_eq!(snap.count(|e| e.kind() == "placed"), 32);
        assert_eq!(snap.count(|e| e.kind() == "dispatched"), 32);
    }

    #[test]
    fn shutdown_metrics_mirror_the_node_stats() {
        let mut rt = ClusterRuntime::new(RtConfig::new(2, 2));
        let h = rt.start();
        for id in 0..24u64 {
            h.submit(RtTask::new(chain_task(id, 0x3000 + id))).unwrap();
        }
        h.taskwait();
        let report = rt.shutdown_timeout(Duration::from_secs(10));
        assert_eq!(report.metrics.counter("task.executed"), 24);
        assert_eq!(report.metrics.counter("task.retired"), 24);
        assert_eq!(report.metrics.counter("steal.stolen"), 0);
        // Feedback off: the reclaim path is never entered and no digest ever
        // rides a Notify — the keys exist but stay zero, like the simulator.
        assert_eq!(report.metrics.counter("reclaim.reclaimed"), 0);
        assert_eq!(report.metrics.counter("reclaim.failures"), 0);
        assert_eq!(report.metrics.counter("load.digest.updates"), 0);
        let max_node = report.per_node.iter().map(|s| s.executed).max().unwrap();
        assert_eq!(
            report.metrics.gauge("node.executed").map(|g| g.max),
            Some(max_node)
        );
    }

    #[test]
    fn reclamation_relocates_blocked_descriptors_to_idle_nodes() {
        use nexus_sched::FeedbackKind;
        let rec = SharedRecorder::new();
        let mut rt = ClusterRuntime::new(
            RtConfig::new(2, 1)
                .with_feedback(FeedbackKind::Reclaim)
                // 20 µs tasks stretched to 2 ms real so node 1's idle ticks
                // land while node 0 still holds a blocked backlog.
                .with_time_scale(100_000)
                .with_recorder(rec.clone()),
        );
        let h = rt.start();
        // Six four-long chains, all pinned to node 0: only the chain fronts
        // are ever ready, so with stealing disabled reclamation is the only
        // mechanism that can move the dependence-blocked tail.
        for id in 0..24u64 {
            h.submit(RtTask::new(
                TaskDescriptor::builder(id)
                    .inout(0x100 + (id % 6) * 0x40)
                    .duration_us(20.0)
                    .affinity(0)
                    .build(),
            ))
            .unwrap();
        }
        h.taskwait();
        let report = rt.shutdown_timeout(Duration::from_secs(60));
        assert_eq!(report.pending, 0);
        assert_eq!(report.retired, 24);

        let reclaimed_in: u64 = report.per_node.iter().map(|s| s.reclaimed_in).sum();
        let reclaimed_out: u64 = report.per_node.iter().map(|s| s.reclaimed_out).sum();
        assert!(
            reclaimed_in > 0,
            "no descriptor was ever reclaimed: {:?}",
            report.per_node
        );
        assert_eq!(reclaimed_in, reclaimed_out, "reclaim handoffs must balance");
        assert!(
            report.per_node[1].executed > 0,
            "node 1 never executed reclaimed work"
        );
        assert_eq!(report.metrics.counter("reclaim.reclaimed"), reclaimed_in);
        assert!(report.metrics.counter("reclaim.grants") > 0);
        assert!(
            report.metrics.counter("load.digest.updates") > 0,
            "no digest ever rode a Notify"
        );

        let snap = rec.snapshot();
        let conserved = nexus_obs::check_conservation(&snap.events)
            .expect("reclaimed lifecycle breaks conservation");
        assert_eq!(conserved.retired, 24);
        assert_eq!(conserved.reclaimed as u64, reclaimed_in);
    }

    #[test]
    fn retire_log_is_consistent_with_the_set() {
        let mut rt = ClusterRuntime::new(RtConfig::new(2, 1));
        let h = rt.start();
        for id in 0..10u64 {
            h.submit(RtTask::new(chain_task(id, 0x100 + id))).unwrap();
        }
        h.taskwait();
        let log = h.retire_log();
        assert_eq!(log.len(), 10);
        let mut sorted: Vec<u64> = log.iter().map(|t| t.0).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
        rt.shutdown_background();
    }
}
