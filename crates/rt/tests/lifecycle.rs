//! Lifecycle edge cases of the owner/handle pair: double-start, timed-out
//! shutdown with work still pending, submissions after shutdown, and
//! heterogeneous worker speeds on the live runtime.

use nexus_rt::{ClusterRuntime, RtConfig, RtTask, SubmitError};
use nexus_trace::TaskDescriptor;
use std::time::Duration;

fn task_us(id: u64, addr: u64, us: u64) -> RtTask {
    RtTask::new(
        TaskDescriptor::builder(id)
            .inout(addr)
            .duration(nexus_sim::SimDuration::from_us(us))
            .build(),
    )
}

#[test]
#[should_panic(expected = "start called twice")]
fn start_spawns_exactly_once() {
    let mut rt = ClusterRuntime::new(RtConfig::new(1, 1));
    let _first = rt.start();
    let _second = rt.start();
}

#[test]
fn shutdown_timeout_reports_unfinished_work() {
    // One worker at 50 µs of real time per simulated µs: six 1000 µs tasks
    // in one chain are ~50 ms each, 300 ms total — far beyond the 5 ms
    // budget, so the shutdown must time out with work still pending.
    let mut rt = ClusterRuntime::new(RtConfig::new(1, 1).with_time_scale(50_000));
    let handle = rt.start();
    for id in 0..6u64 {
        handle.submit(task_us(id, 0xCAFE, 1000)).unwrap();
    }
    let report = rt.shutdown_timeout(Duration::from_millis(5));
    assert_eq!(report.submitted, 6);
    assert!(
        report.pending >= 1,
        "a 5ms budget cannot drain ~300ms of work: {report:?}"
    );
    assert_eq!(report.pending, report.submitted - report.retired);
    // The handle outlives the owner but can no longer submit.
    assert_eq!(
        handle.submit(task_us(9, 0xCAFE, 1)).unwrap_err(),
        SubmitError::ShutDown
    );
}

#[test]
fn submit_after_shutdown_is_a_clean_error() {
    let mut rt = ClusterRuntime::new(RtConfig::new(2, 2));
    let handle = rt.start();
    let clone = handle.clone();
    handle.submit(task_us(0, 0x10, 1)).unwrap();
    handle.taskwait();
    let report = rt.shutdown_timeout(Duration::from_secs(5));
    assert_eq!(report.pending, 0);
    // Both the original handle and a clone observe the shutdown.
    assert_eq!(
        handle.submit(task_us(1, 0x10, 1)).unwrap_err(),
        SubmitError::ShutDown
    );
    assert_eq!(
        clone.submit(task_us(2, 0x10, 1)).unwrap_err(),
        SubmitError::ShutDown
    );
    // Waits after shutdown return instead of hanging.
    clone.taskwait();
    clone.taskwait_on(0x10);
}

#[test]
fn shutdown_before_any_submission_is_clean() {
    let mut rt = ClusterRuntime::new(RtConfig::new(4, 2));
    let _handle = rt.start();
    let report = rt.shutdown_timeout(Duration::from_secs(5));
    assert_eq!(report.submitted, 0);
    assert_eq!(report.pending, 0);
    assert_eq!(report.per_node.len(), 4);
}

#[test]
fn double_speed_worker_completes_about_twice_the_tasks() {
    // One node, two workers, one at 2x speed. Thirty independent 1000 µs
    // tasks at 3 ns of real time per simulated ns: 3 ms on the standard
    // worker, 1.5 ms on the fast one. The workers drain a shared queue, so
    // the fast worker should end up with about twice the completions.
    let cfg = RtConfig::new(1, 2)
        .with_worker_speeds(&[2.0, 1.0])
        .with_time_scale(3_000);
    let mut rt = ClusterRuntime::new(cfg);
    let handle = rt.start();
    for id in 0..30u64 {
        handle.submit(task_us(id, 0x1000 + id, 1000)).unwrap();
    }
    handle.taskwait();
    let stats = handle.node_stats();
    let report = rt.shutdown_timeout(Duration::from_secs(30));
    assert_eq!(report.pending, 0);
    let done = &stats[0].per_worker_done;
    assert_eq!(done.len(), 2);
    assert_eq!(done[0] + done[1], 30);
    assert!(
        done[0] as f64 > done[1] as f64 * 1.3,
        "fast worker should clearly out-complete the standard one: {done:?}"
    );
}
