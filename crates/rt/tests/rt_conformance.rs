//! Conformance of the threaded runtime against the event simulator.
//!
//! For every workload × stealing mode × node count in the grid, the same
//! trace is run through `nexus_cluster::simulate_cluster` (simulated) and
//! through a live `ClusterRuntime` (`run_trace`, real threads). The live run
//! must:
//!
//! 1. retire exactly the simulator's task count (nothing lost, nothing
//!    duplicated);
//! 2. converge to the **same final last-writer table** — the semantic
//!    fingerprint of the dataflow execution;
//! 3. produce a retire log that is a **legal topological order** of the
//!    dependence graph as defined by the shared `DepScanner` (every consumer
//!    retires after all of its producers);
//! 4. admit each task at the same home node the scanner assigns, in
//!    program order;
//! 5. with stealing off, execute every task on its home node; with stealing
//!    on, still execute every task exactly once somewhere;
//! 6. report zero pending tasks after a drained shutdown.

use nexus_cluster::routing::DepScanner;
use nexus_cluster::{simulate_cluster, ClusterConfig};
use nexus_host::IdealManager;
use nexus_rt::{ClusterRuntime, RtConfig};
use nexus_sched::{FeedbackKind, StealKind};
use nexus_sim::{FxHashMap, SimDuration};
use nexus_trace::generators::distributed;
use nexus_trace::{TaskDescriptor, TaskId, Trace};
use std::time::Duration;

fn us(n: u64) -> SimDuration {
    SimDuration::from_us(n)
}

/// The workload grid: every generator family the repo benchmarks, sized
/// small enough that the full 30-case grid stays in test-suite budget.
fn workloads(nodes: usize) -> Vec<Trace> {
    let (racks, per_rack) = match nodes {
        1 => (1, 1),
        2 => (2, 1),
        4 => (2, 2),
        n => (n, 1),
    };
    vec![
        distributed::sparselu(nodes, 0.3, 7, 0.002),
        distributed::gaussian(nodes, 0.3, 8, 11),
        distributed::wavefront(nodes, 0.3, 8, 8, us(20), 3),
        distributed::imbalanced(nodes, 30, 3.0, us(20), 0.3, 5),
        distributed::rack_clustered(racks, per_rack, 4, 6, 2.0, 0.4, 0.3, us(20), 9),
    ]
}

/// Rebuilds the dependence graph exactly as the runtime's master saw it — a
/// fresh scanner fed the trace in program order — and returns, per task, the
/// submission indices of its producers plus its home node.
fn rescan(trace: &Trace, cfg: &ClusterConfig) -> Vec<(TaskId, usize, Vec<usize>)> {
    let mut scanner = DepScanner::with_policy(cfg.nodes, cfg.placement.build())
        .with_distances(cfg.link.fabric(cfg.nodes).distances());
    trace
        .tasks()
        .map(|t| {
            let rec = scanner.scan_full(t);
            (t.id, rec.home, rec.producers)
        })
        .collect()
}

fn check_case(trace: &Trace, nodes: usize, stealing: StealKind) {
    let cfg = ClusterConfig::new(nodes, 2).with_stealing(stealing);
    let sim = simulate_cluster(trace, &cfg, |_| IdealManager::new());

    let mut rt = ClusterRuntime::new(RtConfig::from_cluster(&cfg));
    let handle = rt.start();
    let run = handle
        .run_trace(trace)
        .expect("runtime shut down mid-replay");
    let log = handle.retire_log();
    let stats = handle.node_stats();
    let report = rt.shutdown_timeout(Duration::from_secs(30));

    let ctx = format!("[{} n={nodes} steal={stealing:?}]", trace.name);
    let tasks = trace.task_count() as u64;

    // (1) identical retirement census, live vs simulated.
    assert_eq!(run.submitted, tasks, "{ctx} submitted");
    assert_eq!(run.retired, tasks, "{ctx} retired");
    assert_eq!(sim.tasks, tasks, "{ctx} sim task census");
    assert_eq!(log.len() as u64, tasks, "{ctx} retire log length");

    // (2) identical final last-writer tables.
    assert_eq!(
        run.last_writer, sim.master_last_writer,
        "{ctx} last-writer tables diverge"
    );

    // (3) the retire log is a legal topological order of the scanner's
    // dependence graph.
    let graph = rescan(trace, &cfg);
    let mut pos: FxHashMap<TaskId, usize> = FxHashMap::default();
    for (i, id) in log.iter().enumerate() {
        assert!(
            pos.insert(*id, i).is_none(),
            "{ctx} task {id:?} retired twice"
        );
    }
    for (consumer_idx, (id, _, producers)) in graph.iter().enumerate() {
        let cp = pos[id];
        for &p in producers {
            let (pid, _, _) = &graph[p];
            assert!(
                pos[pid] < cp,
                "{ctx} task {id:?} (submission {consumer_idx}) retired before \
                 its producer {pid:?} (submission {p})"
            );
        }
    }

    // (4) every task was admitted at its scanner home, in program order.
    for (node, stat) in stats.iter().enumerate() {
        let expected: Vec<TaskId> = graph
            .iter()
            .filter(|(_, home, _)| *home == node)
            .map(|(id, _, _)| *id)
            .collect();
        assert_eq!(
            stat.admitted, expected,
            "{ctx} node {node} admission mismatch"
        );
    }

    // (5) execution census: stealing off pins work to the home node;
    // stealing on still executes everything exactly once.
    let executed: u64 = stats.iter().map(|s| s.executed).sum();
    assert_eq!(executed, tasks, "{ctx} executed census");
    if !stealing.is_enabled() {
        for (node, stat) in stats.iter().enumerate() {
            assert_eq!(
                stat.executed,
                stat.admitted.len() as u64,
                "{ctx} node {node} executed off-home work with stealing off"
            );
            assert_eq!(stat.stolen_in, 0, "{ctx} node {node} stole work");
        }
    }

    // (6) a drained shutdown reports nothing pending.
    assert_eq!(report.pending, 0, "{ctx} pending after drain");
    assert_eq!(report.retired, tasks, "{ctx} report retired");

    // (7) the live metrics registry agrees with the simulator's under the
    // shared key names — the execution census is identical on both sides.
    assert_eq!(
        report.metrics.counter("task.executed"),
        sim.metrics.counter("task.executed"),
        "{ctx} executed census diverges between live and simulated registries"
    );
    assert_eq!(
        report.metrics.counter("task.retired"),
        sim.metrics.counter("task.retired"),
        "{ctx} retired census diverges between live and simulated registries"
    );
    if !stealing.is_enabled() {
        assert_eq!(
            report.metrics.counter("steal.stolen") + report.metrics.counter("steal.grants"),
            0,
            "{ctx} stealing disabled but the registry recorded steals"
        );
    }
}

fn run_grid(stealing: StealKind) {
    for nodes in [1usize, 2, 4] {
        for trace in workloads(nodes) {
            check_case(&trace, nodes, stealing);
        }
    }
}

#[test]
fn conformance_without_stealing() {
    run_grid(StealKind::Disabled);
}

#[test]
fn conformance_with_stealing() {
    run_grid(StealKind::MostLoaded);
}

/// Feedback-driven scheduling preserves the dataflow semantics. Under
/// `FeedbackKind::Full` the live runtime's placement follows wall-clock
/// digests, so homes are not pinnable event for event — but every
/// placement-independent invariant must still hold against the simulator:
/// the retirement census, the final last-writer fingerprint, topological
/// retire order against the (placement-independent) producer sets, and the
/// shared `reclaim.*` registry keys mirroring the per-node statistics.
#[test]
fn feedback_full_preserves_the_dataflow_semantics() {
    for nodes in [2usize, 4] {
        for trace in workloads(nodes) {
            let cfg = ClusterConfig::new(nodes, 2)
                .with_stealing(StealKind::Hierarchical)
                .with_feedback(FeedbackKind::Full);
            let sim = simulate_cluster(&trace, &cfg, |_| IdealManager::new());

            let mut rt = ClusterRuntime::new(RtConfig::from_cluster(&cfg));
            let handle = rt.start();
            let run = handle
                .run_trace(&trace)
                .expect("runtime shut down mid-replay");
            let log = handle.retire_log();
            let report = rt.shutdown_timeout(Duration::from_secs(30));

            let ctx = format!("[{} n={nodes} feedback=full]", trace.name);
            let tasks = trace.task_count() as u64;
            assert_eq!(run.submitted, tasks, "{ctx} submitted");
            assert_eq!(run.retired, tasks, "{ctx} retired");
            assert_eq!(sim.tasks, tasks, "{ctx} sim census");
            assert_eq!(
                run.last_writer, sim.master_last_writer,
                "{ctx} last-writer tables diverge"
            );
            assert_eq!(report.pending, 0, "{ctx} pending after drain");

            // The retire log stays a legal topological order (the producer
            // sets are last-writer chains — identical under any placement).
            let graph = rescan(&trace, &cfg);
            let mut pos: FxHashMap<TaskId, usize> = FxHashMap::default();
            for (i, id) in log.iter().enumerate() {
                assert!(pos.insert(*id, i).is_none(), "{ctx} {id:?} retired twice");
            }
            for (id, _, producers) in &graph {
                for &p in producers {
                    let (pid, _, _) = &graph[p];
                    assert!(
                        pos[pid] < pos[id],
                        "{ctx} task {id:?} retired before its producer {pid:?}"
                    );
                }
            }

            // Shared registry keys: the live reclaim census is internally
            // consistent and keyed exactly like the simulator's.
            let reclaimed: u64 = report.per_node.iter().map(|s| s.reclaimed_in).sum();
            let out: u64 = report.per_node.iter().map(|s| s.reclaimed_out).sum();
            assert_eq!(reclaimed, out, "{ctx} reclaim handoffs must balance");
            assert_eq!(
                report.metrics.counter("reclaim.reclaimed"),
                reclaimed,
                "{ctx}"
            );
            assert_eq!(
                sim.metrics.counter("reclaim.reclaimed"),
                sim.reclaims,
                "{ctx} sim registry mirrors its scalar"
            );
        }
    }
}

/// The reclaim protocol moves real blocked work in the live runtime, and the
/// `reclaim.*` census is live on *both* sides of the conformance pair on a
/// workload stealing cannot touch (six interleaved chains pinned to node 0:
/// only the chain fronts are ever steal-eligible). Exact counts are
/// wall-clock-dependent live, so both sides are pinned to be nonzero,
/// internally balanced, and lifecycle-conserving rather than equal.
#[test]
fn reclamation_census_is_live_on_both_sides() {
    let mut b = nexus_trace::trace::TraceBuilder::new("reclaim-chains-live");
    for i in 0..48u64 {
        b.submit_with(|id| {
            TaskDescriptor::builder(id.0)
                .inout(0x100 + (i % 6) * 0x40)
                .duration(us(20))
                .affinity(0)
                .build()
        });
    }
    b.taskwait();
    let trace = b.finish();

    let cfg = ClusterConfig::new(2, 2).with_feedback(FeedbackKind::Reclaim);
    // The simulated side needs a manager whose pool actually backs up — the
    // paper's Nexus# with a tight task pool, as the driver's own tests use.
    let sim = simulate_cluster(&trace, &cfg, |_| {
        let mut mgr = nexus_core::NexusSharpConfig::paper(6);
        mgr.task_pool_capacity = 16;
        nexus_core::NexusSharp::new(mgr)
    });
    assert!(sim.reclaims > 0, "simulator reclaimed nothing");
    assert_eq!(sim.metrics.counter("reclaim.reclaimed"), sim.reclaims);

    let rec = nexus_rt::SharedRecorder::new();
    let mut rt = ClusterRuntime::new(
        RtConfig::from_cluster(&cfg)
            .with_time_scale(100_000)
            .with_recorder(rec.clone()),
    );
    let handle = rt.start();
    handle.run_trace(&trace).expect("replay failed");
    let report = rt.shutdown_timeout(Duration::from_secs(60));
    assert_eq!(report.pending, 0);

    let reclaimed: u64 = report.per_node.iter().map(|s| s.reclaimed_in).sum();
    let out: u64 = report.per_node.iter().map(|s| s.reclaimed_out).sum();
    assert!(
        reclaimed > 0,
        "live runtime reclaimed nothing: {:?}",
        report.per_node
    );
    assert_eq!(reclaimed, out, "reclaim handoffs must balance");
    assert_eq!(report.metrics.counter("reclaim.reclaimed"), reclaimed);
    assert!(
        report.per_node[1].executed > 0,
        "node 1 never executed reclaimed work"
    );

    let snap = rec.snapshot();
    let conserved = nexus_obs::check_conservation(&snap.events)
        .expect("live reclaim lifecycle breaks conservation");
    assert_eq!(conserved.retired, 48);
    assert_eq!(conserved.reclaimed as u64, reclaimed);
}

/// The imbalanced workload under stealing actually moves descriptors in the
/// live runtime (the thief side of the protocol is exercised, not just
/// compiled).
#[test]
fn stealing_moves_real_work() {
    let trace = distributed::imbalanced(4, 200, 8.0, us(20), 0.0, 5);
    let cfg = ClusterConfig::new(4, 2).with_stealing(StealKind::MostLoaded);
    // A small time scale keeps node 0's backlog alive long enough for the
    // idle nodes' steal ticks to fire.
    let rec = nexus_rt::SharedRecorder::new();
    let mut rt = ClusterRuntime::new(
        RtConfig::from_cluster(&cfg)
            .with_time_scale(2_000)
            .with_recorder(rec.clone()),
    );
    let handle = rt.start();
    handle.run_trace(&trace).expect("replay failed");
    let stats = handle.node_stats();
    let report = rt.shutdown_timeout(Duration::from_secs(30));
    assert_eq!(report.pending, 0);
    let stolen: u64 = stats.iter().map(|s| s.stolen_in).sum();
    assert!(stolen > 0, "no descriptor was ever stolen: {stats:?}");
    let executed: u64 = stats.iter().map(|s| s.executed).sum();
    assert_eq!(executed, trace.task_count() as u64);

    // The victim side accounts every grant, and the registry surfaces the
    // same totals (stolen_in at the thieves == Stolen spans at the victims).
    let grants: u64 = stats.iter().map(|s| s.steal_grants).sum();
    assert!(grants > 0, "steals happened but no grant was counted");
    assert_eq!(report.metrics.counter("steal.stolen"), stolen);
    assert_eq!(report.metrics.counter("steal.grants"), grants);

    let snap = rec.snapshot();
    let conserved =
        nexus_obs::check_conservation(&snap.events).expect("live span log breaks conservation");
    assert_eq!(conserved.retired, trace.task_count());
    assert_eq!(
        conserved.stolen as u64, stolen,
        "Stolen spans != stolen_in census"
    );
}
