//! Sharded dependency resolution — the software analogue of the distributed
//! task graphs of Nexus#.
//!
//! Each resource key is routed by the paper's XOR folding hash to one of `N`
//! independently-locked [`DependencyTracker`]s, so parameter insertions and
//! retirements of unrelated keys never contend, exactly like the parallel
//! insertion the hardware design achieves with its per-task-graph engines.

use crate::task::AccessMode;
use nexus_taskgraph::DependencyTracker;
use nexus_trace::TaskId;
use parking_lot::Mutex;

/// The paper's distribution function (§IV-B): XOR of the four 5-bit blocks of
/// the low 20 key bits, reduced modulo the shard count. Mirrors
/// `nexus_core::distribution::xor_hash_tg` without pulling in the simulator.
#[inline]
pub fn shard_of(key: u64, shards: usize) -> usize {
    debug_assert!(shards > 0);
    let fold = ((key >> 15) & 0x1f) ^ ((key >> 10) & 0x1f) ^ ((key >> 5) & 0x1f) ^ (key & 0x1f);
    (fold as usize) % shards
}

/// Outcome of inserting one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardInsert {
    /// True if the access must wait for earlier conflicting accesses.
    pub blocked: bool,
}

/// A sharded, thread-safe dependency graph over 64-bit resource keys.
#[derive(Debug)]
pub struct ShardedGraph {
    shards: Vec<Mutex<DependencyTracker>>,
}

impl ShardedGraph {
    /// Creates a graph with `shards` independent trackers.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        ShardedGraph {
            shards: (0..shards)
                .map(|_| Mutex::new(DependencyTracker::with_default_geometry()))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Inserts one access of `task` on `key`; returns whether it must wait.
    pub fn insert(&self, task: TaskId, key: u64, mode: AccessMode) -> ShardInsert {
        let shard = &self.shards[shard_of(key, self.shards.len())];
        let outcome = shard.lock().insert_param(task, key, mode.direction());
        ShardInsert {
            blocked: outcome.blocked,
        }
    }

    /// Retires one access of `task` on `key`; returns the tasks whose
    /// dependency on this key became fully resolved.
    pub fn retire(&self, task: TaskId, key: u64, mode: AccessMode) -> Vec<TaskId> {
        let shard = &self.shards[shard_of(key, self.shards.len())];
        shard
            .lock()
            .retire_param(task, key, mode.direction())
            .released
    }

    /// Total number of live (tracked) keys across all shards.
    pub fn live_keys(&self) -> usize {
        self.shards.iter().map(|s| s.lock().live_addresses()).sum()
    }

    /// The largest kick-off list observed on any shard (diagnostics).
    pub fn max_kickoff_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().stats().max_kickoff_len)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_routes_within_range_and_deterministically() {
        for shards in [1usize, 2, 6, 16] {
            for key in (0..4096u64).map(|i| i * 64) {
                let s = shard_of(key, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(key, shards));
            }
        }
    }

    #[test]
    fn uniform_keyset_leaves_no_shard_empty() {
        // A cache-line-strided uniform keyset (the layout the paper's §IV-B
        // observation describes) must reach every tracker: an empty shard
        // would mean a task-graph unit that never receives work.
        for shards in [2usize, 3, 4, 6, 8, 16, 32] {
            let mut hits = vec![0usize; shards];
            for key in (0..4096u64).map(|i| 0x7f3a_0000_0000 + i * 64) {
                hits[shard_of(key, shards)] += 1;
            }
            assert!(
                hits.iter().all(|&h| h > 0),
                "{shards} shards: empty shard in {hits:?}"
            );
        }
    }

    #[test]
    fn sharded_graph_routes_keys_to_every_tracker() {
        // End-to-end: inserting a uniform keyset must place live entries on
        // every underlying tracker, and re-inserting the same key must land on
        // the same shard (retire after insert leaves the graph empty only if
        // routing is consistent between the two calls).
        let g = ShardedGraph::new(6);
        for i in 0..512u64 {
            let key = 0x7f3a_0000_0000 + i * 64;
            assert!(!g.insert(TaskId(i), key, AccessMode::ReadWrite).blocked);
        }
        assert_eq!(g.live_keys(), 512);
        for i in 0..512u64 {
            let key = 0x7f3a_0000_0000 + i * 64;
            assert!(g.retire(TaskId(i), key, AccessMode::ReadWrite).is_empty());
        }
        assert_eq!(g.live_keys(), 0, "a key was routed to two different shards");
    }

    #[test]
    fn shard_routing_matches_the_core_xor_hash() {
        // shard.rs documents that it mirrors the simulator's distribution
        // function; keep the two implementations in lock-step.
        for shards in [1usize, 2, 6, 16, 32] {
            for key in (0..2048u64).map(|i| 0x4000 + i * 64) {
                assert_eq!(
                    shard_of(key, shards),
                    nexus_core::distribution::xor_hash_tg(key, shards),
                    "key {key:#x} diverged at {shards} shards"
                );
            }
        }
    }

    #[test]
    fn raw_dependency_round_trip() {
        let g = ShardedGraph::new(4);
        assert_eq!(g.shards(), 4);
        let a = 0x1000;
        assert!(!g.insert(TaskId(0), a, AccessMode::Write).blocked);
        assert!(g.insert(TaskId(1), a, AccessMode::Read).blocked);
        let released = g.retire(TaskId(0), a, AccessMode::Write);
        assert_eq!(released, vec![TaskId(1)]);
        g.retire(TaskId(1), a, AccessMode::Read);
        assert_eq!(g.live_keys(), 0);
    }

    #[test]
    fn independent_keys_do_not_interact() {
        let g = ShardedGraph::new(6);
        for i in 0..100u64 {
            assert!(!g.insert(TaskId(i), i * 64, AccessMode::ReadWrite).blocked);
        }
        assert_eq!(g.live_keys(), 100);
        for i in 0..100u64 {
            assert!(g
                .retire(TaskId(i), i * 64, AccessMode::ReadWrite)
                .is_empty());
        }
        assert_eq!(g.live_keys(), 0);
    }

    #[test]
    fn fan_out_is_tracked() {
        let g = ShardedGraph::new(2);
        g.insert(TaskId(0), 0x40, AccessMode::Write);
        for i in 1..=20u64 {
            assert!(g.insert(TaskId(i), 0x40, AccessMode::Read).blocked);
        }
        assert_eq!(g.retire(TaskId(0), 0x40, AccessMode::Write).len(), 20);
        assert!(g.max_kickoff_len() >= 20);
    }

    #[test]
    fn concurrent_inserts_from_many_threads() {
        use std::sync::Arc;
        let g = Arc::new(ShardedGraph::new(8));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let g = Arc::clone(&g);
            handles.push(std::thread::spawn(move || {
                // Each thread works on its own key range: nothing blocks.
                for i in 0..500u64 {
                    let id = TaskId(t * 1000 + i);
                    let key = (t * 1000 + i) * 64;
                    assert!(!g.insert(id, key, AccessMode::ReadWrite).blocked);
                    assert!(g.retire(id, key, AccessMode::ReadWrite).is_empty());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(g.live_keys(), 0);
    }
}
